/** @file Ablation study of the context prefetcher's design choices
 *  (DESIGN.md section 4): reward shape, adaptive reducer, exploration,
 *  software hints, and history-queue sampling density. Each variant
 *  runs the focused workload set; rows report geomean speedup over
 *  no-prefetching. */

#include <iostream>
#include <map>

#include "bench_common.h"
#include "prefetch/context/context_prefetcher.h"
#include "sim/simulator.h"
#include "workloads/registry.h"

namespace {

using namespace csp;

struct Variant
{
    std::string name;
    ContextPrefetcherConfig config;
    prefetch::ctx::ContextFeatureToggles toggles;
};

} // namespace

int
main()
{
    bench::banner("Context prefetcher ablations (geomean speedup)",
                  "DESIGN.md section 4; paper sections 4.1-4.4");
    const std::vector<std::string> workload_names = {
        "list", "listsort", "maptest", "prim", "graph500-list",
        "mcf",  "omnetpp",  "lbm",     "array", "astar", "KNN"};

    SystemConfig config;
    std::vector<Variant> variants;
    variants.push_back({"full (paper)", config.context, {}});
    {
        Variant v{"no negative rewards", config.context, {}};
        v.toggles.negative_rewards = false;
        variants.push_back(v);
    }
    {
        Variant v{"flat reward (no bell)", config.context, {}};
        v.config.reward.peak_reward = 4;
        v.config.reward.window_center =
            (v.config.reward.window_lo + v.config.reward.window_hi) /
            2;
        variants.push_back(v);
    }
    {
        Variant v{"static reducer (no adaptation)", config.context,
                  {}};
        v.toggles.adaptive_reducer = false;
        variants.push_back(v);
    }
    {
        Variant v{"no exploration (greedy only)", config.context, {}};
        v.toggles.exploration = false;
        variants.push_back(v);
    }
    {
        Variant v{"hardware-only context (no hints)", config.context,
                  {}};
        v.toggles.software_hints = false;
        variants.push_back(v);
    }
    {
        Variant v{"softmax exploration (sec. 8 ext.)", config.context,
                  {}};
        v.config.softmax_exploration = true;
        variants.push_back(v);
    }
    {
        Variant v{"narrow reward window (24-40)", config.context, {}};
        v.config.reward.window_lo = 24;
        v.config.reward.window_hi = 40;
        v.config.reward.window_center = 32;
        variants.push_back(v);
    }
    {
        Variant v{"conservative dispatch threshold (6)",
                  config.context, {}};
        v.config.real_score_threshold = 6;
        variants.push_back(v);
    }

    workloads::WorkloadParams params =
        bench::benchParams(bench::sweepScale());
    std::map<std::string, trace::TraceBuffer> traces;
    std::map<std::string, double> baseline;
    for (const auto &name : workload_names) {
        traces[name] = workloads::Registry::builtin()
                           .create(name)
                           ->generate(params);
        auto none = sim::makePrefetcher("none", config);
        sim::Simulator simulator(config);
        baseline[name] = simulator.run(traces[name], *none).ipc();
    }

    sim::Table table({"variant", "geomean speedup", "worst workload",
                      "worst speedup"});
    for (const Variant &variant : variants) {
        std::vector<double> speedups;
        std::string worst_name;
        double worst = 1e9;
        for (const auto &name : workload_names) {
            prefetch::ctx::ContextPrefetcher prefetcher(
                variant.config, config.seed, variant.toggles);
            sim::Simulator simulator(config);
            const double s =
                simulator.run(traces[name], prefetcher).ipc() /
                baseline[name];
            speedups.push_back(s);
            if (s < worst) {
                worst = s;
                worst_name = name;
            }
        }
        table.addRow({variant.name,
                      sim::Table::num(sim::geomean(speedups), 3),
                      worst_name, sim::Table::num(worst, 3)});
    }
    table.print(std::cout);
    std::cout << "\nThe full configuration should dominate or match"
                 " every ablated variant on the geomean.\n";
    return 0;
}
