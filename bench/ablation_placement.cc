/** @file Heap-placement sensitivity: the µbenchmarks run over the
 *  simulated heap with slot placement either sequential (bump
 *  allocator) or randomised (churned heap). This probes the CST's
 *  ±8kB short-delta reach (paper section 5) and SMS's dependence on
 *  dense regions: scattering the heap hurts the spatial prefetcher
 *  far more than the semantic one. */

#include <iostream>

#include "bench_common.h"
#include "sim/simulator.h"
#include "workloads/registry.h"

namespace {

double
speedupFor(const csp::trace::TraceBuffer &trace,
           const std::string &pf_name, const csp::SystemConfig &config)
{
    auto none = csp::sim::makePrefetcher("none", config);
    auto prefetcher = csp::sim::makePrefetcher(pf_name, config);
    csp::sim::Simulator sim_a(config);
    csp::sim::Simulator sim_b(config);
    return sim_b.run(trace, *prefetcher).ipc() /
           sim_a.run(trace, *none).ipc();
}

} // namespace

int
main()
{
    using namespace csp;
    bench::banner("Heap-placement sensitivity (speedups)",
                  "probe of the CST delta reach & SMS density needs");
    const std::vector<std::string> workload_names = {
        "list", "listsort", "bst", "hashtest", "maptest"};
    SystemConfig config;

    sim::Table table({"benchmark", "ctx seq", "ctx rand", "sms seq",
                      "sms rand"});
    for (const std::string &name : workload_names) {
        workloads::WorkloadParams params =
            bench::benchParams(bench::sweepScale());
        params.placement = runtime::Placement::Sequential;
        const trace::TraceBuffer seq_trace =
            workloads::Registry::builtin().create(name)->generate(
                params);
        params.placement = runtime::Placement::Randomized;
        const trace::TraceBuffer rand_trace =
            workloads::Registry::builtin().create(name)->generate(
                params);
        table.addRow(
            {name,
             sim::Table::num(speedupFor(seq_trace, "context", config),
                             3),
             sim::Table::num(
                 speedupFor(rand_trace, "context", config), 3),
             sim::Table::num(speedupFor(seq_trace, "sms", config), 3),
             sim::Table::num(speedupFor(rand_trace, "sms", config),
                             3)});
    }
    table.print(std::cout);
    std::cout << "\nScattered placement degrades spatial prefetching"
                 " more than semantic prefetching wherever the\n"
                 "structure's semantic neighbours stay within the"
                 " CST's short-pointer (±8kB) reach.\n";
    return 0;
}
