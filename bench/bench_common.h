/**
 * @file
 * Shared plumbing for the figure/table benchmark binaries: default
 * trace scale (overridable through CSP_SCALE), the paper's benchmark
 * ordering, and small printing helpers.
 *
 * Every binary regenerates one table or figure of the paper's
 * evaluation section; see DESIGN.md's per-experiment index.
 */

#ifndef CSP_BENCH_BENCH_COMMON_H
#define CSP_BENCH_BENCH_COMMON_H

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "sim/table.h"

namespace csp::bench {

/**
 * Jobs knob shared by every bench binary: `--jobs N` (or `-j N`) on
 * the command line wins; 0 means "auto", which runSweep resolves as
 * CSP_JOBS when set, else every hardware thread. Results are
 * bit-identical for any value — parallelism only changes wall time.
 */
inline unsigned
jobsArg(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--jobs" || arg == "-j") {
            return static_cast<unsigned>(
                std::strtoul(argv[i + 1], nullptr, 10));
        }
    }
    return 0;
}

/** Sweep options for a bench binary's runSweep call. */
inline sim::SweepOptions
sweepOptions(int argc, char **argv)
{
    sim::SweepOptions options;
    options.jobs = jobsArg(argc, argv);
    return options;
}

/** Default per-workload memory-access budget for full-suite sweeps. */
inline std::uint64_t
sweepScale()
{
    return sim::effectiveScale(250000);
}

/** Default budget for focused single-workload experiments. */
inline std::uint64_t
focusedScale()
{
    return sim::effectiveScale(400000);
}

/** Workload parameters used by all benches. */
inline workloads::WorkloadParams
benchParams(std::uint64_t scale)
{
    workloads::WorkloadParams params;
    params.scale = scale;
    params.seed = 1;
    return params;
}

/** Banner naming the figure/table a binary regenerates. */
inline void
banner(const std::string &title, const std::string &paper_ref)
{
    std::cout << "==============================================\n"
              << title << "\n(" << paper_ref << ")\n"
              << "==============================================\n";
}

} // namespace csp::bench

#endif // CSP_BENCH_BENCH_COMMON_H
