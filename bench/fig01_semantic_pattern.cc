/** @file Regenerates paper Figure 1: memory accesses of linked-list
 *  insertion sort (100 random elements) indexed by real address and by
 *  logical list position. Prints both series plus summary statistics
 *  showing that addresses scatter while logical indices stay linear. */

#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "workloads/ubench/listsort.h"

int
main()
{
    csp::bench::banner(
        "Memory accesses for list insertion sort (100 elements)",
        "paper Figure 1");
    const auto samples =
        csp::workloads::ubench::ListSort::accessPattern(100, 1);

    csp::sim::Table table(
        {"access#", "address(hex)", "logical-index"});
    // Print a readable subsample of the stream (every 16th access).
    for (std::size_t i = 0; i < samples.size(); i += 16) {
        char hex[32];
        std::snprintf(hex, sizeof hex, "0x%llx",
                      static_cast<unsigned long long>(
                          samples[i].addr));
        table.addRow({std::to_string(i), hex,
                      std::to_string(samples[i].logical_index)});
    }
    table.print(std::cout);

    // Quantify the contrast the figure makes visually: correlation of
    // each series with the access number, per insertion walk the
    // logical index is perfectly linear while addresses jump.
    std::uint64_t addr_jumps = 0;
    std::uint64_t logical_steps = 0;
    for (std::size_t i = 1; i < samples.size(); ++i) {
        const bool same_walk = samples[i].logical_index ==
                               samples[i - 1].logical_index + 1;
        if (!same_walk)
            continue;
        ++logical_steps;
        const auto delta = static_cast<std::int64_t>(
            samples[i].addr - samples[i - 1].addr);
        if (delta < 0 || delta > 256)
            ++addr_jumps;
    }
    std::cout << "\nWithin-walk steps: " << logical_steps
              << "; of those, address jumps (>4 lines or backwards): "
              << addr_jumps << " ("
              << csp::sim::Table::num(
                     100.0 * static_cast<double>(addr_jumps) /
                         static_cast<double>(logical_steps),
                     1)
              << "%)\n"
              << "Logical traversal is always +1 per step (semantic "
                 "linearity); the address stream is not.\n";
    return 0;
}
