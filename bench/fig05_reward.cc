/** @file Regenerates paper Figure 5: the bell-shaped reward function
 *  over prefetch-queue hit depth. */

#include <iostream>

#include "bench_common.h"
#include "prefetch/context/reward.h"

int
main()
{
    csp::bench::banner("Reward function for context-based prefetcher",
                       "paper Figure 5");
    const csp::RewardConfig config;
    const csp::prefetch::ctx::RewardFunction reward(config);
    csp::sim::Table table({"depth", "reward", "plot"});
    const auto values = reward.tabulate(80);
    for (unsigned depth = 0; depth < values.size(); depth += 2) {
        const int r = values[depth];
        std::string bar;
        if (r >= 0)
            bar = std::string(6, ' ') + '|' +
                  std::string(static_cast<std::size_t>(r), '#');
        else
            bar = std::string(static_cast<std::size_t>(6 + r), ' ') +
                  std::string(static_cast<std::size_t>(-r), '#') + '|';
        table.addRow({std::to_string(depth), std::to_string(r), bar});
    }
    table.print(std::cout);
    std::cout << "\nPositive window: depths " << config.window_lo
              << "-" << config.window_hi << ", peaking at "
              << config.window_center
              << " (the target prefetch distance).\n";
    return 0;
}
