/** @file Regenerates paper Figure 8: cumulative distribution of
 *  prefetch hit depths (accesses between prediction and demand) for
 *  the µbenchmarks (top) and a subset of regular benchmarks (bottom).
 *  Values of P at depth N mean P% of predictions were demanded within
 *  N accesses; the reward window is 18-50. */

#include <iostream>

#include "bench_common.h"
#include "workloads/registry.h"

namespace {

void
cdfTable(const std::vector<std::string> &workloads,
         const char *group_name)
{
    using namespace csp;
    std::cout << "\n--- " << group_name << " ---\n";
    const std::vector<unsigned> depth_points = {4,  8,  12, 17, 24,
                                                32, 40, 50, 64, 127};
    std::vector<std::string> headers = {"benchmark"};
    for (unsigned d : depth_points)
        headers.push_back("<=" + std::to_string(d));
    sim::Table table(headers);

    SystemConfig config;
    workloads::WorkloadParams params =
        bench::benchParams(csp::bench::sweepScale());
    for (const std::string &name : workloads) {
        const auto workload =
            workloads::Registry::builtin().create(name);
        const trace::TraceBuffer trace = workload->generate(params);
        auto prefetcher = sim::makePrefetcher("context", config);
        sim::Simulator simulator(config);
        simulator.run(trace, *prefetcher);
        const Histogram *depths = prefetcher->hitDepths();
        std::vector<std::string> row = {name};
        for (unsigned d : depth_points) {
            row.push_back(sim::Table::num(
                100.0 * (depths != nullptr ? depths->cdfAt(d) : 0.0),
                1));
        }
        table.addRow(row);
    }
    table.print(std::cout);
}

} // namespace

int
main()
{
    csp::bench::banner(
        "Cumulative distribution of prefetch hit depths (%)",
        "paper Figure 8; reward window 18-50");
    cdfTable({"array", "list", "listsort", "bst", "hashtest",
              "maptest", "prim", "ssca_lds", "graph500-list"},
             "ubenchmarks");
    cdfTable({"lbm", "libquantum", "mcf", "omnetpp", "sphinx3",
              "h264ref", "milc"},
             "regular benchmarks");
    std::cout << "\nExpected shape: a visible step beginning at depth"
                 " ~18 (the positive reward window); input-dependent\n"
                 "lookup benchmarks (maptest, hashtest, bst) show the"
                 " weakest concentration (paper section 7.1).\n";
    return 0;
}
