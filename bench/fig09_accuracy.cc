/** @file Regenerates paper Figure 9: per-access benefit classification
 *  (hit-prefetched / shorter-wait / non-timely / miss-not-prefetched /
 *  hit-older-demand, plus wrong prefetches above 100%) for every
 *  prefetcher over a representative benchmark set. */

#include <iostream>

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace csp;
    bench::banner("Accuracy and timeliness classification (%)",
                  "paper Figure 9");
    const std::vector<std::string> workload_names = {
        "array",  "list",     "listsort",   "maptest",
        "prim",   "graph500", "graph500-list", "ssca2-list",
        "h264ref", "lbm",     "mcf",        "omnetpp",
        "sphinx3", "namd"};
    SystemConfig config;
    const sim::SweepResult sweep = sim::runSweep(
        workload_names, sim::paperPrefetchers(),
        bench::benchParams(bench::sweepScale()), config,
        bench::sweepOptions(argc, argv));

    sim::Table table({"benchmark", "prefetcher", "hit-pf", "shorter",
                      "non-timely", "miss-unpred", "hit-older",
                      "wrong-pf"});
    for (const std::string &workload : workload_names) {
        for (const std::string &pf : sweep.prefetcher_names) {
            const sim::RunStats &stats = sweep.at(workload, pf);
            const auto pct = [&](sim::AccessClass cls) {
                return sim::Table::num(
                    100.0 * stats.classFraction(cls), 1);
            };
            table.addRow(
                {workload, pf,
                 pct(sim::AccessClass::HitPrefetchedLine),
                 pct(sim::AccessClass::ShorterWait),
                 pct(sim::AccessClass::NonTimely),
                 pct(sim::AccessClass::MissNotPrefetched),
                 pct(sim::AccessClass::HitOlderDemand),
                 sim::Table::num(
                     100.0 *
                         static_cast<double>(
                             stats.prefetch_never_hit) /
                         static_cast<double>(stats.demand_accesses),
                     1)});
        }
    }
    table.print(std::cout);
    std::cout << "\nColumns sum to 100% per row; wrong-pf is counted"
                 " on top (paper: 'pass the 100% mark').\n";
    return 0;
}
