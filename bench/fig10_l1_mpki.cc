/** @file Regenerates paper Figure 10: L1 misses per kilo-instruction
 *  per prefetcher, for the memory-intensive benchmarks (baseline L1
 *  MPKI > 5) plus the all-benchmark average. */

#include <iostream>

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace csp;
    bench::banner("L1 MPKI per prefetcher",
                  "paper Figure 10; benchmarks with MPKI > 5");
    SystemConfig config;
    const auto all = sim::allWorkloads();
    const sim::SweepResult sweep =
        sim::runSweep(all, sim::paperPrefetchers(),
                      bench::benchParams(bench::sweepScale()), config,
                      bench::sweepOptions(argc, argv));

    std::vector<std::string> headers = {"benchmark"};
    for (const auto &pf : sweep.prefetcher_names)
        headers.push_back(pf);
    sim::Table table(headers);

    std::vector<double> sums(sweep.prefetcher_names.size(), 0.0);
    for (const std::string &workload : all) {
        std::vector<std::string> row = {workload};
        const double base_mpki = sweep.at(workload, "none").l1Mpki();
        for (std::size_t p = 0; p < sweep.prefetcher_names.size();
             ++p) {
            const double mpki =
                sweep.at(workload, sweep.prefetcher_names[p])
                    .l1Mpki();
            sums[p] += mpki;
            row.push_back(sim::Table::num(mpki, 1));
        }
        if (base_mpki > 5.0)
            table.addRow(row);
    }
    std::vector<std::string> avg = {"AVERAGE(all)"};
    for (double sum : sums) {
        avg.push_back(sim::Table::num(
            sum / static_cast<double>(all.size()), 1));
    }
    table.addRow(avg);
    table.print(std::cout);
    return 0;
}
