/** @file Regenerates paper Figure 11: L2 misses per kilo-instruction
 *  per prefetcher (benchmarks with baseline L2 MPKI > 1) plus the
 *  all-benchmark average. The paper's headline: the context prefetcher
 *  cuts average L2 MPKI ~4x vs. no prefetching and ~2x vs. SMS. */

#include <iostream>

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace csp;
    bench::banner("L2 MPKI per prefetcher",
                  "paper Figure 11; benchmarks with L2 MPKI > 1");
    SystemConfig config;
    const auto all = sim::allWorkloads();
    const sim::SweepResult sweep =
        sim::runSweep(all, sim::paperPrefetchers(),
                      bench::benchParams(bench::sweepScale()), config,
                      bench::sweepOptions(argc, argv));

    std::vector<std::string> headers = {"benchmark"};
    for (const auto &pf : sweep.prefetcher_names)
        headers.push_back(pf);
    sim::Table table(headers);

    std::vector<double> sums(sweep.prefetcher_names.size(), 0.0);
    for (const std::string &workload : all) {
        std::vector<std::string> row = {workload};
        const double base_mpki = sweep.at(workload, "none").l2Mpki();
        for (std::size_t p = 0; p < sweep.prefetcher_names.size();
             ++p) {
            const double mpki =
                sweep.at(workload, sweep.prefetcher_names[p])
                    .l2Mpki();
            sums[p] += mpki;
            row.push_back(sim::Table::num(mpki, 2));
        }
        if (base_mpki > 1.0)
            table.addRow(row);
    }
    std::vector<std::string> avg = {"AVERAGE(all)"};
    for (double sum : sums) {
        avg.push_back(sim::Table::num(
            sum / static_cast<double>(all.size()), 2));
    }
    table.addRow(avg);
    table.print(std::cout);

    const double none_avg = sums[0];
    const double ctx_avg = sums.back();
    std::size_t sms_index = 0;
    for (std::size_t p = 0; p < sweep.prefetcher_names.size(); ++p) {
        if (sweep.prefetcher_names[p] == "sms")
            sms_index = p;
    }
    std::cout << "\nAverage L2 MPKI reduction vs no-prefetch: "
              << sim::Table::num(none_avg / ctx_avg, 2)
              << "x (paper: ~4x); vs SMS: "
              << sim::Table::num(sums[sms_index] / ctx_avg, 2)
              << "x (paper: ~2x)\n";
    return 0;
}
