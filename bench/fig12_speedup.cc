/** @file Regenerates paper Figure 12: speedups over the no-prefetch
 *  baseline for every prefetcher across the full benchmark suite, with
 *  the SPEC-only and overall geometric means the paper quotes (SPEC
 *  avg 20%, overall avg 32%, context ~76% better than the best
 *  spatio-temporal prefetcher on average). */

#include <iostream>

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace csp;
    bench::banner("Speedup over no-prefetching baseline",
                  "paper Figure 12");
    SystemConfig config;
    const auto all = sim::allWorkloads();
    const sim::SweepResult sweep =
        sim::runSweep(all, sim::paperPrefetchers(),
                      bench::benchParams(bench::sweepScale()), config,
                      bench::sweepOptions(argc, argv));

    std::vector<std::string> headers = {"benchmark"};
    for (const auto &pf : sweep.prefetcher_names) {
        if (pf != "none")
            headers.push_back(pf);
    }
    sim::Table table(headers);
    for (const std::string &workload : all) {
        std::vector<std::string> row = {workload};
        for (const auto &pf : sweep.prefetcher_names) {
            if (pf == "none")
                continue;
            row.push_back(
                sim::Table::num(sweep.speedup(workload, pf), 3));
        }
        table.addRow(row);
    }

    const auto geo_over = [&](const std::vector<std::string> &group,
                              const std::string &pf) {
        std::vector<double> speedups;
        for (const auto &w : group)
            speedups.push_back(sweep.speedup(w, pf));
        return sim::geomean(speedups);
    };
    std::vector<std::string> spec_row = {"GEOMEAN(spec2006)"};
    std::vector<std::string> all_row = {"GEOMEAN(all)"};
    for (const auto &pf : sweep.prefetcher_names) {
        if (pf == "none")
            continue;
        spec_row.push_back(
            sim::Table::num(geo_over(sim::specWorkloads(), pf), 3));
        all_row.push_back(sim::Table::num(geo_over(all, pf), 3));
    }
    table.addRow(spec_row);
    table.addRow(all_row);
    table.print(std::cout);

    const double ctx = geo_over(all, "context");
    double best_spatial = 0.0;
    std::string best_name;
    for (const std::string pf :
         {"stride", "ghb-gdc", "ghb-pcdc", "sms"}) {
        const double g = geo_over(all, pf);
        if (g > best_spatial) {
            best_spatial = g;
            best_name = pf;
        }
    }
    std::cout << "\nContext speedup (all): "
              << sim::Table::num(100.0 * (ctx - 1.0), 1)
              << "% (paper: 32%);  SPEC2006: "
              << sim::Table::num(
                     100.0 * (geo_over(sim::specWorkloads(),
                                       "context") -
                              1.0),
                     1)
              << "% (paper: 20%)\nBest spatio-temporal (" << best_name
              << "): " << sim::Table::num(100.0 * (best_spatial - 1.0), 1)
              << "%;  context advantage: "
              << sim::Table::num(
                     100.0 * (ctx - best_spatial) /
                         (best_spatial - 1.0 + 1e-12),
                     0)
              << "% of its gain (paper: ~76%)\n";
    return 0;
}
