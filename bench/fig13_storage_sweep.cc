/** @file Regenerates paper Figure 13: overall speedup as a function of
 *  the context prefetcher's storage size. CST entries sweep from 256
 *  to 16K with the Reducer held at 8x the CST size (paper section
 *  7.4); the two series are the 10 workloads that benefit most
 *  ("Top10") and the whole set ("All"). */

#include <algorithm>
#include <iostream>
#include <map>

#include "bench_common.h"
#include "prefetch/context/context_prefetcher.h"
#include "sim/simulator.h"
#include "workloads/registry.h"

int
main()
{
    using namespace csp;
    bench::banner("Impact of CST size on overall speedup",
                  "paper Figure 13");
    // A representative subset keeps the sweep tractable; Top10 is
    // picked from the baseline run exactly like the paper does.
    const std::vector<std::string> workload_names = {
        "array",    "list",      "listsort",    "bst",
        "maptest",  "prim",      "graph500-list", "ssca2-list",
        "mcf",      "omnetpp",   "lbm",         "sphinx3",
        "h264ref",  "soplex"};
    const std::vector<unsigned> cst_sizes = {256, 512, 1024, 2048,
                                             4096, 8192, 16384};

    SystemConfig config;
    workloads::WorkloadParams params =
        bench::benchParams(bench::sweepScale());

    // Generate each trace once; baseline once.
    std::map<std::string, trace::TraceBuffer> traces;
    std::map<std::string, double> baseline_ipc;
    for (const auto &name : workload_names) {
        traces[name] = workloads::Registry::builtin()
                           .create(name)
                           ->generate(params);
        auto none = sim::makePrefetcher("none", config);
        sim::Simulator simulator(config);
        baseline_ipc[name] =
            simulator.run(traces[name], *none).ipc();
    }

    // Per size: speedup per workload.
    std::map<unsigned, std::map<std::string, double>> speedups;
    for (unsigned entries : cst_sizes) {
        SystemConfig sized = config;
        sized.context.cst_entries = entries;
        sized.context.reducer_entries = entries * 8;
        for (const auto &name : workload_names) {
            prefetch::ctx::ContextPrefetcher prefetcher(
                sized.context, sized.seed);
            sim::Simulator simulator(sized);
            const double ipc =
                simulator.run(traces[name], prefetcher).ipc();
            speedups[entries][name] = ipc / baseline_ipc[name];
        }
    }

    // Top10 = the 10 workloads with the best speedup at the paper's
    // default size (2048 entries).
    std::vector<std::string> by_benefit = workload_names;
    std::sort(by_benefit.begin(), by_benefit.end(),
              [&](const std::string &a, const std::string &b) {
                  return speedups[2048][a] > speedups[2048][b];
              });
    by_benefit.resize(10);

    sim::Table table(
        {"CST entries", "storage(kB)", "Top10 speedup", "All speedup"});
    for (unsigned entries : cst_sizes) {
        SystemConfig sized = config;
        sized.context.cst_entries = entries;
        sized.context.reducer_entries = entries * 8;
        std::vector<double> top10;
        std::vector<double> all;
        for (const auto &name : workload_names) {
            all.push_back(speedups[entries][name]);
            if (std::find(by_benefit.begin(), by_benefit.end(),
                          name) != by_benefit.end())
                top10.push_back(speedups[entries][name]);
        }
        table.addRow({std::to_string(entries),
                      sim::Table::num(
                          static_cast<double>(
                              sized.context.storageBytes()) /
                              1024.0,
                          1),
                      sim::Table::num(sim::geomean(top10), 3),
                      sim::Table::num(sim::geomean(all), 3)});
    }
    table.print(std::cout);
    std::cout << "\nExpected shape (paper section 7.4): speedup rises"
                 " with size, then flattens or dips — larger tables\n"
                 "are not automatically better for a learning"
                 " prefetcher.\n";
    return 0;
}
