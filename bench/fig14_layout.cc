/** @file Regenerates paper Figure 14: cycles-per-instruction of naive
 *  (pointer-linked) vs spatially optimised (CSR) implementations of
 *  SSCA2 betweenness centrality and Graph500 BFS, under every
 *  prefetcher — the data-layout-agnostic-programming experiment. */

#include <iostream>

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace csp;
    bench::banner("Naive (linked) vs spatially optimised layouts: CPI",
                  "paper Figure 14");
    SystemConfig config;
    const std::vector<std::pair<std::string, std::string>> cases = {
        {"ssca2-csr", "ssca2-list"},
        {"graph500", "graph500-list"},
    };
    std::vector<std::string> all_names;
    for (const auto &[csr, list] : cases) {
        all_names.push_back(csr);
        all_names.push_back(list);
    }
    const sim::SweepResult sweep = sim::runSweep(
        all_names, sim::paperPrefetchers(),
        bench::benchParams(bench::focusedScale()), config,
        bench::sweepOptions(argc, argv));

    sim::Table table({"prefetcher", "ssca2 CSR CPI", "ssca2 list CPI",
                      "graph500 CSR CPI", "graph500 list CPI"});
    for (const auto &pf : sweep.prefetcher_names) {
        table.addRow({pf,
                      sim::Table::num(sweep.at("ssca2-csr", pf).cpi(),
                                      2),
                      sim::Table::num(
                          sweep.at("ssca2-list", pf).cpi(), 2),
                      sim::Table::num(sweep.at("graph500", pf).cpi(),
                                      2),
                      sim::Table::num(
                          sweep.at("graph500-list", pf).cpi(), 2)});
    }
    table.print(std::cout);

    for (const auto &[csr, list] : cases) {
        const double naive_gap_none =
            sweep.at(list, "none").cpi() / sweep.at(csr, "none").cpi();
        const double naive_gap_ctx =
            sweep.at(list, "context").cpi() /
            sweep.at(csr, "context").cpi();
        std::cout << "\n" << csr << " vs " << list
                  << ": naive-layout CPI penalty "
                  << sim::Table::num(naive_gap_none, 2)
                  << "x without prefetching, "
                  << sim::Table::num(naive_gap_ctx, 2)
                  << "x with the context prefetcher\n";
    }
    std::cout << "\nExpected shape (paper section 7.5): the context"
                 " prefetcher gives the linked layouts performance\n"
                 "comparable to spatially optimised code, while"
                 " spatio-temporal prefetchers favour the CSR layout.\n";
    return 0;
}
