/** @file Google-benchmark microbenchmarks of per-access prefetcher
 *  overhead: how much host time each prefetcher's observe() costs on a
 *  mixed synthetic stream, plus trace-generation throughput per
 *  workload (insts/sec, accesses/sec) — the other half of a sweep
 *  cell's cost. Not a paper figure — engineering data for simulator
 *  users sizing long sweeps. */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <unistd.h>

#include "core/profiling.h"
#include "core/rng.h"
#include "obs/learning.h"
#include "obs/mem_recorder.h"
#include "obs/run_observer.h"
#include "obs/trace_events.h"
#include "sim/experiment.h"
#include "trace/hw_state.h"
#include "trace/trace_io.h"
#include "workloads/registry.h"

namespace {

using namespace csp;

/** Pre-baked mixed access stream (strided + pointer-ish + random). */
const std::vector<prefetch::AccessInfo> &
stream(const trace::ContextSnapshot &ctx)
{
    static std::vector<prefetch::AccessInfo> accesses = [&] {
        std::vector<prefetch::AccessInfo> out;
        Rng rng(7);
        Addr strided = 0x100000;
        out.reserve(8192);
        for (int i = 0; i < 8192; ++i) {
            prefetch::AccessInfo info;
            const int kind = i % 3;
            if (kind == 0) {
                strided += 64;
                info.vaddr = strided;
                info.pc = 0x400;
            } else if (kind == 1) {
                info.vaddr = 0x900000 + rng.below(4096) * 64;
                info.pc = 0x404;
            } else {
                info.vaddr = 0x4000000 + rng.below(1 << 22);
                info.pc = 0x408;
            }
            info.line_addr = alignDown(info.vaddr, 64);
            info.seq = static_cast<AccessSeq>(i);
            info.l1_miss = true;
            info.free_l1_mshrs = 4;
            out.push_back(info);
        }
        return out;
    }();
    for (auto &info : accesses)
        info.context = &ctx;
    return accesses;
}

void
runPrefetcher(benchmark::State &state, const std::string &name)
{
    SystemConfig config;
    auto prefetcher = sim::makePrefetcher(name, config);
    trace::ContextSnapshot ctx;
    ctx.set(trace::Attr::IP, 0x400);
    const auto &accesses = stream(ctx);
    std::vector<prefetch::PrefetchRequest> out;
    std::size_t i = 0;
    for (auto _ : state) {
        out.clear();
        prefetcher->observe(accesses[i % accesses.size()], out);
        benchmark::DoNotOptimize(out.data());
        ++i;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(i));
}

void BM_Stride(benchmark::State &s) { runPrefetcher(s, "stride"); }
void BM_GhbGdc(benchmark::State &s) { runPrefetcher(s, "ghb-gdc"); }
void BM_GhbPcdc(benchmark::State &s) { runPrefetcher(s, "ghb-pcdc"); }
void BM_Sms(benchmark::State &s) { runPrefetcher(s, "sms"); }
void BM_Markov(benchmark::State &s) { runPrefetcher(s, "markov"); }
void BM_Context(benchmark::State &s) { runPrefetcher(s, "context"); }

BENCHMARK(BM_Stride);
BENCHMARK(BM_GhbGdc);
BENCHMARK(BM_GhbPcdc);
BENCHMARK(BM_Sms);
BENCHMARK(BM_Markov);
BENCHMARK(BM_Context);

/** Trace-generation throughput for one workload: how many simulated
 *  instructions (and memory accesses) per host second the generator
 *  produces. Surfaces trace-gen hotspots next to the prefetcher op
 *  costs above — runSweep's phase 1 is bound by exactly this rate. */
void
runTraceGen(benchmark::State &state, const std::string &name)
{
    const auto &registry = workloads::Registry::builtin();
    workloads::WorkloadParams params;
    params.scale = 50000;
    params.seed = 1;
    std::uint64_t insts = 0;
    std::uint64_t accesses = 0;
    for (auto _ : state) {
        const auto workload = registry.create(name);
        const trace::TraceBuffer trace = workload->generate(params);
        benchmark::DoNotOptimize(trace.size());
        insts += trace.instructions();
        accesses += trace.memAccesses();
    }
    state.counters["insts/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
    state.counters["accesses/s"] = benchmark::Counter(
        static_cast<double>(accesses), benchmark::Counter::kIsRate);
}

void BM_TraceGen_Array(benchmark::State &s) { runTraceGen(s, "array"); }
void BM_TraceGen_List(benchmark::State &s) { runTraceGen(s, "list"); }
void BM_TraceGen_Mcf(benchmark::State &s) { runTraceGen(s, "mcf"); }
void
BM_TraceGen_Graph500List(benchmark::State &s)
{
    runTraceGen(s, "graph500-list");
}
void
BM_TraceGen_SuffixArray(benchmark::State &s)
{
    runTraceGen(s, "suffixArray");
}

BENCHMARK(BM_TraceGen_Array);
BENCHMARK(BM_TraceGen_List);
BENCHMARK(BM_TraceGen_Mcf);
BENCHMARK(BM_TraceGen_Graph500List);
BENCHMARK(BM_TraceGen_SuffixArray);

/** Full-trace replay throughput through the simulator (runSweep's
 *  phase 2), plus the packed encoding's bytes/record and total
 *  resident size for the replayed trace. `bytes_per_record` is the
 *  gauge behind the >= 2x compression acceptance bar (the old AoS
 *  record was 56 bytes). */
void
runReplay(benchmark::State &state, const std::string &workload_name,
          const std::string &prefetcher_name)
{
    workloads::WorkloadParams params;
    params.scale = 100000;
    params.seed = 1;
    const trace::TraceBuffer trace = workloads::Registry::builtin()
                                         .create(workload_name)
                                         ->generate(params);
    SystemConfig config;
    std::uint64_t insts = 0;
    for (auto _ : state) {
        auto prefetcher =
            sim::makePrefetcher(prefetcher_name, config);
        sim::Simulator simulator(config);
        const sim::RunStats stats =
            simulator.run(trace, *prefetcher);
        benchmark::DoNotOptimize(stats.cycles);
        insts += stats.instructions;
    }
    state.counters["insts/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
    state.counters["bytes_per_record"] =
        benchmark::Counter(trace.bytesPerRecord());
    state.counters["trace_bytes"] = benchmark::Counter(
        static_cast<double>(trace.sizeBytes()));
}

void
BM_Replay_Mcf_None(benchmark::State &s)
{
    runReplay(s, "mcf", "none");
}
void
BM_Replay_Mcf_Context(benchmark::State &s)
{
    runReplay(s, "mcf", "context");
}
void
BM_Replay_List_None(benchmark::State &s)
{
    runReplay(s, "list", "none");
}
void
BM_Replay_List_Context(benchmark::State &s)
{
    runReplay(s, "list", "context");
}
void
BM_Replay_Libquantum_None(benchmark::State &s)
{
    runReplay(s, "libquantum", "none");
}
void
BM_Replay_Libquantum_Stride(benchmark::State &s)
{
    runReplay(s, "libquantum", "stride");
}

BENCHMARK(BM_Replay_Mcf_None);
BENCHMARK(BM_Replay_Mcf_Context);
BENCHMARK(BM_Replay_List_None);
BENCHMARK(BM_Replay_List_Context);
BENCHMARK(BM_Replay_Libquantum_None);
BENCHMARK(BM_Replay_Libquantum_Stride);

/** Raw decode throughput of the packed trace encoding, simulator
 *  excluded: TraceCursor over the in-memory buffer vs
 *  StreamingTraceSource over an mmap'd trace file (zero-copy decode
 *  plus windowed MADV_DONTNEED releases). bench_smoke.py floors the
 *  packed rate and gauges the mmap rate next to it, so neither the
 *  shared decoder nor the streaming wrapper can quietly regress. */
void
runDecode(benchmark::State &state, bool use_mmap)
{
    workloads::WorkloadParams params;
    params.scale = 100000;
    params.seed = 1;
    const trace::TraceBuffer buffer = workloads::Registry::builtin()
                                          .create("mcf")
                                          ->generate(params);
    trace::MappedTrace mapped;
    std::string path;
    if (use_mmap) {
        path = "/tmp/csp_bench_decode_" + std::to_string(getpid()) +
               ".csptrace";
        if (!trace::saveTraceFile(buffer, path) ||
            mapped.open(path) != trace::TraceIoStatus::Ok) {
            std::remove(path.c_str());
            state.SkipWithError("cannot save/map the decode trace");
            return;
        }
    }
    std::uint64_t insts = 0;
    std::uint64_t records = 0;
    for (auto _ : state) {
        if (use_mmap) {
            trace::StreamingTraceSource source(mapped);
            while (const trace::TraceRecord *rec = source.next()) {
                benchmark::DoNotOptimize(rec->vaddr);
                ++records;
            }
        } else {
            trace::TraceCursor cursor(buffer);
            while (const trace::TraceRecord *rec = cursor.next()) {
                benchmark::DoNotOptimize(rec->vaddr);
                ++records;
            }
        }
        insts += buffer.instructions();
    }
    state.counters["insts/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
    state.counters["records/s"] = benchmark::Counter(
        static_cast<double>(records), benchmark::Counter::kIsRate);
    if (!path.empty())
        std::remove(path.c_str());
}

void BM_Decode_Packed(benchmark::State &s) { runDecode(s, false); }
void BM_Decode_Mmap(benchmark::State &s) { runDecode(s, true); }

BENCHMARK(BM_Decode_Packed);
BENCHMARK(BM_Decode_Mmap);

/** Streaming replay throughput: the same cells as the BM_Replay_*
 *  gauges above, but fed from MappedTrace + StreamingTraceSource
 *  instead of the in-memory TraceBuffer — runSweep's replay path when
 *  a cell misses the result cache but its trace sits in traces/cache.
 *  The trace is generated and saved once outside the timed loop; every
 *  iteration replays straight out of the mapping. */
void
runMmapReplay(benchmark::State &state,
              const std::string &workload_name,
              const std::string &prefetcher_name)
{
    workloads::WorkloadParams params;
    params.scale = 100000;
    params.seed = 1;
    const std::string path = "/tmp/csp_bench_mmap_" + workload_name +
                             "_" + std::to_string(getpid()) +
                             ".csptrace";
    {
        const trace::TraceBuffer buffer =
            workloads::Registry::builtin()
                .create(workload_name)
                ->generate(params);
        if (!trace::saveTraceFile(buffer, path)) {
            std::remove(path.c_str());
            state.SkipWithError("cannot save the replay trace");
            return;
        }
        // The buffer dies here; the timed loop sees only the mapping.
    }
    trace::MappedTrace mapped;
    if (mapped.open(path) != trace::TraceIoStatus::Ok) {
        std::remove(path.c_str());
        state.SkipWithError("cannot map the replay trace");
        return;
    }
    SystemConfig config;
    std::uint64_t insts = 0;
    for (auto _ : state) {
        auto prefetcher =
            sim::makePrefetcher(prefetcher_name, config);
        sim::Simulator simulator(config);
        const sim::RunStats stats =
            simulator.run(mapped, *prefetcher);
        benchmark::DoNotOptimize(stats.cycles);
        insts += stats.instructions;
    }
    state.counters["insts/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
    state.counters["trace_bytes"] = benchmark::Counter(
        static_cast<double>(mapped.payloadBytes()));
    mapped.close();
    std::remove(path.c_str());
}

void
BM_ReplayMmap_Mcf_Context(benchmark::State &s)
{
    runMmapReplay(s, "mcf", "context");
}
void
BM_ReplayMmap_List_None(benchmark::State &s)
{
    runMmapReplay(s, "list", "none");
}

BENCHMARK(BM_ReplayMmap_Mcf_Context);
BENCHMARK(BM_ReplayMmap_List_None);

/** Lifecycle-tracing overhead on replay, three configurations over the
 *  same trace and prefetcher:
 *   - Control:  no observer — the replay loop's unobserved
 *               instantiation, codegen identical to pre-tracing.
 *   - NullSink: an observer with every sink null — the observed
 *               instantiation with all runtime guards false. This is
 *               the "compiled in but disabled" cost the disabled-rate bench
 *               gate compares against Control.
 *   - Enabled:  full tracker + Perfetto writer into a string sink,
 *               1-in-64 sampling — the real cost of tracing a run.
 */
enum class TraceObsMode
{
    Control,
    NullSink,
    Enabled,
};

void
runTracedReplay(benchmark::State &state, TraceObsMode mode)
{
    workloads::WorkloadParams params;
    params.scale = 100000;
    params.seed = 1;
    const trace::TraceBuffer trace =
        workloads::Registry::builtin().create("mcf")->generate(params);
    SystemConfig config;
    std::uint64_t insts = 0;
    for (auto _ : state) {
        auto prefetcher = sim::makePrefetcher("context", config);
        sim::Simulator simulator(config);
        std::ostringstream sink;
        std::unique_ptr<obs::TraceEventWriter> events;
        std::unique_ptr<obs::PrefetchTracker> tracker;
        std::unique_ptr<obs::RlEventTap> rl_tap;
        obs::RunObserver observer;
        if (mode == TraceObsMode::Enabled) {
            events = std::make_unique<obs::TraceEventWriter>(sink);
            tracker = std::make_unique<obs::PrefetchTracker>(
                events.get(), /*sample_every=*/64);
            rl_tap = std::make_unique<obs::RlEventTap>(
                events.get(), /*sample_every=*/64);
            observer.tracker = tracker.get();
            observer.rl = rl_tap.get();
        }
        if (mode != TraceObsMode::Control)
            simulator.setObserver(&observer);
        const sim::RunStats stats = simulator.run(trace, *prefetcher);
        benchmark::DoNotOptimize(stats.cycles);
        insts += stats.instructions;
    }
    state.counters["insts/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}

void
BM_TraceObs_Control(benchmark::State &s)
{
    runTracedReplay(s, TraceObsMode::Control);
}
void
BM_TraceObs_NullSink(benchmark::State &s)
{
    runTracedReplay(s, TraceObsMode::NullSink);
}
void
BM_TraceObs_Enabled(benchmark::State &s)
{
    runTracedReplay(s, TraceObsMode::Enabled);
}

BENCHMARK(BM_TraceObs_Control);
BENCHMARK(BM_TraceObs_NullSink);
BENCHMARK(BM_TraceObs_Enabled);

/** Self-profiling overhead on replay. Disabled = no profiler attached
 *  (the unprofiled template instantiation — this is what every normal
 *  run executes, and what the disabled-rate bench gate compares against
 *  BM_TraceObs_Control). Enabled = a Profiler attached, timing every
 *  phase with steady_clock reads. */
void
runProfiledReplay(benchmark::State &state, bool profiled)
{
    workloads::WorkloadParams params;
    params.scale = 100000;
    params.seed = 1;
    const trace::TraceBuffer trace =
        workloads::Registry::builtin().create("mcf")->generate(params);
    SystemConfig config;
    std::uint64_t insts = 0;
    for (auto _ : state) {
        auto prefetcher = sim::makePrefetcher("context", config);
        sim::Simulator simulator(config);
        prof::Profiler profiler;
        if (profiled)
            simulator.setProfiler(&profiler);
        const sim::RunStats stats = simulator.run(trace, *prefetcher);
        benchmark::DoNotOptimize(stats.cycles);
        benchmark::DoNotOptimize(
            profiler.ns(prof::Phase::Replay));
        insts += stats.instructions;
    }
    state.counters["insts/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}

void
BM_Profile_Disabled(benchmark::State &s)
{
    runProfiledReplay(s, false);
}
void
BM_Profile_Enabled(benchmark::State &s)
{
    runProfiledReplay(s, true);
}

BENCHMARK(BM_Profile_Disabled);
BENCHMARK(BM_Profile_Enabled);

/** Learning-observer overhead on replay, mirroring the TraceObs
 *  trio over the same mcf/context cell:
 *   - NullTap:  observer attached but observer.learn == nullptr — the
 *               observed instantiation with every learning hook's
 *               null guard false. This is the "hooks compiled in,
 *               learning observer off" cost the bench gate compares
 *               against BM_TraceObs_Control.
 *   - Recorder: full LearningRecorder with periodic snapshots — the
 *               real cost of recording learning dynamics. */
void
runLearnObsReplay(benchmark::State &state, bool recording)
{
    workloads::WorkloadParams params;
    params.scale = 100000;
    params.seed = 1;
    const trace::TraceBuffer trace =
        workloads::Registry::builtin().create("mcf")->generate(params);
    SystemConfig config;
    std::uint64_t insts = 0;
    for (auto _ : state) {
        auto prefetcher = sim::makePrefetcher("context", config);
        sim::Simulator simulator(config);
        std::unique_ptr<obs::LearningRecorder> learner;
        obs::RunObserver observer;
        if (recording) {
            obs::LearningRecorder::Options opts;
            opts.snapshot_every = 20000;
            learner = std::make_unique<obs::LearningRecorder>(opts);
            observer.learn = learner.get();
        }
        simulator.setObserver(&observer);
        const sim::RunStats stats = simulator.run(trace, *prefetcher);
        benchmark::DoNotOptimize(stats.cycles);
        insts += stats.instructions;
    }
    state.counters["insts/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}

void
BM_LearnObs_NullTap(benchmark::State &s)
{
    runLearnObsReplay(s, false);
}
void
BM_LearnObs_Recorder(benchmark::State &s)
{
    runLearnObsReplay(s, true);
}

BENCHMARK(BM_LearnObs_NullTap);
BENCHMARK(BM_LearnObs_Recorder);

/** Memory-observer overhead on replay, the LearnObs pair's analogue
 *  for the hierarchy tap:
 *   - NullTap:  observer attached but observer.mem == nullptr — the
 *               observed instantiation with the hierarchy's null guard
 *               false on every demand access. This is the "hooks
 *               compiled in, mem observer off" cost the bench gate
 *               compares against BM_TraceObs_Control.
 *   - Recorder: full MemRecorder — every demand access fed through the
 *               infinite tag set, the Fenwick stack distance and the
 *               demand-only shadow cache, plus per-set fill telemetry.
 *               This is the real price of the 3C+pollution taxonomy. */
void
runMemObsReplay(benchmark::State &state, bool recording)
{
    workloads::WorkloadParams params;
    params.scale = 100000;
    params.seed = 1;
    const trace::TraceBuffer trace =
        workloads::Registry::builtin().create("mcf")->generate(params);
    SystemConfig config;
    std::uint64_t insts = 0;
    for (auto _ : state) {
        auto prefetcher = sim::makePrefetcher("context", config);
        sim::Simulator simulator(config);
        std::unique_ptr<obs::MemRecorder> recorder;
        obs::RunObserver observer;
        if (recording) {
            obs::MemRecorder::Options opts;
            opts.queue_sample_every = 20000;
            recorder = std::make_unique<obs::MemRecorder>(
                config.memory, opts, nullptr);
            observer.mem = recorder.get();
        }
        simulator.setObserver(&observer);
        const sim::RunStats stats = simulator.run(trace, *prefetcher);
        benchmark::DoNotOptimize(stats.cycles);
        insts += stats.instructions;
    }
    state.counters["insts/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}

void
BM_MemObs_NullTap(benchmark::State &s)
{
    runMemObsReplay(s, false);
}
void
BM_MemObs_Recorder(benchmark::State &s)
{
    runMemObsReplay(s, true);
}

BENCHMARK(BM_MemObs_NullTap);
BENCHMARK(BM_MemObs_Recorder);

} // namespace

BENCHMARK_MAIN();
