/** @file Validates the paper's phase-length claim (section 6: "the
 *  impact of using longer phases is negligible"): context-prefetcher
 *  speedups measured at 1x / 2x / 4x trace length should agree to
 *  within a few percent once past the training ramp. */

#include <iostream>

#include "bench_common.h"
#include "sim/simulator.h"
#include "workloads/registry.h"

int
main()
{
    using namespace csp;
    bench::banner("Speedup stability across trace lengths",
                  "paper section 6 phase-length validation");
    const std::vector<std::string> workload_names = {
        "list", "mcf", "lbm", "graph500-list", "maptest"};
    const std::vector<unsigned> factors = {1, 2, 4};
    SystemConfig config;

    std::vector<std::string> headers = {"benchmark"};
    for (unsigned f : factors)
        headers.push_back(std::to_string(f) + "x speedup");
    headers.push_back("max drift");
    sim::Table table(headers);

    for (const std::string &name : workload_names) {
        std::vector<std::string> row = {name};
        double lo = 1e9;
        double hi = 0.0;
        for (unsigned f : factors) {
            workloads::WorkloadParams params =
                bench::benchParams(bench::sweepScale() / 2 * f);
            const trace::TraceBuffer trace =
                workloads::Registry::builtin().create(name)->generate(
                    params);
            auto none = sim::makePrefetcher("none", config);
            auto context = sim::makePrefetcher("context", config);
            sim::Simulator sim_a(config);
            sim::Simulator sim_b(config);
            const double speedup =
                sim_b.run(trace, *context).ipc() /
                sim_a.run(trace, *none).ipc();
            lo = std::min(lo, speedup);
            hi = std::max(hi, speedup);
            row.push_back(sim::Table::num(speedup, 3));
        }
        row.push_back(
            sim::Table::num(100.0 * (hi - lo) / lo, 1) + "%");
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\nDrift mixes true phase effects with learning-ramp"
                 " amortisation; longer traces mildly favour the\n"
                 "learning prefetcher, which is why the drift is"
                 " one-sided.\n";
    return 0;
}
