/** @file Validates the paper's target-prefetch-distance analysis
 *  (section 4.3): distance = L1 miss penalty x IPC x Prob(mem op),
 *  computed from each workload's no-prefetch baseline run. The paper
 *  reports distances between ~10 and ~90 accesses with an average of
 *  ~30 — the value the reward window (18-50, centre 30) is built
 *  around. */

#include <iostream>

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace csp;
    bench::banner("Target prefetch distance per workload",
                  "paper section 4.3 formula");
    SystemConfig config;
    const auto workload_names = sim::allWorkloads();
    const sim::SweepResult sweep =
        sim::runSweep(workload_names, {"none"},
                      bench::benchParams(bench::sweepScale()), config,
                      bench::sweepOptions(argc, argv));

    sim::Table table({"benchmark", "IPC", "P(mem)", "L2-missrate",
                      "L1-penalty", "distance"});
    double sum = 0.0;
    double lo = 1e9;
    double hi = 0.0;
    for (const std::string &name : workload_names) {
        const sim::RunStats &stats = sweep.at(name, "none");
        const double penalty =
            config.memory.l1MissPenalty(stats.l2MissRate());
        const double distance =
            stats.targetPrefetchDistance(config.memory);
        sum += distance;
        lo = std::min(lo, distance);
        hi = std::max(hi, distance);
        table.addRow({name, sim::Table::num(stats.ipc(), 3),
                      sim::Table::num(stats.memFraction(), 2),
                      sim::Table::num(stats.l2MissRate(), 2),
                      sim::Table::num(penalty, 0),
                      sim::Table::num(distance, 1)});
    }
    table.print(std::cout);
    std::cout << "\nRange: " << sim::Table::num(lo, 1) << " - "
              << sim::Table::num(hi, 1) << " accesses; mean "
              << sim::Table::num(
                     sum / static_cast<double>(workload_names.size()),
                     1)
              << " (paper: ~10-90, average ~30; the reward window is"
                 " centred accordingly)\n";
    return 0;
}
