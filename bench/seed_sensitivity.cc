/** @file Seed sensitivity of the headline comparison: the Figure 12
 *  ordering must not be an artifact of one workload seed. Runs a
 *  representative subset under three seeds and reports per-seed
 *  context and SMS speedups plus the spread. */

#include <iostream>

#include "bench_common.h"
#include "sim/simulator.h"
#include "workloads/registry.h"

int
main()
{
    using namespace csp;
    bench::banner("Seed sensitivity of context vs SMS speedups",
                  "robustness check for Figure 12");
    const std::vector<std::string> workload_names = {
        "list", "listsort", "mcf", "omnetpp", "graph500-list",
        "lbm",  "astar"};
    const std::vector<std::uint64_t> seeds = {1, 2, 3};

    SystemConfig config;
    sim::Table table({"benchmark", "prefetcher", "seed1", "seed2",
                      "seed3", "spread"});
    for (const std::string &name : workload_names) {
        for (const std::string pf : {"context", "sms"}) {
            std::vector<std::string> row = {name, pf};
            double lo = 1e9;
            double hi = 0.0;
            for (const std::uint64_t seed : seeds) {
                workloads::WorkloadParams params =
                    bench::benchParams(bench::sweepScale());
                params.seed = seed;
                SystemConfig seeded = config;
                seeded.seed = seed;
                const trace::TraceBuffer trace =
                    workloads::Registry::builtin()
                        .create(name)
                        ->generate(params);
                auto none = sim::makePrefetcher("none", seeded);
                auto prefetcher = sim::makePrefetcher(pf, seeded);
                sim::Simulator sim_a(seeded);
                sim::Simulator sim_b(seeded);
                const double speedup =
                    sim_b.run(trace, *prefetcher).ipc() /
                    sim_a.run(trace, *none).ipc();
                lo = std::min(lo, speedup);
                hi = std::max(hi, speedup);
                row.push_back(sim::Table::num(speedup, 3));
            }
            row.push_back(
                sim::Table::num(100.0 * (hi - lo) / lo, 1) + "%");
            table.addRow(row);
        }
    }
    table.print(std::cout);
    std::cout << "\nThe context-vs-SMS ordering should hold for every"
                 " seed on every benchmark above.\n";
    return 0;
}
