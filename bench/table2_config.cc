/** @file Regenerates paper Table 2: simulator parameters. */

#include <iostream>

#include "bench_common.h"
#include "core/config.h"

int
main()
{
    csp::bench::banner("Simulator parameters", "paper Table 2");
    const csp::SystemConfig config;
    std::cout << config.describe() << '\n';
    return 0;
}
