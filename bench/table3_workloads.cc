/** @file Regenerates paper Table 3: workloads and benchmarks used. */

#include <iostream>

#include "bench_common.h"
#include "workloads/registry.h"

int
main()
{
    csp::bench::banner("Workloads and benchmarks used",
                       "paper Table 3");
    const auto &registry = csp::workloads::Registry::builtin();
    csp::sim::Table table({"suite", "workloads"});
    for (const std::string suite :
         {"spec2006", "pbbs", "graph500", "hpcs", "ubench"}) {
        std::string row;
        for (const std::string &name : registry.namesInSuite(suite)) {
            if (!row.empty())
                row += ", ";
            row += name;
        }
        table.addRow({suite, row});
    }
    table.print(std::cout);
    return 0;
}
