file(REMOVE_RECURSE
  "CMakeFiles/fig01_semantic_pattern.dir/fig01_semantic_pattern.cc.o"
  "CMakeFiles/fig01_semantic_pattern.dir/fig01_semantic_pattern.cc.o.d"
  "fig01_semantic_pattern"
  "fig01_semantic_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_semantic_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
