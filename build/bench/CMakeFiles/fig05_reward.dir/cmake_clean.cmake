file(REMOVE_RECURSE
  "CMakeFiles/fig05_reward.dir/fig05_reward.cc.o"
  "CMakeFiles/fig05_reward.dir/fig05_reward.cc.o.d"
  "fig05_reward"
  "fig05_reward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_reward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
