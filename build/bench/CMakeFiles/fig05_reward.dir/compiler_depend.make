# Empty compiler generated dependencies file for fig05_reward.
# This may be replaced when dependencies are built.
