file(REMOVE_RECURSE
  "CMakeFiles/fig08_hit_depth_cdf.dir/fig08_hit_depth_cdf.cc.o"
  "CMakeFiles/fig08_hit_depth_cdf.dir/fig08_hit_depth_cdf.cc.o.d"
  "fig08_hit_depth_cdf"
  "fig08_hit_depth_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_hit_depth_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
