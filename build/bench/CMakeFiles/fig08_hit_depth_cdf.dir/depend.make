# Empty dependencies file for fig08_hit_depth_cdf.
# This may be replaced when dependencies are built.
