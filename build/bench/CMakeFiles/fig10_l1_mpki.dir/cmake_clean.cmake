file(REMOVE_RECURSE
  "CMakeFiles/fig10_l1_mpki.dir/fig10_l1_mpki.cc.o"
  "CMakeFiles/fig10_l1_mpki.dir/fig10_l1_mpki.cc.o.d"
  "fig10_l1_mpki"
  "fig10_l1_mpki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_l1_mpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
