# Empty dependencies file for fig10_l1_mpki.
# This may be replaced when dependencies are built.
