file(REMOVE_RECURSE
  "CMakeFiles/fig11_l2_mpki.dir/fig11_l2_mpki.cc.o"
  "CMakeFiles/fig11_l2_mpki.dir/fig11_l2_mpki.cc.o.d"
  "fig11_l2_mpki"
  "fig11_l2_mpki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_l2_mpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
