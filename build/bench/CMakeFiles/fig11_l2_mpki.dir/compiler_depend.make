# Empty compiler generated dependencies file for fig11_l2_mpki.
# This may be replaced when dependencies are built.
