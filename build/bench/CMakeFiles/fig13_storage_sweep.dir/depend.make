# Empty dependencies file for fig13_storage_sweep.
# This may be replaced when dependencies are built.
