file(REMOVE_RECURSE
  "CMakeFiles/fig14_layout.dir/fig14_layout.cc.o"
  "CMakeFiles/fig14_layout.dir/fig14_layout.cc.o.d"
  "fig14_layout"
  "fig14_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
