# Empty dependencies file for fig14_layout.
# This may be replaced when dependencies are built.
