
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_prefetcher_ops.cc" "bench/CMakeFiles/micro_prefetcher_ops.dir/micro_prefetcher_ops.cc.o" "gcc" "bench/CMakeFiles/micro_prefetcher_ops.dir/micro_prefetcher_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/csp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csp_prefetch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csp_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csp_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
