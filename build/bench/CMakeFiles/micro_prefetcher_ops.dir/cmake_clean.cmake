file(REMOVE_RECURSE
  "CMakeFiles/micro_prefetcher_ops.dir/micro_prefetcher_ops.cc.o"
  "CMakeFiles/micro_prefetcher_ops.dir/micro_prefetcher_ops.cc.o.d"
  "micro_prefetcher_ops"
  "micro_prefetcher_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_prefetcher_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
