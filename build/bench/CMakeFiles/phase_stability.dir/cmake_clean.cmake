file(REMOVE_RECURSE
  "CMakeFiles/phase_stability.dir/phase_stability.cc.o"
  "CMakeFiles/phase_stability.dir/phase_stability.cc.o.d"
  "phase_stability"
  "phase_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
