# Empty compiler generated dependencies file for phase_stability.
# This may be replaced when dependencies are built.
