file(REMOVE_RECURSE
  "CMakeFiles/prefetch_distance.dir/prefetch_distance.cc.o"
  "CMakeFiles/prefetch_distance.dir/prefetch_distance.cc.o.d"
  "prefetch_distance"
  "prefetch_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefetch_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
