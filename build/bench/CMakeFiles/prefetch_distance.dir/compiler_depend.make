# Empty compiler generated dependencies file for prefetch_distance.
# This may be replaced when dependencies are built.
