file(REMOVE_RECURSE
  "CMakeFiles/learning_curve.dir/learning_curve.cpp.o"
  "CMakeFiles/learning_curve.dir/learning_curve.cpp.o.d"
  "learning_curve"
  "learning_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learning_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
