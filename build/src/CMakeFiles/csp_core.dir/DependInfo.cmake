
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config.cc" "src/CMakeFiles/csp_core.dir/core/config.cc.o" "gcc" "src/CMakeFiles/csp_core.dir/core/config.cc.o.d"
  "/root/repo/src/core/hashing.cc" "src/CMakeFiles/csp_core.dir/core/hashing.cc.o" "gcc" "src/CMakeFiles/csp_core.dir/core/hashing.cc.o.d"
  "/root/repo/src/core/logging.cc" "src/CMakeFiles/csp_core.dir/core/logging.cc.o" "gcc" "src/CMakeFiles/csp_core.dir/core/logging.cc.o.d"
  "/root/repo/src/core/stats.cc" "src/CMakeFiles/csp_core.dir/core/stats.cc.o" "gcc" "src/CMakeFiles/csp_core.dir/core/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
