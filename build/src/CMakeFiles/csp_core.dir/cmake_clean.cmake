file(REMOVE_RECURSE
  "CMakeFiles/csp_core.dir/core/config.cc.o"
  "CMakeFiles/csp_core.dir/core/config.cc.o.d"
  "CMakeFiles/csp_core.dir/core/hashing.cc.o"
  "CMakeFiles/csp_core.dir/core/hashing.cc.o.d"
  "CMakeFiles/csp_core.dir/core/logging.cc.o"
  "CMakeFiles/csp_core.dir/core/logging.cc.o.d"
  "CMakeFiles/csp_core.dir/core/stats.cc.o"
  "CMakeFiles/csp_core.dir/core/stats.cc.o.d"
  "libcsp_core.a"
  "libcsp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
