file(REMOVE_RECURSE
  "libcsp_core.a"
)
