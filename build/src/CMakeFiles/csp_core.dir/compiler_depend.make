# Empty compiler generated dependencies file for csp_core.
# This may be replaced when dependencies are built.
