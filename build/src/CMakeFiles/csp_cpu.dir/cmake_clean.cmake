file(REMOVE_RECURSE
  "CMakeFiles/csp_cpu.dir/cpu/core_model.cc.o"
  "CMakeFiles/csp_cpu.dir/cpu/core_model.cc.o.d"
  "libcsp_cpu.a"
  "libcsp_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csp_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
