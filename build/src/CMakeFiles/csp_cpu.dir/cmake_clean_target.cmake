file(REMOVE_RECURSE
  "libcsp_cpu.a"
)
