# Empty dependencies file for csp_cpu.
# This may be replaced when dependencies are built.
