file(REMOVE_RECURSE
  "CMakeFiles/csp_mem.dir/mem/cache.cc.o"
  "CMakeFiles/csp_mem.dir/mem/cache.cc.o.d"
  "CMakeFiles/csp_mem.dir/mem/hierarchy.cc.o"
  "CMakeFiles/csp_mem.dir/mem/hierarchy.cc.o.d"
  "CMakeFiles/csp_mem.dir/mem/mshr.cc.o"
  "CMakeFiles/csp_mem.dir/mem/mshr.cc.o.d"
  "libcsp_mem.a"
  "libcsp_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csp_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
