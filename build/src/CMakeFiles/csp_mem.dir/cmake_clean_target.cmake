file(REMOVE_RECURSE
  "libcsp_mem.a"
)
