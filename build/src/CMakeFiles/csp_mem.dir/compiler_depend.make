# Empty compiler generated dependencies file for csp_mem.
# This may be replaced when dependencies are built.
