
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prefetch/context/bandit.cc" "src/CMakeFiles/csp_prefetch.dir/prefetch/context/bandit.cc.o" "gcc" "src/CMakeFiles/csp_prefetch.dir/prefetch/context/bandit.cc.o.d"
  "/root/repo/src/prefetch/context/context_prefetcher.cc" "src/CMakeFiles/csp_prefetch.dir/prefetch/context/context_prefetcher.cc.o" "gcc" "src/CMakeFiles/csp_prefetch.dir/prefetch/context/context_prefetcher.cc.o.d"
  "/root/repo/src/prefetch/context/cst.cc" "src/CMakeFiles/csp_prefetch.dir/prefetch/context/cst.cc.o" "gcc" "src/CMakeFiles/csp_prefetch.dir/prefetch/context/cst.cc.o.d"
  "/root/repo/src/prefetch/context/history_queue.cc" "src/CMakeFiles/csp_prefetch.dir/prefetch/context/history_queue.cc.o" "gcc" "src/CMakeFiles/csp_prefetch.dir/prefetch/context/history_queue.cc.o.d"
  "/root/repo/src/prefetch/context/prefetch_queue.cc" "src/CMakeFiles/csp_prefetch.dir/prefetch/context/prefetch_queue.cc.o" "gcc" "src/CMakeFiles/csp_prefetch.dir/prefetch/context/prefetch_queue.cc.o.d"
  "/root/repo/src/prefetch/context/reducer.cc" "src/CMakeFiles/csp_prefetch.dir/prefetch/context/reducer.cc.o" "gcc" "src/CMakeFiles/csp_prefetch.dir/prefetch/context/reducer.cc.o.d"
  "/root/repo/src/prefetch/context/reward.cc" "src/CMakeFiles/csp_prefetch.dir/prefetch/context/reward.cc.o" "gcc" "src/CMakeFiles/csp_prefetch.dir/prefetch/context/reward.cc.o.d"
  "/root/repo/src/prefetch/ghb.cc" "src/CMakeFiles/csp_prefetch.dir/prefetch/ghb.cc.o" "gcc" "src/CMakeFiles/csp_prefetch.dir/prefetch/ghb.cc.o.d"
  "/root/repo/src/prefetch/jump_pointer.cc" "src/CMakeFiles/csp_prefetch.dir/prefetch/jump_pointer.cc.o" "gcc" "src/CMakeFiles/csp_prefetch.dir/prefetch/jump_pointer.cc.o.d"
  "/root/repo/src/prefetch/markov.cc" "src/CMakeFiles/csp_prefetch.dir/prefetch/markov.cc.o" "gcc" "src/CMakeFiles/csp_prefetch.dir/prefetch/markov.cc.o.d"
  "/root/repo/src/prefetch/prefetcher.cc" "src/CMakeFiles/csp_prefetch.dir/prefetch/prefetcher.cc.o" "gcc" "src/CMakeFiles/csp_prefetch.dir/prefetch/prefetcher.cc.o.d"
  "/root/repo/src/prefetch/sms.cc" "src/CMakeFiles/csp_prefetch.dir/prefetch/sms.cc.o" "gcc" "src/CMakeFiles/csp_prefetch.dir/prefetch/sms.cc.o.d"
  "/root/repo/src/prefetch/stride.cc" "src/CMakeFiles/csp_prefetch.dir/prefetch/stride.cc.o" "gcc" "src/CMakeFiles/csp_prefetch.dir/prefetch/stride.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/csp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csp_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
