file(REMOVE_RECURSE
  "CMakeFiles/csp_prefetch.dir/prefetch/context/bandit.cc.o"
  "CMakeFiles/csp_prefetch.dir/prefetch/context/bandit.cc.o.d"
  "CMakeFiles/csp_prefetch.dir/prefetch/context/context_prefetcher.cc.o"
  "CMakeFiles/csp_prefetch.dir/prefetch/context/context_prefetcher.cc.o.d"
  "CMakeFiles/csp_prefetch.dir/prefetch/context/cst.cc.o"
  "CMakeFiles/csp_prefetch.dir/prefetch/context/cst.cc.o.d"
  "CMakeFiles/csp_prefetch.dir/prefetch/context/history_queue.cc.o"
  "CMakeFiles/csp_prefetch.dir/prefetch/context/history_queue.cc.o.d"
  "CMakeFiles/csp_prefetch.dir/prefetch/context/prefetch_queue.cc.o"
  "CMakeFiles/csp_prefetch.dir/prefetch/context/prefetch_queue.cc.o.d"
  "CMakeFiles/csp_prefetch.dir/prefetch/context/reducer.cc.o"
  "CMakeFiles/csp_prefetch.dir/prefetch/context/reducer.cc.o.d"
  "CMakeFiles/csp_prefetch.dir/prefetch/context/reward.cc.o"
  "CMakeFiles/csp_prefetch.dir/prefetch/context/reward.cc.o.d"
  "CMakeFiles/csp_prefetch.dir/prefetch/ghb.cc.o"
  "CMakeFiles/csp_prefetch.dir/prefetch/ghb.cc.o.d"
  "CMakeFiles/csp_prefetch.dir/prefetch/jump_pointer.cc.o"
  "CMakeFiles/csp_prefetch.dir/prefetch/jump_pointer.cc.o.d"
  "CMakeFiles/csp_prefetch.dir/prefetch/markov.cc.o"
  "CMakeFiles/csp_prefetch.dir/prefetch/markov.cc.o.d"
  "CMakeFiles/csp_prefetch.dir/prefetch/prefetcher.cc.o"
  "CMakeFiles/csp_prefetch.dir/prefetch/prefetcher.cc.o.d"
  "CMakeFiles/csp_prefetch.dir/prefetch/sms.cc.o"
  "CMakeFiles/csp_prefetch.dir/prefetch/sms.cc.o.d"
  "CMakeFiles/csp_prefetch.dir/prefetch/stride.cc.o"
  "CMakeFiles/csp_prefetch.dir/prefetch/stride.cc.o.d"
  "libcsp_prefetch.a"
  "libcsp_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csp_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
