file(REMOVE_RECURSE
  "libcsp_prefetch.a"
)
