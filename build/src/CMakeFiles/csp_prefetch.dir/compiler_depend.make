# Empty compiler generated dependencies file for csp_prefetch.
# This may be replaced when dependencies are built.
