file(REMOVE_RECURSE
  "CMakeFiles/csp_runtime.dir/runtime/arena.cc.o"
  "CMakeFiles/csp_runtime.dir/runtime/arena.cc.o.d"
  "libcsp_runtime.a"
  "libcsp_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csp_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
