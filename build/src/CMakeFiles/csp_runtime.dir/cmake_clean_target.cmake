file(REMOVE_RECURSE
  "libcsp_runtime.a"
)
