# Empty compiler generated dependencies file for csp_runtime.
# This may be replaced when dependencies are built.
