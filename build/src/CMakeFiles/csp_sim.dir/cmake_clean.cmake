file(REMOVE_RECURSE
  "CMakeFiles/csp_sim.dir/sim/experiment.cc.o"
  "CMakeFiles/csp_sim.dir/sim/experiment.cc.o.d"
  "CMakeFiles/csp_sim.dir/sim/simulator.cc.o"
  "CMakeFiles/csp_sim.dir/sim/simulator.cc.o.d"
  "CMakeFiles/csp_sim.dir/sim/table.cc.o"
  "CMakeFiles/csp_sim.dir/sim/table.cc.o.d"
  "libcsp_sim.a"
  "libcsp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
