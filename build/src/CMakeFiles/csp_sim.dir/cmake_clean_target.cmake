file(REMOVE_RECURSE
  "libcsp_sim.a"
)
