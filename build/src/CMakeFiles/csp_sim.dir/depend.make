# Empty dependencies file for csp_sim.
# This may be replaced when dependencies are built.
