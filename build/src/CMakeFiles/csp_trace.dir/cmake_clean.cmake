file(REMOVE_RECURSE
  "CMakeFiles/csp_trace.dir/trace/context.cc.o"
  "CMakeFiles/csp_trace.dir/trace/context.cc.o.d"
  "CMakeFiles/csp_trace.dir/trace/hw_state.cc.o"
  "CMakeFiles/csp_trace.dir/trace/hw_state.cc.o.d"
  "CMakeFiles/csp_trace.dir/trace/trace.cc.o"
  "CMakeFiles/csp_trace.dir/trace/trace.cc.o.d"
  "CMakeFiles/csp_trace.dir/trace/trace_io.cc.o"
  "CMakeFiles/csp_trace.dir/trace/trace_io.cc.o.d"
  "libcsp_trace.a"
  "libcsp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
