file(REMOVE_RECURSE
  "libcsp_trace.a"
)
