# Empty dependencies file for csp_trace.
# This may be replaced when dependencies are built.
