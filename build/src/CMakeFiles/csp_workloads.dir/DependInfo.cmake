
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/graph/csr_graph.cc" "src/CMakeFiles/csp_workloads.dir/workloads/graph/csr_graph.cc.o" "gcc" "src/CMakeFiles/csp_workloads.dir/workloads/graph/csr_graph.cc.o.d"
  "/root/repo/src/workloads/graph/graph500.cc" "src/CMakeFiles/csp_workloads.dir/workloads/graph/graph500.cc.o" "gcc" "src/CMakeFiles/csp_workloads.dir/workloads/graph/graph500.cc.o.d"
  "/root/repo/src/workloads/graph/rmat.cc" "src/CMakeFiles/csp_workloads.dir/workloads/graph/rmat.cc.o" "gcc" "src/CMakeFiles/csp_workloads.dir/workloads/graph/rmat.cc.o.d"
  "/root/repo/src/workloads/graph/ssca2.cc" "src/CMakeFiles/csp_workloads.dir/workloads/graph/ssca2.cc.o" "gcc" "src/CMakeFiles/csp_workloads.dir/workloads/graph/ssca2.cc.o.d"
  "/root/repo/src/workloads/pbbs/convex_hull.cc" "src/CMakeFiles/csp_workloads.dir/workloads/pbbs/convex_hull.cc.o" "gcc" "src/CMakeFiles/csp_workloads.dir/workloads/pbbs/convex_hull.cc.o.d"
  "/root/repo/src/workloads/pbbs/knn.cc" "src/CMakeFiles/csp_workloads.dir/workloads/pbbs/knn.cc.o" "gcc" "src/CMakeFiles/csp_workloads.dir/workloads/pbbs/knn.cc.o.d"
  "/root/repo/src/workloads/pbbs/pbbs_bfs.cc" "src/CMakeFiles/csp_workloads.dir/workloads/pbbs/pbbs_bfs.cc.o" "gcc" "src/CMakeFiles/csp_workloads.dir/workloads/pbbs/pbbs_bfs.cc.o.d"
  "/root/repo/src/workloads/pbbs/set_cover.cc" "src/CMakeFiles/csp_workloads.dir/workloads/pbbs/set_cover.cc.o" "gcc" "src/CMakeFiles/csp_workloads.dir/workloads/pbbs/set_cover.cc.o.d"
  "/root/repo/src/workloads/pbbs/suffix_array.cc" "src/CMakeFiles/csp_workloads.dir/workloads/pbbs/suffix_array.cc.o" "gcc" "src/CMakeFiles/csp_workloads.dir/workloads/pbbs/suffix_array.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/CMakeFiles/csp_workloads.dir/workloads/registry.cc.o" "gcc" "src/CMakeFiles/csp_workloads.dir/workloads/registry.cc.o.d"
  "/root/repo/src/workloads/spec/spec_synth.cc" "src/CMakeFiles/csp_workloads.dir/workloads/spec/spec_synth.cc.o" "gcc" "src/CMakeFiles/csp_workloads.dir/workloads/spec/spec_synth.cc.o.d"
  "/root/repo/src/workloads/ubench/array_ubench.cc" "src/CMakeFiles/csp_workloads.dir/workloads/ubench/array_ubench.cc.o" "gcc" "src/CMakeFiles/csp_workloads.dir/workloads/ubench/array_ubench.cc.o.d"
  "/root/repo/src/workloads/ubench/bst.cc" "src/CMakeFiles/csp_workloads.dir/workloads/ubench/bst.cc.o" "gcc" "src/CMakeFiles/csp_workloads.dir/workloads/ubench/bst.cc.o.d"
  "/root/repo/src/workloads/ubench/hashtest.cc" "src/CMakeFiles/csp_workloads.dir/workloads/ubench/hashtest.cc.o" "gcc" "src/CMakeFiles/csp_workloads.dir/workloads/ubench/hashtest.cc.o.d"
  "/root/repo/src/workloads/ubench/linked_list.cc" "src/CMakeFiles/csp_workloads.dir/workloads/ubench/linked_list.cc.o" "gcc" "src/CMakeFiles/csp_workloads.dir/workloads/ubench/linked_list.cc.o.d"
  "/root/repo/src/workloads/ubench/listsort.cc" "src/CMakeFiles/csp_workloads.dir/workloads/ubench/listsort.cc.o" "gcc" "src/CMakeFiles/csp_workloads.dir/workloads/ubench/listsort.cc.o.d"
  "/root/repo/src/workloads/ubench/maptest.cc" "src/CMakeFiles/csp_workloads.dir/workloads/ubench/maptest.cc.o" "gcc" "src/CMakeFiles/csp_workloads.dir/workloads/ubench/maptest.cc.o.d"
  "/root/repo/src/workloads/ubench/prim.cc" "src/CMakeFiles/csp_workloads.dir/workloads/ubench/prim.cc.o" "gcc" "src/CMakeFiles/csp_workloads.dir/workloads/ubench/prim.cc.o.d"
  "/root/repo/src/workloads/ubench/rbtree.cc" "src/CMakeFiles/csp_workloads.dir/workloads/ubench/rbtree.cc.o" "gcc" "src/CMakeFiles/csp_workloads.dir/workloads/ubench/rbtree.cc.o.d"
  "/root/repo/src/workloads/ubench/ssca_lds.cc" "src/CMakeFiles/csp_workloads.dir/workloads/ubench/ssca_lds.cc.o" "gcc" "src/CMakeFiles/csp_workloads.dir/workloads/ubench/ssca_lds.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/csp_workloads.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/csp_workloads.dir/workloads/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/csp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csp_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
