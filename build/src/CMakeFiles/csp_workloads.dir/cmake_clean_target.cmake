file(REMOVE_RECURSE
  "libcsp_workloads.a"
)
