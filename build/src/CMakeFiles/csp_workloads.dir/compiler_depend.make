# Empty compiler generated dependencies file for csp_workloads.
# This may be replaced when dependencies are built.
