
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bandit.cc" "tests/CMakeFiles/test_context_prefetcher.dir/test_bandit.cc.o" "gcc" "tests/CMakeFiles/test_context_prefetcher.dir/test_bandit.cc.o.d"
  "/root/repo/tests/test_context_end_to_end.cc" "tests/CMakeFiles/test_context_prefetcher.dir/test_context_end_to_end.cc.o" "gcc" "tests/CMakeFiles/test_context_prefetcher.dir/test_context_end_to_end.cc.o.d"
  "/root/repo/tests/test_cst.cc" "tests/CMakeFiles/test_context_prefetcher.dir/test_cst.cc.o" "gcc" "tests/CMakeFiles/test_context_prefetcher.dir/test_cst.cc.o.d"
  "/root/repo/tests/test_history_queue.cc" "tests/CMakeFiles/test_context_prefetcher.dir/test_history_queue.cc.o" "gcc" "tests/CMakeFiles/test_context_prefetcher.dir/test_history_queue.cc.o.d"
  "/root/repo/tests/test_prefetch_queue.cc" "tests/CMakeFiles/test_context_prefetcher.dir/test_prefetch_queue.cc.o" "gcc" "tests/CMakeFiles/test_context_prefetcher.dir/test_prefetch_queue.cc.o.d"
  "/root/repo/tests/test_reducer.cc" "tests/CMakeFiles/test_context_prefetcher.dir/test_reducer.cc.o" "gcc" "tests/CMakeFiles/test_context_prefetcher.dir/test_reducer.cc.o.d"
  "/root/repo/tests/test_reward.cc" "tests/CMakeFiles/test_context_prefetcher.dir/test_reward.cc.o" "gcc" "tests/CMakeFiles/test_context_prefetcher.dir/test_reward.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/csp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csp_prefetch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csp_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csp_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
