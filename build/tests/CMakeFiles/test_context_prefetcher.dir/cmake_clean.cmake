file(REMOVE_RECURSE
  "CMakeFiles/test_context_prefetcher.dir/test_bandit.cc.o"
  "CMakeFiles/test_context_prefetcher.dir/test_bandit.cc.o.d"
  "CMakeFiles/test_context_prefetcher.dir/test_context_end_to_end.cc.o"
  "CMakeFiles/test_context_prefetcher.dir/test_context_end_to_end.cc.o.d"
  "CMakeFiles/test_context_prefetcher.dir/test_cst.cc.o"
  "CMakeFiles/test_context_prefetcher.dir/test_cst.cc.o.d"
  "CMakeFiles/test_context_prefetcher.dir/test_history_queue.cc.o"
  "CMakeFiles/test_context_prefetcher.dir/test_history_queue.cc.o.d"
  "CMakeFiles/test_context_prefetcher.dir/test_prefetch_queue.cc.o"
  "CMakeFiles/test_context_prefetcher.dir/test_prefetch_queue.cc.o.d"
  "CMakeFiles/test_context_prefetcher.dir/test_reducer.cc.o"
  "CMakeFiles/test_context_prefetcher.dir/test_reducer.cc.o.d"
  "CMakeFiles/test_context_prefetcher.dir/test_reward.cc.o"
  "CMakeFiles/test_context_prefetcher.dir/test_reward.cc.o.d"
  "test_context_prefetcher"
  "test_context_prefetcher.pdb"
  "test_context_prefetcher[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_context_prefetcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
