
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_config.cc" "tests/CMakeFiles/test_core.dir/test_config.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/test_config.cc.o.d"
  "/root/repo/tests/test_hashing.cc" "tests/CMakeFiles/test_core.dir/test_hashing.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/test_hashing.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/test_core.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/test_core.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_table.cc" "tests/CMakeFiles/test_core.dir/test_table.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/test_table.cc.o.d"
  "/root/repo/tests/test_types.cc" "tests/CMakeFiles/test_core.dir/test_types.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/test_types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/csp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csp_prefetch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csp_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csp_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
