file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/test_config.cc.o"
  "CMakeFiles/test_core.dir/test_config.cc.o.d"
  "CMakeFiles/test_core.dir/test_hashing.cc.o"
  "CMakeFiles/test_core.dir/test_hashing.cc.o.d"
  "CMakeFiles/test_core.dir/test_rng.cc.o"
  "CMakeFiles/test_core.dir/test_rng.cc.o.d"
  "CMakeFiles/test_core.dir/test_stats.cc.o"
  "CMakeFiles/test_core.dir/test_stats.cc.o.d"
  "CMakeFiles/test_core.dir/test_table.cc.o"
  "CMakeFiles/test_core.dir/test_table.cc.o.d"
  "CMakeFiles/test_core.dir/test_types.cc.o"
  "CMakeFiles/test_core.dir/test_types.cc.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
