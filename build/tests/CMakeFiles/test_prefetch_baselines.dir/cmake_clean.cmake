file(REMOVE_RECURSE
  "CMakeFiles/test_prefetch_baselines.dir/test_ghb.cc.o"
  "CMakeFiles/test_prefetch_baselines.dir/test_ghb.cc.o.d"
  "CMakeFiles/test_prefetch_baselines.dir/test_jump_pointer.cc.o"
  "CMakeFiles/test_prefetch_baselines.dir/test_jump_pointer.cc.o.d"
  "CMakeFiles/test_prefetch_baselines.dir/test_markov.cc.o"
  "CMakeFiles/test_prefetch_baselines.dir/test_markov.cc.o.d"
  "CMakeFiles/test_prefetch_baselines.dir/test_sms.cc.o"
  "CMakeFiles/test_prefetch_baselines.dir/test_sms.cc.o.d"
  "CMakeFiles/test_prefetch_baselines.dir/test_stride.cc.o"
  "CMakeFiles/test_prefetch_baselines.dir/test_stride.cc.o.d"
  "test_prefetch_baselines"
  "test_prefetch_baselines.pdb"
  "test_prefetch_baselines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prefetch_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
