# Empty compiler generated dependencies file for test_prefetch_baselines.
# This may be replaced when dependencies are built.
