
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_experiment.cc" "tests/CMakeFiles/test_sim.dir/test_experiment.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_experiment.cc.o.d"
  "/root/repo/tests/test_fuzz.cc" "tests/CMakeFiles/test_sim.dir/test_fuzz.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_fuzz.cc.o.d"
  "/root/repo/tests/test_property_sweeps.cc" "tests/CMakeFiles/test_sim.dir/test_property_sweeps.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_property_sweeps.cc.o.d"
  "/root/repo/tests/test_run_stats.cc" "tests/CMakeFiles/test_sim.dir/test_run_stats.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_run_stats.cc.o.d"
  "/root/repo/tests/test_simulator.cc" "tests/CMakeFiles/test_sim.dir/test_simulator.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/csp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csp_prefetch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csp_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csp_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
