file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/test_experiment.cc.o"
  "CMakeFiles/test_sim.dir/test_experiment.cc.o.d"
  "CMakeFiles/test_sim.dir/test_fuzz.cc.o"
  "CMakeFiles/test_sim.dir/test_fuzz.cc.o.d"
  "CMakeFiles/test_sim.dir/test_property_sweeps.cc.o"
  "CMakeFiles/test_sim.dir/test_property_sweeps.cc.o.d"
  "CMakeFiles/test_sim.dir/test_run_stats.cc.o"
  "CMakeFiles/test_sim.dir/test_run_stats.cc.o.d"
  "CMakeFiles/test_sim.dir/test_simulator.cc.o"
  "CMakeFiles/test_sim.dir/test_simulator.cc.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
