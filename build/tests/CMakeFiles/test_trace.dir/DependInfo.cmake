
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_context.cc" "tests/CMakeFiles/test_trace.dir/test_context.cc.o" "gcc" "tests/CMakeFiles/test_trace.dir/test_context.cc.o.d"
  "/root/repo/tests/test_hints.cc" "tests/CMakeFiles/test_trace.dir/test_hints.cc.o" "gcc" "tests/CMakeFiles/test_trace.dir/test_hints.cc.o.d"
  "/root/repo/tests/test_hw_state.cc" "tests/CMakeFiles/test_trace.dir/test_hw_state.cc.o" "gcc" "tests/CMakeFiles/test_trace.dir/test_hw_state.cc.o.d"
  "/root/repo/tests/test_trace_buffer.cc" "tests/CMakeFiles/test_trace.dir/test_trace_buffer.cc.o" "gcc" "tests/CMakeFiles/test_trace.dir/test_trace_buffer.cc.o.d"
  "/root/repo/tests/test_trace_io.cc" "tests/CMakeFiles/test_trace.dir/test_trace_io.cc.o" "gcc" "tests/CMakeFiles/test_trace.dir/test_trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/csp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csp_prefetch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csp_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csp_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
