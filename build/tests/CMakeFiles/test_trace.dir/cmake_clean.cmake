file(REMOVE_RECURSE
  "CMakeFiles/test_trace.dir/test_context.cc.o"
  "CMakeFiles/test_trace.dir/test_context.cc.o.d"
  "CMakeFiles/test_trace.dir/test_hints.cc.o"
  "CMakeFiles/test_trace.dir/test_hints.cc.o.d"
  "CMakeFiles/test_trace.dir/test_hw_state.cc.o"
  "CMakeFiles/test_trace.dir/test_hw_state.cc.o.d"
  "CMakeFiles/test_trace.dir/test_trace_buffer.cc.o"
  "CMakeFiles/test_trace.dir/test_trace_buffer.cc.o.d"
  "CMakeFiles/test_trace.dir/test_trace_io.cc.o"
  "CMakeFiles/test_trace.dir/test_trace_io.cc.o.d"
  "test_trace"
  "test_trace.pdb"
  "test_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
