file(REMOVE_RECURSE
  "CMakeFiles/test_workloads.dir/test_algorithms.cc.o"
  "CMakeFiles/test_workloads.dir/test_algorithms.cc.o.d"
  "CMakeFiles/test_workloads.dir/test_graph.cc.o"
  "CMakeFiles/test_workloads.dir/test_graph.cc.o.d"
  "CMakeFiles/test_workloads.dir/test_rbtree.cc.o"
  "CMakeFiles/test_workloads.dir/test_rbtree.cc.o.d"
  "CMakeFiles/test_workloads.dir/test_spec_profiles.cc.o"
  "CMakeFiles/test_workloads.dir/test_spec_profiles.cc.o.d"
  "CMakeFiles/test_workloads.dir/test_workload_traces.cc.o"
  "CMakeFiles/test_workloads.dir/test_workload_traces.cc.o.d"
  "test_workloads"
  "test_workloads.pdb"
  "test_workloads[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
