file(REMOVE_RECURSE
  "CMakeFiles/cspsim.dir/cspsim.cc.o"
  "CMakeFiles/cspsim.dir/cspsim.cc.o.d"
  "cspsim"
  "cspsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cspsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
