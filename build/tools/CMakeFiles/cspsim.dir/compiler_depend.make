# Empty compiler generated dependencies file for cspsim.
# This may be replaced when dependencies are built.
