# Empty dependencies file for cspsim.
# This may be replaced when dependencies are built.
