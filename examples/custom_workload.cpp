/**
 * @file
 * Authoring a custom workload against the public API: record your own
 * annotated trace with trace::Recorder (playing the role of the
 * paper's LLVM hint pass), then run it through the simulator.
 *
 * The kernel here is a small skip-list search mix — a structure none
 * of the built-in workloads use — demonstrating that the prefetcher
 * framework is workload-agnostic.
 */

#include <iostream>
#include <vector>

#include "core/rng.h"
#include "hints/hint.h"
#include "runtime/arena.h"
#include "sim/experiment.h"
#include "sim/simulator.h"
#include "sim/table.h"
#include "trace/trace.h"

namespace {

using namespace csp;

constexpr unsigned kLevels = 4;

struct SkipNode
{
    SkipNode *next[kLevels] = {};
    std::uint64_t key = 0;
};

/** Build a deterministic skip list over the simulated heap. */
SkipNode *
buildSkipList(runtime::Arena &arena, Rng &rng, unsigned count)
{
    SkipNode *head = arena.make<SkipNode>();
    std::vector<SkipNode *> tails(kLevels, head);
    for (unsigned i = 1; i <= count; ++i) {
        SkipNode *node = arena.make<SkipNode>();
        node->key = i * 10;
        unsigned levels = 1;
        while (levels < kLevels && rng.chance(0.25))
            ++levels;
        for (unsigned level = 0; level < levels; ++level) {
            tails[level]->next[level] = node;
            tails[level] = node;
        }
    }
    return head;
}

/** Search the skip list, recording every hinted pointer load. */
void
search(trace::Recorder &rec, runtime::Arena &arena, SkipNode *head,
       std::uint64_t key, const hints::Hint *level_hints)
{
    SkipNode *cursor = head;
    for (int level = kLevels - 1; level >= 0; --level) {
        while (true) {
            SkipNode *next = cursor->next[level];
            rec.load(/*site=*/static_cast<std::uint32_t>(level),
                     arena.addrOf(cursor), level_hints[level],
                     next != nullptr ? arena.addrOf(next) : 0,
                     /*dep_on_prev_load=*/true, /*reg_value=*/key);
            const bool advance = next != nullptr && next->key <= key;
            rec.branch(/*site=*/8, advance);
            if (!advance)
                break;
            cursor = next;
        }
    }
}

} // namespace

int
main()
{
    runtime::Arena arena(64u << 20,
                         runtime::Placement::Randomized, 7);
    Rng rng(7);
    SkipNode *head = buildSkipList(arena, rng, 4096);

    // The "compiler pass": one hint per link level.
    hints::TypeEnumerator types;
    const std::uint16_t node_type = types.fresh();
    hints::Hint level_hints[kLevels];
    for (unsigned level = 0; level < kLevels; ++level) {
        level_hints[level] = hints::Hint{
            node_type,
            static_cast<std::uint16_t>(level * sizeof(SkipNode *)),
            hints::RefForm::Arrow};
    }

    trace::TraceBuffer buffer;
    trace::Recorder rec(buffer, /*pc_base=*/0x00900000);
    for (int i = 0; i < 8000; ++i) {
        search(rec, arena, head, rng.below(41000), level_hints);
        rec.compute(/*site=*/9, 6);
    }
    std::cout << "Recorded a skip-list search mix: "
              << buffer.instructions() << " instructions, "
              << buffer.memAccesses() << " accesses\n\n";

    SystemConfig config;
    sim::Table table({"prefetcher", "IPC", "speedup"});
    double baseline = 0.0;
    for (const std::string &pf_name : sim::paperPrefetchers()) {
        auto prefetcher = sim::makePrefetcher(pf_name, config);
        sim::Simulator simulator(config);
        const double ipc = simulator.run(buffer, *prefetcher).ipc();
        if (pf_name == "none")
            baseline = ipc;
        table.addRow({pf_name, sim::Table::num(ipc, 3),
                      sim::Table::num(ipc / baseline, 3)});
    }
    table.print(std::cout);
    return 0;
}
