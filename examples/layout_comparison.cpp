/**
 * @file
 * Layout-agnostic programming demo (paper sections 2.2 and 7.5): run
 * the same graph-analysis workload in its naive pointer-linked and its
 * spatially optimised CSR implementations, and show how much of the
 * naive layout's penalty each prefetcher recovers.
 *
 * Usage: layout_comparison [scale]
 */

#include <cstdlib>
#include <iostream>

#include "sim/experiment.h"
#include "sim/simulator.h"
#include "sim/table.h"
#include "workloads/registry.h"

int
main(int argc, char **argv)
{
    using namespace csp;
    workloads::WorkloadParams params;
    params.scale = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                            : sim::effectiveScale(300000);

    SystemConfig config;
    const auto &registry = workloads::Registry::builtin();

    std::cout << "Generating both layouts of Graph500 BFS ("
              << params.scale << " accesses each)...\n\n";
    const trace::TraceBuffer csr =
        registry.create("graph500")->generate(params);
    const trace::TraceBuffer linked =
        registry.create("graph500-list")->generate(params);

    sim::Table table({"prefetcher", "CSR CPI", "linked CPI",
                      "naive penalty", "penalty recovered"});
    double base_penalty = 0.0;
    for (const std::string &pf_name : sim::paperPrefetchers()) {
        auto pf_csr = sim::makePrefetcher(pf_name, config);
        auto pf_linked = sim::makePrefetcher(pf_name, config);
        sim::Simulator sim_a(config);
        sim::Simulator sim_b(config);
        const double cpi_csr = sim_a.run(csr, *pf_csr).cpi();
        const double cpi_linked = sim_b.run(linked, *pf_linked).cpi();
        const double penalty = cpi_linked / cpi_csr;
        if (pf_name == "none")
            base_penalty = penalty;
        const double recovered =
            base_penalty <= 1.0
                ? 0.0
                : 100.0 * (base_penalty - penalty) /
                      (base_penalty - 1.0);
        table.addRow({pf_name, sim::Table::num(cpi_csr, 2),
                      sim::Table::num(cpi_linked, 2),
                      sim::Table::num(penalty, 2) + "x",
                      sim::Table::num(recovered, 0) + "%"});
    }
    table.print(std::cout);
    std::cout << "\n'penalty recovered' is how much of the naive"
                 " layout's CPI gap to CSR the prefetcher closes —\n"
                 "the paper's argument that semantic prefetching lets"
                 " programmers skip spatial hand-tuning.\n";
    return 0;
}
