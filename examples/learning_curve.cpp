/**
 * @file
 * Watching the contextual bandit learn: run a pointer-chasing workload
 * with interval stats sampling enabled and print, per interval, the
 * prefetcher's internal learning signals — accuracy, exploration rate,
 * real/shadow mix, reducer adaptation — the instrumentation view of
 * paper section 4.
 *
 * This is the worked example for the stats registry: the simulator
 * samples every registered "context.*" stat each interval, and the
 * resulting time-series is read back through column names. The same
 * series is available from cspsim as a CSV:
 *
 *   cspsim --workload list --prefetcher context \
 *          --stats-interval 40000 --stats-filter context \
 *          --stats-csv curve.csv
 *
 * Usage: learning_curve [workload] [slices]
 */

#include <cstdlib>
#include <iostream>

#include "core/stats_registry.h"
#include "prefetch/context/context_prefetcher.h"
#include "sim/simulator.h"
#include "sim/table.h"
#include "workloads/registry.h"

int
main(int argc, char **argv)
{
    using namespace csp;
    const std::string workload_name = argc > 1 ? argv[1] : "list";
    const unsigned slices =
        argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 10;

    workloads::WorkloadParams params;
    params.scale = 400000;
    const trace::TraceBuffer trace =
        workloads::Registry::builtin()
            .create(workload_name)
            ->generate(params);
    std::cout << "Learning curve on '" << workload_name << "' ("
              << trace.instructions() << " instructions, " << slices
              << " slices)\n\n";

    SystemConfig config;
    prefetch::ctx::ContextPrefetcher prefetcher(config.context,
                                                config.seed);

    sim::Simulator simulator(config);
    simulator.setSampling(trace.instructions() / slices + 1,
                          "context");
    simulator.run(trace, prefetcher);
    const stats::TimeSeries &series = simulator.lastSeries();

    // Counters arrive as per-interval deltas, gauges as point samples.
    const int accuracy = series.columnIndex("context.bandit.accuracy");
    const int epsilon = series.columnIndex("context.bandit.epsilon");
    const int real = series.columnIndex("context.predictions.real");
    const int shadow =
        series.columnIndex("context.predictions.shadow");
    const int assoc = series.columnIndex("context.cst.associations");
    const int overloads =
        series.columnIndex("context.reducer.overloads");
    const int occupancy = series.columnIndex("context.cst.occupancy");
    const int attrs =
        series.columnIndex("context.reducer.active_attrs_mean");

    sim::Table table({"insts", "accuracy", "epsilon", "real",
                      "shadow", "assoc", "overloads", "CST-live",
                      "attrs/ctx"});
    for (const stats::TimeSeries::Row &row : series.rows) {
        const auto count = [&row](int col) {
            return std::to_string(
                static_cast<std::uint64_t>(row.values[col]));
        };
        table.addRow({std::to_string(row.instructions),
                      sim::Table::num(row.values[accuracy], 3),
                      sim::Table::num(row.values[epsilon], 3),
                      count(real), count(shadow), count(assoc),
                      count(overloads), count(occupancy),
                      sim::Table::num(row.values[attrs], 2)});
    }
    table.print(std::cout);
    std::cout << "\nExpect accuracy to rise and epsilon to fall as "
                 "the bandit converges (paper section 4.1);\n"
                 "real predictions replace shadow exploration once "
                 "links earn their scores.\n";
    return 0;
}
