/**
 * @file
 * Watching the contextual bandit learn: run a pointer-chasing workload
 * in slices and print, per slice, the prefetcher's internal learning
 * signals — accuracy, exploration rate, real/shadow mix, reducer
 * adaptation — the instrumentation view of paper section 4.
 *
 * Usage: learning_curve [workload] [slices]
 */

#include <cstdlib>
#include <iostream>

#include "prefetch/context/context_prefetcher.h"
#include "sim/simulator.h"
#include "sim/table.h"
#include "trace/hw_state.h"
#include "workloads/registry.h"

int
main(int argc, char **argv)
{
    using namespace csp;
    const std::string workload_name = argc > 1 ? argv[1] : "list";
    const unsigned slices =
        argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 10;

    workloads::WorkloadParams params;
    params.scale = 400000;
    const trace::TraceBuffer trace =
        workloads::Registry::builtin()
            .create(workload_name)
            ->generate(params);
    std::cout << "Learning curve on '" << workload_name << "' ("
              << trace.memAccesses() << " accesses, " << slices
              << " slices)\n\n";

    // Drive the prefetcher directly (no timing model) so the learning
    // dynamics are isolated from memory-system feedback.
    SystemConfig config;
    prefetch::ctx::ContextPrefetcher prefetcher(config.context,
                                                config.seed);
    trace::HwContextTracker hw(config.memory.l1d.line_bytes);
    std::vector<prefetch::PrefetchRequest> out;
    AccessSeq seq = 0;

    sim::Table table({"accesses", "accuracy", "epsilon", "real",
                      "shadow", "assoc", "overloads", "CST-live",
                      "attrs/ctx"});
    const std::uint64_t per_slice =
        trace.memAccesses() / slices + 1;
    std::uint64_t next_report = per_slice;
    prefetch::ctx::ContextStats last{};

    for (const trace::TraceRecord &rec : trace.records()) {
        if (rec.isMem()) {
            const trace::ContextSnapshot ctx = hw.capture(rec);
            prefetch::AccessInfo info;
            info.seq = seq;
            info.pc = rec.pc;
            info.vaddr = rec.vaddr;
            info.line_addr =
                alignDown(rec.vaddr, config.memory.l1d.line_bytes);
            info.free_l1_mshrs = config.memory.l1d.mshrs;
            info.context = &ctx;
            out.clear();
            prefetcher.observe(info, out);
            ++seq;
            if (seq >= next_report) {
                next_report += per_slice;
                const auto &stats = prefetcher.stats();
                table.addRow(
                    {std::to_string(seq),
                     sim::Table::num(prefetcher.policy().accuracy(),
                                     3),
                     sim::Table::num(prefetcher.policy().epsilon(),
                                     3),
                     std::to_string(stats.real_predictions -
                                    last.real_predictions),
                     std::to_string(stats.shadow_predictions -
                                    last.shadow_predictions),
                     std::to_string(stats.associations -
                                    last.associations),
                     std::to_string(stats.overload_events -
                                    last.overload_events),
                     std::to_string(prefetcher.cst().liveEntries()),
                     sim::Table::num(
                         prefetcher.reducer().meanActiveAttrs(), 2)});
                last = stats;
            }
        }
        hw.update(rec);
    }
    table.print(std::cout);
    std::cout << "\nExpect accuracy to rise and epsilon to fall as "
                 "the bandit converges (paper section 4.1);\n"
                 "real predictions replace shadow exploration once "
                 "links earn their scores.\n";
    return 0;
}
