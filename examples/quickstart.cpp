/**
 * @file
 * Quickstart: build a workload, run it through the simulator with and
 * without the context-based prefetcher, and print what happened.
 *
 * Usage: quickstart [workload] [scale]
 *   workload  any registered name (default: listsort); see
 *             `table3_workloads` for the full list.
 *   scale     approximate memory accesses to simulate (default 200000).
 */

#include <cstdlib>
#include <iostream>

#include "sim/experiment.h"
#include "sim/simulator.h"
#include "sim/table.h"
#include "workloads/registry.h"

int
main(int argc, char **argv)
{
    const std::string workload_name = argc > 1 ? argv[1] : "listsort";
    csp::workloads::WorkloadParams params;
    params.scale = argc > 2
                       ? std::strtoull(argv[2], nullptr, 10)
                       : csp::sim::effectiveScale(200000);

    csp::SystemConfig config;
    const auto &registry = csp::workloads::Registry::builtin();
    const auto workload = registry.create(workload_name);

    std::cout << "Generating trace for '" << workload_name << "' ("
              << workload->suite() << ")...\n";
    const csp::trace::TraceBuffer trace = workload->generate(params);
    std::cout << "  " << trace.instructions() << " instructions, "
              << trace.memAccesses() << " memory accesses\n\n";

    csp::sim::Table table({"prefetcher", "IPC", "speedup", "L1 MPKI",
                           "L2 MPKI", "hit-prefetched%",
                           "covered-miss%"});
    double baseline_ipc = 0.0;
    for (const std::string &pf_name : csp::sim::paperPrefetchers()) {
        auto prefetcher = csp::sim::makePrefetcher(pf_name, config);
        csp::sim::Simulator simulator(config);
        const csp::sim::RunStats stats =
            simulator.run(trace, *prefetcher);
        if (pf_name == "none")
            baseline_ipc = stats.ipc();
        const double covered =
            stats.classFraction(
                csp::sim::AccessClass::HitPrefetchedLine) +
            stats.classFraction(csp::sim::AccessClass::ShorterWait);
        table.addRow(
            {pf_name, csp::sim::Table::num(stats.ipc(), 3),
             csp::sim::Table::num(
                 baseline_ipc > 0 ? stats.ipc() / baseline_ipc : 0.0,
                 3),
             csp::sim::Table::num(stats.l1Mpki(), 1),
             csp::sim::Table::num(stats.l2Mpki(), 2),
             csp::sim::Table::num(
                 100.0 * stats.classFraction(
                             csp::sim::AccessClass::HitPrefetchedLine),
                 1),
             csp::sim::Table::num(100.0 * covered, 1)});
    }
    table.print(std::cout);
    return 0;
}
