#include "core/config.h"

#include <sstream>

namespace csp {

std::uint64_t
ContextPrefetcherConfig::storageBytes() const
{
    // CST: per link a 1-byte delta + 1-byte score; per entry a tag byte
    // and a reducer reference count (paper: 2K x 4 links = 18kB incl.
    // tags/metadata).
    const std::uint64_t cst =
        static_cast<std::uint64_t>(cst_entries) * (cst_links * 2 + 1);
    // Reducer: 6 bits per entry (attribute bitmap sharing the 2-bit
    // tag, bit-packed), matching the paper's 16K entries = 12kB.
    const std::uint64_t reducer =
        static_cast<std::uint64_t>(reducer_entries) * 6 / 8;
    // History queue: one reduced context hash per entry (19 bits -> round
    // to 3 bytes, paper: 120B for 50 entries).
    const std::uint64_t history = static_cast<std::uint64_t>(
        history_entries * ((reduced_hash_bits + 7) / 8));
    // Prefetch queue: address/context pairs (~10 bytes), paper: 1.3kB.
    const std::uint64_t pq =
        static_cast<std::uint64_t>(prefetch_queue_entries) * 10;
    return cst + reducer + history + pq;
}

std::string
SystemConfig::describe() const
{
    std::ostringstream out;
    out << "Simulation mode   | trace-driven, approximate OoO timing\n"
        << "Core type         | OoO, " << core.fetch_width
        << "-wide fetch\n"
        << "Queue sizes       | " << core.rob_entries << " ROB, "
        << core.iq_entries << " IQ, " << core.prf_entries << " PRF, "
        << core.lq_entries << " LQ/SQ\n"
        << "MSHRs             | L1: " << memory.l1d.mshrs
        << ", L2: " << memory.l2.mshrs << "\n"
        << "L1 cache          | " << memory.l1d.size_bytes / 1024
        << "kB Data, " << memory.l1d.ways << " ways, "
        << memory.l1d.access_latency << " cycles access, private\n"
        << "L2 cache          | " << memory.l2.size_bytes / (1024 * 1024)
        << "MB, " << memory.l2.ways << " ways, "
        << memory.l2.access_latency << " cycles access, shared\n"
        << "Main memory       | " << dramLatencyLabel() << "\n"
        << "--- Context prefetcher ---\n"
        << "CST               | " << context.cst_entries << " entries x "
        << context.cst_links << " links, direct-mapped\n"
        << "Reducer           | " << context.reducer_entries
        << " entries, direct-mapped\n"
        << "History queue     | " << context.history_entries
        << " entries x " << context.reduced_hash_bits << " bit context\n"
        << "Prefetch queue    | " << context.prefetch_queue_entries
        << " entries of address/context pairs\n"
        << "Overall size      | ~" << context.storageBytes() / 1024
        << "kB\n"
        << "--- Competing prefetchers ---\n"
        << "GHB (all)         | GHB size: " << ghb.ghb_entries
        << ", History length: " << ghb.history_length
        << ", Prefetch degree: " << ghb.degree << "\n"
        << "SMS               | PHT size: " << sms.pht_entries
        << ", AGT size: " << sms.agt_entries
        << ", Filter Table: " << sms.filter_entries
        << ", Region size: " << sms.region_bytes / 1024 << "kB\n";
    return out.str();
}

std::string
SystemConfig::dramLatencyLabel() const
{
    std::ostringstream out;
    out << memory.dram_latency << " cycles access";
    return out.str();
}

} // namespace csp
