/**
 * @file
 * Configuration structures. Default values reproduce Table 2 of the
 * paper (simulator parameters, context prefetcher sizing, competing
 * prefetcher sizing).
 */

#ifndef CSP_CORE_CONFIG_H
#define CSP_CORE_CONFIG_H

#include <cstdint>
#include <string>

#include "core/types.h"

namespace csp {

/** Out-of-order core model parameters (paper Table 2, top block). */
struct CoreConfig
{
    unsigned fetch_width = 4;     ///< instructions fetched/decoded per cycle
    unsigned retire_width = 4;    ///< instructions retired per cycle
    unsigned rob_entries = 192;   ///< reorder-buffer capacity
    unsigned iq_entries = 64;     ///< issue-queue capacity
    unsigned prf_entries = 256;   ///< physical register file (informational)
    unsigned lq_entries = 32;     ///< load-queue capacity
    unsigned sq_entries = 32;     ///< store-queue capacity
};

/** One cache level. */
struct CacheConfig
{
    std::uint64_t size_bytes = 0;
    unsigned ways = 1;
    unsigned line_bytes = 64;
    Cycle access_latency = 1; ///< hit latency in cycles
    unsigned mshrs = 4;       ///< outstanding-miss registers

    /** Number of sets implied by size/ways/line. */
    std::uint64_t sets() const { return size_bytes / (ways * line_bytes); }
};

/** Two-level hierarchy plus memory (paper Table 2). */
struct MemoryConfig
{
    CacheConfig l1d{64 * 1024, 8, 64, 2, 4};
    CacheConfig l2{2 * 1024 * 1024, 16, 64, 20, 20};
    Cycle dram_latency = 300;
    /**
     * Minimum spacing between DRAM access starts (bandwidth model):
     * one 64-byte line per interval. Wasteful prefetchers pay for
     * their floods in everyone's fill latency.
     */
    Cycle dram_issue_interval = 16;
    /**
     * A prefetch is dropped (converted to a shadow operation) when no
     * L2 MSHR frees up within this many cycles — the "memory system is
     * stressed" back-off of paper section 4.2. Sized to the target
     * prefetch distance (~30 accesses) at miss-bound pacing.
     */
    Cycle prefetch_mshr_wait_limit = 2400;
    /**
     * L2 MSHRs kept in reserve for demand traffic: a prefetch is
     * dropped unless more than this many slots free up within the wait
     * limit, so inaccurate prefetchers cannot starve demand fills.
     */
    unsigned l2_mshr_reserve = 4;

    /**
     * Average L1 miss penalty (cycles) for a given observed L2 miss rate,
     * as defined in paper section 4.3:
     *   L1 miss penalty = L2 latency + L2 miss rate * DRAM latency.
     */
    double
    l1MissPenalty(double l2_miss_rate) const
    {
        return static_cast<double>(l2.access_latency) +
               l2_miss_rate * static_cast<double>(dram_latency);
    }
};

/** Reward-function shape (paper section 4.3 / Figure 5). */
struct RewardConfig
{
    unsigned window_lo = 18;    ///< first depth with positive reward
    unsigned window_hi = 50;    ///< last depth with positive reward
    unsigned window_center = 30;///< bell peak (average target distance)
    int peak_reward = 8;        ///< reward at the bell's peak
    int late_penalty = -4;      ///< reward for depth < window_lo (too late)
    int early_penalty = -2;     ///< reward for depth > window_hi (too early)
    int expiry_penalty = -2;    ///< reward for entries that expire unhit
};

/** Context-based prefetcher structures (paper Table 2, middle block). */
struct ContextPrefetcherConfig
{
    unsigned cst_entries = 2048;     ///< direct-mapped CST entries
    unsigned cst_links = 4;          ///< (delta, score) pairs per entry
    unsigned reducer_entries = 16384;///< direct-mapped reducer entries
    unsigned history_entries = 50;   ///< history-queue depth
    unsigned prefetch_queue_entries = 128;
    unsigned block_bytes = 64;       ///< prediction granularity
    unsigned full_hash_bits = 16;    ///< full-context hash width
    unsigned reduced_hash_bits = 19; ///< reduced-context hash width
    unsigned cst_tag_bits = 8;
    unsigned max_degree = 4;         ///< max prefetches per lookup
    /**
     * Minimum link score before a prediction is dispatched as a real
     * prefetch; colder links are tracked as shadow operations. The
     * paper dispatches the top-scoring candidate outright (threshold
     * 0); raising this trades coverage for fewer wasted prefetches on
     * adversarial streams (see bench/ablation_context).
     */
    int real_score_threshold = 0;
    double epsilon_max = 0.10;       ///< exploration rate ceiling
    double epsilon_min = 0.01;       ///< exploration rate floor
    /**
     * Exploration draw policy. The paper uses uniform epsilon-greedy
     * draws; softmax selection (weighted by link score) implements the
     * policy-search direction its conclusion proposes (section 8).
     */
    bool softmax_exploration = false;
    double softmax_temperature = 8.0;
    unsigned overload_threshold = 48;  ///< reducer entries per CST entry
    unsigned underload_threshold = 1;  ///< merge point for reduction
    unsigned min_free_mshrs = 1;     ///< below this, prefetches go shadow
    RewardConfig reward;

    /** Storage estimate in bytes (paper: ~31kB total). */
    std::uint64_t storageBytes() const;
};

/** GHB configuration (paper Table 2, bottom block). */
struct GhbConfig
{
    unsigned ghb_entries = 2048;  ///< global history buffer size
    unsigned index_entries = 512; ///< index table size
    unsigned history_length = 3;  ///< delta-correlation key length
    unsigned degree = 3;          ///< prefetch degree
};

/** SMS configuration (paper Table 2, bottom block). */
struct SmsConfig
{
    unsigned pht_entries = 2048; ///< pattern history table
    unsigned agt_entries = 32;   ///< active generation table
    unsigned filter_entries = 32;///< filter table
    std::uint64_t region_bytes = 2048;
    unsigned line_bytes = 64;
};

/** Stride prefetcher configuration. */
struct StrideConfig
{
    unsigned table_entries = 512;
    unsigned degree = 2;
    unsigned confidence_threshold = 2;
};

/** Markov (Joseph & Grunwald) prefetcher configuration. */
struct MarkovConfig
{
    unsigned table_entries = 4096;
    unsigned successors = 4;
    unsigned degree = 2;
};

/** Whole-system configuration. */
struct SystemConfig
{
    CoreConfig core;
    MemoryConfig memory;
    ContextPrefetcherConfig context;
    GhbConfig ghb;
    SmsConfig sms;
    StrideConfig stride;
    MarkovConfig markov;
    std::uint64_t seed = 1;

    /** Render the configuration as a human-readable table (Table 2). */
    std::string describe() const;

  private:
    std::string dramLatencyLabel() const;
};

} // namespace csp

#endif // CSP_CORE_CONFIG_H
