#include "core/content_store.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace csp {

bool
ensureDirectories(const std::string &dir)
{
    if (dir.empty())
        return true;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    return !ec || std::filesystem::is_directory(dir, ec);
}

bool
readFileToString(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    if (!in.good() && !in.eof())
        return false;
    out = buf.str();
    return true;
}

std::string
uniqueTempPath(const std::string &path)
{
    static std::atomic<std::uint64_t> counter{0};
    std::ostringstream out;
    out << path << ".tmp." << ::getpid() << '.'
        << counter.fetch_add(1, std::memory_order_relaxed);
    return out.str();
}

bool
atomicWriteFile(const std::string &path, std::string_view bytes)
{
    const std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    if (!parent.empty() && !ensureDirectories(parent.string()))
        return false;
    const std::string tmp = uniqueTempPath(path);
    {
        std::ofstream out(tmp, std::ios::binary);
        if (!out) {
            return false;
        }
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        if (!out) {
            out.close();
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (!atomicRename(tmp, path)) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
atomicRename(const std::string &from, const std::string &to)
{
    return std::rename(from.c_str(), to.c_str()) == 0;
}

} // namespace csp
