/**
 * @file
 * Filesystem primitives for the content-addressed stores (the
 * `results/cache/` result cache and `traces/cache/` trace cache):
 * recursive directory creation, whole-file reads, and atomic writes.
 *
 * Atomicity matters because sweep shards run as independent processes
 * that may store the same digest concurrently: every write goes to a
 * unique temp file in the destination directory and is renamed into
 * place, so readers only ever observe complete entries and concurrent
 * writers race benignly (the entries are content-addressed — both
 * writers produce identical bytes, and the last rename wins).
 */

#ifndef CSP_CORE_CONTENT_STORE_H
#define CSP_CORE_CONTENT_STORE_H

#include <string>
#include <string_view>

namespace csp {

/** Create @p dir and any missing parents; true when it exists after. */
bool ensureDirectories(const std::string &dir);

/** Read the whole file at @p path; false if unreadable. */
bool readFileToString(const std::string &path, std::string &out);

/**
 * A process/thread-unique sibling path of @p path, for write-then-
 * rename: same directory (so the rename never crosses filesystems),
 * named after the pid plus a process-wide counter.
 */
std::string uniqueTempPath(const std::string &path);

/**
 * Atomically publish @p bytes at @p path (unique temp file + rename),
 * creating parent directories as needed. Returns false on any
 * filesystem error, leaving no temp file behind.
 */
bool atomicWriteFile(const std::string &path, std::string_view bytes);

/** Atomically rename @p from over @p to; false on failure. */
bool atomicRename(const std::string &from, const std::string &to);

} // namespace csp

#endif // CSP_CORE_CONTENT_STORE_H
