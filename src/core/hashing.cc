#include "core/hashing.h"

namespace csp {

std::uint64_t
fnv1a(std::span<const std::uint8_t> bytes)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (std::uint8_t byte : bytes) {
        hash ^= byte;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

} // namespace csp
