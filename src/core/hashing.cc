#include "core/hashing.h"

namespace csp {

std::uint64_t
fnv1aResume(std::uint64_t state, std::span<const std::uint8_t> bytes)
{
    for (std::uint8_t byte : bytes) {
        state ^= byte;
        state *= 0x100000001b3ull;
    }
    return state;
}

std::uint64_t
fnv1a(std::span<const std::uint8_t> bytes)
{
    return fnv1aResume(kFnv1aBasis, bytes);
}

} // namespace csp
