/**
 * @file
 * Hash primitives used to fold machine contexts into table indices.
 *
 * The context-based prefetcher hashes a variable-length list of context
 * attribute values twice (paper section 4.4 / Figure 7): once over the full
 * attribute vector to index the Reducer, and once over the active subset to
 * index the Context-States Table. Both hashes are built from the primitives
 * here.
 */

#ifndef CSP_CORE_HASHING_H
#define CSP_CORE_HASHING_H

#include <cstdint>
#include <span>

namespace csp {

/** FNV-1a initial state (offset basis), for chunked hashing. */
inline constexpr std::uint64_t kFnv1aBasis = 0xcbf29ce484222325ull;

/** 64-bit FNV-1a over a byte span. */
std::uint64_t fnv1a(std::span<const std::uint8_t> bytes);

/**
 * Continue an FNV-1a hash from @p state over @p bytes, so large inputs
 * can be hashed window-by-window: chaining from kFnv1aBasis across
 * consecutive chunks equals fnv1a over their concatenation. Lets the
 * mmap'd trace verifier hash a file without keeping it resident.
 */
std::uint64_t fnv1aResume(std::uint64_t state,
                          std::span<const std::uint8_t> bytes);

/** Strong 64-bit integer mix (splitmix64 finalizer). */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Combine an accumulated hash with one more 64-bit value. */
constexpr std::uint64_t
hashCombine(std::uint64_t seed, std::uint64_t value)
{
    return mix64(seed ^ (mix64(value) + 0x9e3779b97f4a7c15ull +
                         (seed << 6) + (seed >> 2)));
}

/**
 * hashCombine with the value's mix64 precomputed:
 * hashCombinePremixed(seed, mix64(v)) == hashCombine(seed, v).
 * Callers that hash the same values repeatedly (the context snapshot's
 * per-attribute lanes) cache the mix and pay only the cheap combine.
 */
constexpr std::uint64_t
hashCombinePremixed(std::uint64_t seed, std::uint64_t mixed)
{
    return mix64(seed ^ (mixed + 0x9e3779b97f4a7c15ull + (seed << 6) +
                         (seed >> 2)));
}

/** Initial WordHasher state (exposed so incremental hashers can chain
 *  hashCombine themselves and still match WordHasher digests). */
inline constexpr std::uint64_t kWordHasherSeed = 0x51ed270b35ae7d25ull;

/**
 * Incremental hasher over 64-bit words. The order of added words matters,
 * which is what we want: context attributes are position-significant.
 */
class WordHasher
{
  public:
    /** Add one word to the running hash. */
    void
    add(std::uint64_t value)
    {
        state_ = hashCombine(state_, value);
    }

    /** Current digest. */
    std::uint64_t digest() const { return state_; }

    /** Digest truncated to the low @p bits bits. */
    std::uint64_t
    digestBits(unsigned bits) const
    {
        return bits >= 64 ? state_ : (state_ & ((1ull << bits) - 1));
    }

  private:
    std::uint64_t state_ = kWordHasherSeed;
};

} // namespace csp

#endif // CSP_CORE_HASHING_H
