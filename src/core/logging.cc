#include "core/logging.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace csp {

namespace {

// Each line is formatted into one buffer and handed to stderr with a
// single fwrite (stderr is unbuffered, so that is one write), so
// concurrent sweep workers never interleave mid-line.
void
vreport(const char *tag, const char *fmt, std::va_list args)
{
    std::va_list measure;
    va_copy(measure, args);
    const int body = std::vsnprintf(nullptr, 0, fmt, measure);
    va_end(measure);

    std::string line(tag);
    line += ": ";
    if (body > 0) {
        const std::size_t offset = line.size();
        line.resize(offset + static_cast<std::size_t>(body) + 1);
        std::vsnprintf(line.data() + offset,
                       static_cast<std::size_t>(body) + 1, fmt, args);
        line.resize(offset + static_cast<std::size_t>(body));
    }
    line += '\n';
    std::fwrite(line.data(), 1, line.size(), stderr);
}

} // namespace

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

} // namespace csp
