/**
 * @file
 * Error-reporting helpers in the gem5 style.
 *
 * panic()  — an internal invariant was violated: a bug in this library.
 *            Aborts (may dump core).
 * fatal()  — the simulation cannot continue because of a user error
 *            (bad configuration, invalid arguments). Exits with code 1.
 * warn()   — something is suspicious but the run can continue.
 * inform() — plain status output.
 */

#ifndef CSP_CORE_LOGGING_H
#define CSP_CORE_LOGGING_H

#include <cstdarg>
#include <string>

namespace csp {

/** Abort with a formatted message; use for internal invariant violations. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit(1) with a formatted message; use for user/configuration errors. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr; the run continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Assertion that is kept in release builds. Use for cheap invariants on
 * non-hot paths; falls through to panic() on failure.
 */
#define CSP_ASSERT(cond, ...)                                                \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::csp::panic("assertion failed: %s (%s:%d)", #cond, __FILE__,    \
                         __LINE__);                                          \
        }                                                                    \
    } while (0)

} // namespace csp

#endif // CSP_CORE_LOGGING_H
