#include "core/profiling.h"

#include <string>

#include "core/stats_registry.h"

namespace csp::prof {

const char *
phaseStatName(Phase phase)
{
    switch (phase) {
      case Phase::TraceGen: return "trace_gen";
      case Phase::Replay: return "replay";
      case Phase::MemAccess: return "mem.access";
      case Phase::MemPrefetch: return "mem.prefetch";
      case Phase::PrefetchObserve: return "prefetch.observe";
      case Phase::PrefetchTrain: return "prefetch.train";
      case Phase::PrefetchPredict: return "prefetch.predict";
      case Phase::StatsFlush: return "stats_flush";
      case Phase::Count: break;
    }
    return "?";
}

void
Profiler::registerStats(stats::Registry &registry) const
{
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(Phase::Count); ++i) {
        const auto phase = static_cast<Phase>(i);
        const std::string base =
            std::string("prof.") + phaseStatName(phase);
        const Slot *slot = &slots_[i];
        registry.counter(base + ".ns", &slot->ns,
                         "wall-clock nanoseconds in this phase");
        registry.counter(base + ".calls", &slot->calls,
                         "timed sections folded into this phase");
        registry.gauge(
            base + ".ns_per_call",
            [slot]() -> double {
                return slot->calls == 0
                           ? 0.0
                           : static_cast<double>(slot->ns) /
                                 static_cast<double>(slot->calls);
            },
            "average nanoseconds per timed section");
    }
    // Per-access derivations for the phases that run once per demand
    // access; resolved lazily against the hierarchy's counters.
    for (const char *per_access :
         {"replay", "mem.access", "prefetch.observe"}) {
        registry.formula(std::string("prof.") + per_access +
                             ".ns_per_access",
                         std::string("prof.") + per_access + ".ns",
                         "mem.l1.demand_accesses", 1.0,
                         "phase nanoseconds per demand access");
    }
}

} // namespace csp::prof
