/**
 * @file
 * Hierarchical self-profiling: RAII scoped phase timers that attribute
 * simulator wall-clock to named phases (trace generation, replay, each
 * prefetcher's train/predict paths, memory-hierarchy work, stats
 * flushing) and publish the accumulated nanoseconds under the `prof.*`
 * subtree of a run's stats registry.
 *
 * The replay hot loop is only instrumented in the kProfiled=true
 * instantiation of Simulator::runFrom (mirroring the kObserved
 * observability split of the lifecycle tracker), so runs without
 * --profile execute code with no timer plumbing at all; the ScopedTimer
 * additionally no-ops on a null Profiler so cold paths can share one
 * spelling for both modes.
 */

#ifndef CSP_CORE_PROFILING_H
#define CSP_CORE_PROFILING_H

#include <array>
#include <chrono>
#include <cstdint>

namespace csp::stats {
class Registry;
}

namespace csp::prof {

/** The phases wall-clock is attributed to. Replay is inclusive of the
 *  finer-grained phases nested inside it (mem.access, prefetch.*). */
enum class Phase : std::uint8_t
{
    TraceGen,        ///< workload trace generation (or trace load)
    Replay,          ///< the whole replay loop, inclusive
    MemAccess,       ///< mem::Hierarchy::access (demand path)
    MemPrefetch,     ///< mem::Hierarchy::prefetch (dispatch path)
    PrefetchObserve, ///< Prefetcher::observe, inclusive of train/predict
    PrefetchTrain,   ///< learning-side work inside observe (context pf)
    PrefetchPredict, ///< prediction-side work inside observe (context pf)
    StatsFlush,      ///< interval sampling + end-of-run stats snapshot
    Count,
};

/** Dotted stat name for @p phase (without the "prof." prefix). */
const char *phaseStatName(Phase phase);

/**
 * Per-run accumulator of phase wall-clock. One per simulated run;
 * never shared across threads. registerStats() publishes
 * `prof.<phase>.ns` / `prof.<phase>.calls` counters plus derived
 * per-call and per-access gauges; the registry reads through pointers
 * into this object, so it must outlive any report taken from that
 * registry.
 */
class Profiler
{
  public:
    /** Fold @p ns nanoseconds (from @p calls timed sections) into
     *  @p phase. */
    void
    add(Phase phase, std::uint64_t ns, std::uint64_t calls = 1)
    {
        Slot &slot = slots_[static_cast<std::size_t>(phase)];
        slot.ns += ns;
        slot.calls += calls;
    }

    std::uint64_t
    ns(Phase phase) const
    {
        return slots_[static_cast<std::size_t>(phase)].ns;
    }

    std::uint64_t
    calls(Phase phase) const
    {
        return slots_[static_cast<std::size_t>(phase)].calls;
    }

    /** Publish the `prof.*` subtree into @p registry. */
    void registerStats(stats::Registry &registry) const;

  private:
    struct Slot
    {
        std::uint64_t ns = 0;
        std::uint64_t calls = 0;
    };
    std::array<Slot, static_cast<std::size_t>(Phase::Count)> slots_{};
};

/**
 * RAII section timer: measures from construction to destruction and
 * folds the elapsed nanoseconds into one Profiler phase. A null
 * profiler skips the clock reads entirely, so the same spelling works
 * on paths where profiling may be disabled.
 */
class ScopedTimer
{
  public:
    ScopedTimer(Profiler *profiler, Phase phase)
        : profiler_(profiler), phase_(phase)
    {
        if (profiler_ != nullptr)
            start_ = std::chrono::steady_clock::now();
    }

    ~ScopedTimer()
    {
        if (profiler_ != nullptr) {
            const auto ns =
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
            profiler_->add(phase_, static_cast<std::uint64_t>(ns));
        }
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Profiler *profiler_;
    Phase phase_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace csp::prof

#endif // CSP_CORE_PROFILING_H
