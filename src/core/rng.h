/**
 * @file
 * Deterministic, seedable pseudo-random number generation.
 *
 * All stochastic behaviour in the library (workload generators, arena
 * placement randomisation, epsilon-greedy exploration) draws from Rng so
 * that every experiment is exactly reproducible from its seed. The
 * implementation is xoshiro256** (public-domain algorithm by Blackman &
 * Vigna), which is fast, has a 256-bit state, and passes BigCrush.
 */

#ifndef CSP_CORE_RNG_H
#define CSP_CORE_RNG_H

#include <cstdint>

#include "core/logging.h"

namespace csp {

/** Deterministic xoshiro256** generator. */
class Rng
{
  public:
    /** Seed via splitmix64 so that nearby seeds give unrelated streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto &word : state) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        CSP_ASSERT(bound != 0);
        // Lemire's nearly-divisionless bounded generation (biased by at
        // most 2^-64, irrelevant at simulation scales).
        const unsigned __int128 product =
            static_cast<unsigned __int128>(next()) * bound;
        return static_cast<std::uint64_t>(product >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        CSP_ASSERT(lo <= hi);
        const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
        return lo + static_cast<std::int64_t>(below(span));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with success probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Geometric-ish skewed pick in [0, n): smaller indices are more
     * likely. Used by workload models for hot/cold working-set skew.
     */
    std::uint64_t
    skewedBelow(std::uint64_t n, double skew)
    {
        if (n == 0)
            return 0;
        double u = uniform();
        // Map the uniform variate through a power curve; skew = 1 is
        // uniform, larger values concentrate mass near zero.
        double mapped = 1.0;
        for (double s = skew; s >= 1.0; s -= 1.0)
            mapped *= u;
        return static_cast<std::uint64_t>(mapped * static_cast<double>(n)) %
               n;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4];
};

} // namespace csp

#endif // CSP_CORE_RNG_H
