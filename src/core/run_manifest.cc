#include "core/run_manifest.h"

#include <sys/utsname.h>
#include <unistd.h>

#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <ostream>
#include <sstream>
#include <thread>

#include "core/hashing.h"

// Build-provenance fallbacks: the build system normally bakes these in
// per-source-file (see src/CMakeLists.txt); a bare compile still links.
#ifndef CSP_GIT_SHA
#define CSP_GIT_SHA "unknown"
#endif
#ifndef CSP_GIT_DIRTY
#define CSP_GIT_DIRTY 0
#endif
#ifndef CSP_BUILD_TYPE
#define CSP_BUILD_TYPE "unknown"
#endif
#ifndef CSP_CXX_COMPILER
#define CSP_CXX_COMPILER "unknown"
#endif
#ifndef CSP_CXX_FLAGS
#define CSP_CXX_FLAGS ""
#endif

namespace csp {

namespace {

/** Double knobs enter the digest by bit pattern, not by rounding. */
std::uint64_t
doubleBits(double value)
{
    return std::bit_cast<std::uint64_t>(value);
}

void
addCache(WordHasher &h, const CacheConfig &c)
{
    h.add(c.size_bytes);
    h.add(c.ways);
    h.add(c.line_bytes);
    h.add(c.access_latency);
    h.add(c.mshrs);
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char ch : text) {
        switch (ch) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

} // namespace

std::uint64_t
configDigest(const SystemConfig &config)
{
    WordHasher h;
    // Every knob, in declaration order. New knobs must be appended so
    // an unchanged configuration keeps its digest within one build.
    const CoreConfig &core = config.core;
    h.add(core.fetch_width);
    h.add(core.retire_width);
    h.add(core.rob_entries);
    h.add(core.iq_entries);
    h.add(core.prf_entries);
    h.add(core.lq_entries);
    h.add(core.sq_entries);

    const MemoryConfig &mem = config.memory;
    addCache(h, mem.l1d);
    addCache(h, mem.l2);
    h.add(mem.dram_latency);
    h.add(mem.dram_issue_interval);
    h.add(mem.prefetch_mshr_wait_limit);
    h.add(mem.l2_mshr_reserve);

    const ContextPrefetcherConfig &ctx = config.context;
    h.add(ctx.cst_entries);
    h.add(ctx.cst_links);
    h.add(ctx.reducer_entries);
    h.add(ctx.history_entries);
    h.add(ctx.prefetch_queue_entries);
    h.add(ctx.block_bytes);
    h.add(ctx.full_hash_bits);
    h.add(ctx.reduced_hash_bits);
    h.add(ctx.cst_tag_bits);
    h.add(ctx.max_degree);
    h.add(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(ctx.real_score_threshold)));
    h.add(doubleBits(ctx.epsilon_max));
    h.add(doubleBits(ctx.epsilon_min));
    h.add(ctx.softmax_exploration ? 1 : 0);
    h.add(doubleBits(ctx.softmax_temperature));
    h.add(ctx.overload_threshold);
    h.add(ctx.underload_threshold);
    h.add(ctx.min_free_mshrs);
    const RewardConfig &reward = ctx.reward;
    h.add(reward.window_lo);
    h.add(reward.window_hi);
    h.add(reward.window_center);
    h.add(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(reward.peak_reward)));
    h.add(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(reward.late_penalty)));
    h.add(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(reward.early_penalty)));
    h.add(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(reward.expiry_penalty)));

    const GhbConfig &ghb = config.ghb;
    h.add(ghb.ghb_entries);
    h.add(ghb.index_entries);
    h.add(ghb.history_length);
    h.add(ghb.degree);

    const SmsConfig &sms = config.sms;
    h.add(sms.pht_entries);
    h.add(sms.agt_entries);
    h.add(sms.filter_entries);
    h.add(sms.region_bytes);
    h.add(sms.line_bytes);

    const StrideConfig &stride = config.stride;
    h.add(stride.table_entries);
    h.add(stride.degree);
    h.add(stride.confidence_threshold);

    const MarkovConfig &markov = config.markov;
    h.add(markov.table_entries);
    h.add(markov.successors);
    h.add(markov.degree);

    h.add(config.seed);
    return h.digest();
}

std::string
hexDigest(std::uint64_t digest)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(digest));
    return buf;
}

std::string
RunManifest::toJson() const
{
    std::ostringstream out;
    out.precision(6);
    out << std::fixed;
    out << "{\"schema\":\"" << jsonEscape(schema) << '"'
        << ",\"tool\":\"" << jsonEscape(tool) << '"'
        << ",\"git_sha\":\"" << jsonEscape(git_sha) << '"'
        << ",\"git_dirty\":" << (git_dirty ? "true" : "false")
        << ",\"build_type\":\"" << jsonEscape(build_type) << '"'
        << ",\"compiler\":\"" << jsonEscape(compiler) << '"'
        << ",\"cxx_flags\":\"" << jsonEscape(cxx_flags) << '"'
        << ",\"config_digest\":\"" << jsonEscape(config_digest) << '"'
        << ",\"seed\":" << seed
        << ",\"workloads\":\"" << jsonEscape(workloads) << '"'
        << ",\"prefetchers\":\"" << jsonEscape(prefetchers) << '"'
        << ",\"scale\":" << scale
        << ",\"placement\":\"" << jsonEscape(placement) << '"'
        << ",\"jobs\":" << jobs
        << ",\"trace_digest\":\"" << jsonEscape(trace_digest) << '"'
        << ",\"trace_records\":" << trace_records
        << ",\"trace_instructions\":" << trace_instructions
        << ",\"trace_accesses\":" << trace_accesses
        << ",\"hostname\":\"" << jsonEscape(hostname) << '"'
        << ",\"kernel\":\"" << jsonEscape(kernel) << '"'
        << ",\"arch\":\"" << jsonEscape(arch) << '"'
        << ",\"hw_threads\":" << hw_threads
        << ",\"start_utc\":\"" << jsonEscape(start_utc) << '"'
        << ",\"trace_gen_seconds\":" << trace_gen_seconds
        << ",\"sim_seconds\":" << sim_seconds
        << ",\"insts_per_sec\":" << insts_per_sec << '}';
    return out.str();
}

void
RunManifest::writeCsvComment(std::ostream &out) const
{
    out << "# manifest " << toJson() << '\n';
}

RunManifest
makeRunManifest(const std::string &tool, const SystemConfig &config)
{
    RunManifest m;
    m.tool = tool;
    const char *sha_env = std::getenv("CSP_GIT_SHA");
    m.git_sha = sha_env != nullptr && *sha_env != '\0' ? sha_env
                                                       : CSP_GIT_SHA;
    m.git_dirty = CSP_GIT_DIRTY != 0;
    m.build_type = CSP_BUILD_TYPE;
    m.compiler = CSP_CXX_COMPILER;
    m.cxx_flags = CSP_CXX_FLAGS;
    m.config_digest = hexDigest(configDigest(config));
    m.seed = config.seed;

    utsname uts{};
    if (uname(&uts) == 0) {
        m.hostname = uts.nodename;
        m.kernel = std::string(uts.sysname) + " " + uts.release;
        m.arch = uts.machine;
    }
    m.hw_threads = std::thread::hardware_concurrency();

    const std::time_t now =
        std::chrono::system_clock::to_time_t(
            std::chrono::system_clock::now());
    std::tm tm{};
    if (gmtime_r(&now, &tm) != nullptr) {
        char buf[32];
        std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
        m.start_utc = buf;
    }
    return m;
}

} // namespace csp
