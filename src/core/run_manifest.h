/**
 * @file
 * Run provenance: a manifest embedded in every stats JSON and sweep
 * CSV that records what produced the numbers — the build (git SHA,
 * build type, compiler, flags), the full resolved configuration as a
 * digest, the RNG seed, the workload trace's content digest, the host,
 * and wall-clock/throughput of the run itself.
 *
 * Two runs whose manifests agree on config_digest + trace_digest +
 * seed are replaying the same input through the same knobs, so every
 * correctness stat must match bit for bit; `cspdiff` uses exactly this
 * to decide whether a delta is drift or an intentional change.
 *
 * Everything here is deterministic except the host/timing block, which
 * is why cspdiff classifies `manifest.*` as informational and why the
 * manifest never appears on cspsim's stdout CSV (the serial-vs-parallel
 * byte-identical determinism contract covers stdout).
 */

#ifndef CSP_CORE_RUN_MANIFEST_H
#define CSP_CORE_RUN_MANIFEST_H

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/config.h"

namespace csp {

/**
 * Order-sensitive digest over every knob of @p config (all nested
 * structs, doubles by bit pattern). Any single-knob change produces a
 * different digest; the seed participates, so "same digest" means
 * "same deterministic run inputs modulo the trace itself".
 */
std::uint64_t configDigest(const SystemConfig &config);

/** 16-hex-digit rendering of a 64-bit digest. */
std::string hexDigest(std::uint64_t digest);

/** See file comment. */
struct RunManifest
{
    std::string schema = "csp-run-manifest-v1";
    std::string tool; ///< producing binary ("cspsim", "runSweep", ...)

    // Build provenance (captured at configure time; the CSP_GIT_SHA
    // environment variable overrides the baked-in SHA so cached CI
    // builds still stamp the commit under test).
    std::string git_sha;
    bool git_dirty = false;
    std::string build_type;
    std::string compiler;
    std::string cxx_flags;

    // Run identity: enough to reproduce the run exactly.
    std::string config_digest; ///< hexDigest(configDigest(config))
    std::uint64_t seed = 0;
    std::string workloads;   ///< comma-joined workload names
    std::string prefetchers; ///< comma-joined prefetcher names
    std::uint64_t scale = 0;
    std::string placement; ///< "seq" or "rand"
    unsigned jobs = 0;     ///< resolved worker-thread count

    // Input-trace provenance (TraceBuffer::contentDigest over every
    // workload, combined in workload order for sweeps).
    std::string trace_digest;
    std::uint64_t trace_records = 0;
    std::uint64_t trace_instructions = 0;
    std::uint64_t trace_accesses = 0;

    // Host + wall-clock block — informational, never compared exactly.
    std::string hostname;
    std::string kernel;
    std::string arch;
    unsigned hw_threads = 0;
    std::string start_utc; ///< ISO-8601 UTC at manifest creation

    double trace_gen_seconds = 0.0;
    double sim_seconds = 0.0;
    double insts_per_sec = 0.0; ///< simulated instructions per second

    /** Render as a single-line JSON object. */
    std::string toJson() const;

    /** Write the manifest as one `# manifest <json>` CSV comment line
     *  (readers must skip lines starting with '#'). */
    void writeCsvComment(std::ostream &out) const;
};

/**
 * A manifest pre-filled with everything knowable before the run:
 * build provenance, config digest + seed, host info and start time.
 * Callers fill the workload/trace/timing fields as they learn them.
 */
RunManifest makeRunManifest(const std::string &tool,
                            const SystemConfig &config);

} // namespace csp

#endif // CSP_CORE_RUN_MANIFEST_H
