#include "core/stats.h"

namespace csp {

Histogram::Histogram(std::uint64_t max, std::size_t buckets)
    : max_(max), width_((max + buckets - 1) / buckets), counts_(buckets, 0)
{
    CSP_ASSERT(max > 0 && buckets > 0);
    if (width_ == 0)
        width_ = 1;
}

void
Histogram::sample(std::uint64_t value)
{
    ++total_;
    sum_ += value < max_ ? value : max_;
    if (value >= max_) {
        ++overflow_;
        return;
    }
    std::size_t idx = value / width_;
    if (idx >= counts_.size())
        idx = counts_.size() - 1;
    ++counts_[idx];
}

std::uint64_t
Histogram::bucketEdge(std::size_t i) const
{
    return (i + 1) * width_ - 1;
}

double
Histogram::cdfAt(std::uint64_t value) const
{
    if (total_ == 0)
        return 0.0;
    std::uint64_t below = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (bucketEdge(i) <= value)
            below += counts_[i];
        else
            break;
    }
    if (value >= max_)
        below += overflow_;
    return static_cast<double>(below) / static_cast<double>(total_);
}

double
Histogram::mean() const
{
    return total_ == 0
               ? 0.0
               : static_cast<double>(sum_) / static_cast<double>(total_);
}

void
Histogram::clear()
{
    for (auto &c : counts_)
        c = 0;
    overflow_ = 0;
    total_ = 0;
    sum_ = 0;
}

Log2Histogram::Log2Histogram(std::size_t buckets) : counts_(buckets, 0)
{
    CSP_ASSERT(buckets >= 2);
}

std::uint64_t
Log2Histogram::bucketLo(std::size_t i) const
{
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
}

std::uint64_t
Log2Histogram::bucketHi(std::size_t i) const
{
    return i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
}

double
Log2Histogram::mean() const
{
    return total_ == 0
               ? 0.0
               : static_cast<double>(sum_) / static_cast<double>(total_);
}

std::uint64_t
Log2Histogram::percentile(double p) const
{
    if (total_ == 0)
        return 0;
    if (total_ == 1) {
        // One sample: every percentile IS that sample (sum_ holds its
        // exact value), not the power-of-two bucket ceiling.
        return sum_;
    }
    if (p > 1.0)
        p = 1.0;
    if (p < 0.0)
        p = 0.0;
    // Rank of the requested sample, 1-based; p50 of 10 samples is the
    // 5th from the bottom.
    auto rank = static_cast<std::uint64_t>(
        p * static_cast<double>(total_));
    if (rank == 0)
        rank = 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        seen += counts_[i];
        if (seen >= rank)
            return bucketHi(i);
    }
    return bucketHi(counts_.size() - 1);
}

std::uint64_t
Log2Histogram::minEdge() const
{
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] != 0)
            return bucketLo(i);
    }
    return 0;
}

std::uint64_t
Log2Histogram::maxEdge() const
{
    for (std::size_t i = counts_.size(); i > 0; --i) {
        if (counts_[i - 1] != 0)
            return bucketHi(i - 1);
    }
    return 0;
}

void
Log2Histogram::clear()
{
    for (auto &c : counts_)
        c = 0;
    total_ = 0;
    sum_ = 0;
}

} // namespace csp
