#include "core/stats.h"

namespace csp {

Histogram::Histogram(std::uint64_t max, std::size_t buckets)
    : max_(max), width_((max + buckets - 1) / buckets), counts_(buckets, 0)
{
    CSP_ASSERT(max > 0 && buckets > 0);
    if (width_ == 0)
        width_ = 1;
}

void
Histogram::sample(std::uint64_t value)
{
    ++total_;
    sum_ += value < max_ ? value : max_;
    if (value >= max_) {
        ++overflow_;
        return;
    }
    std::size_t idx = value / width_;
    if (idx >= counts_.size())
        idx = counts_.size() - 1;
    ++counts_[idx];
}

std::uint64_t
Histogram::bucketEdge(std::size_t i) const
{
    return (i + 1) * width_ - 1;
}

double
Histogram::cdfAt(std::uint64_t value) const
{
    if (total_ == 0)
        return 0.0;
    std::uint64_t below = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (bucketEdge(i) <= value)
            below += counts_[i];
        else
            break;
    }
    if (value >= max_)
        below += overflow_;
    return static_cast<double>(below) / static_cast<double>(total_);
}

double
Histogram::mean() const
{
    return total_ == 0
               ? 0.0
               : static_cast<double>(sum_) / static_cast<double>(total_);
}

void
Histogram::clear()
{
    for (auto &c : counts_)
        c = 0;
    overflow_ = 0;
    total_ = 0;
    sum_ = 0;
}

} // namespace csp
