/**
 * @file
 * Statistics primitives: saturating counters, scalar counters, histograms
 * and distribution summaries used for the evaluation figures.
 */

#ifndef CSP_CORE_STATS_H
#define CSP_CORE_STATS_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/logging.h"
#include "core/types.h"

namespace csp {

/**
 * Saturating signed counter with compile-time bounds. The CST stores one
 * per context-address association (paper: 1-byte integer score).
 */
template <typename T, T Min, T Max>
class SaturatingCounter
{
    static_assert(Min < Max, "bounds must be ordered");

  public:
    constexpr SaturatingCounter() = default;
    constexpr explicit SaturatingCounter(T initial) : value_(clamp(initial))
    {}

    /** Current value. */
    constexpr T value() const { return value_; }

    /** Add @p delta, saturating at the bounds. */
    constexpr void
    add(std::int64_t delta)
    {
        std::int64_t next = static_cast<std::int64_t>(value_) + delta;
        if (next < static_cast<std::int64_t>(Min))
            next = Min;
        if (next > static_cast<std::int64_t>(Max))
            next = Max;
        value_ = static_cast<T>(next);
    }

    /** Reset to @p value (clamped). */
    constexpr void set(T value) { value_ = clamp(value); }

    constexpr bool operator<(const SaturatingCounter &o) const
    {
        return value_ < o.value_;
    }

  private:
    static constexpr T
    clamp(T v)
    {
        return v < Min ? Min : (v > Max ? Max : v);
    }

    T value_ = 0;
};

/** The 8-bit score kept per CST link (paper section 5). */
using Score8 = SaturatingCounter<std::int16_t, -128, 127>;

/**
 * Fixed-bucket histogram over a [0, max) range with uniform bucket width,
 * plus an overflow bucket. Used for prefetch hit-depth distributions
 * (paper Figure 8).
 */
class Histogram
{
  public:
    /** @param max upper bound of the tracked range.
     *  @param buckets number of uniform buckets covering [0, max). */
    Histogram(std::uint64_t max, std::size_t buckets);

    /** Record one sample. */
    void sample(std::uint64_t value);

    /** Total number of samples, including overflow. */
    std::uint64_t count() const { return total_; }

    /** Samples landing at or above max. */
    std::uint64_t overflow() const { return overflow_; }

    /** Raw bucket counts. */
    const std::vector<std::uint64_t> &buckets() const { return counts_; }

    /** Inclusive upper edge of bucket @p i. */
    std::uint64_t bucketEdge(std::size_t i) const;

    /**
     * Cumulative fraction of samples with value <= @p value. This is the
     * CDF the paper plots in Figure 8.
     */
    double cdfAt(std::uint64_t value) const;

    /** Mean of recorded samples (overflow samples counted at max). */
    double mean() const;

    /** Reset all counts. */
    void clear();

  private:
    std::uint64_t max_;
    std::uint64_t width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
    std::uint64_t sum_ = 0;
};

/**
 * Fixed log2-bucket histogram: bucket 0 holds the value 0, bucket i
 * (i >= 1) holds values in [2^(i-1), 2^i). The bucket count is fixed at
 * construction; values at or beyond the last bucket's range land in the
 * last bucket. Because the bucket layout never depends on the data, two
 * runs that sample the same values produce bit-identical tables — the
 * property the observability layer's determinism contract relies on.
 * Percentiles are bucket-resolved (the inclusive upper edge of the
 * bucket containing the requested rank), which is exact enough for the
 * latency/depth telemetry it backs (reward-by-depth, fill latency).
 */
class Log2Histogram
{
  public:
    explicit Log2Histogram(std::size_t buckets = 32);

    /** Record one sample. */
    void
    sample(std::uint64_t value)
    {
        std::size_t idx = value == 0 ? 0 : floorLog2(value) + 1;
        if (idx >= counts_.size())
            idx = counts_.size() - 1;
        ++counts_[idx];
        ++total_;
        sum_ += value;
    }

    /** Total number of samples. */
    std::uint64_t count() const { return total_; }

    /** Raw bucket counts. */
    const std::vector<std::uint64_t> &buckets() const { return counts_; }

    /** Inclusive lower bound of bucket @p i (0, 1, 2, 4, 8, ...). */
    std::uint64_t bucketLo(std::size_t i) const;

    /** Inclusive upper bound of bucket @p i (0, 1, 3, 7, 15, ...). */
    std::uint64_t bucketHi(std::size_t i) const;

    /** Mean of all recorded samples. */
    double mean() const;

    /**
     * Upper edge of the bucket holding the sample of rank
     * ceil(@p p * count) for @p p in (0, 1] — e.g. percentile(0.5) is
     * a p50 estimate. @p p is clamped into [0, 1]. Returns 0 when
     * empty; with exactly one sample returns that sample's exact
     * value (not a bucket edge).
     */
    std::uint64_t percentile(double p) const;

    /** Smallest and largest non-empty bucket edges (0 when empty). */
    std::uint64_t minEdge() const;
    std::uint64_t maxEdge() const;

    /** Reset all counts. */
    void clear();

  private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    std::uint64_t sum_ = 0;
};

/**
 * Exponentially-weighted moving accuracy tracker in [0,1]. The prediction
 * unit throttles its prefetch degree with one of these, and the
 * exploration policy shrinks epsilon as it converges.
 */
class EwmaRate
{
  public:
    explicit EwmaRate(double alpha = 0.01, double initial = 0.5)
        : alpha_(alpha), value_(initial)
    {
        CSP_ASSERT(alpha > 0.0 && alpha <= 1.0);
    }

    /** Record one boolean outcome. */
    void
    record(bool success)
    {
        value_ += alpha_ * ((success ? 1.0 : 0.0) - value_);
    }

    /** Current smoothed rate. */
    double value() const { return value_; }

  private:
    double alpha_;
    double value_;
};

} // namespace csp

#endif // CSP_CORE_STATS_H
