#include "core/stats_registry.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "core/logging.h"

namespace csp::stats {

namespace {

bool
validName(const std::string &name)
{
    if (name.empty() || name.front() == '.' || name.back() == '.')
        return false;
    char prev = '.';
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                        c == '_' || c == '-' || c == '.';
        if (!ok || (c == '.' && prev == '.'))
            return false;
        prev = c;
    }
    return true;
}

double
finiteOrZero(double v)
{
    return std::isfinite(v) ? v : 0.0;
}

/** Render a value the way both JSON and CSV want it: integers exact,
 *  reals with enough digits to round-trip the metrics we track. */
void
writeNumber(std::ostream &out, double v)
{
    v = finiteOrZero(v);
    if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
        out << static_cast<long long>(v);
        return;
    }
    out << std::setprecision(12) << v;
}

DistSummary
summarise(const Histogram &hist)
{
    DistSummary s;
    s.count = hist.count();
    s.mean = hist.mean();
    const auto &buckets = hist.buckets();
    bool found = false;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        if (buckets[i] == 0)
            continue;
        if (!found) {
            s.min = i == 0 ? 0.0
                           : static_cast<double>(hist.bucketEdge(i - 1)) +
                                 1.0;
            found = true;
        }
        s.max = static_cast<double>(hist.bucketEdge(i));
    }
    if (hist.overflow() > 0) {
        const std::size_t last = buckets.size() - 1;
        s.max = static_cast<double>(hist.bucketEdge(last)) + 1.0;
        if (!found)
            s.min = s.max;
    }
    return s;
}

DistSummary
summarise(const Log2Histogram &hist)
{
    DistSummary s;
    s.count = hist.count();
    s.mean = hist.mean();
    s.min = static_cast<double>(hist.minEdge());
    s.max = static_cast<double>(hist.maxEdge());
    s.has_percentiles = true;
    s.p50 = static_cast<double>(hist.percentile(0.50));
    s.p90 = static_cast<double>(hist.percentile(0.90));
    s.p99 = static_cast<double>(hist.percentile(0.99));
    s.buckets = hist.buckets();
    return s;
}

} // namespace

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

void
Registry::add(Entry entry)
{
    if (!validName(entry.name))
        panic("invalid stat name: '%s'", entry.name.c_str());
    for (const Entry &existing : entries_) {
        if (existing.name == entry.name)
            panic("duplicate stat name: %s", entry.name.c_str());
        // A name must not be both a leaf and a group ("sim.ipc" vs
        // "sim.ipc.raw") or the hierarchical export is ambiguous.
        const std::string &a = existing.name;
        const std::string &b = entry.name;
        if (a.size() > b.size() ? (a.compare(0, b.size(), b) == 0 &&
                                   a[b.size()] == '.')
                                : (b.compare(0, a.size(), a) == 0 &&
                                   b.size() > a.size() &&
                                   b[a.size()] == '.')) {
            panic("stat name %s conflicts with group %s", b.c_str(),
                  a.c_str());
        }
    }
    entries_.push_back(std::move(entry));
}

void
Registry::counter(const std::string &name, const std::uint64_t *value,
                  const std::string &desc)
{
    CSP_ASSERT(value != nullptr);
    counter(name, [value] { return *value; }, desc);
}

void
Registry::counter(const std::string &name,
                  std::function<std::uint64_t()> fn,
                  const std::string &desc)
{
    Entry entry;
    entry.name = name;
    entry.desc = desc;
    entry.kind = Kind::Counter;
    entry.counter = std::move(fn);
    add(std::move(entry));
}

void
Registry::gauge(const std::string &name, std::function<double()> fn,
                const std::string &desc)
{
    Entry entry;
    entry.name = name;
    entry.desc = desc;
    entry.kind = Kind::Gauge;
    entry.gauge = std::move(fn);
    add(std::move(entry));
}

void
Registry::distribution(const std::string &name, const Histogram *hist,
                       const std::string &desc)
{
    CSP_ASSERT(hist != nullptr);
    distribution(name, [hist] { return summarise(*hist); }, desc);
}

void
Registry::distribution(const std::string &name,
                       const Log2Histogram *hist,
                       const std::string &desc)
{
    CSP_ASSERT(hist != nullptr);
    Entry entry;
    entry.name = name;
    entry.desc = desc;
    entry.kind = Kind::Distribution;
    entry.percentiles = true;
    entry.dist = [hist] { return summarise(*hist); };
    add(std::move(entry));
}

void
Registry::distribution(const std::string &name,
                       std::function<DistSummary()> fn,
                       const std::string &desc)
{
    Entry entry;
    entry.name = name;
    entry.desc = desc;
    entry.kind = Kind::Distribution;
    entry.dist = std::move(fn);
    add(std::move(entry));
}

void
Registry::formula(const std::string &name, const std::string &numerator,
                  const std::string &denominator, double scale,
                  const std::string &desc)
{
    Entry entry;
    entry.name = name;
    entry.desc = desc;
    entry.kind = Kind::Formula;
    entry.num = numerator;
    entry.den = denominator;
    entry.scale = scale;
    add(std::move(entry));
}

const Registry::Entry *
Registry::find(const std::string &name) const
{
    for (const Entry &entry : entries_) {
        if (entry.name == name)
            return &entry;
    }
    return nullptr;
}

bool
Registry::contains(const std::string &name) const
{
    return find(name) != nullptr;
}

double
Registry::entryValue(const Entry &entry) const
{
    switch (entry.kind) {
      case Kind::Counter:
        return static_cast<double>(entry.counter());
      case Kind::Gauge:
        return finiteOrZero(entry.gauge());
      case Kind::Distribution:
        panic("stat %s is a distribution, not a scalar",
              entry.name.c_str());
      case Kind::Formula: {
        const Entry *num = find(entry.num);
        const Entry *den = find(entry.den);
        if (num == nullptr || den == nullptr) {
            panic("formula %s references unknown stat %s",
                  entry.name.c_str(),
                  (num == nullptr ? entry.num : entry.den).c_str());
        }
        if (num->kind == Kind::Formula || den->kind == Kind::Formula ||
            num->kind == Kind::Distribution ||
            den->kind == Kind::Distribution) {
            panic("formula %s operands must be counters or gauges",
                  entry.name.c_str());
        }
        const double d = entryValue(*den);
        return d == 0.0
                   ? 0.0
                   : finiteOrZero(entry.scale * entryValue(*num) / d);
      }
    }
    panic("unreachable stat kind");
}

double
Registry::value(const std::string &name) const
{
    const Entry *entry = find(name);
    if (entry == nullptr)
        panic("unknown stat: %s", name.c_str());
    return entryValue(*entry);
}

DistSummary
Registry::distSummary(const std::string &name) const
{
    const Entry *entry = find(name);
    if (entry == nullptr)
        panic("unknown stat: %s", name.c_str());
    if (entry->kind != Kind::Distribution)
        panic("stat %s is not a distribution", name.c_str());
    return entry->dist();
}

bool
Registry::matchesFilter(const std::string &name,
                        const std::string &filter)
{
    if (filter.empty())
        return true;
    if (name.size() < filter.size() ||
        name.compare(0, filter.size(), filter) != 0)
        return false;
    return name.size() == filter.size() || name[filter.size()] == '.';
}

Report
Registry::report(const std::string &filter) const
{
    Report report;
    for (const Entry &entry : entries_) {
        if (!matchesFilter(entry.name, filter))
            continue;
        ReportEntry out;
        out.name = entry.name;
        out.desc = entry.desc;
        out.kind = entry.kind;
        if (entry.kind == Kind::Distribution) {
            out.dist = entry.dist();
            out.value = out.dist.mean;
        } else {
            out.value = entryValue(entry);
        }
        report.entries.push_back(std::move(out));
    }
    return report;
}

std::string
Registry::toJson(const std::string &filter) const
{
    return report(filter).toJson();
}

// ---------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------

bool
Report::contains(const std::string &name) const
{
    for (const ReportEntry &entry : entries) {
        if (entry.name == name)
            return true;
    }
    return false;
}

double
Report::value(const std::string &name) const
{
    for (const ReportEntry &entry : entries) {
        if (entry.name == name)
            return entry.value;
    }
    panic("unknown stat: %s", name.c_str());
}

namespace {

/** Segment of @p name starting at @p from, up to the next dot. */
std::string
segmentAt(const std::string &name, std::size_t from)
{
    const std::size_t dot = name.find('.', from);
    return name.substr(from,
                       dot == std::string::npos ? dot : dot - from);
}

void
writeGroup(std::ostream &out,
           const std::vector<const ReportEntry *> &sorted,
           std::size_t lo, std::size_t hi, std::size_t depth)
{
    out << '{';
    bool first = true;
    std::size_t i = lo;
    while (i < hi) {
        const std::string seg = segmentAt(sorted[i]->name, depth);
        std::size_t j = i + 1;
        while (j < hi && segmentAt(sorted[j]->name, depth) == seg)
            ++j;
        if (!first)
            out << ',';
        first = false;
        out << '"' << seg << "\":";
        const std::size_t next = depth + seg.size() + 1;
        if (j == i + 1 && sorted[i]->name.size() < next) {
            // Leaf: the full name ends at this segment.
            const ReportEntry &entry = *sorted[i];
            if (entry.kind == Kind::Distribution) {
                out << "{\"count\":" << entry.dist.count << ",\"mean\":";
                writeNumber(out, entry.dist.mean);
                out << ",\"min\":";
                writeNumber(out, entry.dist.min);
                out << ",\"max\":";
                writeNumber(out, entry.dist.max);
                if (entry.dist.has_percentiles) {
                    out << ",\"p50\":";
                    writeNumber(out, entry.dist.p50);
                    out << ",\"p90\":";
                    writeNumber(out, entry.dist.p90);
                    out << ",\"p99\":";
                    writeNumber(out, entry.dist.p99);
                    out << ",\"buckets\":[";
                    for (std::size_t b = 0;
                         b < entry.dist.buckets.size(); ++b) {
                        out << (b == 0 ? "" : ",")
                            << entry.dist.buckets[b];
                    }
                    out << ']';
                }
                out << '}';
            } else {
                writeNumber(out, entry.value);
            }
        } else {
            writeGroup(out, sorted, i, j, next);
        }
        i = j;
    }
    out << '}';
}

} // namespace

std::string
Report::toJson() const
{
    std::vector<const ReportEntry *> sorted;
    sorted.reserve(entries.size());
    for (const ReportEntry &entry : entries)
        sorted.push_back(&entry);
    std::sort(sorted.begin(), sorted.end(),
              [](const ReportEntry *a, const ReportEntry *b) {
                  return a->name < b->name;
              });
    std::ostringstream out;
    writeGroup(out, sorted, 0, sorted.size(), 0);
    return out.str();
}

// ---------------------------------------------------------------------
// TimeSeries
// ---------------------------------------------------------------------

int
TimeSeries::columnIndex(const std::string &column) const
{
    for (std::size_t i = 0; i < columns.size(); ++i) {
        if (columns[i] == column)
            return static_cast<int>(i);
    }
    return -1;
}

void
TimeSeries::writeCsv(std::ostream &out) const
{
    out << "instructions";
    for (const std::string &column : columns)
        out << ',' << column;
    out << '\n';
    for (const Row &row : rows) {
        out << row.instructions;
        for (double v : row.values) {
            out << ',';
            writeNumber(out, v);
        }
        out << '\n';
    }
}

// ---------------------------------------------------------------------
// IntervalSampler
// ---------------------------------------------------------------------

IntervalSampler::IntervalSampler(const Registry &registry,
                                 std::uint64_t interval,
                                 const std::string &filter)
    : registry_(registry), interval_(interval), next_(interval)
{
    if (interval_ == 0)
        return;
    for (std::size_t i = 0; i < registry.entries_.size(); ++i) {
        const Registry::Entry &entry = registry.entries_[i];
        if (!Registry::matchesFilter(entry.name, filter))
            continue;
        sampled_.push_back(i);
        if (entry.kind == Kind::Distribution) {
            series_.columns.push_back(entry.name + ".count");
            series_.columns.push_back(entry.name + ".mean");
            if (entry.percentiles) {
                series_.columns.push_back(entry.name + ".p50");
                series_.columns.push_back(entry.name + ".p90");
                series_.columns.push_back(entry.name + ".p99");
            }
        } else {
            series_.columns.push_back(entry.name);
        }
    }
    last_cumulative_.assign(sampled_.size(), 0.0);
    last_num_.assign(sampled_.size(), 0.0);
    last_den_.assign(sampled_.size(), 0.0);
}

void
IntervalSampler::sample(std::uint64_t instructions)
{
    if (interval_ == 0)
        return;
    TimeSeries::Row row;
    row.instructions = instructions;
    row.values.reserve(series_.columns.size());
    for (std::size_t k = 0; k < sampled_.size(); ++k) {
        const Registry::Entry &entry = registry_.entries_[sampled_[k]];
        switch (entry.kind) {
          case Kind::Counter: {
            const double cur = static_cast<double>(entry.counter());
            row.values.push_back(cur - last_cumulative_[k]);
            last_cumulative_[k] = cur;
            break;
          }
          case Kind::Gauge:
            row.values.push_back(finiteOrZero(entry.gauge()));
            break;
          case Kind::Distribution: {
            const DistSummary s = entry.dist();
            const double count = static_cast<double>(s.count);
            row.values.push_back(count - last_cumulative_[k]);
            row.values.push_back(s.mean);
            if (entry.percentiles) {
                // Cumulative snapshots, not interval deltas: the
                // percentile of an interval's samples alone is not
                // recoverable from bucket counts without a second
                // baseline copy; the running percentile is what the
                // saturation dashboards want anyway.
                row.values.push_back(s.p50);
                row.values.push_back(s.p90);
                row.values.push_back(s.p99);
            }
            last_cumulative_[k] = count;
            break;
          }
          case Kind::Formula: {
            const Registry::Entry *num = registry_.find(entry.num);
            const Registry::Entry *den = registry_.find(entry.den);
            CSP_ASSERT(num != nullptr && den != nullptr);
            // Counter operands contribute their interval delta so the
            // formula describes this interval, not the whole run.
            double a = num->kind == Kind::Counter
                           ? static_cast<double>(num->counter())
                           : finiteOrZero(num->gauge());
            double b = den->kind == Kind::Counter
                           ? static_cast<double>(den->counter())
                           : finiteOrZero(den->gauge());
            const double da =
                num->kind == Kind::Counter ? a - last_num_[k] : a;
            const double db =
                den->kind == Kind::Counter ? b - last_den_[k] : b;
            last_num_[k] = a;
            last_den_[k] = b;
            row.values.push_back(
                db == 0.0 ? 0.0
                          : finiteOrZero(entry.scale * da / db));
            break;
          }
        }
    }
    series_.rows.push_back(std::move(row));
    last_instructions_ = instructions;
    next_ += interval_;
    while (next_ <= instructions)
        next_ += interval_;
}

void
IntervalSampler::finish(std::uint64_t instructions)
{
    if (interval_ != 0 && instructions > last_instructions_)
        sample(instructions);
}

} // namespace csp::stats
