/**
 * @file
 * Hierarchical named-statistics registry with interval sampling.
 *
 * Components register scalar counters, gauges, distributions and formula
 * stats under a dotted namespace ("sim.ipc", "mem.l1.misses",
 * "context.bandit.epsilon"). The registry never owns the hot-path
 * storage: counters are read through a pointer (or callback) only when a
 * snapshot is taken, so instrumentation costs nothing while the
 * simulation runs unsampled.
 *
 * Three consumers sit on top:
 *  - Registry::report() flattens the current values into an owned
 *    Report that survives component teardown (end-of-run dump);
 *  - Report::toJson() renders the dotted names as nested JSON objects
 *    (machine-readable export, --stats-out);
 *  - IntervalSampler snapshots the registry every N instructions into a
 *    TimeSeries of per-interval rows — counter columns hold interval
 *    deltas, gauge columns point samples, formula columns ratios of the
 *    interval deltas — written as CSV (--stats-interval).
 */

#ifndef CSP_CORE_STATS_REGISTRY_H
#define CSP_CORE_STATS_REGISTRY_H

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/stats.h"

namespace csp::stats {

/** What a registered stat measures. */
enum class Kind : std::uint8_t
{
    Counter,      ///< monotonic cumulative count (interval = delta)
    Gauge,        ///< instantaneous value (interval = point sample)
    Distribution, ///< sample distribution (count/mean/min/max)
    Formula,      ///< scale * numerator / denominator of other stats
};

/** Point-in-time summary of a distribution stat. */
struct DistSummary
{
    std::uint64_t count = 0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    /// Bucket-resolved percentiles, valid when has_percentiles is set
    /// (log2-bucket distributions only).
    bool has_percentiles = false;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    /// Per-bucket counts of a log2 histogram (empty otherwise); bucket
    /// i covers [2^(i-1), 2^i), bucket 0 holds the value 0.
    std::vector<std::uint64_t> buckets;
};

/** One flattened stat value (owned, component-independent). */
struct ReportEntry
{
    std::string name;
    std::string desc;
    Kind kind = Kind::Counter;
    double value = 0.0; ///< scalar kinds; dist.mean for distributions
    DistSummary dist;   ///< valid when kind == Distribution
};

/**
 * Owned snapshot of every registered stat, taken at end of run. Safe to
 * keep after the instrumented components are destroyed.
 */
struct Report
{
    std::vector<ReportEntry> entries;

    bool contains(const std::string &name) const;

    /** Value of a scalar stat; panics on unknown names. */
    double value(const std::string &name) const;

    /** Entries as a nested JSON object keyed by the dotted segments. */
    std::string toJson() const;
};

/**
 * Per-interval time series produced by an IntervalSampler. The first
 * column is always "instructions" (the sample position); counter columns
 * hold interval deltas, everything else point values.
 */
struct TimeSeries
{
    std::vector<std::string> columns; ///< excludes "instructions"
    struct Row
    {
        std::uint64_t instructions = 0;
        std::vector<double> values;
    };
    std::vector<Row> rows;

    bool empty() const { return rows.empty(); }

    /** Index of @p column, or -1 when absent. */
    int columnIndex(const std::string &column) const;

    /** Header line plus one line per interval row. */
    void writeCsv(std::ostream &out) const;
};

/** See file comment. */
class Registry
{
  public:
    /** Cumulative counter read through a stable pointer. */
    void counter(const std::string &name, const std::uint64_t *value,
                 const std::string &desc = "");

    /** Cumulative counter read through a callback. */
    void counter(const std::string &name,
                 std::function<std::uint64_t()> fn,
                 const std::string &desc = "");

    /** Instantaneous value read through a callback. */
    void gauge(const std::string &name, std::function<double()> fn,
               const std::string &desc = "");

    /** Distribution backed by a Histogram. */
    void distribution(const std::string &name, const Histogram *hist,
                      const std::string &desc = "");

    /**
     * Distribution backed by a fixed log2-bucket histogram. Reports
     * per-bucket counts plus p50/p90/p99 in Report::toJson(), and adds
     * .p50/.p90/.p99 columns to the IntervalSampler CSV.
     */
    void distribution(const std::string &name,
                      const Log2Histogram *hist,
                      const std::string &desc = "");

    /** Distribution summarised on demand by a callback. */
    void distribution(const std::string &name,
                      std::function<DistSummary()> fn,
                      const std::string &desc = "");

    /**
     * Ratio formula: value = @p scale * numerator / denominator
     * (0 when the denominator is 0). The operands are referenced by
     * name and resolved lazily, so registration order does not matter.
     * In interval samples, counter operands use their interval deltas —
     * "sim.ipc" over an interval is the interval's own IPC.
     */
    void formula(const std::string &name, const std::string &numerator,
                 const std::string &denominator, double scale = 1.0,
                 const std::string &desc = "");

    bool contains(const std::string &name) const;
    std::size_t size() const { return entries_.size(); }

    /** Current cumulative value of a scalar stat; panics on unknown
     *  names and on distributions (use distSummary). */
    double value(const std::string &name) const;

    /** Current summary of a distribution stat; panics otherwise. */
    DistSummary distSummary(const std::string &name) const;

    /** Flatten current values, keeping names matching @p filter (a
     *  dotted prefix; empty keeps everything). */
    Report report(const std::string &filter = "") const;

    /** Shorthand for report(filter).toJson(). */
    std::string toJson(const std::string &filter = "") const;

    /** True when @p name lies under the dotted prefix @p filter. */
    static bool matchesFilter(const std::string &name,
                              const std::string &filter);

  private:
    friend class IntervalSampler;

    struct Entry
    {
        std::string name;
        std::string desc;
        Kind kind = Kind::Counter;
        std::function<std::uint64_t()> counter;
        std::function<double()> gauge;
        std::function<DistSummary()> dist;
        bool percentiles = false; ///< log2 distribution: sample p50/90/99
        std::string num, den; ///< formula operand names
        double scale = 1.0;
    };

    void add(Entry entry);
    const Entry *find(const std::string &name) const;
    double entryValue(const Entry &entry) const;

    std::vector<Entry> entries_;
};

/**
 * Snapshots a Registry every N instructions into a TimeSeries. The
 * hot-path cost when disabled (interval 0) is the inlined due() compare.
 */
class IntervalSampler
{
  public:
    /** @param interval instructions per sample; 0 disables sampling.
     *  @param filter dotted-prefix column filter (empty = all). */
    IntervalSampler(const Registry &registry, std::uint64_t interval,
                    const std::string &filter = "");

    bool enabled() const { return interval_ != 0; }
    std::uint64_t interval() const { return interval_; }

    /** True when @p instructions crossed the next sample boundary. */
    bool
    due(std::uint64_t instructions) const
    {
        return interval_ != 0 && instructions >= next_;
    }

    /** Instruction count of the next sample boundary; UINT64_MAX when
     *  sampling is disabled (lets callers fuse the hot-loop check into
     *  one compare against a register-resident bound). */
    std::uint64_t
    nextSampleAt() const
    {
        return interval_ == 0 ? UINT64_MAX : next_;
    }

    /** Record one row at @p instructions and advance the boundary. */
    void sample(std::uint64_t instructions);

    /** Record the final partial interval, if any instructions ran since
     *  the last row (call after end-of-run flushes). */
    void finish(std::uint64_t instructions);

    const TimeSeries &series() const { return series_; }
    TimeSeries takeSeries() { return std::move(series_); }

  private:
    const Registry &registry_;
    std::uint64_t interval_;
    std::uint64_t next_;
    std::vector<std::size_t> sampled_;   ///< registry entry indices
    std::vector<double> last_cumulative_; ///< per sampled column
    std::vector<double> last_num_, last_den_; ///< formula operands
    std::uint64_t last_instructions_ = 0;
    TimeSeries series_;
};

} // namespace csp::stats

#endif // CSP_CORE_STATS_REGISTRY_H
