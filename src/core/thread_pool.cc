#include "core/thread_pool.h"

#include <cstdlib>

namespace csp {

namespace {
/** -1 off-pool; workerLoop entry assigns the pool-local index. */
thread_local int tls_worker_id = -1;
} // namespace

int
ThreadPool::currentWorkerId()
{
    return tls_worker_id;
}

unsigned
ThreadPool::defaultJobs()
{
    if (const char *env = std::getenv("CSP_JOBS")) {
        const long parsed = std::atol(env);
        if (parsed > 0)
            return static_cast<unsigned>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = defaultJobs();
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
        workers_.emplace_back([this, i] {
            tls_worker_id = static_cast<int>(i);
            workerLoop();
        });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stop_ = true;
    }
    work_ready_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    work_ready_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    all_idle_.wait(lock,
                   [this] { return queue_.empty() && active_ == 0; });
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    for (std::size_t i = 0; i < n; ++i)
        submit([&fn, i] { fn(i); });
    wait();
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        work_ready_.wait(
            lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) {
            // stop_ set and nothing left to run.
            return;
        }
        std::function<void()> task = std::move(queue_.front());
        queue_.pop_front();
        ++active_;
        lock.unlock();
        task();
        lock.lock();
        --active_;
        if (queue_.empty() && active_ == 0)
            all_idle_.notify_all();
    }
}

} // namespace csp
