/**
 * @file
 * Minimal fixed-size thread pool for embarrassingly parallel
 * simulation work (trace generation, sweep cells).
 *
 * Tasks are plain std::function<void()> callbacks executed FIFO by a
 * fixed set of worker threads; wait() blocks until every submitted
 * task has completed, so a pool can be reused phase by phase. The
 * pool deliberately has no futures, task stealing or priorities —
 * sweep callers order their own work (longest-first) before
 * submitting and collect results through pre-sized output slots.
 */

#ifndef CSP_CORE_THREAD_POOL_H
#define CSP_CORE_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace csp {

/** See file comment. */
class ThreadPool
{
  public:
    /** @param threads worker count; 0 means defaultJobs(). */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains outstanding work, then joins every worker. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned
    threads() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Enqueue one task. Tasks must not throw — simulation errors go
     * through fatal()/panic(), which terminate the process.
     */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished executing. */
    void wait();

    /** Run fn(0) .. fn(n-1) across the pool and wait for completion. */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /**
     * The jobs knob every sweep entry point resolves through: the
     * CSP_JOBS environment variable when set to a positive integer,
     * otherwise the hardware thread count (at least 1).
     */
    static unsigned defaultJobs();

    /**
     * Index of the calling pool worker thread (0-based within its
     * pool), or -1 off-pool. Worker attribution for observability
     * (sweep journal cell events); never consulted for scheduling, so
     * it cannot influence results.
     */
    static int currentWorkerId();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable work_ready_;
    std::condition_variable all_idle_;
    std::size_t active_ = 0;
    bool stop_ = false;
};

} // namespace csp

#endif // CSP_CORE_THREAD_POOL_H
