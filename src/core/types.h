/**
 * @file
 * Fundamental type aliases and address arithmetic helpers used across the
 * library.
 *
 * The simulator models a 64-bit virtual address space; all addresses are
 * simulated addresses produced by the csp::runtime::Arena or by the
 * synthetic workload generators, never raw host pointers.
 */

#ifndef CSP_CORE_TYPES_H
#define CSP_CORE_TYPES_H

#include <bit>
#include <cstdint>
#include <limits>

namespace csp {

/** Simulated virtual address (byte granularity). */
using Addr = std::uint64_t;

/** Simulation time, measured in core clock cycles. */
using Cycle = std::uint64_t;

/** Monotonic index of a retired instruction within a run. */
using InstSeq = std::uint64_t;

/** Monotonic index of a memory access within a run. */
using AccessSeq = std::uint64_t;

/** Sentinel for "no address". */
inline constexpr Addr kInvalidAddr = std::numeric_limits<Addr>::max();

/** Sentinel for "no cycle" / "never". */
inline constexpr Cycle kInvalidCycle = std::numeric_limits<Cycle>::max();

/**
 * Align @p addr down to a power-of-two @p granularity (e.g. a cache-line
 * boundary).
 */
constexpr Addr
alignDown(Addr addr, std::uint64_t granularity)
{
    return addr & ~(granularity - 1);
}

/** Align @p addr up to a power-of-two @p granularity. */
constexpr Addr
alignUp(Addr addr, std::uint64_t granularity)
{
    return (addr + granularity - 1) & ~(granularity - 1);
}

/** True iff @p value is a non-zero power of two. */
constexpr bool
isPowerOfTwo(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** Base-2 logarithm of a power of two. */
constexpr unsigned
floorLog2(std::uint64_t value)
{
    return value <= 1 ? 0
                      : static_cast<unsigned>(std::bit_width(value)) - 1;
}

/**
 * Signed distance between two block-aligned addresses, in units of
 * @p granularity blocks. Used by delta-correlating prefetchers and by the
 * CST's compact delta encoding.
 */
constexpr std::int64_t
blockDelta(Addr from, Addr to, std::uint64_t granularity)
{
    return (static_cast<std::int64_t>(to >> floorLog2(granularity)) -
            static_cast<std::int64_t>(from >> floorLog2(granularity)));
}

} // namespace csp

#endif // CSP_CORE_TYPES_H
