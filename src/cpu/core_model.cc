#include "cpu/core_model.h"

#include <algorithm>

namespace csp::cpu {

CoreModel::CoreModel(const CoreConfig &config)
    : config_(config),
      rob_(config.rob_entries, 0),
      lq_(config.lq_entries, 0)
{}

Cycle
CoreModel::robGate() const
{
    return rob_count_ == rob_.size() ? rob_[rob_head_] : 0;
}

void
CoreModel::robPush(Cycle retire)
{
    // In-order retirement: a younger instruction cannot retire before an
    // older one.
    retire = std::max(retire, last_retire_);
    last_retire_ = retire;
    elapsed_ = std::max(elapsed_, retire);
    if (rob_count_ == rob_.size()) {
        rob_[rob_head_] = retire;
        rob_head_ = (rob_head_ + 1) % rob_.size();
    } else {
        rob_[(rob_head_ + rob_count_) % rob_.size()] = retire;
        ++rob_count_;
    }
}

Cycle
CoreModel::dispatchNext()
{
    const Cycle fetch = slot_ / config_.fetch_width;
    ++instructions_;
    Cycle dispatch = std::max({fetch, robGate(), fetch_ready_});
    fetch_ready_ = dispatch;
    // Re-sync the fetch slot after stalls so that at most fetch_width
    // instructions dispatch per cycle even once the stall clears.
    slot_ = std::max(slot_ + 1, dispatch * config_.fetch_width + 1);
    return dispatch;
}

Cycle
CoreModel::loadIssueAt(Cycle dispatch, bool dep_on_prev_load)
{
    Cycle issue = dispatch;
    if (lq_count_ == lq_.size())
        issue = std::max(issue, lq_[lq_head_]);
    if (dep_on_prev_load)
        issue = std::max(issue, last_load_complete_);
    return issue;
}

void
CoreModel::complete(Cycle done)
{
    robPush(done);
}

void
CoreModel::completeLoad(Cycle done)
{
    last_load_complete_ = std::max(last_load_complete_, done);
    if (lq_count_ == lq_.size()) {
        lq_[lq_head_] = done;
        lq_head_ = (lq_head_ + 1) % lq_.size();
    } else {
        lq_[(lq_head_ + lq_count_) % lq_.size()] = done;
        ++lq_count_;
    }
    robPush(done);
}

void
CoreModel::computeBurst(std::uint32_t count)
{
    for (std::uint32_t i = 0; i < count; ++i) {
        const Cycle dispatch = dispatchNext();
        complete(dispatch + 1);
    }
}

void
CoreModel::reset()
{
    slot_ = 0;
    fetch_ready_ = 0;
    last_retire_ = 0;
    last_load_complete_ = 0;
    elapsed_ = 0;
    instructions_ = 0;
    std::fill(rob_.begin(), rob_.end(), 0);
    rob_head_ = 0;
    rob_count_ = 0;
    std::fill(lq_.begin(), lq_.end(), 0);
    lq_head_ = 0;
    lq_count_ = 0;
}

} // namespace csp::cpu
