/**
 * @file
 * Approximate out-of-order core timing model.
 *
 * The model reproduces the timing mechanisms the paper's results depend
 * on, without simulating an x86 pipeline microarchitecture:
 *
 *  - W-wide fetch/dispatch (Table 2: 4-wide),
 *  - a reorder buffer of fixed capacity (192) that gates dispatch when
 *    full — this is what bounds how many long-latency misses can overlap,
 *  - a load queue (32) gating outstanding loads,
 *  - in-order retirement (retire times are monotonic),
 *  - explicit serialisation of dependent loads (pointer chases), driven
 *    by the trace's dep_on_prev_load flag.
 *
 * Together with the MSHR-bounded hierarchy this yields the
 * memory-level-parallelism behaviour of the gem5 configuration in paper
 * Table 2. IPC is instructions / elapsed cycles.
 */

#ifndef CSP_CPU_CORE_MODEL_H
#define CSP_CPU_CORE_MODEL_H

#include <vector>

#include "core/config.h"
#include "core/types.h"

namespace csp::cpu {

/** See file comment. */
class CoreModel
{
  public:
    explicit CoreModel(const CoreConfig &config);

    /**
     * Dispatch the next instruction: consumes one fetch slot, applies
     * the ROB-full gate, and keeps dispatch monotonic. Returns the cycle
     * at which the instruction may begin executing.
     */
    Cycle dispatchNext();

    /** Additional gate for loads: load-queue capacity and, when
     *  @p dep_on_prev_load, the completion of the previous load. */
    Cycle loadIssueAt(Cycle dispatch, bool dep_on_prev_load);

    /** Register completion of the current instruction (any kind). */
    void complete(Cycle done);

    /** Register completion of a load (also feeds dependent loads). */
    void completeLoad(Cycle done);

    /** Dispatch + complete a burst of @p count 1-cycle instructions. */
    void computeBurst(std::uint32_t count);

    /** Cycles elapsed so far (last retirement). */
    Cycle elapsed() const { return elapsed_; }

    /** Instructions dispatched so far. */
    std::uint64_t instructions() const { return instructions_; }

    /** IPC over the run so far. */
    double
    ipc() const
    {
        return elapsed_ == 0
                   ? 0.0
                   : static_cast<double>(instructions_) /
                         static_cast<double>(elapsed_);
    }

    /** Reset all pipeline state. */
    void reset();

  private:
    Cycle robGate() const;
    void robPush(Cycle retire);

    CoreConfig config_;
    std::uint64_t slot_ = 0;      ///< fetch slot counter
    Cycle fetch_ready_ = 0;       ///< dispatch monotonicity floor
    Cycle last_retire_ = 0;       ///< in-order retirement floor
    Cycle last_load_complete_ = 0;
    Cycle elapsed_ = 0;
    std::uint64_t instructions_ = 0;

    std::vector<Cycle> rob_;      ///< ring of retire times
    std::size_t rob_head_ = 0;
    std::size_t rob_count_ = 0;

    std::vector<Cycle> lq_;       ///< ring of load completion times
    std::size_t lq_head_ = 0;
    std::size_t lq_count_ = 0;
};

} // namespace csp::cpu

#endif // CSP_CPU_CORE_MODEL_H
