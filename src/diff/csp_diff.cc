#include "diff/csp_diff.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <ostream>
#include <sstream>

namespace csp::diff {

namespace {

// ---------------------------------------------------------------------
// JSON flattening: a minimal recursive-descent parser producing dotted
// names. No dependency; handles the repo's own emitters plus standard
// escapes.
// ---------------------------------------------------------------------
class JsonParser
{
  public:
    JsonParser(const std::string &text, FlatDoc &out)
        : p_(text.data()), end_(text.data() + text.size()), out_(out)
    {}

    bool
    parse(std::string *error)
    {
        skipWs();
        if (!parseValue("")) {
            if (error != nullptr)
                *error = error_;
            return false;
        }
        skipWs();
        if (p_ != end_) {
            if (error != nullptr)
                *error = "trailing characters after JSON value";
            return false;
        }
        return true;
    }

  private:
    void
    skipWs()
    {
        while (p_ != end_ &&
               std::isspace(static_cast<unsigned char>(*p_)))
            ++p_;
    }

    bool
    fail(const std::string &what)
    {
        if (error_.empty())
            error_ = what;
        return false;
    }

    static std::string
    join(const std::string &prefix, const std::string &key)
    {
        return prefix.empty() ? key : prefix + "." + key;
    }

    bool
    parseString(std::string &out)
    {
        if (p_ == end_ || *p_ != '"')
            return fail("expected string");
        ++p_;
        out.clear();
        while (p_ != end_ && *p_ != '"') {
            char ch = *p_++;
            if (ch != '\\') {
                out += ch;
                continue;
            }
            if (p_ == end_)
                return fail("dangling escape");
            const char esc = *p_++;
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (end_ - p_ < 4)
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char hex = *p_++;
                    code <<= 4;
                    if (hex >= '0' && hex <= '9')
                        code |= static_cast<unsigned>(hex - '0');
                    else if (hex >= 'a' && hex <= 'f')
                        code |= static_cast<unsigned>(hex - 'a' + 10);
                    else if (hex >= 'A' && hex <= 'F')
                        code |= static_cast<unsigned>(hex - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // Stats names are ASCII; anything wider degrades to
                // '?' rather than growing a UTF-8 encoder here.
                out += code < 0x80 ? static_cast<char>(code) : '?';
                break;
              }
              default: return fail("unknown escape");
            }
        }
        if (p_ == end_)
            return fail("unterminated string");
        ++p_; // closing quote
        return true;
    }

    bool
    parseValue(const std::string &prefix)
    {
        skipWs();
        if (p_ == end_)
            return fail("unexpected end of input");
        const char ch = *p_;
        if (ch == '{')
            return parseObject(prefix);
        if (ch == '[')
            return parseArray(prefix);
        if (ch == '"') {
            FlatValue value;
            if (!parseString(value.text))
                return false;
            out_.add(prefix, std::move(value));
            return true;
        }
        if (ch == 't' || ch == 'f' || ch == 'n')
            return parseWord(prefix);
        return parseNumber(prefix);
    }

    bool
    parseObject(const std::string &prefix)
    {
        ++p_; // '{'
        skipWs();
        if (p_ != end_ && *p_ == '}') {
            ++p_;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (p_ == end_ || *p_ != ':')
                return fail("expected ':' in object");
            ++p_;
            if (!parseValue(join(prefix, key)))
                return false;
            skipWs();
            if (p_ == end_)
                return fail("unterminated object");
            if (*p_ == ',') {
                ++p_;
                continue;
            }
            if (*p_ == '}') {
                ++p_;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    parseArray(const std::string &prefix)
    {
        ++p_; // '['
        skipWs();
        if (p_ != end_ && *p_ == ']') {
            ++p_;
            return true;
        }
        std::size_t index = 0;
        while (true) {
            if (!parseValue(join(prefix, std::to_string(index++))))
                return false;
            skipWs();
            if (p_ == end_)
                return fail("unterminated array");
            if (*p_ == ',') {
                ++p_;
                continue;
            }
            if (*p_ == ']') {
                ++p_;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    parseWord(const std::string &prefix)
    {
        for (const char *word : {"true", "false", "null"}) {
            const std::size_t n = std::strlen(word);
            if (static_cast<std::size_t>(end_ - p_) >= n &&
                std::equal(word, word + n, p_)) {
                FlatValue value;
                value.text = word;
                p_ += n;
                out_.add(prefix, std::move(value));
                return true;
            }
        }
        return fail("unknown literal");
    }

    bool
    parseNumber(const std::string &prefix)
    {
        char *after = nullptr;
        const double number = std::strtod(p_, &after);
        if (after == p_)
            return fail("expected value");
        FlatValue value;
        value.is_number = true;
        value.number = number;
        value.text.assign(p_, static_cast<std::size_t>(after - p_));
        p_ = after;
        out_.add(prefix, std::move(value));
        return true;
    }

    const char *p_;
    const char *end_;
    FlatDoc &out_;
    std::string error_;
};

std::string
trimmed(const std::string &text)
{
    std::size_t b = 0;
    std::size_t e = text.size();
    while (b < e && std::isspace(static_cast<unsigned char>(text[b])))
        ++b;
    while (e > b &&
           std::isspace(static_cast<unsigned char>(text[e - 1])))
        --e;
    return text.substr(b, e - b);
}

FlatValue
cellValue(const std::string &cell)
{
    FlatValue value;
    value.text = cell;
    if (!cell.empty()) {
        char *after = nullptr;
        const double number = std::strtod(cell.c_str(), &after);
        if (after == cell.c_str() + cell.size()) {
            value.is_number = true;
            value.number = number;
        }
    }
    return value;
}

std::vector<std::string>
splitCsvLine(const std::string &line)
{
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream in(line);
    while (std::getline(in, cell, ','))
        cells.push_back(trimmed(cell));
    if (!line.empty() && line.back() == ',')
        cells.emplace_back();
    return cells;
}

bool
segmentEndsWith(const std::string &segment, const char *suffix)
{
    const std::size_t n = std::strlen(suffix);
    return segment.size() >= n &&
           segment.compare(segment.size() - n, n, suffix) == 0;
}

} // namespace

const FlatValue *
FlatDoc::find(const std::string &name) const
{
    for (const auto &[entry_name, value] : entries) {
        if (entry_name == name)
            return &value;
    }
    return nullptr;
}

void
FlatDoc::add(std::string name, FlatValue value)
{
    entries.emplace_back(std::move(name), std::move(value));
}

bool
parseJsonFlat(const std::string &text, FlatDoc &out,
              std::string *error)
{
    return JsonParser(text, out).parse(error);
}

bool
parseCsvFlat(const std::string &text, FlatDoc &out, std::string *error)
{
    std::vector<std::string> header;
    std::map<std::string, unsigned> row_seen;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        if (line[0] == '#') {
            // Interval CSVs carry their provenance as one
            // `# manifest <json>` comment line; surface it under the
            // same names a stats JSON would.
            const std::string tag = "# manifest ";
            if (line.compare(0, tag.size(), tag) == 0) {
                FlatDoc manifest;
                if (parseJsonFlat(line.substr(tag.size()), manifest,
                                  error)) {
                    for (auto &[name, value] : manifest.entries) {
                        out.add("manifest." + name,
                                std::move(value));
                    }
                } else {
                    return false;
                }
            }
            continue;
        }
        std::vector<std::string> cells = splitCsvLine(line);
        if (header.empty()) {
            header = std::move(cells);
            continue;
        }
        if (cells.empty())
            continue;
        std::string key = cells[0].empty() ? "row" : cells[0];
        const unsigned seen = ++row_seen[key];
        if (seen > 1) {
            key.push_back('#');
            key += std::to_string(seen);
        }
        for (std::size_t j = 1;
             j < cells.size() && j < header.size(); ++j) {
            out.add(key + "." + header[j], cellValue(cells[j]));
        }
    }
    if (header.empty()) {
        if (error != nullptr)
            *error = "CSV has no header row";
        return false;
    }
    return true;
}

bool
parseFlat(const std::string &text, FlatDoc &out, std::string *error)
{
    for (const char ch : text) {
        if (std::isspace(static_cast<unsigned char>(ch)))
            continue;
        if (ch == '{' || ch == '[')
            return parseJsonFlat(text, out, error);
        return parseCsvFlat(text, out, error);
    }
    if (error != nullptr)
        *error = "empty input";
    return false;
}

StatClass
classify(const std::string &name)
{
    // Split into dotted segments and inspect each: classification must
    // survive arbitrary nesting ("stats.context.prof.x", a sweep row
    // key prefix, ...).
    std::size_t begin = 0;
    bool first = true;
    bool saw_mem = false;
    while (begin <= name.size()) {
        std::size_t dot = name.find('.', begin);
        if (dot == std::string::npos)
            dot = name.size();
        const std::string segment = name.substr(begin, dot - begin);
        if (first && segment == "manifest")
            return StatClass::Provenance;
        // Sweep artefacts' cache/shard accounting blocks: how cells
        // were obtained (memoized vs simulated, which shard), never
        // what they contain — a warm rerun or a merged shard set
        // legitimately differs here while every cell matches.
        if (first && (segment == "cache" || segment == "shard"))
            return StatClass::Provenance;
        first = false;
        if (segment == "prof")
            return StatClass::Timing;
        // The learning observatory's stats ("learn.*" in a stats dump,
        // "snapshots.*" in a learn.json) exist only when the observer
        // was attached: presence on one side is informational, but any
        // value drift is a determinism break.
        if (segment == "learn" || segment == "snapshots")
            return StatClass::Learning;
        // The memory observatory's stats live under "mem." beside the
        // hierarchy's always-present correctness counters (mem.l1.misses
        // and friends), so "mem" alone cannot classify: it takes a
        // "mem" segment followed by one of the observatory subtree
        // names. Same contract as Learning — one-sided presence is a
        // note, both-present drift is a determinism break.
        if (segment == "mem")
            saw_mem = true;
        else if (saw_mem &&
                 (segment == "class" || segment == "classes" ||
                  segment == "reuse" || segment == "shadow" ||
                  segment == "pollution" || segment == "timeline" ||
                  segment == "sets")) {
            return StatClass::Memory;
        }
        // Wall-clock / throughput leaves. Suffix matching is exact on
        // purpose: "instructions" must never match "ns".
        if (segment == "ns" || segmentEndsWith(segment, "_ns") ||
            segment == "seconds" ||
            segmentEndsWith(segment, "_seconds") ||
            segmentEndsWith(segment, "_per_sec") ||
            segment.find("ns_per") != std::string::npos ||
            segmentEndsWith(segment, "_disabled_rate") ||
            segmentEndsWith(segment, "_decode_rate") ||
            segmentEndsWith(segment, "speedup_x") ||
            segmentEndsWith(segment, "_rss_mb") ||
            segment == "wall") {
            return StatClass::Timing;
        }
        begin = dot + 1;
    }
    return StatClass::Correctness;
}

namespace {

bool
isIntegral(const FlatValue &value)
{
    return value.is_number &&
           value.text.find_first_of(".eE") == std::string::npos;
}

double
relDelta(double a, double b)
{
    if (a == b)
        return 0.0;
    const double mag = std::max(std::fabs(a), std::fabs(b));
    return mag == 0.0 ? 0.0 : std::fabs(a - b) / mag;
}

/** The manifest fields whose mismatch means the two runs were not the
 *  same experiment. */
bool
isInputIdentity(const std::string &name)
{
    return segmentEndsWith(name, "config_digest") ||
           segmentEndsWith(name, "trace_digest") ||
           segmentEndsWith(name, ".seed");
}

int
classRank(StatClass cls)
{
    switch (cls) {
      case StatClass::Correctness: return 0;
      case StatClass::Learning: return 1;
      case StatClass::Memory: return 2;
      case StatClass::Timing: return 3;
      case StatClass::Provenance: return 4;
    }
    return 5;
}

} // namespace

DiffResult
diffDocs(const FlatDoc &a, const FlatDoc &b, const DiffOptions &options)
{
    DiffResult result;

    for (const auto &[name, va] : a.entries) {
        const FlatValue *vb = b.find(name);
        const StatClass cls = classify(name);
        if (vb == nullptr) {
            ++result.only_a;
            Finding f;
            f.name = name;
            f.cls = cls;
            f.missing_b = true;
            f.a_text = va.text;
            f.rel_delta = 1.0;
            f.failing = cls == StatClass::Correctness;
            if (f.failing)
                result.correctness_drift = true;
            result.findings.push_back(std::move(f));
            continue;
        }
        ++result.compared;

        bool differs = false;
        double rel = 0.0;
        if (va.is_number && vb->is_number) {
            rel = relDelta(va.number, vb->number);
            switch (cls) {
              case StatClass::Correctness:
              case StatClass::Learning:
              case StatClass::Memory:
                differs = isIntegral(va) && isIntegral(*vb)
                              ? va.number != vb->number
                              : rel > options.float_tolerance;
                break;
              case StatClass::Timing:
              case StatClass::Provenance:
                differs = rel != 0.0;
                break;
            }
        } else {
            differs = va.text != vb->text;
            rel = differs ? 1.0 : 0.0;
        }
        if (!differs)
            continue;

        Finding f;
        f.name = name;
        f.cls = cls;
        f.a_text = va.text;
        f.b_text = vb->text;
        f.rel_delta = rel;
        switch (cls) {
          case StatClass::Correctness:
          case StatClass::Learning:
          case StatClass::Memory:
            f.failing = true;
            result.correctness_drift = true;
            break;
          case StatClass::Timing:
            // Out-of-band deltas are still reported (ranked above the
            // in-band notes) under --lax-timing; they just never fail.
            if (rel > options.timing_tolerance &&
                options.fail_on_timing) {
                result.timing_exceeded = true;
                f.failing = true;
            }
            break;
          case StatClass::Provenance:
            if (isInputIdentity(name)) {
                result.provenance_mismatch = true;
                if (options.require_same_input) {
                    f.failing = true;
                    result.correctness_drift = true;
                }
            }
            break;
        }
        result.findings.push_back(std::move(f));
    }

    for (const auto &[name, vb] : b.entries) {
        if (a.find(name) != nullptr)
            continue;
        ++result.only_b;
        const StatClass cls = classify(name);
        Finding f;
        f.name = name;
        f.cls = cls;
        f.missing_a = true;
        f.b_text = vb.text;
        f.rel_delta = 1.0;
        f.failing = cls == StatClass::Correctness;
        if (f.failing)
            result.correctness_drift = true;
        result.findings.push_back(std::move(f));
    }

    std::stable_sort(result.findings.begin(), result.findings.end(),
                     [](const Finding &x, const Finding &y) {
                         if (x.failing != y.failing)
                             return x.failing;
                         if (x.cls != y.cls)
                             return classRank(x.cls) < classRank(y.cls);
                         return x.rel_delta > y.rel_delta;
                     });
    return result;
}

int
DiffResult::exitCode() const
{
    if (correctness_drift)
        return 1;
    if (timing_exceeded)
        return 2;
    return 0;
}

void
DiffResult::writeReport(std::ostream &out, std::size_t max_rows) const
{
    out << "cspdiff: " << compared << " stats compared, " << only_a
        << " only in A, " << only_b << " only in B\n";
    if (findings.empty()) {
        out << "verdict: identical (exit 0)\n";
        return;
    }
    std::size_t shown = 0;
    for (const Finding &f : findings) {
        if (shown++ == max_rows) {
            out << "  ... " << (findings.size() - max_rows)
                << " more findings suppressed (--max-rows)\n";
            break;
        }
        const char *cls = f.cls == StatClass::Correctness ? "corr"
                          : f.cls == StatClass::Learning  ? "lern"
                          : f.cls == StatClass::Memory    ? "mem "
                          : f.cls == StatClass::Timing    ? "time"
                                                          : "prov";
        out << (f.failing ? "  FAIL " : "  note ") << cls << ' ';
        char delta[32];
        std::snprintf(delta, sizeof(delta), "%+7.2f%%",
                      100.0 * f.rel_delta);
        out << delta << "  " << f.name << "  ";
        if (f.missing_a)
            out << "<absent> -> " << f.b_text;
        else if (f.missing_b)
            out << f.a_text << " -> <absent>";
        else
            out << f.a_text << " -> " << f.b_text;
        out << '\n';
    }
    if (correctness_drift) {
        out << "verdict: CORRECTNESS DRIFT (exit 1)\n";
    } else if (timing_exceeded) {
        out << "verdict: timing outside tolerance band (exit 2)\n";
    } else {
        out << "verdict: within tolerance (exit 0)\n";
    }
}

} // namespace csp::diff
