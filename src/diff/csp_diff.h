/**
 * @file
 * The regression observatory behind `cspdiff`: flatten two run
 * artefacts (hierarchical stats JSON, sweep/interval CSV, bench
 * scorecard JSON) into dotted-name -> value maps, classify every stat
 * as must-be-bit-identical (correctness counters and their derived
 * ratios), tolerance-banded (timing, throughput, anything measured in
 * wall-clock), or informational provenance (`manifest.*`), and rank
 * the deltas into a report with a CI-usable exit code.
 *
 * The classification encodes the repo's determinism contract: with
 * matching config/trace digests and seed, every count the simulator
 * produces is reproducible bit for bit on one machine; only wall-clock
 * is allowed to move, and only within a band.
 */

#ifndef CSP_DIFF_CSP_DIFF_H
#define CSP_DIFF_CSP_DIFF_H

#include <cstddef>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace csp::diff {

/** One flattened scalar: numeric when the source text parses fully as
 *  a number, textual otherwise. The source text is kept for reports
 *  and for exact string comparison of non-numeric values. */
struct FlatValue
{
    bool is_number = false;
    double number = 0.0;
    std::string text;
};

/** A parsed artefact: dotted-name -> value pairs in document order. */
struct FlatDoc
{
    std::vector<std::pair<std::string, FlatValue>> entries;

    /** First entry named @p name, or nullptr. */
    const FlatValue *find(const std::string &name) const;

    void add(std::string name, FlatValue value);
};

/**
 * Flatten a JSON document: objects join keys with '.', arrays use the
 * element index as the key segment. Returns false (with *error set)
 * on malformed input. Handles everything this repo emits plus the
 * escape sequences of ordinary JSON.
 */
bool parseJsonFlat(const std::string &text, FlatDoc &out,
                   std::string *error);

/**
 * Flatten a CSV table: each cell becomes "<row key>.<column header>",
 * where the row key is the row's first cell (de-duplicated with "#N"
 * suffixes when repeated). Lines starting with '#' are comments; a
 * `# manifest <json>` comment (the provenance line interval CSVs
 * carry) is flattened under "manifest.".
 */
bool parseCsvFlat(const std::string &text, FlatDoc &out,
                  std::string *error);

/**
 * Parse @p text as whichever of the two formats it starts with
 * ('{' or '[' -> JSON, else CSV).
 */
bool parseFlat(const std::string &text, FlatDoc &out,
               std::string *error);

/** How a stat is compared. */
enum class StatClass : std::uint8_t
{
    Correctness, ///< must match bit for bit (default)
    Learning,    ///< observer-conditional "learn."/"snapshots." subtree:
                 ///< values must match when present on both sides, but
                 ///< one-sided presence is a note (the subtree only
                 ///< exists when a learning observer was attached)
    Memory,      ///< observer-conditional memory-observatory subtrees
                 ///< ("mem.class.*", "mem.reuse.*", ...): same contract
                 ///< as Learning — drift fails, one-sided presence is a
                 ///< note (only exists when a mem observer was attached)
    Timing,      ///< tolerance-banded wall-clock / throughput
    Provenance,  ///< manifest block: reported, never failing
};

/** Classification by dotted name; see the file comment. */
StatClass classify(const std::string &name);

struct DiffOptions
{
    /** Allowed relative delta for Timing stats (0.05 = 5%). */
    double timing_tolerance = 0.05;
    /** Allowed relative delta for non-integer Correctness stats —
     *  0 demands bit-identical doubles (same-machine rebuilds); CI
     *  comparing across compilers passes a last-ulp-scale epsilon. */
    double float_tolerance = 0.0;
    /** When false, out-of-band Timing deltas are reported but never
     *  fail the diff (cross-machine comparisons). */
    bool fail_on_timing = true;
    /** Fail (as correctness drift) when the two manifests disagree on
     *  config_digest, trace_digest or seed — i.e. the runs were not
     *  comparing the same experiment. */
    bool require_same_input = false;
};

/** One compared stat that differed (or exists on only one side). */
struct Finding
{
    std::string name;
    StatClass cls = StatClass::Correctness;
    bool missing_a = false; ///< only present in document B
    bool missing_b = false; ///< only present in document A
    std::string a_text;
    std::string b_text;
    double rel_delta = 0.0; ///< |a-b| / max(|a|,|b|) for numbers
    bool failing = false;
};

struct DiffResult
{
    std::vector<Finding> findings; ///< ranked: failing first, by delta
    std::size_t compared = 0;      ///< names present on both sides
    std::size_t only_a = 0;
    std::size_t only_b = 0;
    bool correctness_drift = false;
    bool timing_exceeded = false;
    bool provenance_mismatch = false; ///< config/trace digest or seed

    /** 0 = clean, 1 = correctness drift, 2 = timing band exceeded. */
    int exitCode() const;

    /** Human-readable ranked report (at most @p max_rows findings). */
    void writeReport(std::ostream &out, std::size_t max_rows = 40) const;
};

/** Compare two flattened artefacts. */
DiffResult diffDocs(const FlatDoc &a, const FlatDoc &b,
                    const DiffOptions &options = {});

} // namespace csp::diff

#endif // CSP_DIFF_CSP_DIFF_H
