#include "diff/learn_report.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <vector>

namespace csp::diff {

namespace {

double
num(const FlatDoc &doc, const std::string &name, double fallback = 0.0)
{
    const FlatValue *value = doc.find(name);
    return value != nullptr && value->is_number ? value->number
                                                : fallback;
}

std::string
text(const FlatDoc &doc, const std::string &name,
     const std::string &fallback = "?")
{
    const FlatValue *value = doc.find(name);
    return value != nullptr ? value->text : fallback;
}

std::string
snapKey(std::size_t snap, const char *field)
{
    std::ostringstream name;
    name << "snapshots." << snap << '.' << field;
    return name.str();
}

/** Snapshots present in the flattened document (array length). */
std::size_t
snapshotCount(const FlatDoc &doc)
{
    std::size_t n = 0;
    while (doc.find(snapKey(n, "lookup")) != nullptr)
        ++n;
    return n;
}

/** One series across all snapshots, e.g. field = "epsilon". */
std::vector<double>
series(const FlatDoc &doc, std::size_t snaps, const char *field)
{
    std::vector<double> out;
    out.reserve(snaps);
    for (std::size_t i = 0; i < snaps; ++i)
        out.push_back(num(doc, snapKey(i, field)));
    return out;
}

/** Eight-level unicode sparkline, scaled to the series' own range. */
std::string
spark(const std::vector<double> &values)
{
    static const char *kLevels[] = {"▁", "▂", "▃",
                                    "▄", "▅", "▆",
                                    "▇", "█"};
    if (values.empty())
        return "";
    double lo = values[0];
    double hi = values[0];
    for (const double v : values) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    const double span = hi - lo;
    std::string out;
    for (const double v : values) {
        const int level =
            span <= 0.0 ? 0
                        : std::min(7, static_cast<int>((v - lo) / span *
                                                       7.999));
        out += kLevels[level];
    }
    return out;
}

std::string
fmt(double value, int precision = 4)
{
    std::ostringstream out;
    out << std::fixed << std::setprecision(precision) << value;
    return out.str();
}

std::string
fmtCount(double value)
{
    std::ostringstream out;
    out << static_cast<long long>(value);
    return out.str();
}

std::string
ratio(double numerator, double denominator, int precision = 4)
{
    return denominator <= 0.0 ? "-"
                              : fmt(numerator / denominator, precision);
}

/** Direction of a series endpoint-to-endpoint, with noise floor. */
enum class Trend
{
    Falling,
    Flat,
    Rising,
};

Trend
trend(const std::vector<double> &values, double noise)
{
    if (values.size() < 2)
        return Trend::Flat;
    const double delta = values.back() - values.front();
    if (delta < -noise)
        return Trend::Falling;
    if (delta > noise)
        return Trend::Rising;
    return Trend::Flat;
}

const char *
trendWord(Trend t)
{
    switch (t) {
      case Trend::Falling: return "falling";
      case Trend::Flat: return "flat";
      case Trend::Rising: return "rising";
    }
    return "?";
}

void
renderCurve(const FlatDoc &doc, std::size_t snaps, std::ostream &out,
            const LearnReportOptions &options)
{
    out << "learning curve (" << snaps << " snapshots)\n";
    out << "  " << std::setw(12) << "lookup" << std::setw(10)
        << "epsilon" << std::setw(10) << "accuracy" << std::setw(10)
        << "entropy" << std::setw(12) << "cum_reward" << std::setw(10)
        << "explore" << std::setw(10) << "cst_live" << "\n";
    const std::size_t rows = std::min(snaps, options.max_rows);
    for (std::size_t r = 0; r < rows; ++r) {
        // Evenly subsample, always keeping the final snapshot.
        const std::size_t i =
            rows <= 1 ? snaps - 1 : r * (snaps - 1) / (rows - 1);
        out << "  " << std::setw(12)
            << fmtCount(num(doc, snapKey(i, "lookup"))) << std::setw(10)
            << fmt(num(doc, snapKey(i, "epsilon"))) << std::setw(10)
            << fmt(num(doc, snapKey(i, "accuracy"))) << std::setw(10)
            << fmt(num(doc, snapKey(i, "entropy"))) << std::setw(12)
            << fmtCount(num(doc, snapKey(i, "cumulative_reward")))
            << std::setw(10)
            << fmtCount(num(doc, snapKey(i, "explorations")))
            << std::setw(10)
            << fmtCount(num(doc, snapKey(i, "cst_live_entries")))
            << "\n";
    }
    out << "  epsilon  " << spark(series(doc, snaps, "epsilon"))
        << "\n";
    out << "  accuracy " << spark(series(doc, snaps, "accuracy"))
        << "\n";
    out << "  entropy  " << spark(series(doc, snaps, "entropy"))
        << "\n";
}

void
renderConvergence(const FlatDoc &doc, std::size_t snaps,
                  std::ostream &out)
{
    const std::vector<double> eps = series(doc, snaps, "epsilon");
    const std::vector<double> acc = series(doc, snaps, "accuracy");
    const std::vector<double> ent = series(doc, snaps, "entropy");
    const Trend eps_t = trend(eps, 0.005);
    const Trend acc_t = trend(acc, 0.01);
    const Trend ent_t = trend(ent, 0.01);
    out << "convergence\n";
    if (!eps.empty()) {
        out << "  epsilon  " << fmt(eps.front()) << " -> "
            << fmt(eps.back()) << "  (" << trendWord(eps_t) << ")\n";
        out << "  accuracy " << fmt(acc.front()) << " -> "
            << fmt(acc.back()) << "  (" << trendWord(acc_t) << ")\n";
        out << "  entropy  " << fmt(ent.front()) << " -> "
            << fmt(ent.back()) << "  (" << trendWord(ent_t) << ")\n";
    }
    // The adaptive policy ties epsilon to (1 - accuracy), so a healthy
    // run shows accuracy rising while epsilon and entropy decay
    // together: the policy is both getting it right and becoming
    // certain. Entropy falling without accuracy rising means score
    // saturation, not learning.
    const char *verdict = "inconclusive (too few snapshots)";
    if (snaps >= 2) {
        const bool exploit = eps_t != Trend::Rising;
        if (acc_t == Trend::Rising && exploit &&
            ent_t != Trend::Rising) {
            verdict = "converging: accuracy up, exploration and "
                      "entropy decaying";
        } else if (acc_t == Trend::Falling) {
            verdict = "regressing: accuracy falling — check the "
                      "reward window and CST churn";
        } else if (acc_t == Trend::Flat && eps_t == Trend::Flat) {
            verdict = "plateaued: policy stable, no further learning "
                      "signal";
        } else if (ent_t == Trend::Falling &&
                   acc_t != Trend::Rising) {
            verdict = "saturating: scores concentrating without "
                      "accuracy gains (possible overfit to stale "
                      "deltas)";
        } else {
            verdict = "mixed: trends disagree — inspect the curve";
        }
    }
    out << "  verdict: " << verdict << "\n";
}

void
renderCstHealth(const FlatDoc &doc, std::size_t snaps,
                std::ostream &out)
{
    const double probes = num(doc, "learn.cst.probes");
    const double hits = num(doc, "learn.cst.probe_hits");
    const double attempts = num(doc, "learn.cst.insert_attempts");
    const double inserts = num(doc, "learn.cst.inserts");
    const double duplicates = num(doc, "learn.cst.duplicates");
    const double conflicts = num(doc, "learn.cst.tag_conflicts");
    const double entry_evictions =
        num(doc, "learn.cst.entry_evictions");
    const double link_evictions = num(doc, "learn.cst.link_evictions");
    out << "cst health\n";
    out << "  probes            " << std::setw(12) << fmtCount(probes)
        << "   hit rate       " << ratio(hits, probes) << "\n";
    out << "  insert attempts   " << std::setw(12)
        << fmtCount(attempts) << "   duplicate rate "
        << ratio(duplicates, attempts) << "\n";
    out << "  links stored      " << std::setw(12) << fmtCount(inserts)
        << "   link churn     " << ratio(link_evictions, inserts)
        << "\n";
    out << "  hash collisions   " << std::setw(12)
        << fmtCount(conflicts) << "   conflict rate  "
        << ratio(conflicts, attempts) << "\n";
    out << "  entry evictions   " << std::setw(12)
        << fmtCount(entry_evictions);
    if (snaps > 0) {
        const std::string last_live =
            snapKey(snaps - 1, "cst_live_entries");
        const std::string last_total =
            snapKey(snaps - 1, "cst_entries");
        out << "   occupancy      "
            << ratio(num(doc, last_live), num(doc, last_total));
    }
    out << "\n";
}

void
renderTopContexts(const FlatDoc &doc, std::size_t snaps,
                  std::ostream &out,
                  const LearnReportOptions &options)
{
    if (snaps == 0)
        return;
    const std::size_t last = snaps - 1;
    out << "top contexts (final snapshot)\n";
    for (std::size_t c = 0; c < options.max_contexts; ++c) {
        std::ostringstream prefix;
        prefix << "snapshots." << last << ".top_contexts." << c << '.';
        const FlatValue *key = doc.find(prefix.str() + "key");
        if (key == nullptr)
            break;
        out << "  ctx " << std::setw(10)
            << fmtCount(key->is_number ? key->number : 0) << "  churn "
            << std::setw(3)
            << fmtCount(num(doc, prefix.str() + "churn")) << "  links";
        for (std::size_t l = 0;; ++l) {
            std::ostringstream link;
            link << prefix.str() << "links." << l << '.';
            const FlatValue *delta = doc.find(link.str() + "delta");
            if (delta == nullptr)
                break;
            out << ' '
                << fmtCount(delta->is_number ? delta->number : 0) << ':'
                << fmtCount(num(doc, link.str() + "score"));
        }
        out << "\n";
    }
}

void
renderCompare(const FlatDoc &a, const std::string &label_a,
              const FlatDoc &b, const std::string &label_b,
              std::ostream &out)
{
    out << "comparison\n";
    out << "  " << std::setw(22) << "" << std::setw(14) << "A"
        << std::setw(14) << "B" << std::setw(14) << "delta" << "\n";
    const auto row = [&](const char *label, const std::string &name,
                         int precision) {
        const double va = num(a, name);
        const double vb = num(b, name);
        out << "  " << std::setw(22) << label << std::setw(14)
            << fmt(va, precision) << std::setw(14)
            << fmt(vb, precision) << std::setw(14)
            << fmt(vb - va, precision) << "\n";
    };
    row("final epsilon", "learn.policy.epsilon", 4);
    row("final accuracy", "learn.policy.accuracy", 4);
    row("final entropy", "learn.policy.entropy", 4);
    row("cumulative reward", "learn.reward.cumulative", 0);
    row("explorations", "learn.policy.explorations", 0);
    row("cst links stored", "learn.cst.inserts", 0);
    row("cst hash collisions", "learn.cst.tag_conflicts", 0);
    out << "  A = " << label_a << "\n  B = " << label_b << "\n";
}

void
renderHeader(const FlatDoc &doc, const std::string &label,
             std::ostream &out)
{
    out << "== " << label << " ==\n";
    out << "prefetcher " << text(doc, "prefetcher") << "   workload "
        << text(doc, "manifest.workloads", "?") << "   seed "
        << text(doc, "manifest.seed", "?") << "\n";
}

void
renderOne(const FlatDoc &doc, const std::string &label,
          std::ostream &out, const LearnReportOptions &options)
{
    const std::size_t snaps = snapshotCount(doc);
    renderHeader(doc, label, out);
    renderCurve(doc, snaps, out, options);
    renderConvergence(doc, snaps, out);
    renderCstHealth(doc, snaps, out);
    renderTopContexts(doc, snaps, out, options);
}

} // namespace

bool
isLearnDoc(const FlatDoc &doc, std::string *error)
{
    const FlatValue *schema = doc.find("schema");
    if (schema == nullptr || schema->text != "csp-learn-v1") {
        if (error != nullptr)
            *error = "not a csp-learn-v1 document (missing or "
                     "unexpected \"schema\")";
        return false;
    }
    for (const char *key :
         {"learn.policy.selections", "learn.cst.probes"}) {
        if (doc.find(key) == nullptr) {
            if (error != nullptr)
                *error = std::string("missing required key \"") + key +
                         '"';
            return false;
        }
    }
    return true;
}

bool
renderLearnReport(const FlatDoc &a, const std::string &label_a,
                  const FlatDoc *b, const std::string &label_b,
                  std::ostream &out, std::string *error,
                  const LearnReportOptions &options)
{
    if (!isLearnDoc(a, error))
        return false;
    if (b != nullptr && !isLearnDoc(*b, error))
        return false;
    renderOne(a, label_a, out, options);
    if (b != nullptr) {
        out << "\n";
        renderOne(*b, label_b, out, options);
        out << "\n";
        renderCompare(a, label_a, *b, label_b, out);
    }
    return true;
}

} // namespace csp::diff
