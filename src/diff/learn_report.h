/**
 * @file
 * Learning-curve report renderer behind `csplearn`: takes one (or two)
 * flattened learn.json documents — the periodic learning-state
 * snapshots cspsim writes under --learn-out — and renders the
 * convergence story as text: per-snapshot learning-curve table with
 * sparklines, convergence diagnostics (did epsilon decay, did policy
 * entropy decay, did accuracy rise, and do they agree), CST-health
 * counters, and the final snapshot's top contexts with their per-arm
 * scores. With a second document the report appends a side-by-side
 * comparison of the final learning states.
 *
 * Output is deterministic for a given input (fixed precision, no
 * wall-clock), so reports can be golden-tested and diffed across runs.
 */

#ifndef CSP_DIFF_LEARN_REPORT_H
#define CSP_DIFF_LEARN_REPORT_H

#include <iosfwd>
#include <string>

#include "diff/csp_diff.h"

namespace csp::diff {

struct LearnReportOptions
{
    /** Learning-curve rows shown (evenly subsampled when the file has
     *  more snapshots than this). */
    std::size_t max_rows = 16;
    /** Top contexts of the final snapshot shown. */
    std::size_t max_contexts = 8;
};

/**
 * Validate that @p doc looks like a flattened csp-learn-v1 document.
 * Returns false with *error set when a required key is missing.
 */
bool isLearnDoc(const FlatDoc &doc, std::string *error);

/**
 * Render the learning report for @p a (labelled @p label_a). When
 * @p b is non-null a comparison section is appended. Returns false
 * (with *error set) when a document is not a learn.json.
 */
bool renderLearnReport(const FlatDoc &a, const std::string &label_a,
                       const FlatDoc *b, const std::string &label_b,
                       std::ostream &out, std::string *error,
                       const LearnReportOptions &options = {});

} // namespace csp::diff

#endif // CSP_DIFF_LEARN_REPORT_H
