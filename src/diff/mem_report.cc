#include "diff/mem_report.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <vector>

namespace csp::diff {

namespace {

const char *const kClasses[] = {"compulsory", "pollution", "conflict",
                                "capacity"};

double
num(const FlatDoc &doc, const std::string &name, double fallback = 0.0)
{
    const FlatValue *value = doc.find(name);
    return value != nullptr && value->is_number ? value->number
                                                : fallback;
}

std::string
text(const FlatDoc &doc, const std::string &name,
     const std::string &fallback = "?")
{
    const FlatValue *value = doc.find(name);
    return value != nullptr ? value->text : fallback;
}

std::string
fmt(double value, int precision = 4)
{
    std::ostringstream out;
    out << std::fixed << std::setprecision(precision) << value;
    return out.str();
}

std::string
fmtCount(double value)
{
    std::ostringstream out;
    out << static_cast<long long>(value);
    return out.str();
}

/** "count (share%)" cell for the taxonomy tables. */
std::string
share(double count, double total)
{
    std::ostringstream out;
    out << fmtCount(count) << " (";
    out << (total <= 0.0 ? "-"
                         : fmt(100.0 * count / total, 1) + "%")
        << ')';
    return out.str();
}

/** Key under one level's subtree: levelKey("l1", "classes.capacity"). */
std::string
levelKey(const char *level, const std::string &field)
{
    return std::string("mem.") + level + '.' + field;
}

/** Flattened-array element count: longest prefix with "<i>.<probe>". */
std::size_t
arrayCount(const FlatDoc &doc, const std::string &prefix,
           const char *probe)
{
    std::size_t n = 0;
    for (;;) {
        std::ostringstream key;
        key << prefix << '.' << n << '.' << probe;
        if (doc.find(key.str()) == nullptr)
            return n;
        ++n;
    }
}

void
renderTaxonomy(const FlatDoc &doc, const char *level, std::ostream &out)
{
    const double accesses = num(doc, levelKey(level, "accesses"));
    const double classified = num(doc, levelKey(level, "classified"));
    out << level << " miss taxonomy ("
        << fmtCount(accesses) << " accesses, "
        << fmtCount(classified) << " classified misses, miss rate "
        << (accesses <= 0.0 ? "-" : fmt(classified / accesses, 4))
        << ")\n";
    for (const char *cls : kClasses) {
        const double count =
            num(doc, levelKey(level, std::string("classes.") + cls));
        out << "  " << std::setw(11) << cls << "  " << std::setw(24)
            << share(count, classified) << "\n";
    }
}

void
renderReuse(const FlatDoc &doc, std::ostream &out)
{
    out << "reuse distance (LRU stack depth, lines)\n";
    out << "  " << std::setw(6) << "" << std::setw(12) << "samples"
        << std::setw(10) << "mean" << std::setw(10) << "p50"
        << std::setw(10) << "p90" << std::setw(10) << "p99"
        << std::setw(12) << "capacity" << "\n";
    for (const char *level : {"l1", "l2"}) {
        out << "  " << std::setw(6) << level << std::setw(12)
            << fmtCount(num(doc, levelKey(level, "reuse.count")))
            << std::setw(10)
            << fmt(num(doc, levelKey(level, "reuse.mean")), 1)
            << std::setw(10)
            << fmtCount(num(doc, levelKey(level, "reuse.p50")))
            << std::setw(10)
            << fmtCount(num(doc, levelKey(level, "reuse.p90")))
            << std::setw(10)
            << fmtCount(num(doc, levelKey(level, "reuse.p99")))
            << std::setw(12)
            << fmtCount(num(doc, levelKey(level, "capacity_lines")))
            << "\n";
    }
}

void
renderSets(const FlatDoc &doc, std::ostream &out,
           const MemReportOptions &options)
{
    out << "set pressure (hottest sets by evictions)\n";
    for (const char *level : {"l1", "l2"}) {
        const double evictions =
            num(doc, levelKey(level, "sets.evictions"));
        const double demand =
            num(doc, levelKey(level, "sets.fills_demand"));
        const double prefetch =
            num(doc, levelKey(level, "sets.fills_prefetch"));
        const double fills = demand + prefetch;
        out << "  " << level << ": " << fmtCount(evictions)
            << " evictions across "
            << fmtCount(num(doc, levelKey(level, "sets.count")))
            << " sets, demand fill share "
            << (fills <= 0.0 ? "-" : fmt(demand / fills, 4)) << "\n";
        const std::size_t top = std::min(
            options.max_sets,
            arrayCount(doc, levelKey(level, "sets.top"), "set"));
        for (std::size_t i = 0; i < top; ++i) {
            std::ostringstream prefix;
            prefix << "mem." << level << ".sets.top." << i << '.';
            out << "    set " << std::setw(6)
                << fmtCount(num(doc, prefix.str() + "set"))
                << "  evictions " << std::setw(10)
                << fmtCount(num(doc, prefix.str() + "evictions"))
                << "  demand share "
                << fmt(num(doc, prefix.str() + "demand_share"), 4)
                << "\n";
        }
    }
}

void
renderPollution(const FlatDoc &doc, std::ostream &out,
                const MemReportOptions &options)
{
    out << "pollution attribution (prefetch issuer -> displaced demand)\n";
    for (const char *level : {"l1", "l2"}) {
        const std::string prefix =
            std::string("mem.pollution.") + level + '.';
        const double attributed = num(doc, prefix + "attributed");
        const double unattributed = num(doc, prefix + "unattributed");
        out << "  " << level << ": " << fmtCount(attributed)
            << " attributed, " << fmtCount(unattributed)
            << " unattributed\n";
    }
    const std::size_t pairs = arrayCount(doc, "mem.pollution.pairs",
                                         "count");
    const std::size_t shown = std::min(options.max_pairs, pairs);
    for (std::size_t i = 0; i < shown; ++i) {
        std::ostringstream prefix;
        prefix << "mem.pollution.pairs." << i << '.';
        out << "    L" << fmtCount(num(doc, prefix.str() + "level"))
            << "  issuer " << std::setw(14)
            << text(doc, prefix.str() + "issuer_pc") << "  demand "
            << std::setw(14) << text(doc, prefix.str() + "demand_pc")
            << "  misses " << std::setw(8)
            << fmtCount(num(doc, prefix.str() + "count")) << "\n";
    }
    const double overflow = num(doc, "mem.pollution.pairs_overflow");
    if (overflow > 0.0) {
        out << "    (" << fmtCount(overflow)
            << " pollution misses beyond the pair-table bound)\n";
    }
}

void
renderPcs(const FlatDoc &doc, std::ostream &out,
          const MemReportOptions &options)
{
    const std::size_t pcs = arrayCount(doc, "mem.pc", "pc");
    if (pcs == 0)
        return;
    out << "hottest demand PCs (by L1 misses, "
        << fmtCount(num(doc, "mem.pc_tracked")) << " tracked)\n";
    out << "  " << std::setw(14) << "pc" << std::setw(12) << "accesses"
        << std::setw(12) << "l1_misses" << std::setw(12) << "l2_misses"
        << std::setw(12) << "reuse p50" << "\n";
    const std::size_t shown = std::min(options.max_pcs, pcs);
    for (std::size_t i = 0; i < shown; ++i) {
        std::ostringstream prefix;
        prefix << "mem.pc." << i << '.';
        out << "  " << std::setw(14) << text(doc, prefix.str() + "pc")
            << std::setw(12)
            << fmtCount(num(doc, prefix.str() + "accesses"))
            << std::setw(12)
            << fmtCount(num(doc, prefix.str() + "l1_misses"))
            << std::setw(12)
            << fmtCount(num(doc, prefix.str() + "l2_misses"))
            << std::setw(12)
            << fmtCount(num(doc, prefix.str() + "reuse.p50")) << "\n";
    }
}

void
renderTimeline(const FlatDoc &doc, std::ostream &out,
               const MemReportOptions &options)
{
    const std::size_t samples = arrayCount(doc, "mem.timeline",
                                           "access");
    if (samples == 0)
        return;
    out << "queue-depth timeline (" << samples << " samples, every "
        << fmtCount(num(doc, "mem.interval")) << " accesses)\n";
    out << "  " << std::setw(12) << "access" << std::setw(12) << "cycle"
        << std::setw(10) << "l1_mshr" << std::setw(10) << "l2_mshr"
        << std::setw(14) << "dram_backlog" << "\n";
    const std::size_t rows = std::min(options.max_timeline, samples);
    for (std::size_t r = 0; r < rows; ++r) {
        // Evenly subsample, always keeping the final sample.
        const std::size_t i =
            rows <= 1 ? samples - 1 : r * (samples - 1) / (rows - 1);
        std::ostringstream prefix;
        prefix << "mem.timeline." << i << '.';
        out << "  " << std::setw(12)
            << fmtCount(num(doc, prefix.str() + "access"))
            << std::setw(12)
            << fmtCount(num(doc, prefix.str() + "cycle"))
            << std::setw(10)
            << fmtCount(num(doc, prefix.str() + "l1_mshr"))
            << std::setw(10)
            << fmtCount(num(doc, prefix.str() + "l2_mshr"))
            << std::setw(14)
            << fmtCount(num(doc, prefix.str() + "dram_backlog"))
            << "\n";
    }
}

void
renderShadowCost(const FlatDoc &doc, std::ostream &out)
{
    out << "shadow models\n";
    out << "  shadow hits        l1 "
        << fmtCount(num(doc, "mem.l1.shadow_hits")) << "   l2 "
        << fmtCount(num(doc, "mem.l2.shadow_hits")) << "\n";
    out << "  stack live lines   l1 "
        << fmtCount(num(doc, "mem.shadow.l1_live_lines")) << "   l2 "
        << fmtCount(num(doc, "mem.shadow.l2_live_lines"))
        << "   compactions "
        << fmtCount(num(doc, "mem.shadow.compactions")) << "\n";
}

void
renderCompare(const FlatDoc &a, const std::string &label_a,
              const FlatDoc &b, const std::string &label_b,
              std::ostream &out)
{
    out << "comparison\n";
    out << "  " << std::setw(22) << "" << std::setw(14) << "A"
        << std::setw(14) << "B" << std::setw(14) << "delta" << "\n";
    const auto row = [&](const std::string &label,
                         const std::string &name) {
        const double va = num(a, name);
        const double vb = num(b, name);
        out << "  " << std::setw(22) << label << std::setw(14)
            << fmtCount(va) << std::setw(14) << fmtCount(vb)
            << std::setw(14) << fmtCount(vb - va) << "\n";
    };
    for (const char *level : {"l1", "l2"}) {
        row(std::string(level) + " classified",
            levelKey(level, "classified"));
        for (const char *cls : kClasses) {
            row(std::string(level) + ' ' + cls,
                levelKey(level, std::string("classes.") + cls));
        }
    }
    row("pollution attributed", "mem.pollution.l1.attributed");
    out << "  A = " << label_a << "\n  B = " << label_b << "\n";
}

void
renderHeader(const FlatDoc &doc, const std::string &label,
             std::ostream &out)
{
    out << "== " << label << " ==\n";
    out << "prefetcher " << text(doc, "prefetcher") << "   workload "
        << text(doc, "manifest.workloads", "?") << "   seed "
        << text(doc, "manifest.seed", "?") << "\n";
}

void
renderOne(const FlatDoc &doc, const std::string &label,
          std::ostream &out, const MemReportOptions &options)
{
    renderHeader(doc, label, out);
    renderTaxonomy(doc, "l1", out);
    renderTaxonomy(doc, "l2", out);
    renderReuse(doc, out);
    renderSets(doc, out, options);
    renderPollution(doc, out, options);
    renderPcs(doc, out, options);
    renderTimeline(doc, out, options);
    renderShadowCost(doc, out);
}

} // namespace

bool
isMemDoc(const FlatDoc &doc, std::string *error)
{
    const FlatValue *schema = doc.find("schema");
    if (schema == nullptr || schema->text != "csp-mem-v1") {
        if (error != nullptr)
            *error = "not a csp-mem-v1 document (missing or "
                     "unexpected \"schema\")";
        return false;
    }
    for (const char *key : {"mem.l1.classes.compulsory",
                            "mem.l2.classes.compulsory",
                            "mem.l1.classified", "mem.accesses"}) {
        if (doc.find(key) == nullptr) {
            if (error != nullptr)
                *error = std::string("missing required key \"") + key +
                         '"';
            return false;
        }
    }
    return true;
}

bool
renderMemReport(const FlatDoc &a, const std::string &label_a,
                const FlatDoc *b, const std::string &label_b,
                std::ostream &out, std::string *error,
                const MemReportOptions &options)
{
    if (!isMemDoc(a, error))
        return false;
    if (b != nullptr && !isMemDoc(*b, error))
        return false;
    renderOne(a, label_a, out, options);
    if (b != nullptr) {
        out << "\n";
        renderOne(*b, label_b, out, options);
        out << "\n";
        renderCompare(a, label_a, *b, label_b, out);
    }
    return true;
}

} // namespace csp::diff
