/**
 * @file
 * Memory-hierarchy report renderer behind `cspmem`: takes one (or two)
 * flattened mem.json documents — the miss-taxonomy / set-pressure /
 * queue-depth export cspsim writes under --mem-out — and renders the
 * story as text: per-level 3C+pollution miss tables with shares,
 * reuse-distance summaries against each level's capacity, the
 * set-pressure heatmap (top sets with demand-vs-prefetch fill shares),
 * pollution attribution (issuer PC -> demand PC pairs), the hottest
 * demand PCs, and an MSHR/DRAM queue-depth timeline summary. With a
 * second document the report appends a side-by-side comparison of the
 * two miss taxonomies — the "where did the misses go" A/B view.
 *
 * Output is deterministic for a given input (fixed precision, no
 * wall-clock), so reports can be golden-tested and diffed across runs.
 */

#ifndef CSP_DIFF_MEM_REPORT_H
#define CSP_DIFF_MEM_REPORT_H

#include <iosfwd>
#include <string>

#include "diff/csp_diff.h"

namespace csp::diff {

struct MemReportOptions
{
    /** Hot sets shown per level (the export carries its own top-K). */
    std::size_t max_sets = 4;
    /** Pollution attribution pairs shown. */
    std::size_t max_pairs = 8;
    /** Demand PCs shown. */
    std::size_t max_pcs = 8;
    /** Timeline rows shown (evenly subsampled when longer). */
    std::size_t max_timeline = 8;
};

/**
 * Validate that @p doc looks like a flattened csp-mem-v1 document.
 * Returns false with *error set when a required key is missing.
 */
bool isMemDoc(const FlatDoc &doc, std::string *error);

/**
 * Render the memory report for @p a (labelled @p label_a). When
 * @p b is non-null a comparison section is appended. Returns false
 * (with *error set) when a document is not a mem.json.
 */
bool renderMemReport(const FlatDoc &a, const std::string &label_a,
                     const FlatDoc *b, const std::string &label_b,
                     std::ostream &out, std::string *error,
                     const MemReportOptions &options = {});

} // namespace csp::diff

#endif // CSP_DIFF_MEM_REPORT_H
