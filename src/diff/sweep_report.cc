#include "diff/sweep_report.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <ostream>
#include <utility>

#include "core/content_store.h"

namespace csp::diff {

namespace {

std::uint64_t
parseU64Text(const std::string &text, std::uint64_t fallback)
{
    if (text.empty())
        return fallback;
    char *end = nullptr;
    const std::uint64_t value = std::strtoull(text.c_str(), &end, 10);
    return (end != nullptr && *end == '\0') ? value : fallback;
}

std::string
fmtMs(std::uint64_t ns)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f",
                  static_cast<double>(ns) / 1e6);
    return buf;
}

std::string
fmtSec(double seconds)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f", seconds);
    return buf;
}

std::string
fmtPct(double fraction)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f%%", 100.0 * fraction);
    return buf;
}

std::string
fmtMInsts(std::uint64_t insts)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1fM",
                  static_cast<double>(insts) / 1e6);
    return buf;
}

/** Exact percentile over a sorted sample vector: the value of rank
 *  ceil(p * n) (1-based), the same convention Log2Histogram uses but
 *  sample-exact since the summary has every duration. */
std::uint64_t
exactPercentile(const std::vector<std::uint64_t> &sorted, double p)
{
    if (sorted.empty())
        return 0;
    const double rank = p * static_cast<double>(sorted.size());
    std::size_t idx =
        rank <= 1.0 ? 0
                    : static_cast<std::size_t>(rank + 0.9999999) - 1;
    if (idx >= sorted.size())
        idx = sorted.size() - 1;
    return sorted[idx];
}

void
padTo(std::string &line, std::size_t column)
{
    if (line.size() < column)
        line.append(column - line.size(), ' ');
}

/** Right-align @p text into a cell ending at @p line's current target
 *  width. Tables below are built from these so the renderer never
 *  depends on iostream locale state. */
std::string
rightAlign(const std::string &text, std::size_t width)
{
    if (text.size() >= width)
        return text;
    return std::string(width - text.size(), ' ') + text;
}

struct CellEndInfo
{
    const SweepEvent *event = nullptr;
    std::uint64_t duration_ns = 0;
    bool cached = false;
};

} // namespace

std::uint64_t
SweepEvent::u64(const std::string &key, std::uint64_t fallback) const
{
    const FlatValue *value = doc.find(key);
    if (value == nullptr || !value->is_number)
        return fallback;
    return parseU64Text(value->text, fallback);
}

std::string
SweepEvent::text(const std::string &key) const
{
    const FlatValue *value = doc.find(key);
    return value == nullptr ? std::string() : value->text;
}

const SweepEvent *
SweepJournal::first(const std::string &type) const
{
    for (const SweepEvent &event : events) {
        if (event.type == type)
            return &event;
    }
    return nullptr;
}

const SweepEvent *
SweepJournal::last(const std::string &type) const
{
    const SweepEvent *found = nullptr;
    for (const SweepEvent &event : events) {
        if (event.type == type)
            found = &event;
    }
    return found;
}

bool
parseJournal(const std::string &text, SweepJournal &out,
             std::string *error)
{
    out.events.clear();
    std::size_t start = 0;
    std::size_t line_no = 0;
    while (start < text.size()) {
        std::size_t end = text.find('\n', start);
        if (end == std::string::npos)
            end = text.size();
        ++line_no;
        const std::string line = text.substr(start, end - start);
        start = end + 1;
        if (line.empty())
            continue;
        SweepEvent event;
        event.line = line;
        std::string parse_error;
        if (!parseJsonFlat(line, event.doc, &parse_error)) {
            if (error != nullptr) {
                *error = "line " + std::to_string(line_no) + ": " +
                         parse_error;
            }
            return false;
        }
        const FlatValue *type = event.doc.find("event");
        if (type == nullptr || type->text.empty()) {
            if (error != nullptr) {
                *error = "line " + std::to_string(line_no) +
                         ": missing \"event\" field";
            }
            return false;
        }
        event.type = type->text;
        const FlatValue *t_ns = event.doc.find("t_ns");
        const FlatValue *seq = event.doc.find("seq");
        const FlatValue *shard = event.doc.find("shard");
        if (t_ns == nullptr || !t_ns->is_number || seq == nullptr ||
            !seq->is_number || shard == nullptr ||
            !shard->is_number) {
            if (error != nullptr) {
                *error = "line " + std::to_string(line_no) +
                         ": missing t_ns/seq/shard";
            }
            return false;
        }
        event.t_ns = parseU64Text(t_ns->text, 0);
        event.seq = parseU64Text(seq->text, 0);
        event.shard = parseU64Text(shard->text, 0);
        out.events.push_back(std::move(event));
    }
    return true;
}

bool
readJournal(const std::string &path, SweepJournal &out,
            std::string *error)
{
    std::string text;
    if (!readFileToString(path, text)) {
        if (error != nullptr)
            *error = "cannot read " + path;
        return false;
    }
    if (!parseJournal(text, out, error)) {
        if (error != nullptr)
            *error = path + ": " + *error;
        return false;
    }
    return true;
}

bool
journalIdentity(const SweepJournal &journal, JournalIdentity &out,
                std::string *error)
{
    const SweepEvent *start = journal.first("sweep_start");
    if (start == nullptr) {
        if (error != nullptr)
            *error = "no sweep_start event (not a sweep journal?)";
        return false;
    }
    out.config_digest = start->text("config_digest");
    out.seed = start->u64("seed");
    out.scale = start->u64("scale");
    out.placement = start->text("placement");
    out.workloads = start->text("workloads");
    out.prefetchers = start->text("prefetchers");
    out.shard_count = start->u64("shard_count", 1);
    out.shard_index = start->shard;
    out.unix_ns = start->u64("unix_ns");
    return true;
}

bool
renderSweepSummary(const SweepJournal &journal, std::ostream &out,
                   std::string *error,
                   const SweepReportOptions &options)
{
    JournalIdentity id;
    if (!journalIdentity(journal, id, error))
        return false;

    // Per-shard journal-open wall clock, for span across merged
    // journals; single journals span [0, max t_ns].
    std::map<std::uint64_t, std::uint64_t> shard_unix;
    std::uint64_t shard_count_seen = 0;
    for (const SweepEvent &event : journal.events) {
        if (event.type == "sweep_start") {
            shard_unix[event.shard] = event.u64("unix_ns");
            ++shard_count_seen;
        }
    }
    std::uint64_t span_ns = 0;
    {
        std::uint64_t min_abs = UINT64_MAX, max_abs = 0;
        for (const SweepEvent &event : journal.events) {
            const auto it = shard_unix.find(event.shard);
            const std::uint64_t base =
                it == shard_unix.end() ? 0 : it->second;
            min_abs = std::min(min_abs, base);
            max_abs = std::max(max_abs, base + event.t_ns);
        }
        span_ns = max_abs >= min_abs ? max_abs - min_abs : 0;
    }

    // Collect the cell matrix actually recorded.
    std::vector<CellEndInfo> cells;
    std::vector<std::uint64_t> all_ns, cached_ns, simulated_ns;
    std::uint64_t read_ns = 0, parse_ns = 0, entry_bytes = 0;
    std::uint64_t cached_wall_ns = 0;
    std::uint64_t verify_failures = 0;
    std::uint64_t trace_cache = 0, trace_gen = 0, trace_load = 0;
    std::uint64_t trace_gen_ns = 0;
    std::uint64_t evicted = 0, evicted_bytes = 0;
    struct WorkloadAgg
    {
        std::uint64_t cells = 0, cached = 0;
        std::uint64_t total_ns = 0, max_ns = 0;
    };
    std::map<std::string, WorkloadAgg> by_workload;
    struct WorkerAgg
    {
        std::uint64_t cells = 0, busy_ns = 0;
    };
    std::map<std::pair<std::uint64_t, std::uint64_t>, WorkerAgg>
        by_worker;
    for (const SweepEvent &event : journal.events) {
        if (event.type == "cell_end") {
            CellEndInfo info;
            info.event = &event;
            info.duration_ns = event.u64("duration_ns");
            info.cached = event.text("source") == "cached";
            cells.push_back(info);
            all_ns.push_back(info.duration_ns);
            (info.cached ? cached_ns : simulated_ns)
                .push_back(info.duration_ns);
            if (info.cached) {
                read_ns += event.u64("read_ns");
                parse_ns += event.u64("parse_ns");
                entry_bytes += event.u64("bytes");
                cached_wall_ns += info.duration_ns;
            }
            verify_failures += event.u64("verify_failed");
            WorkloadAgg &w = by_workload[event.text("workload")];
            ++w.cells;
            w.cached += info.cached ? 1 : 0;
            w.total_ns += info.duration_ns;
            w.max_ns = std::max(w.max_ns, info.duration_ns);
            WorkerAgg &worker =
                by_worker[{event.shard, event.u64("worker")}];
            ++worker.cells;
            worker.busy_ns += info.duration_ns;
        } else if (event.type == "trace_cache") {
            ++trace_cache;
        } else if (event.type == "trace_gen") {
            ++trace_gen;
            trace_gen_ns += event.u64("duration_ns");
        } else if (event.type == "trace_load") {
            ++trace_load;
        } else if (event.type == "evict") {
            ++evicted;
            evicted_bytes += event.u64("bytes");
        }
    }
    std::sort(all_ns.begin(), all_ns.end());
    std::sort(cached_ns.begin(), cached_ns.end());
    std::sort(simulated_ns.begin(), simulated_ns.end());

    out << "sweep observatory summary\n"
        << "=========================\n";
    out << "journal : " << shard_count_seen << " shard journal(s), "
        << journal.events.size() << " events, span " << fmtMs(span_ns)
        << " ms\n";
    out << "sweep   : workloads=" << id.workloads
        << " prefetchers=" << id.prefetchers << "\n"
        << "          scale=" << id.scale << " seed=" << id.seed
        << " placement=" << id.placement
        << " config=" << id.config_digest << " shards="
        << id.shard_count << "\n";
    const std::uint64_t n_cached = cached_ns.size();
    const std::uint64_t n_simulated = simulated_ns.size();
    const std::uint64_t n_cells = all_ns.size();
    out << "cells   : " << n_cells << " completed | " << n_cached
        << " cached ("
        << (n_cells == 0
                ? std::string("n/a")
                : fmtPct(static_cast<double>(n_cached) /
                         static_cast<double>(n_cells)))
        << " hit rate) | " << n_simulated << " simulated | "
        << verify_failures << " verify failure(s)\n";
    out << "traces  : " << trace_cache << " cache hit(s), "
        << trace_gen << " generated (" << fmtMs(trace_gen_ns)
        << " ms), " << trace_load << " loaded\n";

    const auto durationRow = [&](const char *label,
                                 const std::vector<std::uint64_t>
                                     &sorted) {
        std::string line = "  ";
        line += label;
        padTo(line, 22);
        line += rightAlign(std::to_string(sorted.size()), 7);
        for (const double p : {0.50, 0.90, 0.99}) {
            line +=
                rightAlign(fmtMs(exactPercentile(sorted, p)), 11);
        }
        line += rightAlign(
            fmtMs(sorted.empty() ? 0 : sorted.back()), 11);
        out << line << "\n";
    };
    out << "\ncell duration (ms)     count        p50        p90"
           "        p99        max\n";
    durationRow("all", all_ns);
    durationRow("cached", cached_ns);
    durationRow("simulated", simulated_ns);

    if (n_cached != 0 && read_ns + parse_ns != 0) {
        // The cold-vs-warm attribution the ROADMAP asked for: where a
        // memoized cell's wall-clock actually goes. Skipped outright
        // when nothing was cached — or when the cached cells carry no
        // read/parse timings (a journal from a shard that predates the
        // attribution fields) — instead of rendering an all-zero table.
        const std::uint64_t other_ns =
            cached_wall_ns > read_ns + parse_ns
                ? cached_wall_ns - read_ns - parse_ns
                : 0;
        const double wall =
            static_cast<double>(std::max<std::uint64_t>(
                cached_wall_ns, 1));
        out << "\nwarm-path attribution (cached cells, "
            << fmtMs(cached_wall_ns) << " ms wall):\n"
            << "  read  " << fmtMs(read_ns) << " ms ("
            << fmtPct(static_cast<double>(read_ns) / wall)
            << ") | parse " << fmtMs(parse_ns) << " ms ("
            << fmtPct(static_cast<double>(parse_ns) / wall)
            << ") | other " << fmtMs(other_ns) << " ms\n"
            << "  entries " << entry_bytes << " bytes total, mean "
            << (n_cached == 0 ? 0 : entry_bytes / n_cached)
            << " bytes/entry\n";
    }

    if (!by_workload.empty()) {
        out << "\nper-workload:\n"
            << "  workload            cells  cached   total-ms"
               "    mean-ms     max-ms\n";
        // Identity order (the sweep's own workload order) keeps the
        // table deterministic and familiar; stray names (never
        // emitted by runSweep) sort after, alphabetically.
        std::vector<std::string> order;
        std::size_t start = 0;
        const std::string &joined = id.workloads;
        while (start <= joined.size()) {
            const std::size_t comma = joined.find(',', start);
            const std::size_t end =
                comma == std::string::npos ? joined.size() : comma;
            if (end > start)
                order.push_back(joined.substr(start, end - start));
            if (comma == std::string::npos)
                break;
            start = comma + 1;
        }
        for (const auto &[name, agg] : by_workload) {
            if (std::find(order.begin(), order.end(), name) ==
                order.end())
                order.push_back(name);
        }
        std::size_t rows = 0;
        for (const std::string &name : order) {
            const auto it = by_workload.find(name);
            if (it == by_workload.end())
                continue;
            if (rows++ >= options.max_workloads) {
                out << "  ... (" << by_workload.size()
                    << " workloads total)\n";
                break;
            }
            const WorkloadAgg &agg = it->second;
            std::string line = "  " + name;
            padTo(line, 22);
            line += rightAlign(std::to_string(agg.cells), 5);
            line += rightAlign(std::to_string(agg.cached), 8);
            line += rightAlign(fmtMs(agg.total_ns), 11);
            line += rightAlign(
                fmtMs(agg.cells == 0 ? 0 : agg.total_ns / agg.cells),
                11);
            line += rightAlign(fmtMs(agg.max_ns), 11);
            out << line << "\n";
        }
    }

    if (!cells.empty()) {
        // The critical path of a longest-first schedule is its
        // longest cells; these rows are where sweep wall-clock goes.
        std::vector<const CellEndInfo *> longest;
        longest.reserve(cells.size());
        for (const CellEndInfo &info : cells)
            longest.push_back(&info);
        std::sort(longest.begin(), longest.end(),
                  [](const CellEndInfo *a, const CellEndInfo *b) {
                      if (a->duration_ns != b->duration_ns)
                          return a->duration_ns > b->duration_ns;
                      if (a->event->shard != b->event->shard)
                          return a->event->shard < b->event->shard;
                      return a->event->seq < b->event->seq;
                  });
        out << "\nstragglers (longest cells):\n"
            << "  #  workload            prefetcher  source     "
               "shard  worker  duration-ms\n";
        for (std::size_t i = 0;
             i < longest.size() && i < options.max_stragglers; ++i) {
            const CellEndInfo &info = *longest[i];
            std::string line =
                "  " + std::to_string(i + 1) + "  " +
                info.event->text("workload");
            padTo(line, 25);
            line += info.event->text("prefetcher");
            padTo(line, 37);
            line += info.cached ? "cached" : "simulated";
            padTo(line, 48);
            line += rightAlign(std::to_string(info.event->shard), 5);
            line += rightAlign(
                std::to_string(info.event->u64("worker")), 8);
            line += rightAlign(fmtMs(info.duration_ns), 13);
            out << line << "\n";
        }
    }

    if (!by_worker.empty()) {
        std::uint64_t busy_total = 0;
        for (const auto &[key, agg] : by_worker)
            busy_total += agg.busy_ns;
        out << "\nworkers:\n"
            << "  shard  worker  cells    busy-ms   share\n";
        for (const auto &[key, agg] : by_worker) {
            std::string line = "  ";
            line += rightAlign(std::to_string(key.first), 5);
            line += rightAlign(std::to_string(key.second), 8);
            line += rightAlign(std::to_string(agg.cells), 7);
            line += rightAlign(fmtMs(agg.busy_ns), 11);
            line += rightAlign(
                busy_total == 0
                    ? std::string("n/a")
                    : fmtPct(static_cast<double>(agg.busy_ns) /
                             static_cast<double>(busy_total)),
                8);
            out << line << "\n";
        }
    }

    if (evicted != 0) {
        out << "\ncache trim: " << evicted << " entr"
            << (evicted == 1 ? "y" : "ies") << " evicted, "
            << evicted_bytes << " bytes reclaimed\n";
    }
    if (journal.last("sweep_end") == nullptr) {
        out << "\n(journal has no sweep_end — sweep still running or "
               "interrupted)\n";
    }
    return true;
}

bool
renderSweepStatus(const SweepJournal &journal, std::ostream &out,
                  std::string *error)
{
    JournalIdentity id;
    if (!journalIdentity(journal, id, error))
        return false;

    std::uint64_t now_ns = 0;
    for (const SweepEvent &event : journal.events)
        now_ns = std::max(now_ns, event.t_ns);

    // In-flight cells: cell_start without a matching cell_end.
    std::map<std::pair<std::uint64_t, std::uint64_t>,
             const SweepEvent *>
        running; // (shard, cell) -> cell_start
    std::uint64_t cells_done = 0, cells_cached = 0;
    std::uint64_t insts_done = 0;
    for (const SweepEvent &event : journal.events) {
        if (event.type == "cell_start") {
            running[{event.shard, event.u64("cell")}] = &event;
        } else if (event.type == "cell_end") {
            running.erase({event.shard, event.u64("cell")});
            ++cells_done;
            if (event.text("source") == "cached")
                ++cells_cached;
            insts_done += event.u64("insts");
        }
    }
    std::uint64_t cells_owned = 0, insts_owned = 0;
    for (const SweepEvent &event : journal.events) {
        if (event.type == "schedule") {
            cells_owned += event.u64("cells_owned");
            insts_owned += event.u64("insts_owned");
        }
    }

    out << "sweep status\n"
        << "  sweep    : workloads=" << id.workloads
        << " prefetchers=" << id.prefetchers << " scale=" << id.scale
        << " seed=" << id.seed << " placement=" << id.placement
        << "\n";
    out << "  journal  : shard " << id.shard_index << "/"
        << id.shard_count << ", " << journal.events.size()
        << " events, elapsed " << fmtMs(now_ns) << " ms\n";
    const double elapsed_sec = static_cast<double>(now_ns) / 1e9;
    const double rate = elapsed_sec > 0.0
                            ? static_cast<double>(insts_done) /
                                  elapsed_sec
                            : 0.0;
    out << "  progress : " << cells_done << "/" << cells_owned
        << " cells (" << cells_cached << " cached), "
        << (insts_owned == 0
                ? std::string("n/a")
                : fmtPct(static_cast<double>(insts_done) /
                         static_cast<double>(insts_owned)))
        << " of " << fmtMInsts(insts_owned) << " insts, "
        << fmtMInsts(static_cast<std::uint64_t>(rate))
        << " insts/s\n";
    if (journal.last("sweep_end") != nullptr) {
        out << "  eta      : done (sweep_end seen)\n";
    } else if (rate > 0.0 && insts_owned > insts_done) {
        // ETA against the longest-first schedule's remaining owned
        // instructions at the observed aggregate rate.
        out << "  eta      : ~"
            << fmtSec(static_cast<double>(insts_owned - insts_done) /
                      rate)
            << " s\n";
    } else {
        out << "  eta      : n/a\n";
    }
    out << "  cache    : "
        << (cells_done == 0
                ? std::string("n/a")
                : fmtPct(static_cast<double>(cells_cached) /
                         static_cast<double>(cells_done)))
        << " hit rate so far\n";
    if (running.empty()) {
        out << "  workers  : no cells in flight\n";
    } else {
        out << "  workers  :\n";
        for (const auto &[key, start] : running) {
            out << "    shard " << start->shard << " worker "
                << start->u64("worker") << ": "
                << start->text("workload") << "/"
                << start->text("prefetcher") << " (running "
                << fmtMs(now_ns - std::min(start->t_ns, now_ns))
                << " ms)\n";
        }
    }
    return true;
}

bool
mergeJournals(const std::vector<std::string> &paths,
              const JournalIdentity *expect, std::ostream &out,
              std::string *error)
{
    if (paths.empty()) {
        if (error != nullptr)
            *error = "no journals to merge";
        return false;
    }
    struct Shard
    {
        SweepJournal journal;
        JournalIdentity id;
        std::string path;
    };
    std::vector<Shard> shards;
    shards.reserve(paths.size());
    for (const std::string &path : paths) {
        Shard shard;
        shard.path = path;
        if (!readJournal(path, shard.journal, error))
            return false;
        if (!journalIdentity(shard.journal, shard.id, error)) {
            if (error != nullptr)
                *error = path + ": " + *error;
            return false;
        }
        shards.push_back(std::move(shard));
    }
    const auto mismatch = [&](const std::string &path,
                              const char *what) {
        if (error != nullptr) {
            *error = path + ": sweep identity mismatch (" + what +
                     ") — refusing to merge journals of different "
                     "sweeps";
        }
        return false;
    };
    const JournalIdentity &ref =
        expect != nullptr ? *expect : shards.front().id;
    for (const Shard &shard : shards) {
        const JournalIdentity &id = shard.id;
        if (id.config_digest != ref.config_digest)
            return mismatch(shard.path, "config_digest");
        if (id.seed != ref.seed)
            return mismatch(shard.path, "seed");
        if (id.scale != ref.scale)
            return mismatch(shard.path, "scale");
        if (id.placement != ref.placement)
            return mismatch(shard.path, "placement");
        if (id.workloads != ref.workloads)
            return mismatch(shard.path, "workloads");
        if (id.prefetchers != ref.prefetchers)
            return mismatch(shard.path, "prefetchers");
        if (id.shard_count != ref.shard_count)
            return mismatch(shard.path, "shard_count");
        if (id.shard_index >= id.shard_count)
            return mismatch(shard.path, "shard index out of range");
    }
    for (std::size_t a = 0; a < shards.size(); ++a) {
        for (std::size_t b = a + 1; b < shards.size(); ++b) {
            if (shards[a].id.shard_index ==
                shards[b].id.shard_index) {
                if (error != nullptr) {
                    *error = shards[b].path + ": shard " +
                             std::to_string(
                                 shards[b].id.shard_index) +
                             " journal given twice";
                }
                return false;
            }
        }
    }
    if (shards.size() != ref.shard_count) {
        if (error != nullptr) {
            *error = "expected " + std::to_string(ref.shard_count) +
                     " shard journals, got " +
                     std::to_string(shards.size());
        }
        return false;
    }

    // Time-ordered concatenation: each journal is already
    // t_ns-ordered; absolute time anchors the shards against each
    // other. Ties (identical wall-clock ns) break by journal open
    // time then seq, so the merge is deterministic for a given set of
    // files.
    struct Item
    {
        std::uint64_t abs_ns = 0;
        std::uint64_t unix_ns = 0;
        std::uint64_t seq = 0;
        const std::string *line = nullptr;
    };
    std::vector<Item> items;
    for (const Shard &shard : shards) {
        for (const SweepEvent &event : shard.journal.events) {
            Item item;
            item.abs_ns = shard.id.unix_ns + event.t_ns;
            item.unix_ns = shard.id.unix_ns;
            item.seq = event.seq;
            item.line = &event.line;
            items.push_back(item);
        }
    }
    std::stable_sort(items.begin(), items.end(),
                     [](const Item &a, const Item &b) {
                         if (a.abs_ns != b.abs_ns)
                             return a.abs_ns < b.abs_ns;
                         if (a.unix_ns != b.unix_ns)
                             return a.unix_ns < b.unix_ns;
                         return a.seq < b.seq;
                     });
    for (const Item &item : items)
        out << *item.line << "\n";
    return true;
}

} // namespace csp::diff
