/**
 * @file
 * Sweep-journal readers and renderers behind `csptop`: parse a
 * csp-events-v1 JSONL journal (one flattened JSON object per line —
 * see src/sim/sweep_events.h for the event vocabulary), and render
 * either a post-hoc summary (cache hit rate, exact per-cell
 * p50/p90/p99, per-workload timing, straggler/critical-path table,
 * per-worker utilisation, warm-path read/parse attribution) or a
 * live status snapshot (per-worker current cell, progress, ETA) for
 * follow mode. Also the shard-journal merge cspmerge uses.
 *
 * Lives in csp_diff, not csp_sim: the renderers only ever see the
 * journal bytes, so csptop links the same light library cspdiff and
 * csplearn do. Output is deterministic for a given journal (fixed
 * precision, every timestamp comes from the file, never from the
 * clock), so summaries can be golden-tested.
 */

#ifndef CSP_DIFF_SWEEP_REPORT_H
#define CSP_DIFF_SWEEP_REPORT_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "diff/csp_diff.h"

namespace csp::diff {

/** One parsed journal line. */
struct SweepEvent
{
    std::string type;       ///< "sweep_start", "cell_end", ...
    std::uint64_t t_ns = 0; ///< monotonic ns since the journal opened
    std::uint64_t seq = 0;  ///< per-journal emission index
    std::uint64_t shard = 0;
    FlatDoc doc;      ///< every field, flattened
    std::string line; ///< the raw line (merge re-emits it verbatim)

    /** Integer field (full uint64 precision), @p fallback if absent
     *  or non-numeric. */
    std::uint64_t u64(const std::string &key,
                      std::uint64_t fallback = 0) const;
    /** String field, "" when absent. */
    std::string text(const std::string &key) const;
};

/** A parsed journal: events in file order. */
struct SweepJournal
{
    std::vector<SweepEvent> events;

    const SweepEvent *first(const std::string &type) const;
    const SweepEvent *last(const std::string &type) const;
};

/** What a sweep_start event says was swept — the identity cspmerge
 *  matches against the artefacts before concatenating journals. */
struct JournalIdentity
{
    std::string config_digest;
    std::uint64_t seed = 0;
    std::uint64_t scale = 0;
    std::string placement;
    std::string workloads;
    std::string prefetchers;
    std::uint64_t shard_count = 1;
    std::uint64_t shard_index = 0;
    std::uint64_t unix_ns = 0; ///< wall clock at journal open
};

/**
 * Parse journal @p text (JSONL). Every line must parse as a JSON
 * object carrying event/t_ns/seq/shard; false with *error (including
 * the 1-based line number) otherwise. Empty trailing line is fine.
 */
bool parseJournal(const std::string &text, SweepJournal &out,
                  std::string *error);

/** Read + parseJournal a file. */
bool readJournal(const std::string &path, SweepJournal &out,
                 std::string *error);

/**
 * Extract the identity from @p journal's first sweep_start event.
 * False with *error when the journal has none (not a sweep journal).
 */
bool journalIdentity(const SweepJournal &journal, JournalIdentity &out,
                     std::string *error);

struct SweepReportOptions
{
    /** Rows in the straggler (longest-cells) table. */
    std::size_t max_stragglers = 8;
    /** Rows in the per-workload table. */
    std::size_t max_workloads = 24;
};

/**
 * Post-hoc report over a complete (or merged) journal: identity,
 * cache hit rate, exact per-cell duration percentiles split
 * cached/simulated, warm-path read/parse attribution, per-workload
 * table, stragglers, per-worker utilisation, evictions. Handles
 * journals without a sweep_end (reports what it can). False with
 * *error only when @p journal has no sweep_start.
 */
bool renderSweepSummary(const SweepJournal &journal, std::ostream &out,
                        std::string *error,
                        const SweepReportOptions &options = {});

/**
 * Live status snapshot for follow mode: progress (cells, insts, rate
 * from the last heartbeat or from completed cells), ETA against the
 * longest-first schedule's owned instruction total, per-worker
 * current cell with its running time, cache hits so far. "now" is the
 * latest t_ns in the journal, so the output is a pure function of the
 * bytes read. False with *error when @p journal has no sweep_start.
 */
bool renderSweepStatus(const SweepJournal &journal, std::ostream &out,
                       std::string *error);

/**
 * Merge shard journals into one time-ordered journal (satellite of
 * the sweep observatory): events are re-emitted verbatim, ordered by
 * absolute time (each journal's sweep_start unix_ns + the event's
 * t_ns; ties break by journal open time, then seq). Refuses (false,
 * *error) when a journal is malformed, lacks a sweep_start, repeats a
 * shard index, disagrees with another journal on the sweep identity —
 * or, when @p expect is non-null, mismatches the artefacts' identity
 * (config digest, seed, scale, placement, workload/prefetcher lists,
 * shard count; expect->shard_index is ignored).
 */
bool mergeJournals(const std::vector<std::string> &paths,
                   const JournalIdentity *expect, std::ostream &out,
                   std::string *error);

} // namespace csp::diff

#endif // CSP_DIFF_SWEEP_REPORT_H
