/**
 * @file
 * Compiler-injected semantic hints (substitute for the paper's LLVM pass).
 *
 * The paper modifies LLVM to tag pointer-based memory accesses with three
 * pieces of semantic information, packed into an extended-NOP immediate
 * that precedes the memory instruction (paper section 6):
 *
 *  - a unique enumeration of the accessed object's type,
 *  - the offset of the link field inside the object, and
 *  - the form of reference used (".", "->", "*", array index).
 *
 * In this reproduction the workload kernels are the "compiler": they call
 * the trace recorder with a Hint at exactly the program points where the
 * LLVM pass would have emitted the NOP — i.e. only for accesses through
 * program-level pointers (paper rule), not for pointer+offset member
 * accesses.
 */

#ifndef CSP_HINTS_HINT_H
#define CSP_HINTS_HINT_H

#include <cstdint>

namespace csp::hints {

/** The syntactic form of the memory reference (paper Table 1). */
enum class RefForm : std::uint8_t
{
    None = 0, ///< no hint available for this access
    Dot,      ///< object.member
    Arrow,    ///< pointer->member
    Deref,    ///< *pointer
    Index,    ///< array[index]
};

/** Sentinel link offset meaning "not a link field". */
inline constexpr std::uint16_t kNoLinkOffset = 0xffff;

/**
 * The 32-bit immediate payload of the paper's extended NOP, unpacked.
 * A default-constructed Hint means "no hint" (non-pointer access).
 */
struct Hint
{
    std::uint16_t type_id = 0; ///< unique object-type enumeration (0=none)
    std::uint16_t link_offset = kNoLinkOffset; ///< link field offset
    RefForm ref_form = RefForm::None;

    /** True iff the compiler attached semantic information. */
    bool valid() const { return ref_form != RefForm::None; }

    /** Pack into the 32-bit NOP immediate encoding. */
    std::uint32_t
    pack() const
    {
        return static_cast<std::uint32_t>(type_id) |
               (static_cast<std::uint32_t>(link_offset & 0x1fff) << 16) |
               (static_cast<std::uint32_t>(ref_form) << 29);
    }

    /** Unpack from the 32-bit NOP immediate encoding. */
    static Hint
    unpack(std::uint32_t imm)
    {
        Hint h;
        h.type_id = static_cast<std::uint16_t>(imm & 0xffff);
        h.link_offset = static_cast<std::uint16_t>((imm >> 16) & 0x1fff);
        h.ref_form = static_cast<RefForm>((imm >> 29) & 0x7);
        if (h.ref_form == RefForm::None)
            h.link_offset = kNoLinkOffset;
        return h;
    }

    bool
    operator==(const Hint &o) const
    {
        return type_id == o.type_id && link_offset == o.link_offset &&
               ref_form == o.ref_form;
    }
};

/**
 * Process-wide type enumerator, mirroring the LLVM pass's "unique value
 * within the compiled program" per object type. Workloads grab stable ids
 * from a per-workload instance.
 */
class TypeEnumerator
{
  public:
    /** Next fresh type id (starts at 1; 0 means "no type"). */
    std::uint16_t
    fresh()
    {
        return next_++;
    }

  private:
    std::uint16_t next_ = 1;
};

} // namespace csp::hints

#endif // CSP_HINTS_HINT_H
