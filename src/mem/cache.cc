#include "mem/cache.h"

#include <utility>

#include "core/logging.h"

namespace csp::mem {

Cache::Cache(const CacheConfig &config, std::string name)
    : config_(config),
      name_(std::move(name)),
      line_bytes_(config.line_bytes),
      sets_(config.sets()),
      ways_(config.ways),
      line_shift_(floorLog2(config.line_bytes)),
      set_shift_(floorLog2(config.sets())),
      set_mask_(config.sets() - 1),
      lines_(sets_ * ways_)
{
    CSP_ASSERT(isPowerOfTwo(line_bytes_));
    CSP_ASSERT(isPowerOfTwo(sets_));
    CSP_ASSERT(ways_ > 0);
    // The shift/mask fast paths must agree with the config exactly.
    CSP_ASSERT((std::uint64_t{1} << line_shift_) == line_bytes_);
    CSP_ASSERT((std::uint64_t{1} << set_shift_) == sets_);
    CSP_ASSERT(set_mask_ == sets_ - 1);
}

std::uint64_t
Cache::setIndex(Addr addr) const
{
    return (addr >> line_shift_) & set_mask_;
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr >> (line_shift_ + set_shift_);
}

LineState *
Cache::lookup(Addr addr, bool touch)
{
    const std::uint64_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    for (unsigned way = 0; way < ways_; ++way) {
        LineState &line = lines_[set * ways_ + way];
        if (line.valid && line.tag == tag) {
            if (touch)
                line.lru = ++lru_clock_;
            return &line;
        }
    }
    return nullptr;
}

const LineState *
Cache::peek(Addr addr) const
{
    const std::uint64_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    for (unsigned way = 0; way < ways_; ++way) {
        const LineState &line = lines_[set * ways_ + way];
        if (line.valid && line.tag == tag)
            return &line;
    }
    return nullptr;
}

LineState &
Cache::insert(Addr addr, Cycle ready, bool prefetched,
              EvictInfo *evicted, bool lru_insert)
{
    const std::uint64_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    std::uint64_t set_min_lru = ~0ull;
    for (unsigned way = 0; way < ways_; ++way) {
        const LineState &line = lines_[set * ways_ + way];
        if (line.valid)
            set_min_lru = std::min(set_min_lru, line.lru);
    }
    LineState *victim = nullptr;
    for (unsigned way = 0; way < ways_; ++way) {
        LineState &line = lines_[set * ways_ + way];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (victim == nullptr || line.lru < victim->lru)
            victim = &line;
    }
    if (evicted != nullptr) {
        evicted->valid = victim->valid;
        evicted->prefetched_unused =
            victim->valid && victim->prefetched && !victim->used;
        evicted->dirty = victim->valid && victim->dirty;
        if (victim->valid) {
            evicted->line_addr =
                ((victim->tag << set_shift_) | set) << line_shift_;
        }
    }
    victim->tag = tag;
    victim->valid = true;
    victim->prefetched = prefetched;
    victim->used = false;
    victim->dirty = false;
    victim->ready = ready;
    if (lru_insert && set_min_lru != ~0ull) {
        // LIP: next in line for eviction unless a demand promotes it.
        victim->lru = set_min_lru == 0 ? 0 : set_min_lru - 1;
    } else {
        victim->lru = ++lru_clock_;
    }
    return *victim;
}

void
Cache::invalidate(Addr addr)
{
    if (LineState *line = lookup(addr, false))
        line->valid = false;
}

std::uint64_t
Cache::countUnusedPrefetches() const
{
    std::uint64_t count = 0;
    for (const LineState &line : lines_) {
        if (line.valid && line.prefetched && !line.used)
            ++count;
    }
    return count;
}

std::uint64_t
Cache::countInflightPrefetches(Cycle now) const
{
    std::uint64_t count = 0;
    for (const LineState &line : lines_) {
        if (line.valid && line.prefetched && !line.used &&
            line.ready > now)
            ++count;
    }
    return count;
}

void
Cache::reset()
{
    for (LineState &line : lines_)
        line = LineState{};
    lru_clock_ = 0;
}

} // namespace csp::mem
