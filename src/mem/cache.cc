#include "mem/cache.h"

#include <utility>

#include "core/logging.h"

namespace csp::mem {

Cache::Cache(const CacheConfig &config, std::string name)
    : config_(config),
      name_(std::move(name)),
      line_bytes_(config.line_bytes),
      sets_(config.sets()),
      ways_(config.ways),
      line_shift_(floorLog2(config.line_bytes)),
      set_shift_(floorLog2(config.sets())),
      set_mask_(config.sets() - 1),
      lines_(sets_ * ways_)
{
    CSP_ASSERT(isPowerOfTwo(line_bytes_));
    CSP_ASSERT(isPowerOfTwo(sets_));
    CSP_ASSERT(ways_ > 0);
    // The shift/mask fast paths must agree with the config exactly.
    CSP_ASSERT((std::uint64_t{1} << line_shift_) == line_bytes_);
    CSP_ASSERT((std::uint64_t{1} << set_shift_) == sets_);
    CSP_ASSERT(set_mask_ == sets_ - 1);
}

void
Cache::invalidate(Addr addr)
{
    if (LineState *line = lookup(addr, false))
        line->valid = false;
}

std::uint64_t
Cache::countUnusedPrefetches() const
{
    std::uint64_t count = 0;
    for (const LineState &line : lines_) {
        if (line.valid && line.prefetched && !line.used)
            ++count;
    }
    return count;
}

std::uint64_t
Cache::countInflightPrefetches(Cycle now) const
{
    std::uint64_t count = 0;
    for (const LineState &line : lines_) {
        if (line.valid && line.prefetched && !line.used &&
            line.ready > now)
            ++count;
    }
    return count;
}

void
Cache::reset()
{
    for (LineState &line : lines_)
        line = LineState{};
    lru_clock_ = 0;
}

} // namespace csp::mem
