/**
 * @file
 * Set-associative cache state model with LRU replacement, in-flight fill
 * tracking (a line inserted on miss carries the cycle at which its data
 * arrives), and per-line prefetch/used bits for the accuracy
 * classification of paper Figure 9.
 */

#ifndef CSP_MEM_CACHE_H
#define CSP_MEM_CACHE_H

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/types.h"

namespace csp::mem {

/** State of one cache line. */
struct LineState
{
    Addr tag = 0;
    bool valid = false;
    bool prefetched = false; ///< filled by a prefetch
    bool used = false;       ///< demand-touched since fill
    bool dirty = false;      ///< written since fill (writeback needed)
    Cycle ready = 0;         ///< fill completion cycle (in-flight if > now)
    std::uint64_t lru = 0;   ///< global LRU stamp
};

/** Outcome of an eviction, reported so callers can account accuracy. */
struct EvictInfo
{
    bool valid = false;           ///< a line was displaced
    bool prefetched_unused = false; ///< it was a never-used prefetch
    bool dirty = false;           ///< it carried unwritten data
    Addr line_addr = kInvalidAddr;///< address of the displaced line
};

/** See file comment. */
class Cache
{
  public:
    Cache(const CacheConfig &config, std::string name);

    /**
     * Find the line holding @p addr. Returns nullptr on miss. When
     * @p touch is true a hit refreshes the LRU stamp.
     */
    LineState *
    lookup(Addr addr, bool touch = true)
    {
        // Dispatch to a constant-trip-count scan for the associativities
        // actually configured (L1d: 8 ways, L2: 16) so the way loop
        // fully unrolls; any other geometry takes the generic loop.
        if (ways_ == 8)
            return lookupImpl<8>(addr, touch);
        if (ways_ == 16)
            return lookupImpl<16>(addr, touch);
        return lookupImpl<0>(addr, touch);
    }

    const LineState *
    peek(Addr addr) const
    {
        const LineState *const set = &lines_[setIndex(addr) * ways_];
        const Addr tag = tagOf(addr);
        for (unsigned way = 0; way < ways_; ++way) {
            if (set[way].valid && set[way].tag == tag)
                return &set[way];
        }
        return nullptr;
    }

    /**
     * Install @p addr (victimising LRU in its set) with fill-completion
     * time @p ready. @p evicted reports what was displaced. With
     * @p lru_insert the new line enters at LRU priority (LIP) instead
     * of MRU — used for L2 prefetch fills so that wrong prefetches are
     * evicted before they damage the demand working set; a demand hit
     * promotes the line normally.
     */
    LineState &
    insert(Addr addr, Cycle ready, bool prefetched,
           EvictInfo *evicted = nullptr, bool lru_insert = false)
    {
        if (ways_ == 8)
            return insertImpl<8>(addr, ready, prefetched, evicted,
                                 lru_insert);
        if (ways_ == 16)
            return insertImpl<16>(addr, ready, prefetched, evicted,
                                  lru_insert);
        return insertImpl<0>(addr, ready, prefetched, evicted,
                             lru_insert);
    }

    /** Refresh @p line's LRU stamp — exactly what a touching lookup()
     *  hit does, for callers that already hold the line pointer. */
    void
    touch(LineState &line)
    {
        line.lru = ++lru_clock_;
    }

    /** Invalidate a line if present. */
    void invalidate(Addr addr);

    /**
     * Count valid lines that were prefetched and never demand-used —
     * called at end of simulation to close the "prefetch never hit"
     * accounting.
     */
    std::uint64_t countUnusedPrefetches() const;

    /**
     * Count prefetched lines whose fill has not completed by @p now —
     * the in-flight component of the prefetch.inflight gauge.
     */
    std::uint64_t countInflightPrefetches(Cycle now) const;

    /** Drop all lines and stats. */
    void reset();

    const CacheConfig &config() const { return config_; }
    const std::string &name() const { return name_; }

    /** Line-aligned address. */
    Addr
    lineAddr(Addr addr) const
    {
        return (addr >> line_shift_) << line_shift_;
    }

    /** Number of sets (observability: set-pressure attribution). */
    std::uint64_t sets() const { return sets_; }

    /** Set index @p addr maps to (observability: set-pressure
     *  attribution; same shift/mask the lookup path uses). */
    std::uint64_t setIndexOf(Addr addr) const { return setIndex(addr); }

  private:
    /** lookup() body with a compile-time way count (0 = runtime). */
    template <unsigned kWays>
    LineState *
    lookupImpl(Addr addr, bool touch)
    {
        const unsigned ways = kWays != 0 ? kWays : ways_;
        LineState *const set = &lines_[setIndex(addr) * ways];
        const Addr tag = tagOf(addr);
        for (unsigned way = 0; way < ways; ++way) {
            LineState &line = set[way];
            if (line.valid && line.tag == tag) {
                if (touch)
                    line.lru = ++lru_clock_;
                return &line;
            }
        }
        return nullptr;
    }

    /** insert() body with a compile-time way count (0 = runtime). */
    template <unsigned kWays>
    LineState &insertImpl(Addr addr, Cycle ready, bool prefetched,
                          EvictInfo *evicted, bool lru_insert);

    std::uint64_t
    setIndex(Addr addr) const
    {
        return (addr >> line_shift_) & set_mask_;
    }

    Addr
    tagOf(Addr addr) const
    {
        return addr >> (line_shift_ + set_shift_);
    }

    CacheConfig config_;
    std::string name_;
    std::uint64_t line_bytes_;
    std::uint64_t sets_;
    unsigned ways_;
    // Precomputed from the (power-of-two asserted) config so the
    // per-access index/tag math is shift/mask, never integer division.
    unsigned line_shift_;
    unsigned set_shift_;
    std::uint64_t set_mask_;
    std::vector<LineState> lines_; ///< sets_ * ways_, set-major
    std::uint64_t lru_clock_ = 0;
};

template <unsigned kWays>
LineState &
Cache::insertImpl(Addr addr, Cycle ready, bool prefetched,
                  EvictInfo *evicted, bool lru_insert)
{
    const unsigned ways = kWays != 0 ? kWays : ways_;
    const std::uint64_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    // One pass finds both the victim (first invalid way, else the
    // valid line with the lowest — i.e. first strictly-minimal — LRU
    // stamp) and the set's minimum valid LRU stamp for LIP insertion.
    LineState *const base = &lines_[set * ways];
    std::uint64_t set_min_lru = ~0ull;
    LineState *victim = nullptr;
    bool victim_invalid = false;
    for (unsigned way = 0; way < ways; ++way) {
        LineState &line = base[way];
        if (!line.valid) {
            if (!victim_invalid) {
                victim = &line;
                victim_invalid = true;
            }
            continue;
        }
        set_min_lru = std::min(set_min_lru, line.lru);
        if (!victim_invalid &&
            (victim == nullptr || line.lru < victim->lru)) {
            victim = &line;
        }
    }
    if (evicted != nullptr) {
        evicted->valid = victim->valid;
        evicted->prefetched_unused =
            victim->valid && victim->prefetched && !victim->used;
        evicted->dirty = victim->valid && victim->dirty;
        if (victim->valid) {
            evicted->line_addr =
                ((victim->tag << set_shift_) | set) << line_shift_;
        }
    }
    victim->tag = tag;
    victim->valid = true;
    victim->prefetched = prefetched;
    victim->used = false;
    victim->dirty = false;
    victim->ready = ready;
    if (lru_insert && set_min_lru != ~0ull) {
        // LIP: next in line for eviction unless a demand promotes it.
        victim->lru = set_min_lru == 0 ? 0 : set_min_lru - 1;
    } else {
        victim->lru = ++lru_clock_;
    }
    return *victim;
}

} // namespace csp::mem

#endif // CSP_MEM_CACHE_H
