/**
 * @file
 * Set-associative cache state model with LRU replacement, in-flight fill
 * tracking (a line inserted on miss carries the cycle at which its data
 * arrives), and per-line prefetch/used bits for the accuracy
 * classification of paper Figure 9.
 */

#ifndef CSP_MEM_CACHE_H
#define CSP_MEM_CACHE_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/types.h"

namespace csp::mem {

/** State of one cache line. */
struct LineState
{
    Addr tag = 0;
    bool valid = false;
    bool prefetched = false; ///< filled by a prefetch
    bool used = false;       ///< demand-touched since fill
    bool dirty = false;      ///< written since fill (writeback needed)
    Cycle ready = 0;         ///< fill completion cycle (in-flight if > now)
    std::uint64_t lru = 0;   ///< global LRU stamp
};

/** Outcome of an eviction, reported so callers can account accuracy. */
struct EvictInfo
{
    bool valid = false;           ///< a line was displaced
    bool prefetched_unused = false; ///< it was a never-used prefetch
    bool dirty = false;           ///< it carried unwritten data
    Addr line_addr = kInvalidAddr;///< address of the displaced line
};

/** See file comment. */
class Cache
{
  public:
    Cache(const CacheConfig &config, std::string name);

    /**
     * Find the line holding @p addr. Returns nullptr on miss. When
     * @p touch is true a hit refreshes the LRU stamp.
     */
    LineState *lookup(Addr addr, bool touch = true);
    const LineState *peek(Addr addr) const;

    /**
     * Install @p addr (victimising LRU in its set) with fill-completion
     * time @p ready. @p evicted reports what was displaced. With
     * @p lru_insert the new line enters at LRU priority (LIP) instead
     * of MRU — used for L2 prefetch fills so that wrong prefetches are
     * evicted before they damage the demand working set; a demand hit
     * promotes the line normally.
     */
    LineState &insert(Addr addr, Cycle ready, bool prefetched,
                      EvictInfo *evicted = nullptr,
                      bool lru_insert = false);

    /** Invalidate a line if present. */
    void invalidate(Addr addr);

    /**
     * Count valid lines that were prefetched and never demand-used —
     * called at end of simulation to close the "prefetch never hit"
     * accounting.
     */
    std::uint64_t countUnusedPrefetches() const;

    /**
     * Count prefetched lines whose fill has not completed by @p now —
     * the in-flight component of the prefetch.inflight gauge.
     */
    std::uint64_t countInflightPrefetches(Cycle now) const;

    /** Drop all lines and stats. */
    void reset();

    const CacheConfig &config() const { return config_; }
    const std::string &name() const { return name_; }

    /** Line-aligned address. */
    Addr
    lineAddr(Addr addr) const
    {
        return (addr >> line_shift_) << line_shift_;
    }

  private:
    std::uint64_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    CacheConfig config_;
    std::string name_;
    std::uint64_t line_bytes_;
    std::uint64_t sets_;
    unsigned ways_;
    // Precomputed from the (power-of-two asserted) config so the
    // per-access index/tag math is shift/mask, never integer division.
    unsigned line_shift_;
    unsigned set_shift_;
    std::uint64_t set_mask_;
    std::vector<LineState> lines_; ///< sets_ * ways_, set-major
    std::uint64_t lru_clock_ = 0;
};

} // namespace csp::mem

#endif // CSP_MEM_CACHE_H
