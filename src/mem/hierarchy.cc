#include "mem/hierarchy.h"

#include <algorithm>

#include "core/stats_registry.h"
#include "obs/lifecycle.h"
#include "obs/mem_observer.h"

namespace csp::mem {

namespace {

/** Build the fill notification for one cache insert. */
obs::MemFillEvent
fillEvent(std::uint8_t level, std::uint64_t set, Addr line_addr,
          Addr pc, bool is_prefetch, const EvictInfo &evicted)
{
    obs::MemFillEvent event;
    event.level = level;
    event.set = set;
    event.line_addr = line_addr;
    event.pc = pc;
    event.is_prefetch = is_prefetch;
    event.victim_valid = evicted.valid;
    event.victim_addr = evicted.line_addr;
    return event;
}

} // namespace

Hierarchy::Hierarchy(const MemoryConfig &config)
    : config_(config),
      l1_(config.l1d, "L1D"),
      l2_(config.l2, "L2"),
      l1_mshrs_(config.l1d.mshrs),
      l2_mshrs_(config.l2.mshrs)
{}

Cycle
Hierarchy::fillFromBelow(Addr addr, Cycle start, bool is_prefetch,
                         Addr pc, bool *went_to_memory,
                         bool *served_by_l2_prefetch, bool l2_probed,
                         LineState *l2_probe, LineState **l2_line_out)
{
    *went_to_memory = false;
    if (served_by_l2_prefetch != nullptr)
        *served_by_l2_prefetch = false;
    const Cycle l2_lat = config_.l2.access_latency;
    LineState *line =
        l2_probed ? l2_probe : l2_.lookup(addr, /*touch=*/false);
    if (line != nullptr) {
        // A hit refreshes LRU exactly as the touching lookup used to.
        l2_.touch(*line);
        if (l2_line_out != nullptr)
            *l2_line_out = line;
        if (served_by_l2_prefetch != nullptr) {
            *served_by_l2_prefetch =
                !is_prefetch && line->prefetched && !line->used;
        }
        // A demand touching an unused prefetched L2 line is that
        // lifecycle's terminal event: Timely when the fill completed,
        // Late when the demand merged with it in flight.
        if (tracker_ != nullptr && !is_prefetch && line->prefetched &&
            !line->used) {
            tracker_->onDemandUse(addr, pc, start,
                                  /*ready=*/line->ready <= start);
        }
        line->used = line->used || !is_prefetch;
        if (line->ready <= start)
            return start + l2_lat;
        // In-flight at L2: data arrives when the older fill completes
        // (plus the L2 read it still needs).
        return std::max(line->ready, start) + l2_lat;
    }
    // L2 miss: take an L2 MSHR, then a DRAM issue slot (bandwidth).
    const Cycle slot = l2_mshrs_.availableAt(start);
    const Cycle dram_start =
        std::max(slot + l2_lat, dram_next_free_);
    dram_next_free_ = dram_start + config_.dram_issue_interval;
    const Cycle fill = dram_start + config_.dram_latency;
    l2_mshrs_.allocate(slot, fill);
    fill_latency_.sample(fill - start);
    EvictInfo evicted;
    LineState &inserted = l2_.insert(addr, fill, is_prefetch, &evicted,
                                     /*lru_insert=*/is_prefetch);
    if (l2_line_out != nullptr)
        *l2_line_out = &inserted;
    if (mem_obs_ != nullptr) {
        mem_obs_->onFill(fillEvent(2, l2_.setIndexOf(addr), addr, pc,
                                   is_prefetch, evicted));
    }
    if (evicted.prefetched_unused) {
        ++stats_.prefetch_evicted_unused;
        if (tracker_ != nullptr)
            tracker_->onEvictedUnused(evicted.line_addr, start);
    }
    handleL2Eviction(evicted);
    *went_to_memory = true;
    return fill;
}

AccessResult
Hierarchy::access(Addr addr, Cycle now, bool is_store, Addr pc)
{
    AccessResult result;
    const Addr line_addr = l1_.lineAddr(addr);
    const Cycle l1_lat = config_.l1d.access_latency;
    ++stats_.demand_accesses;
    now_ = now;
    if (tracker_ != nullptr && tracker_->counterDue(now)) {
        tracker_->counterSample(now,
                                l1_mshrs_.slots() - l1_mshrs_.freeAt(now),
                                l2_mshrs_.slots() - l2_mshrs_.freeAt(now));
    }
    if (mem_obs_ != nullptr && mem_obs_->queueSampleDue()) {
        obs::MemQueueSample sample;
        sample.cycle = now;
        sample.accesses = stats_.demand_accesses - 1;
        sample.l1_mshr_busy = l1_mshrs_.slots() - l1_mshrs_.freeAt(now);
        sample.l2_mshr_busy = l2_mshrs_.slots() - l2_mshrs_.freeAt(now);
        sample.dram_backlog =
            dram_next_free_ > now ? dram_next_free_ - now : 0;
        mem_obs_->onQueueSample(sample);
    }
    obs::MemAccessEvent demand_event;
    if (mem_obs_ != nullptr) {
        demand_event.line_addr = line_addr;
        demand_event.pc = pc;
        demand_event.cycle = now;
        demand_event.is_store = is_store;
    }

    if (LineState *line = l1_.lookup(line_addr)) {
        if (line->ready <= now) {
            // Ready L1 hit.
            result.complete = now + l1_lat;
            result.level = ServiceLevel::L1;
            result.hit_prefetched_line = line->prefetched && !line->used;
            if (tracker_ != nullptr && result.hit_prefetched_line)
                tracker_->onDemandUse(line_addr, pc, now, /*ready=*/true);
            line->used = true;
            line->dirty = line->dirty || is_store;
            if (mem_obs_ != nullptr) {
                demand_event.kind = obs::MemAccessKind::L1Hit;
                mem_obs_->onDemandAccess(demand_event);
            }
            return result;
        }
        // Line still filling: the access waits only for the remainder.
        result.complete = std::max(line->ready, now + l1_lat);
        result.level = ServiceLevel::L1InFlight;
        result.l1_miss = true;
        ++stats_.l1_misses;
        result.shorter_wait = line->prefetched && !line->used;
        if (tracker_ != nullptr) {
            tracker_->onDemandMiss(line_addr, pc, now,
                                   /*to_memory=*/false);
            if (result.shorter_wait)
                tracker_->onDemandUse(line_addr, pc, now,
                                      /*ready=*/false);
        }
        line->used = true;
        line->dirty = line->dirty || is_store;
        if (mem_obs_ != nullptr) {
            demand_event.kind = obs::MemAccessKind::L1InFlight;
            mem_obs_->onDemandAccess(demand_event);
        }
        return result;
    }

    // Full L1 miss: wait for an MSHR, then look below.
    result.l1_miss = true;
    ++stats_.l1_misses;
    const Cycle slot = l1_mshrs_.availableAt(now);
    const Cycle start = slot + l1_lat;
    bool went_to_memory = false;
    bool served_by_l2_prefetch = false;
    const Cycle fill = fillFromBelow(line_addr, start, false, pc,
                                     &went_to_memory,
                                     &served_by_l2_prefetch);
    if (went_to_memory) {
        result.l2_miss = true;
        ++stats_.l2_demand_misses;
        result.level = ServiceLevel::Memory;
    } else {
        result.level = ServiceLevel::L2;
        result.shorter_wait = served_by_l2_prefetch;
    }
    if (tracker_ != nullptr)
        tracker_->onDemandMiss(line_addr, pc, now, went_to_memory);
    l1_mshrs_.allocate(slot, fill);
    EvictInfo evicted;
    LineState &line = l1_.insert(line_addr, fill, false, &evicted);
    if (mem_obs_ != nullptr) {
        mem_obs_->onFill(fillEvent(1, l1_.setIndexOf(line_addr),
                                   line_addr, pc, /*is_prefetch=*/false,
                                   evicted));
    }
    if (evicted.prefetched_unused) {
        ++stats_.prefetch_evicted_unused;
        if (tracker_ != nullptr)
            tracker_->onEvictedUnused(evicted.line_addr, now);
    }
    handleL1Eviction(evicted);
    line.used = true;
    line.dirty = is_store;
    result.complete = fill;
    if (mem_obs_ != nullptr) {
        demand_event.kind = went_to_memory ? obs::MemAccessKind::Memory
                                           : obs::MemAccessKind::L2Hit;
        mem_obs_->onDemandAccess(demand_event);
    }
    return result;
}

void
Hierarchy::handleL1Eviction(const EvictInfo &evicted)
{
    if (!evicted.valid || !evicted.dirty)
        return;
    // Write-back to L2: mark the L2 copy dirty; if L2 already lost the
    // line (non-inclusive), the writeback goes straight to DRAM and
    // consumes write bandwidth.
    ++stats_.l1_writebacks;
    if (LineState *l2line = l2_.lookup(evicted.line_addr, false)) {
        l2line->dirty = true;
    } else {
        // Non-inclusive L2 already lost the line: the dirty data goes
        // straight to DRAM, costing write bandwidth like an L2
        // writeback.
        ++stats_.l2_writebacks;
        dram_next_free_ += config_.dram_issue_interval;
    }
}

void
Hierarchy::handleL2Eviction(const EvictInfo &evicted)
{
    if (!evicted.valid || !evicted.dirty)
        return;
    // Dirty data leaves the chip: one DRAM write's worth of bandwidth.
    ++stats_.l2_writebacks;
    dram_next_free_ += config_.dram_issue_interval;
}

PrefetchOutcome
Hierarchy::prefetch(Addr addr, Cycle now, unsigned min_free_mshrs,
                   Addr pc)
{
    const Addr line_addr = l1_.lineAddr(addr);
    now_ = now;
    if (l1_.lookup(line_addr, false) != nullptr) {
        ++stats_.prefetches_duplicate;
        if (tracker_ != nullptr)
            tracker_->onRedundant(line_addr, pc, now);
        return PrefetchOutcome::AlreadyHere;
    }

    // The prefetch always targets L2 (like gem5's queued prefetcher it
    // is not starved out by demand traffic at L1), and additionally
    // fills L1 when MSHR headroom exists; otherwise the demand that
    // comes later still sees a cheap L2 hit.
    LineState *const l2_probe = l2_.lookup(line_addr, false);
    const bool l2_has = l2_probe != nullptr;
    if (!l2_has &&
        l2_mshrs_.freeWithin(now, config_.prefetch_mshr_wait_limit) <=
            config_.l2_mshr_reserve) {
        ++stats_.prefetches_dropped;
        if (tracker_ != nullptr)
            tracker_->onDropped(line_addr, pc, now);
        return PrefetchOutcome::NoMshr;
    }
    const Cycle start = now + config_.l1d.access_latency;
    bool went_to_memory = false;
    LineState *l2_line = nullptr;
    const Cycle fill =
        fillFromBelow(line_addr, start, true, pc, &went_to_memory,
                      nullptr, /*l2_probed=*/true, l2_probe, &l2_line);
    ++stats_.prefetches_issued;

    const unsigned free =
        l1_mshrs_.freeWithin(now, config_.dram_latency);
    const bool fill_l1 = free > min_free_mshrs;
    if (fill_l1) {
        l1_mshrs_.allocate(now, fill);
        EvictInfo evicted;
        // LIP for L1 prefetch fills too: a wrong prefetch must not
        // displace a hot line in an at-capacity working set.
        l1_.insert(line_addr, fill, true, &evicted,
                   /*lru_insert=*/true);
        if (mem_obs_ != nullptr) {
            mem_obs_->onFill(fillEvent(1, l1_.setIndexOf(line_addr),
                                       line_addr, pc,
                                       /*is_prefetch=*/true, evicted));
        }
        if (evicted.prefetched_unused) {
            ++stats_.prefetch_evicted_unused;
            if (tracker_ != nullptr)
                tracker_->onEvictedUnused(evicted.line_addr, now);
        }
        handleL1Eviction(evicted);
        // The L1 copy carries the usefulness tracking from here on.
        if (l2_line != nullptr)
            l2_line->used = true;
    }
    if (tracker_ != nullptr) {
        // An L2-resident target that could not take an L1 fill moved no
        // data at all — the lifecycle is redundant even though the
        // aggregate counter still reports an issue.
        if (fill_l1 || !l2_has) {
            tracker_->onIssued(line_addr, pc, now, fill, fill_l1,
                               went_to_memory);
        } else {
            tracker_->onRedundant(line_addr, pc, now);
        }
    }
    return PrefetchOutcome::Issued;
}

unsigned
Hierarchy::freeL1Mshrs(Cycle now) const
{
    return l1_mshrs_.freeWithin(now, config_.dram_latency);
}

void
Hierarchy::finish()
{
    stats_.prefetch_unused_at_end =
        l1_.countUnusedPrefetches() + l2_.countUnusedPrefetches();
}

void
Hierarchy::registerStats(stats::Registry &registry) const
{
    registry.counter("mem.l1.demand_accesses", &stats_.demand_accesses,
                     "demand loads and stores seen by L1D");
    registry.counter("mem.l1.misses", &stats_.l1_misses,
                     "L1D misses, including in-flight (MSHR) hits");
    registry.counter("mem.l1.writebacks", &stats_.l1_writebacks,
                     "dirty L1 lines pushed to L2");
    registry.formula("mem.l1.miss_rate", "mem.l1.misses",
                     "mem.l1.demand_accesses", 1.0,
                     "L1D miss rate over demand accesses");
    registry.counter("mem.l2.demand_misses", &stats_.l2_demand_misses,
                     "demand requests that reached DRAM");
    registry.counter("mem.l2.writebacks", &stats_.l2_writebacks,
                     "dirty L2 lines written to DRAM");
    registry.formula("mem.l2.miss_rate", "mem.l2.demand_misses",
                     "mem.l1.misses", 1.0,
                     "demand L2 miss rate relative to L1 misses");
    registry.counter("mem.prefetch.issued", &stats_.prefetches_issued,
                     "prefetch requests dispatched to the hierarchy");
    registry.counter("mem.prefetch.duplicate",
                     &stats_.prefetches_duplicate,
                     "prefetches elided: line already present");
    registry.counter("mem.prefetch.dropped", &stats_.prefetches_dropped,
                     "prefetches dropped under MSHR pressure");
    registry.counter("mem.prefetch.evicted_unused",
                     &stats_.prefetch_evicted_unused,
                     "prefetched lines evicted before any demand use");
    registry.counter("mem.prefetch.unused_at_end",
                     &stats_.prefetch_unused_at_end,
                     "prefetched lines never used by end of run");
    registry.counter(
        "mem.prefetch.never_hit",
        [this] { return stats_.prefetchesNeverHit(); },
        "issued prefetches that never served a demand access");
    registry.counter("mem.mshr.l1_allocations",
                     &l1_mshrs_.allocations(),
                     "fills booked into L1 MSHRs");
    registry.counter("mem.mshr.l1_busy_cycles", &l1_mshrs_.busyCycles(),
                     "summed L1 MSHR slot-busy cycles");
    registry.counter("mem.mshr.l2_allocations",
                     &l2_mshrs_.allocations(),
                     "fills booked into L2 MSHRs");
    registry.counter("mem.mshr.l2_busy_cycles", &l2_mshrs_.busyCycles(),
                     "summed L2 MSHR slot-busy cycles");
    registry.gauge(
        "mem.l1.mshr_occupancy",
        [this] {
            return static_cast<double>(l1_mshrs_.slots() -
                                       l1_mshrs_.freeAt(now_));
        },
        "L1 MSHR slots busy at the last access cycle");
    registry.gauge(
        "mem.l2.mshr_occupancy",
        [this] {
            return static_cast<double>(l2_mshrs_.slots() -
                                       l2_mshrs_.freeAt(now_));
        },
        "L2 MSHR slots busy at the last access cycle");
    registry.gauge(
        "prefetch.inflight",
        [this] {
            return static_cast<double>(
                l1_.countInflightPrefetches(now_) +
                l2_.countInflightPrefetches(now_));
        },
        "prefetched lines whose fill has not yet completed");
    registry.distribution("mem.fill_latency", &fill_latency_,
                          "request-to-data cycles per DRAM fill");
}

void
Hierarchy::reset()
{
    l1_.reset();
    l2_.reset();
    l1_mshrs_.reset();
    l2_mshrs_.reset();
    dram_next_free_ = 0;
    stats_ = HierarchyStats{};
    fill_latency_.clear();
    now_ = 0;
}

} // namespace csp::mem
