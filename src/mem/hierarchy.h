/**
 * @file
 * Two-level cache hierarchy with main memory behind it, prefetch-to-L1
 * support, MSHR-bounded miss parallelism, and per-access classification
 * in the categories of paper Figure 9.
 */

#ifndef CSP_MEM_HIERARCHY_H
#define CSP_MEM_HIERARCHY_H

#include <cstdint>

#include "core/config.h"
#include "core/stats.h"
#include "core/types.h"
#include "mem/cache.h"
#include "mem/mshr.h"

namespace csp::stats {
class Registry;
}

namespace csp::obs {
class PrefetchTracker;
class MemObserver;
}

namespace csp::mem {

/** Where a demand access was served from. */
enum class ServiceLevel : std::uint8_t
{
    L1,         ///< ready hit in L1
    L1InFlight, ///< L1 line still filling (wait shortened)
    L2,         ///< L2 ready hit
    L2InFlight, ///< L2 line still filling
    Memory,     ///< went to DRAM
};

/** Result of a demand access. */
struct AccessResult
{
    Cycle complete = 0;      ///< cycle the data is available
    ServiceLevel level = ServiceLevel::L1;
    bool l1_miss = false;    ///< not a ready L1 hit
    bool l2_miss = false;    ///< demand request reached DRAM
    /// First demand touch of an L1 line filled by a prefetch, data ready.
    bool hit_prefetched_line = false;
    /// Demand arrived while a prefetch for the line was still in flight,
    /// or missed L1 but found a prefetched (unused) line in L2 — either
    /// way the wait was cut by an earlier prefetch.
    bool shorter_wait = false;
};

/** Outcome of a prefetch attempt. */
enum class PrefetchOutcome : std::uint8_t
{
    Issued,      ///< request dispatched, L1 fill scheduled
    AlreadyHere, ///< line already present (or in flight) in L1
    NoMshr,      ///< dropped: MSHR pressure above threshold
};

/** Aggregate hierarchy statistics. */
struct HierarchyStats
{
    std::uint64_t demand_accesses = 0;
    std::uint64_t l1_misses = 0; ///< includes in-flight (MSHR) hits
    std::uint64_t l2_demand_misses = 0;
    std::uint64_t prefetches_issued = 0;
    std::uint64_t prefetches_duplicate = 0; ///< AlreadyHere outcomes
    std::uint64_t prefetches_dropped = 0;   ///< NoMshr outcomes
    std::uint64_t prefetch_evicted_unused = 0;
    std::uint64_t prefetch_unused_at_end = 0;
    std::uint64_t l1_writebacks = 0; ///< dirty L1 lines pushed to L2
    std::uint64_t l2_writebacks = 0; ///< dirty L2 lines written to DRAM

    /** Prefetches issued that never served a demand access. */
    std::uint64_t
    prefetchesNeverHit() const
    {
        return prefetch_evicted_unused + prefetch_unused_at_end;
    }
};

/** See file comment. */
class Hierarchy
{
  public:
    explicit Hierarchy(const MemoryConfig &config);

    /**
     * Perform a demand access at cycle @p now. Stores mark the line
     * dirty (write-allocate, write-back); the caller is expected not
     * to stall on them. @p pc attributes the access in the lifecycle
     * tracker (coverage tables); it never affects timing.
     */
    AccessResult access(Addr addr, Cycle now, bool is_store = false,
                        Addr pc = 0);

    /**
     * Attempt a prefetch of the line holding @p addr into L1.
     * @p min_free_mshrs is the back-off threshold of paper section 4.2:
     * if fewer L1 MSHRs are free the prefetch is dropped (the caller may
     * convert it to a shadow operation). @p pc is the demand PC the
     * prefetcher issued this request from (accuracy attribution only).
     */
    PrefetchOutcome prefetch(Addr addr, Cycle now,
                             unsigned min_free_mshrs, Addr pc = 0);

    /**
     * Attach (or detach, with nullptr) a per-prefetch lifecycle
     * tracker. The hooks are compiled in but cost one null check per
     * access when no tracker is attached; attaching one never changes
     * timing, HierarchyStats or any other simulation result.
     */
    void setTracker(obs::PrefetchTracker *tracker)
    {
        tracker_ = tracker;
    }

    /**
     * Attach (or detach, with nullptr) a memory-hierarchy observer
     * (miss taxonomy, set pressure, queue-depth telemetry). Same
     * contract as setTracker: compiled in at one null check per
     * access, and attaching one never changes timing, HierarchyStats
     * or any other simulation result.
     */
    void setMemObserver(obs::MemObserver *observer)
    {
        mem_obs_ = observer;
    }

    /** Free L1 MSHR slots at @p now (throttling input). */
    unsigned freeL1Mshrs(Cycle now) const;

    /** Close out end-of-run accounting (unused prefetched lines). */
    void finish();

    const HierarchyStats &stats() const { return stats_; }
    const MemoryConfig &config() const { return config_; }

    /**
     * Register this hierarchy's counters and gauges under "mem.*"
     * ("mem.l1", "mem.l2", "mem.prefetch", "mem.mshr"). The registry
     * reads through pointers into this object, so it must not outlive
     * the hierarchy.
     */
    void registerStats(stats::Registry &registry) const;

    /** Line-align an address to L1 line granularity. */
    Addr lineAddr(Addr addr) const { return l1_.lineAddr(addr); }

    /** Drop all cache and MSHR state. */
    void reset();

  private:
    /** Account a displaced dirty L1 line (write-back to L2/DRAM). */
    void handleL1Eviction(const EvictInfo &evicted);

    /** Account a displaced dirty L2 line (write to DRAM). */
    void handleL2Eviction(const EvictInfo &evicted);

    /** L2 lookup + fill scheduling shared by demand and prefetch paths.
     *  Returns the cycle at which the line's data reaches the L1 fill
     *  port, whether DRAM was involved, and whether an unused
     *  prefetched L2 line served the request. @p pc is the requesting
     *  PC, tracker attribution only. When the caller already probed L2
     *  (without touching LRU), it passes the result through
     *  @p l2_probed/@p l2_probe to skip the re-probe; @p l2_line_out,
     *  when non-null, receives the line now holding @p addr in L2 (hit
     *  or freshly inserted) so the caller needs no post-probe either. */
    Cycle fillFromBelow(Addr addr, Cycle start, bool is_prefetch,
                        Addr pc, bool *went_to_memory,
                        bool *served_by_l2_prefetch,
                        bool l2_probed = false,
                        LineState *l2_probe = nullptr,
                        LineState **l2_line_out = nullptr);

    MemoryConfig config_;
    Cache l1_;
    Cache l2_;
    MshrFile l1_mshrs_;
    MshrFile l2_mshrs_;
    Cycle dram_next_free_ = 0; ///< DRAM bandwidth bookkeeping
    HierarchyStats stats_;
    /// DRAM fill latency (request to data) per L2 miss, log2 buckets —
    /// feeds the mem.fill_latency percentile stat.
    Log2Histogram fill_latency_;
    obs::PrefetchTracker *tracker_ = nullptr; ///< borrowed, may be null
    obs::MemObserver *mem_obs_ = nullptr;     ///< borrowed, may be null
    Cycle now_ = 0; ///< last access cycle (occupancy gauge reads)
};

} // namespace csp::mem

#endif // CSP_MEM_HIERARCHY_H
