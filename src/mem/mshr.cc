#include "mem/mshr.h"

#include "core/logging.h"

namespace csp::mem {

MshrFile::MshrFile(unsigned slots) : busy_(slots, 0)
{
    CSP_ASSERT(slots > 0);
}

void
MshrFile::reset()
{
    std::fill(busy_.begin(), busy_.end(), 0);
    allocations_ = 0;
    busy_cycles_ = 0;
}

} // namespace csp::mem
