#include "mem/mshr.h"

#include <algorithm>

#include "core/logging.h"

namespace csp::mem {

MshrFile::MshrFile(unsigned slots) : busy_(slots, 0)
{
    CSP_ASSERT(slots > 0);
}

unsigned
MshrFile::freeAt(Cycle now) const
{
    unsigned free = 0;
    for (Cycle completion : busy_) {
        if (completion <= now)
            ++free;
    }
    return free;
}

unsigned
MshrFile::freeWithin(Cycle now, Cycle window) const
{
    unsigned free = 0;
    for (Cycle completion : busy_) {
        if (completion <= now + window)
            ++free;
    }
    return free;
}

Cycle
MshrFile::availableAt(Cycle now) const
{
    Cycle earliest = kInvalidCycle;
    for (Cycle completion : busy_) {
        if (completion <= now)
            return now;
        earliest = std::min(earliest, completion);
    }
    return earliest;
}

void
MshrFile::allocate(Cycle completion)
{
    auto slot = std::min_element(busy_.begin(), busy_.end());
    *slot = completion;
    ++allocations_;
}

void
MshrFile::allocate(Cycle start, Cycle completion)
{
    CSP_ASSERT(completion >= start);
    allocate(completion);
    busy_cycles_ += completion - start;
}

void
MshrFile::reset()
{
    std::fill(busy_.begin(), busy_.end(), 0);
    allocations_ = 0;
    busy_cycles_ = 0;
}

} // namespace csp::mem
