/**
 * @file
 * Miss-status holding register file, modelled in time rather than by
 * event: each slot records the cycle at which its outstanding fill
 * completes. A requester that finds every slot busy is delayed until the
 * earliest completion — this is the mechanism that bounds memory-level
 * parallelism exactly as the paper's gem5 configuration does (L1: 4
 * MSHRs, L2: 20).
 */

#ifndef CSP_MEM_MSHR_H
#define CSP_MEM_MSHR_H

#include <algorithm>
#include <vector>

#include "core/types.h"

namespace csp::mem {

/** See file comment. */
class MshrFile
{
  public:
    explicit MshrFile(unsigned slots);

    /** Number of slots free at @p now. */
    unsigned
    freeAt(Cycle now) const
    {
        return freeWithin(now, 0);
    }

    /**
     * Number of slots that will be free by @p now + @p window. Because
     * the timing model books fills into the future, instantaneous
     * freeness is pessimistic; throttling decisions use a one
     * memory-round-trip window instead.
     */
    unsigned
    freeWithin(Cycle now, Cycle window) const
    {
        const Cycle horizon = now + window;
        unsigned free = 0;
        for (Cycle completion : busy_) {
            if (completion <= horizon)
                ++free;
        }
        return free;
    }

    /**
     * Earliest cycle >= @p now at which at least one slot is free.
     * Returns @p now itself when a slot is already free.
     */
    Cycle
    availableAt(Cycle now) const
    {
        Cycle earliest = kInvalidCycle;
        for (Cycle completion : busy_) {
            if (completion <= now)
                return now;
            earliest = std::min(earliest, completion);
        }
        return earliest;
    }

    /**
     * Occupy a slot until @p completion. The caller must have chosen a
     * start cycle >= availableAt(now); the slot holding the earliest
     * completion is reused.
     */
    void
    allocate(Cycle completion)
    {
        auto slot = std::min_element(busy_.begin(), busy_.end());
        *slot = completion;
        ++allocations_;
    }

    /**
     * Like allocate(@p completion), additionally crediting the
     * [start, completion) span to the occupancy accounting read by the
     * stats registry (mem.mshr.*_busy_cycles).
     */
    void
    allocate(Cycle start, Cycle completion)
    {
        allocate(completion);
        busy_cycles_ += completion - start;
    }

    /** Total slot count. */
    unsigned slots() const { return static_cast<unsigned>(busy_.size()); }

    /** Fills booked so far (allocations). */
    const std::uint64_t &allocations() const { return allocations_; }

    /** Total slot-busy cycles booked through the timed allocate()
     *  overload; divided by elapsed cycles this is the file's average
     *  occupancy in slots. */
    const std::uint64_t &busyCycles() const { return busy_cycles_; }

    /** Forget all outstanding fills. */
    void reset();

  private:
    std::vector<Cycle> busy_; ///< completion cycle per slot (0 = idle)
    std::uint64_t allocations_ = 0;
    std::uint64_t busy_cycles_ = 0;
};

} // namespace csp::mem

#endif // CSP_MEM_MSHR_H
