/**
 * @file
 * Miss-status holding register file, modelled in time rather than by
 * event: each slot records the cycle at which its outstanding fill
 * completes. A requester that finds every slot busy is delayed until the
 * earliest completion — this is the mechanism that bounds memory-level
 * parallelism exactly as the paper's gem5 configuration does (L1: 4
 * MSHRs, L2: 20).
 */

#ifndef CSP_MEM_MSHR_H
#define CSP_MEM_MSHR_H

#include <vector>

#include "core/types.h"

namespace csp::mem {

/** See file comment. */
class MshrFile
{
  public:
    explicit MshrFile(unsigned slots);

    /** Number of slots free at @p now. */
    unsigned freeAt(Cycle now) const;

    /**
     * Number of slots that will be free by @p now + @p window. Because
     * the timing model books fills into the future, instantaneous
     * freeness is pessimistic; throttling decisions use a one
     * memory-round-trip window instead.
     */
    unsigned freeWithin(Cycle now, Cycle window) const;

    /**
     * Earliest cycle >= @p now at which at least one slot is free.
     * Returns @p now itself when a slot is already free.
     */
    Cycle availableAt(Cycle now) const;

    /**
     * Occupy a slot until @p completion. The caller must have chosen a
     * start cycle >= availableAt(now); the slot holding the earliest
     * completion is reused.
     */
    void allocate(Cycle completion);

    /**
     * Like allocate(@p completion), additionally crediting the
     * [start, completion) span to the occupancy accounting read by the
     * stats registry (mem.mshr.*_busy_cycles).
     */
    void allocate(Cycle start, Cycle completion);

    /** Total slot count. */
    unsigned slots() const { return static_cast<unsigned>(busy_.size()); }

    /** Fills booked so far (allocations). */
    const std::uint64_t &allocations() const { return allocations_; }

    /** Total slot-busy cycles booked through the timed allocate()
     *  overload; divided by elapsed cycles this is the file's average
     *  occupancy in slots. */
    const std::uint64_t &busyCycles() const { return busy_cycles_; }

    /** Forget all outstanding fills. */
    void reset();

  private:
    std::vector<Cycle> busy_; ///< completion cycle per slot (0 = idle)
    std::uint64_t allocations_ = 0;
    std::uint64_t busy_cycles_ = 0;
};

} // namespace csp::mem

#endif // CSP_MEM_MSHR_H
