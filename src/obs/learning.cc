#include "obs/learning.h"

#include <cmath>
#include <iomanip>
#include <ostream>

#include "core/stats_registry.h"
#include "obs/trace_events.h"

namespace csp::obs {

namespace {

/**
 * Normalised Shannon entropy of the softmax (temperature 1) over the
 * probed action scores: 1 = the policy is indifferent between its
 * arms, 0 = one arm dominates. The max is subtracted before exp() so
 * saturated scores never overflow.
 */
double
normalisedEntropy(const int *scores, unsigned n)
{
    int max_score = scores[0];
    for (unsigned i = 1; i < n; ++i)
        max_score = std::max(max_score, scores[i]);
    double weights[kMaxLearnLinks];
    double total = 0.0;
    for (unsigned i = 0; i < n; ++i) {
        weights[i] = std::exp(
            static_cast<double>(scores[i] - max_score));
        total += weights[i];
    }
    double h = 0.0;
    for (unsigned i = 0; i < n; ++i) {
        const double p = weights[i] / total;
        if (p > 0.0)
            h -= p * std::log(p);
    }
    return h / std::log(static_cast<double>(n));
}

} // namespace

LearningRecorder::LearningRecorder(Options options,
                                   TraceEventWriter *events)
    : options_(options), events_(events)
{}

void
LearningRecorder::onCstProbe(const CstProbeEvent &event)
{
    ++probes_;
    probe_links_.sample(event.valid_links);
    if (!event.hit)
        return;
    ++probe_hits_;
    if (event.valid_links >= 2) {
        const double h =
            normalisedEntropy(event.scores, event.valid_links);
        // EWMA smoothing so the entropy series reads as a trend, not
        // per-context noise; the first sample seeds the average.
        if (entropy_samples_ == 0)
            entropy_ = h;
        else
            entropy_ += 0.02 * (h - entropy_);
        ++entropy_samples_;
    }
}

void
LearningRecorder::onCstInsert(const CstInsertEvent &event)
{
    ++insert_attempts_;
    ++since_conflict_;
    if (event.inserted)
        ++inserts_;
    if (event.already_present)
        ++duplicates_;
    if (event.new_entry)
        ++new_entries_;
    if (event.entry_evicted)
        ++entry_evictions_;
    if (event.link_evicted)
        ++link_evictions_;
    if (event.tag_conflict || event.entry_evicted) {
        // Two distinct reduced contexts collided on one table slot —
        // the direct "how often does the reduced hash alias" evidence.
        ++tag_conflicts_;
        collision_gap_.sample(since_conflict_);
        since_conflict_ = 0;
    }
}

void
LearningRecorder::onArmSelection(Cycle cycle,
                                 const ArmSelectionEvent &event)
{
    ++selections_;
    real_ += event.real;
    shadow_ += event.shadow;
    if (event.explored)
        ++explorations_;
    last_epsilon_ = event.epsilon;
    if (events_ != nullptr && options_.counter_every != 0 &&
        selections_ % options_.counter_every == 0) {
        events_->policyCounter(cycle, event.epsilon, entropy_);
    }
}

void
LearningRecorder::onEpsilonAdapt(const EpsilonEvent &event)
{
    ++epsilon_updates_;
    last_epsilon_ = event.epsilon;
    last_accuracy_ = event.accuracy;
}

void
LearningRecorder::onRewardApplied(Cycle cycle, const RewardEvent &event)
{
    (void)cycle;
    cumulative_reward_ += event.amount;
    if (event.expiry) {
        ++expiries_;
        return;
    }
    if (event.amount > 0) {
        ++rewards_positive_;
        reward_depth_pos_.sample(event.depth);
    } else if (event.amount < 0) {
        ++rewards_negative_;
        reward_depth_neg_.sample(event.depth);
    }
}

void
LearningRecorder::onSnapshot(Cycle cycle, const LearningSnapshot &snap)
{
    StoredSnapshot stored;
    stored.cycle = cycle;
    stored.entropy = entropy_;
    stored.cumulative_reward = cumulative_reward_;
    stored.snap = snap;
    snapshots_.push_back(std::move(stored));
}

void
LearningRecorder::registerStats(stats::Registry &registry)
{
    registry.counter("learn.cst.probes", &probes_,
                     "action-store probes by the prediction unit");
    registry.counter("learn.cst.probe_hits", &probe_hits_,
                     "probes that found a live context entry");
    registry.distribution("learn.cst.probe_links", &probe_links_,
                          "valid links per probe (action-set size)");
    registry.counter("learn.cst.insert_attempts", &insert_attempts_,
                     "collection-unit insertion attempts");
    registry.counter("learn.cst.inserts", &inserts_,
                     "new links stored");
    registry.counter("learn.cst.duplicates", &duplicates_,
                     "insertions finding the association present");
    registry.counter("learn.cst.new_entries", &new_entries_,
                     "entries claimed from invalid slots");
    registry.counter("learn.cst.entry_evictions", &entry_evictions_,
                     "live entries displaced by colliding contexts");
    registry.counter("learn.cst.link_evictions", &link_evictions_,
                     "links displaced by score replacement (churn)");
    registry.counter("learn.cst.tag_conflicts", &tag_conflicts_,
                     "insertions hitting a different live context");
    registry.distribution(
        "learn.cst.collision_gap", &collision_gap_,
        "insert attempts between context-hash collisions");
    registry.gauge(
        "learn.cst.occupancy",
        [this] { return static_cast<double>(new_entries_); },
        "CST entries brought live so far (monotonic fill curve)");

    registry.counter("learn.policy.selections", &selections_,
                     "lookups whose arm selection completed");
    registry.counter("learn.policy.real", &real_,
                     "arms dispatched as real prefetches");
    registry.counter("learn.policy.shadow", &shadow_,
                     "arms tracked as shadow operations");
    registry.counter("learn.policy.explorations", &explorations_,
                     "lookups that drew an exploratory arm");
    registry.counter("learn.policy.epsilon_updates", &epsilon_updates_,
                     "prediction outcomes fed to the adaptive policy");
    registry.formula("learn.policy.explore_ratio",
                     "learn.policy.explorations",
                     "learn.policy.selections", 1.0,
                     "exploratory fraction of arm selections");
    registry.gauge(
        "learn.policy.epsilon", [this] { return last_epsilon_; },
        "exploration rate at the last selection");
    registry.gauge(
        "learn.policy.accuracy", [this] { return last_accuracy_; },
        "smoothed accuracy at the last policy update");
    registry.gauge(
        "learn.policy.entropy", [this] { return entropy_; },
        "smoothed normalised entropy of probed action sets");

    registry.gauge(
        "learn.reward.cumulative",
        [this] { return static_cast<double>(cumulative_reward_); },
        "sum of all reward applications (signed)");
    registry.counter("learn.reward.positive", &rewards_positive_,
                     "positive reward applications");
    registry.counter("learn.reward.negative", &rewards_negative_,
                     "negative (out-of-window) reward applications");
    registry.counter("learn.reward.expiries", &expiries_,
                     "expiry penalties applied");
    registry.distribution("learn.reward.depth_pos", &reward_depth_pos_,
                          "prediction depth of positive rewards");
    registry.distribution("learn.reward.depth_neg", &reward_depth_neg_,
                          "prediction depth of negative rewards");
}

void
LearningRecorder::writeLearnJson(std::ostream &out,
                                 const std::string &manifest_json,
                                 const std::string &prefetcher) const
{
    out << std::setprecision(12);
    out << "{\"schema\":\"csp-learn-v1\"";
    if (!manifest_json.empty())
        out << ",\"manifest\":" << manifest_json;
    out << ",\"prefetcher\":\"" << prefetcher << '"';
    out << ",\"learn\":{"
        << "\"snapshot_every\":" << options_.snapshot_every
        << ",\"top_k\":" << options_.top_k
        << ",\"cst\":{\"probes\":" << probes_
        << ",\"probe_hits\":" << probe_hits_
        << ",\"insert_attempts\":" << insert_attempts_
        << ",\"inserts\":" << inserts_
        << ",\"duplicates\":" << duplicates_
        << ",\"new_entries\":" << new_entries_
        << ",\"entry_evictions\":" << entry_evictions_
        << ",\"link_evictions\":" << link_evictions_
        << ",\"tag_conflicts\":" << tag_conflicts_ << '}'
        << ",\"policy\":{\"selections\":" << selections_
        << ",\"real\":" << real_ << ",\"shadow\":" << shadow_
        << ",\"explorations\":" << explorations_
        << ",\"epsilon_updates\":" << epsilon_updates_
        << ",\"epsilon\":" << last_epsilon_
        << ",\"accuracy\":" << last_accuracy_
        << ",\"entropy\":" << entropy_ << '}'
        << ",\"reward\":{\"cumulative\":" << cumulative_reward_
        << ",\"positive\":" << rewards_positive_
        << ",\"negative\":" << rewards_negative_
        << ",\"expiries\":" << expiries_ << "}}";
    out << ",\"snapshots\":[";
    for (std::size_t i = 0; i < snapshots_.size(); ++i) {
        const StoredSnapshot &stored = snapshots_[i];
        const LearningSnapshot &snap = stored.snap;
        out << (i == 0 ? "" : ",") << "{\"lookup\":" << snap.lookup
            << ",\"cycle\":" << stored.cycle
            << ",\"epsilon\":" << snap.epsilon
            << ",\"accuracy\":" << snap.accuracy
            << ",\"entropy\":" << stored.entropy
            << ",\"cumulative_reward\":" << stored.cumulative_reward
            << ",\"explorations\":" << snap.explorations
            << ",\"associations\":" << snap.associations
            << ",\"pq_hits\":" << snap.pq_hits
            << ",\"pq_expiries\":" << snap.pq_expiries
            << ",\"cst_live_entries\":" << snap.cst_live_entries
            << ",\"cst_entries\":" << snap.cst_entries
            << ",\"top_contexts\":[";
        for (std::size_t c = 0; c < snap.top_contexts.size(); ++c) {
            const SnapshotContext &ctx = snap.top_contexts[c];
            out << (c == 0 ? "" : ",") << "{\"key\":" << ctx.key
                << ",\"churn\":" << static_cast<unsigned>(ctx.churn)
                << ",\"links\":[";
            for (unsigned l = 0; l < ctx.n_links; ++l) {
                out << (l == 0 ? "" : ",")
                    << "{\"delta\":" << ctx.deltas[l]
                    << ",\"score\":" << ctx.scores[l] << '}';
            }
            out << "]}";
        }
        out << "]}";
    }
    out << "]}\n";
}

} // namespace csp::obs
