/**
 * @file
 * The concrete learning-observatory sink: a LearningObserver that
 * distils the event stream into convergence telemetry (policy entropy,
 * exploration ratio, cumulative reward, CST occupancy/churn,
 * probe-length and context-hash-collision histograms), publishes it
 * under "learn.*" in the run's stats registry (so interval sampling
 * picks it up as a time-series), mirrors epsilon/entropy onto a
 * Perfetto counter track, and keeps every periodic learning-state
 * snapshot for the `--learn-out learn.json` export `csplearn` renders.
 *
 * The recorder is strictly read-only with respect to the simulation:
 * it owns no RNG, touches no prefetcher state, and its presence never
 * changes a single simulated count (tested bit-for-bit).
 */

#ifndef CSP_OBS_LEARNING_H
#define CSP_OBS_LEARNING_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/stats.h"
#include "core/types.h"
#include "obs/learning_observer.h"

namespace csp::stats {
class Registry;
}

namespace csp::obs {

class TraceEventWriter;

/** See file comment. */
class LearningRecorder final : public LearningObserver
{
  public:
    struct Options
    {
        /** Lookups between learning-state snapshots; 0 keeps only the
         *  final end-of-run snapshot. */
        std::uint64_t snapshot_every = 0;
        /** Contexts captured per snapshot. */
        unsigned top_k = 32;
        /** Arm selections between "policy" counter-track samples when
         *  a trace-event writer is attached; 0 disables the track. */
        std::uint64_t counter_every = 4096;
    };

    /** Default options: final snapshot only, no counter track. */
    LearningRecorder() : LearningRecorder(Options(), nullptr) {}

    /** @param events optional Perfetto writer for the epsilon/entropy
     *  "policy" counter track (borrowed, may be null). */
    explicit LearningRecorder(Options options,
                              TraceEventWriter *events = nullptr);

    void onCstProbe(const CstProbeEvent &event) override;
    void onCstInsert(const CstInsertEvent &event) override;
    void onArmSelection(Cycle cycle,
                        const ArmSelectionEvent &event) override;
    void onEpsilonAdapt(const EpsilonEvent &event) override;
    void onRewardApplied(Cycle cycle, const RewardEvent &event) override;
    void onSnapshot(Cycle cycle, const LearningSnapshot &snap) override;

    std::uint64_t snapshotEvery() const override
    {
        return options_.snapshot_every;
    }

    unsigned snapshotTopK() const override { return options_.top_k; }

    /** Publish the distilled telemetry under "learn.*". */
    void registerStats(stats::Registry &registry) override;

    /** One stored learning-state snapshot, with the recorder-side
     *  derived series captured alongside. */
    struct StoredSnapshot
    {
        Cycle cycle = 0;
        double entropy = 0.0;
        std::int64_t cumulative_reward = 0;
        LearningSnapshot snap;
    };

    const std::vector<StoredSnapshot> &snapshots() const
    {
        return snapshots_;
    }

    /** Smoothed normalised policy entropy over probed action sets, in
     *  [0, 1]: 1 = uniform (nothing learned), 0 = deterministic. */
    double entropy() const { return entropy_; }

    std::int64_t cumulativeReward() const { return cumulative_reward_; }

    /**
     * Write the full learning-state document (schema "csp-learn-v1"):
     * the run's provenance manifest, the distilled summary and every
     * snapshot, as the JSON file `csplearn` and `cspdiff` consume.
     * @p manifest_json is the RunManifest as a JSON object literal.
     */
    void writeLearnJson(std::ostream &out,
                        const std::string &manifest_json,
                        const std::string &prefetcher) const;

  private:
    Options options_;
    TraceEventWriter *events_; ///< borrowed, may be null

    // CST traffic.
    std::uint64_t probes_ = 0;
    std::uint64_t probe_hits_ = 0;
    std::uint64_t insert_attempts_ = 0;
    std::uint64_t inserts_ = 0;
    std::uint64_t new_entries_ = 0;
    std::uint64_t entry_evictions_ = 0;
    std::uint64_t link_evictions_ = 0;
    std::uint64_t tag_conflicts_ = 0;
    std::uint64_t duplicates_ = 0;
    Log2Histogram probe_links_{8};     ///< valid links per probe
    Log2Histogram collision_gap_{32};  ///< insert attempts between
                                       ///< tag conflicts
    std::uint64_t since_conflict_ = 0;

    // Policy dynamics.
    std::uint64_t selections_ = 0;
    std::uint64_t real_ = 0;
    std::uint64_t shadow_ = 0;
    std::uint64_t explorations_ = 0;
    std::uint64_t epsilon_updates_ = 0;
    double last_epsilon_ = 0.0;
    double last_accuracy_ = 0.0;
    double entropy_ = 0.0; ///< EWMA of normalised softmax entropy
    std::uint64_t entropy_samples_ = 0;

    // Reward mix.
    std::int64_t cumulative_reward_ = 0;
    std::uint64_t rewards_positive_ = 0;
    std::uint64_t rewards_negative_ = 0;
    std::uint64_t expiries_ = 0;
    Log2Histogram reward_depth_pos_{16};
    Log2Histogram reward_depth_neg_{16};

    std::vector<StoredSnapshot> snapshots_;
};

} // namespace csp::obs

#endif // CSP_OBS_LEARNING_H
