/**
 * @file
 * Learning-introspection tap: the interface through which an online-
 * learning prefetcher publishes its internal learning dynamics — arm
 * selections, epsilon adaptation, CST probe/insert/evict traffic,
 * reward applications and periodic full learning-state snapshots —
 * without knowing anything about sinks. Header-only on purpose, like
 * obs/taps.h: csp_prefetch sees only this pure interface and needs no
 * link dependency on csp_obs; the concrete sink (LearningRecorder)
 * lives in the obs library and is injected by the simulator through
 * RunObserver::learn.
 *
 * The interface is deliberately prefetcher-agnostic: the events speak
 * of "arms", "probes" and "contexts", not of the context prefetcher's
 * concrete tables, so a future Pythia-style or NN learner can feed the
 * same observatory. Hooks are notifications only — an observer can
 * never perturb the simulation (the bit-identical on/off contract is
 * tested).
 */

#ifndef CSP_OBS_LEARNING_OBSERVER_H
#define CSP_OBS_LEARNING_OBSERVER_H

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "obs/taps.h"

namespace csp::stats {
class Registry;
}

namespace csp::obs {

/** Max per-arm links surfaced through probe and snapshot events;
 *  matches the CST's own 16-candidate scan bound. */
inline constexpr unsigned kMaxLearnLinks = 16;

/** One prediction-unit probe of the learner's action-value store. */
struct CstProbeEvent
{
    bool hit = false;         ///< a live entry matched the context
    unsigned valid_links = 0; ///< links scanned in the entry
    int scores[kMaxLearnLinks] = {}; ///< scores of the valid links
};

/** One collection-unit insertion attempt. */
struct CstInsertEvent
{
    bool inserted = false;       ///< a new link was stored
    bool already_present = false;///< the association already existed
    bool new_entry = false;      ///< claimed a previously invalid entry
    bool entry_evicted = false;  ///< displaced a conflicting live entry
    bool link_evicted = false;   ///< displaced a link (score churn)
    bool tag_conflict = false;   ///< blocked by a protected live entry
};

/** Outcome of one lookup's arm selection (prediction unit). */
struct ArmSelectionEvent
{
    unsigned real = 0;     ///< arms dispatched as real prefetches
    unsigned shadow = 0;   ///< arms tracked as shadow operations
    bool explored = false; ///< an exploratory arm was drawn
    double epsilon = 0.0;  ///< exploration rate at selection time
};

/** Epsilon adaptation after one prediction outcome fed the policy. */
struct EpsilonEvent
{
    bool hit = false;       ///< the outcome that moved the accuracy EWMA
    double accuracy = 0.0;  ///< smoothed accuracy after the update
    double epsilon = 0.0;   ///< exploration rate after the update
};

/** One context's learned arms, as captured in a snapshot. */
struct SnapshotContext
{
    std::uint32_t key = 0;   ///< reduced context key
    std::uint8_t churn = 0;  ///< recent link evictions on the entry
    unsigned n_links = 0;
    std::int32_t deltas[kMaxLearnLinks] = {};
    int scores[kMaxLearnLinks] = {};
};

/** Periodic full learning-state snapshot: policy state plus the top-K
 *  contexts by best link score (deterministic order). */
struct LearningSnapshot
{
    std::uint64_t lookup = 0;  ///< demand accesses seen at capture
    double epsilon = 0.0;
    double accuracy = 0.0;
    std::uint64_t explorations = 0;
    std::uint64_t associations = 0;
    std::uint64_t pq_hits = 0;
    std::uint64_t pq_expiries = 0;
    std::uint64_t cst_live_entries = 0;
    std::uint64_t cst_entries = 0;
    std::vector<SnapshotContext> top_contexts;
};

/** See file comment. */
class LearningObserver
{
  public:
    virtual ~LearningObserver() = default;

    /** The prediction unit probed the action-value store. */
    virtual void onCstProbe(const CstProbeEvent &event) = 0;

    /** The collection unit tried to insert an association. */
    virtual void onCstInsert(const CstInsertEvent &event) = 0;

    /** One lookup's arms were selected at @p cycle. */
    virtual void onArmSelection(Cycle cycle,
                                const ArmSelectionEvent &event) = 0;

    /** The adaptive policy consumed one prediction outcome. */
    virtual void onEpsilonAdapt(const EpsilonEvent &event) = 0;

    /** A reward or expiry penalty was applied at @p cycle (the same
     *  feed RlTap::onReward carries, duplicated here so one observer
     *  needs no second tap). */
    virtual void onRewardApplied(Cycle cycle,
                                 const RewardEvent &event) = 0;

    /** Snapshot cadence in demand accesses; 0 = final snapshot only. */
    virtual std::uint64_t snapshotEvery() const { return 0; }

    /** Contexts to capture per snapshot. */
    virtual unsigned snapshotTopK() const { return 32; }

    /** Periodic (and always one final) learning-state snapshot. */
    virtual void onSnapshot(Cycle cycle,
                            const LearningSnapshot &snap) = 0;

    /** Publish observer-side telemetry (entropy, churn histograms, ...)
     *  into the run's registry under "learn.*". Default: nothing. */
    virtual void registerStats(stats::Registry &registry)
    {
        (void)registry;
    }
};

} // namespace csp::obs

#endif // CSP_OBS_LEARNING_OBSERVER_H
