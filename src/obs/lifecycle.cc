#include "obs/lifecycle.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <vector>

#include "obs/trace_events.h"

namespace csp::obs {

const char *
prefetchClassName(PrefetchClass cls)
{
    switch (cls) {
      case PrefetchClass::Timely: return "timely";
      case PrefetchClass::Late: return "late";
      case PrefetchClass::Early: return "early";
      case PrefetchClass::Redundant: return "redundant";
      case PrefetchClass::Useless: return "useless";
      case PrefetchClass::Dropped: return "dropped";
      case PrefetchClass::Count: break;
    }
    return "?";
}

PrefetchTracker::PrefetchTracker(TraceEventWriter *events,
                                 std::uint64_t sample_every,
                                 Cycle counter_interval)
    : events_(events),
      sample_every_(sample_every == 0 ? 1 : sample_every),
      counter_interval_(counter_interval)
{}

void
PrefetchTracker::classifyAtIssue(Addr line, Addr pc, PrefetchClass cls,
                                 Cycle now)
{
    ++attempts_;
    ++classes_[static_cast<std::size_t>(cls)];
    IssuerRow &row = by_issuer_pc_[pc];
    ++row.attempts;
    ++row.classes[static_cast<std::size_t>(cls)];
    if (events_ != nullptr && sampled(attempts_)) {
        std::ostringstream args;
        args << "{\"line\":\"" << hexAddr(line) << "\",\"pc\":\""
             << hexAddr(pc) << "\"}";
        events_->instant("prefetch",
                         cls == PrefetchClass::Dropped
                             ? "prefetch-dropped"
                             : "prefetch-redundant",
                         TraceEventWriter::kTidPrefetch, now,
                         args.str());
    }
}

void
PrefetchTracker::onIssued(Addr line, Addr pc, Cycle issue, Cycle fill,
                          bool to_l1, bool to_memory)
{
    if (active_.find(line) != active_.end()) {
        // An older prefetch for this line is still in flight; the new
        // request adds nothing — its lifecycle terminates at issue.
        classifyAtIssue(line, pc, PrefetchClass::Redundant, issue);
        return;
    }
    ++attempts_;
    ++issued_;
    IssuerRow &row = by_issuer_pc_[pc];
    ++row.attempts;
    ++row.issued;
    Lifecycle record;
    record.id = next_id_++;
    record.pc = pc;
    record.issue = issue;
    record.fill = fill;
    record.to_l1 = to_l1;
    record.to_memory = to_memory;
    active_.emplace(line, record);
    if (events_ != nullptr && sampled(record.id)) {
        std::ostringstream args;
        args << "{\"line\":\"" << hexAddr(line) << "\",\"pc\":\""
             << hexAddr(pc) << "\",\"fill\":" << fill
             << ",\"to_l1\":" << (to_l1 ? "true" : "false")
             << ",\"dram\":" << (to_memory ? "true" : "false") << '}';
        events_->asyncBegin("prefetch", "prefetch", record.id, issue,
                            args.str());
    }
}

void
PrefetchTracker::onRedundant(Addr line, Addr pc, Cycle now)
{
    classifyAtIssue(line, pc, PrefetchClass::Redundant, now);
}

void
PrefetchTracker::onDropped(Addr line, Addr pc, Cycle now)
{
    classifyAtIssue(line, pc, PrefetchClass::Dropped, now);
}

void
PrefetchTracker::closeLifecycle(const Lifecycle &record,
                                PrefetchClass cls, Cycle now)
{
    ++classes_[static_cast<std::size_t>(cls)];
    ++by_issuer_pc_[record.pc]
          .classes[static_cast<std::size_t>(cls)];
    if (events_ != nullptr && sampled(record.id)) {
        std::ostringstream args;
        args << "{\"class\":\"" << prefetchClassName(cls) << "\"}";
        // Async spans need a non-zero duration to render; a terminal
        // event in the issue cycle still gets a 1-cycle sliver.
        events_->asyncEnd("prefetch", "prefetch", record.id,
                          std::max(now, record.issue + 1), args.str());
    }
}

void
PrefetchTracker::onDemandUse(Addr line, Addr demand_pc, Cycle now,
                             bool ready)
{
    const auto it = active_.find(line);
    if (it == active_.end())
        return;
    const PrefetchClass cls =
        ready ? PrefetchClass::Timely : PrefetchClass::Late;
    closeLifecycle(it->second, cls, now);
    active_.erase(it);
    DemandRow &row = by_demand_pc_[demand_pc];
    if (ready)
        ++row.covered_timely;
    else
        ++row.covered_late;
}

void
PrefetchTracker::onEvictedUnused(Addr line, Cycle now)
{
    const auto it = active_.find(line);
    if (it == active_.end())
        return;
    closeLifecycle(it->second, PrefetchClass::Early, now);
    active_.erase(it);
}

void
PrefetchTracker::onDemandMiss(Addr line, Addr pc, Cycle now,
                              bool to_memory)
{
    ++demand_misses_;
    ++by_demand_pc_[pc].misses;
    if (events_ != nullptr && sampled(demand_misses_)) {
        std::ostringstream args;
        args << "{\"line\":\"" << hexAddr(line) << "\",\"pc\":\""
             << hexAddr(pc)
             << "\",\"dram\":" << (to_memory ? "true" : "false")
             << '}';
        events_->instant("demand", "demand-miss",
                         TraceEventWriter::kTidDemand, now,
                         args.str());
    }
}

void
PrefetchTracker::counterSample(Cycle now, unsigned l1_mshr_busy,
                               unsigned l2_mshr_busy)
{
    if (events_ == nullptr || counter_interval_ == 0)
        return;
    events_->counter("mshr", now,
                     {{"l1", static_cast<double>(l1_mshr_busy)},
                      {"l2", static_cast<double>(l2_mshr_busy)},
                      {"inflight_pf",
                       static_cast<double>(active_.size())}});
    while (next_counter_ <= now)
        next_counter_ += counter_interval_;
}

void
PrefetchTracker::finish(Cycle now)
{
    // Close the survivors in issue order so the emitted span ends (and
    // the autopsy they feed) are deterministic despite the hash map.
    std::vector<const std::pair<const Addr, Lifecycle> *> rest;
    rest.reserve(active_.size());
    for (const auto &entry : active_)
        rest.push_back(&entry);
    std::sort(rest.begin(), rest.end(),
              [](const auto *a, const auto *b) {
                  return a->second.id < b->second.id;
              });
    for (const auto *entry : rest)
        closeLifecycle(entry->second, PrefetchClass::Useless, now);
    active_.clear();
}

std::uint64_t
PrefetchTracker::covered() const
{
    return classCount(PrefetchClass::Timely) +
           classCount(PrefetchClass::Late);
}

double
PrefetchTracker::accuracy() const
{
    return issued_ == 0 ? 0.0
                        : static_cast<double>(covered()) /
                              static_cast<double>(issued_);
}

double
PrefetchTracker::timeliness() const
{
    const std::uint64_t useful = covered();
    return useful == 0
               ? 0.0
               : static_cast<double>(
                     classCount(PrefetchClass::Timely)) /
                     static_cast<double>(useful);
}

double
PrefetchTracker::coverage() const
{
    const std::uint64_t addressable =
        classCount(PrefetchClass::Timely) + demand_misses_;
    return addressable == 0 ? 0.0
                            : static_cast<double>(covered()) /
                                  static_cast<double>(addressable);
}

namespace {

/** Sorted keys of an unordered map (deterministic row order). */
template <typename Map>
std::vector<Addr>
sortedKeys(const Map &map)
{
    std::vector<Addr> keys;
    keys.reserve(map.size());
    for (const auto &entry : map)
        keys.push_back(entry.first);
    std::sort(keys.begin(), keys.end());
    return keys;
}

double
ratio(std::uint64_t num, std::uint64_t den)
{
    return den == 0 ? 0.0
                    : static_cast<double>(num) /
                          static_cast<double>(den);
}

} // namespace

void
PrefetchTracker::writeAutopsyCsv(std::ostream &out,
                                 const std::string &label) const
{
    out << "label,kind,pc,attempts,issued,timely,late,early,redundant,"
           "useless,dropped,demand_misses,covered,accuracy,timeliness,"
           "coverage\n";
    const auto cls = [](const auto &classes, PrefetchClass c) {
        return classes[static_cast<std::size_t>(c)];
    };
    out << label << ",total,-," << attempts_ << ',' << issued_ << ','
        << cls(classes_, PrefetchClass::Timely) << ','
        << cls(classes_, PrefetchClass::Late) << ','
        << cls(classes_, PrefetchClass::Early) << ','
        << cls(classes_, PrefetchClass::Redundant) << ','
        << cls(classes_, PrefetchClass::Useless) << ','
        << cls(classes_, PrefetchClass::Dropped) << ','
        << demand_misses_ << ',' << covered() << ',' << accuracy()
        << ',' << timeliness() << ',' << coverage() << '\n';
    for (const Addr pc : sortedKeys(by_issuer_pc_)) {
        const IssuerRow &row = by_issuer_pc_.at(pc);
        const std::uint64_t useful =
            cls(row.classes, PrefetchClass::Timely) +
            cls(row.classes, PrefetchClass::Late);
        out << label << ",issuer_pc," << hexAddr(pc) << ','
            << row.attempts << ',' << row.issued << ','
            << cls(row.classes, PrefetchClass::Timely) << ','
            << cls(row.classes, PrefetchClass::Late) << ','
            << cls(row.classes, PrefetchClass::Early) << ','
            << cls(row.classes, PrefetchClass::Redundant) << ','
            << cls(row.classes, PrefetchClass::Useless) << ','
            << cls(row.classes, PrefetchClass::Dropped) << ",0,"
            << useful << ',' << ratio(useful, row.issued) << ','
            << ratio(cls(row.classes, PrefetchClass::Timely), useful)
            << ",0\n";
    }
    for (const Addr pc : sortedKeys(by_demand_pc_)) {
        const DemandRow &row = by_demand_pc_.at(pc);
        const std::uint64_t useful =
            row.covered_timely + row.covered_late;
        out << label << ",demand_pc," << hexAddr(pc)
            << ",0,0," << row.covered_timely << ',' << row.covered_late
            << ",0,0,0,0," << row.misses << ',' << useful << ",0,0,"
            << ratio(useful, row.covered_timely + row.misses) << '\n';
    }
}

void
PrefetchTracker::writeAutopsyJson(std::ostream &out,
                                  const std::string &label) const
{
    const auto classesJson = [](const auto &classes) {
        std::ostringstream json;
        json << '{';
        for (std::size_t c = 0;
             c < static_cast<std::size_t>(PrefetchClass::Count); ++c) {
            json << (c == 0 ? "" : ",") << '"'
                 << prefetchClassName(static_cast<PrefetchClass>(c))
                 << "\":" << classes[c];
        }
        json << '}';
        return json.str();
    };
    out << "{\"prefetcher\":\"" << label << "\",\"total\":{"
        << "\"attempts\":" << attempts_ << ",\"issued\":" << issued_
        << ",\"classes\":" << classesJson(classes_)
        << ",\"demand_misses\":" << demand_misses_
        << ",\"covered\":" << covered()
        << ",\"accuracy\":" << accuracy()
        << ",\"timeliness\":" << timeliness()
        << ",\"coverage\":" << coverage() << "},\"by_issuer_pc\":[";
    bool first = true;
    for (const Addr pc : sortedKeys(by_issuer_pc_)) {
        const IssuerRow &row = by_issuer_pc_.at(pc);
        const std::uint64_t useful =
            row.classes[static_cast<std::size_t>(
                PrefetchClass::Timely)] +
            row.classes[static_cast<std::size_t>(PrefetchClass::Late)];
        out << (first ? "" : ",") << "{\"pc\":\"" << hexAddr(pc)
            << "\",\"attempts\":" << row.attempts
            << ",\"issued\":" << row.issued
            << ",\"classes\":" << classesJson(row.classes)
            << ",\"accuracy\":" << ratio(useful, row.issued)
            << ",\"timeliness\":"
            << ratio(row.classes[static_cast<std::size_t>(
                         PrefetchClass::Timely)],
                     useful)
            << '}';
        first = false;
    }
    out << "],\"by_demand_pc\":[";
    first = true;
    for (const Addr pc : sortedKeys(by_demand_pc_)) {
        const DemandRow &row = by_demand_pc_.at(pc);
        const std::uint64_t useful =
            row.covered_timely + row.covered_late;
        out << (first ? "" : ",") << "{\"pc\":\"" << hexAddr(pc)
            << "\",\"misses\":" << row.misses
            << ",\"covered_timely\":" << row.covered_timely
            << ",\"covered_late\":" << row.covered_late
            << ",\"coverage\":"
            << ratio(useful, row.covered_timely + row.misses) << '}';
        first = false;
    }
    out << "]}\n";
}

} // namespace csp::obs
