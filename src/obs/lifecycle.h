/**
 * @file
 * Per-prefetch lifecycle tracker — the observability layer's core.
 *
 * Every prefetch the hierarchy actually dispatches gets a monotonically
 * assigned id and an active record keyed by line address; the record is
 * carried from issue (with its scheduled fill cycle and whether it
 * reached L1 / DRAM) to its terminal event, where a classifier buckets
 * the lifecycle:
 *
 *  - Timely:    first demand touch found the line's data ready
 *  - Late:      demand arrived while the fill was still in flight
 *               (the prefetch merged with the demand miss)
 *  - Early:     the line was evicted before any demand use
 *  - Redundant: the target was already cached or already in flight
 *  - Useless:   issued but never referenced by the end of the run
 *  - Dropped:   refused at issue under MSHR pressure
 *
 * The tracker is attached to a Hierarchy through a single pointer; the
 * hot path pays one null check when it is absent and the simulation's
 * RunStats never depend on it. On top of the raw classes it keeps the
 * paper's Fig-10/11 attribution inputs — per-issuing-PC
 * accuracy/timeliness and per-demand-PC coverage — and renders them as
 * autopsy CSV/JSON tables. With a TraceEventWriter attached it also
 * emits each (1-in-N sampled) lifecycle as a Perfetto async span,
 * demand misses as instant events, and MSHR occupancy as a periodic
 * counter track.
 */

#ifndef CSP_OBS_LIFECYCLE_H
#define CSP_OBS_LIFECYCLE_H

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>

#include "core/types.h"

namespace csp::obs {

class TraceEventWriter;

/** Terminal classification of one prefetch lifecycle. */
enum class PrefetchClass : std::uint8_t
{
    Timely,    ///< demand hit with data ready
    Late,      ///< demand merged with the in-flight fill
    Early,     ///< evicted before any demand use
    Redundant, ///< target already cached or in flight
    Useless,   ///< never referenced by end of run
    Dropped,   ///< refused at issue (MSHR pressure)
    Count,
};

/** Human-readable label ("timely", "late", ...). */
const char *prefetchClassName(PrefetchClass cls);

/** See file comment. */
class PrefetchTracker
{
  public:
    /** @param events optional Perfetto sink (null: autopsy only).
     *  @param sample_every emit 1 in N lifecycles/instants (min 1).
     *  @param counter_interval cycles between MSHR-occupancy counter
     *         samples (0 disables the track). */
    explicit PrefetchTracker(TraceEventWriter *events = nullptr,
                             std::uint64_t sample_every = 1,
                             Cycle counter_interval = 4096);

    // ---- hooks called by mem::Hierarchy ------------------------------
    /** A prefetch was dispatched; a lifecycle record opens. If the line
     *  already has an in-flight lifecycle the new request is classified
     *  Redundant instead. */
    void onIssued(Addr line, Addr pc, Cycle issue, Cycle fill,
                  bool to_l1, bool to_memory);

    /** Prefetch elided: the target was already cached or in flight. */
    void onRedundant(Addr line, Addr pc, Cycle now);

    /** Prefetch refused under MSHR pressure. */
    void onDropped(Addr line, Addr pc, Cycle now);

    /** First demand touch of a tracked line: Timely when the data was
     *  @p ready, Late when the fill was still in flight. */
    void onDemandUse(Addr line, Addr demand_pc, Cycle now, bool ready);

    /** A never-used prefetched line was displaced. */
    void onEvictedUnused(Addr line, Cycle now);

    /** A demand access missed L1 (includes in-flight MSHR hits) —
     *  the coverage denominator and the demand instant-event feed. */
    void onDemandMiss(Addr line, Addr pc, Cycle now, bool to_memory);

    /** True when the MSHR counter track wants a sample at @p now. */
    bool
    counterDue(Cycle now) const
    {
        return events_ != nullptr && counter_interval_ != 0 &&
               now >= next_counter_;
    }

    /** Record one MSHR-occupancy counter sample. */
    void counterSample(Cycle now, unsigned l1_mshr_busy,
                       unsigned l2_mshr_busy);

    /** Close every still-active lifecycle as Useless (end of run). */
    void finish(Cycle now);

    // ---- results -----------------------------------------------------
    std::uint64_t issued() const { return issued_; }
    std::uint64_t attempts() const { return attempts_; }
    std::uint64_t demandMisses() const { return demand_misses_; }

    std::uint64_t
    classCount(PrefetchClass cls) const
    {
        return classes_[static_cast<std::size_t>(cls)];
    }

    /** Lifecycles that served a demand access (timely + late). */
    std::uint64_t covered() const;

    /** covered / issued — the paper's prefetch accuracy. */
    double accuracy() const;

    /** timely / covered — how often a useful prefetch was fully
     *  ahead of its demand. */
    double timeliness() const;

    /** covered / (timely + demand L1 misses): the fraction of
     *  would-have-missed accesses a prefetch served. Timely hits are
     *  added back to the denominator because they never count as L1
     *  misses, while Late hits already do. */
    double coverage() const;

    /**
     * Autopsy table as CSV: a "total" row, then per-issuing-PC rows
     * (accuracy/timeliness attribution) and per-demand-PC rows
     * (coverage attribution), PCs ascending. @p label fills the first
     * column (typically the prefetcher name).
     */
    void writeAutopsyCsv(std::ostream &out,
                         const std::string &label) const;

    /** Same table as one JSON object. */
    void writeAutopsyJson(std::ostream &out,
                          const std::string &label) const;

  private:
    struct Lifecycle
    {
        std::uint64_t id = 0;
        Addr pc = 0;
        Cycle issue = 0;
        Cycle fill = 0;
        bool to_l1 = false;
        bool to_memory = false;
    };

    /** Per-issuing-PC attribution row. */
    struct IssuerRow
    {
        std::uint64_t attempts = 0;
        std::uint64_t issued = 0;
        std::array<std::uint64_t,
                   static_cast<std::size_t>(PrefetchClass::Count)>
            classes{};
    };

    /** Per-demand-PC coverage row. */
    struct DemandRow
    {
        std::uint64_t misses = 0;
        std::uint64_t covered_timely = 0;
        std::uint64_t covered_late = 0;
    };

    /** Count a terminal event against an open lifecycle record and
     *  close its span. */
    void closeLifecycle(const Lifecycle &record, PrefetchClass cls,
                        Cycle now);

    /** Count a lifecycle that terminates at issue time. */
    void classifyAtIssue(Addr line, Addr pc, PrefetchClass cls,
                         Cycle now);

    bool sampled(std::uint64_t n) const { return n % sample_every_ == 0; }

    std::unordered_map<Addr, Lifecycle> active_;
    std::unordered_map<Addr, IssuerRow> by_issuer_pc_;
    std::unordered_map<Addr, DemandRow> by_demand_pc_;
    std::array<std::uint64_t,
               static_cast<std::size_t>(PrefetchClass::Count)>
        classes_{};
    std::uint64_t next_id_ = 0;
    std::uint64_t issued_ = 0;
    std::uint64_t attempts_ = 0;
    std::uint64_t demand_misses_ = 0;

    TraceEventWriter *events_;
    std::uint64_t sample_every_;
    Cycle counter_interval_;
    Cycle next_counter_ = 0;
};

} // namespace csp::obs

#endif // CSP_OBS_LIFECYCLE_H
