/**
 * @file
 * Memory-hierarchy introspection tap: the interface through which
 * mem::Hierarchy publishes its demand/fill/evict traffic — one event
 * per demand access with the level it was served from, one per cache
 * fill with the victim it displaced, and a periodic queue-depth sample
 * — without knowing anything about sinks. Header-only on purpose, like
 * obs/learning_observer.h: csp_mem sees only this pure interface; the
 * concrete sink (MemRecorder) lives in the obs library and is injected
 * by the simulator through RunObserver::mem.
 *
 * Hooks are notifications only — an observer can never perturb the
 * simulation (the bit-identical on/off contract is tested). The
 * disabled cost is one null-pointer check per demand access, exactly
 * the PrefetchTracker contract.
 */

#ifndef CSP_OBS_MEM_OBSERVER_H
#define CSP_OBS_MEM_OBSERVER_H

#include <cstdint>

#include "core/types.h"

namespace csp::stats {
class Registry;
}

namespace csp::obs {

/** Where a demand access was served from, as seen by the tap. Kept
 *  separate from mem::ServiceLevel so csp_mem needs no header cycle;
 *  the hierarchy maps its outcome onto this enum. */
enum class MemAccessKind : std::uint8_t
{
    L1Hit,      ///< ready L1 hit (not an L1 miss)
    L1InFlight, ///< line present in L1 but still filling (counts as miss)
    L2Hit,      ///< full L1 miss served by L2 (ready or in flight)
    Memory,     ///< full L1 miss that reached DRAM (demand L2 miss)
};

/** One demand access, after its service level is known. */
struct MemAccessEvent
{
    Addr line_addr = 0; ///< line-aligned address
    Addr pc = 0;        ///< demand PC
    Cycle cycle = 0;    ///< issue cycle
    MemAccessKind kind = MemAccessKind::L1Hit;
    bool is_store = false;
};

/** One cache fill (line install), with the victim it displaced. */
struct MemFillEvent
{
    std::uint8_t level = 1;   ///< 1 = L1D, 2 = L2
    std::uint64_t set = 0;    ///< set index the line landed in
    Addr line_addr = 0;       ///< line being installed
    Addr pc = 0;              ///< requesting PC (issuer PC for prefetch)
    bool is_prefetch = false; ///< prefetch fill (vs demand fill)
    bool victim_valid = false;///< a live line was displaced
    Addr victim_addr = 0;     ///< displaced line address (when valid)
};

/** One queue-depth sample (MSHR occupancy + DRAM backlog). */
struct MemQueueSample
{
    Cycle cycle = 0;
    std::uint64_t accesses = 0;    ///< demand accesses seen so far
    unsigned l1_mshr_busy = 0;
    unsigned l2_mshr_busy = 0;
    std::uint64_t dram_backlog = 0;///< cycles until DRAM is free again
};

/** See file comment. */
class MemObserver
{
  public:
    virtual ~MemObserver() = default;

    /** A demand access completed classification at the hierarchy. */
    virtual void onDemandAccess(const MemAccessEvent &event) = 0;

    /** A line was installed (and possibly displaced a victim). */
    virtual void onFill(const MemFillEvent &event) = 0;

    /** True when the next demand access should carry a queue-depth
     *  sample; the hierarchy asks before building one (same
     *  counterDue/counterSample idiom as PrefetchTracker). */
    virtual bool queueSampleDue() const { return false; }

    /** Periodic MSHR/DRAM queue-depth sample. */
    virtual void onQueueSample(const MemQueueSample &sample) = 0;

    /** Publish observer-side telemetry (miss classes, reuse-distance
     *  histograms, set pressure) into the run's registry under the
     *  "mem.class/reuse/sets/pollution/timeline/shadow" subtrees.
     *  Default: nothing. */
    virtual void registerStats(stats::Registry &registry)
    {
        (void)registry;
    }
};

} // namespace csp::obs

#endif // CSP_OBS_MEM_OBSERVER_H
