#include "obs/mem_recorder.h"

#include <algorithm>
#include <iomanip>
#include <ostream>

#include "core/logging.h"
#include "core/stats_registry.h"
#include "obs/trace_events.h"

namespace csp::obs {

namespace {

/** floor(log2(v)) for power-of-two geometry parameters. */
unsigned
log2Exact(std::uint64_t v)
{
    CSP_ASSERT(v != 0 && (v & (v - 1)) == 0);
    unsigned shift = 0;
    while ((1ull << shift) != v)
        ++shift;
    return shift;
}

/** Log2Histogram summary as a JSON object literal. */
void
writeHistJson(std::ostream &out, const Log2Histogram &hist)
{
    out << "{\"count\":" << hist.count() << ",\"mean\":" << hist.mean()
        << ",\"p50\":" << hist.percentile(0.5)
        << ",\"p90\":" << hist.percentile(0.9)
        << ",\"p99\":" << hist.percentile(0.99) << ",\"buckets\":[";
    // Trailing all-zero buckets are elided so the export stays small;
    // the bucket layout is fixed, so the prefix is unambiguous.
    std::size_t last = hist.buckets().size();
    while (last > 0 && hist.buckets()[last - 1] == 0)
        --last;
    for (std::size_t i = 0; i < last; ++i)
        out << (i == 0 ? "" : ",") << hist.buckets()[i];
    out << "]}";
}

} // namespace

const char *
missClassName(MissClass cls)
{
    switch (cls) {
      case MissClass::Compulsory: return "compulsory";
      case MissClass::Pollution: return "pollution";
      case MissClass::Conflict: return "conflict";
      case MissClass::Capacity: return "capacity";
      case MissClass::Count: break;
    }
    return "?";
}

// ---------------------------------------------------------------------
// StackDistance

StackDistance::StackDistance()
{
    // Start small; compact() grows the index space as live lines do.
    tree_.assign(1 << 12, 0);
    line_at_.assign(1 << 12, kInvalidAddr);
}

void
StackDistance::add(std::uint64_t pos, int delta)
{
    for (std::uint64_t i = pos + 1; i <= tree_.size();
         i += i & (~i + 1)) {
        tree_[i - 1] = static_cast<std::uint32_t>(
            static_cast<std::int64_t>(tree_[i - 1]) + delta);
    }
}

std::uint64_t
StackDistance::prefix(std::uint64_t pos) const
{
    std::uint64_t sum = 0;
    for (std::uint64_t i = pos + 1; i > 0; i -= i & (~i + 1))
        sum += tree_[i - 1];
    return sum;
}

void
StackDistance::compact()
{
    // Reassign the live lines' positions 0..n-1 in recency order and
    // rebuild the tree. Triggered by access counts only, so two runs
    // over the same stream compact at the same points.
    ++compactions_;
    std::vector<Addr> live;
    live.reserve(last_pos_.size());
    for (std::uint64_t pos = 0; pos < next_; ++pos) {
        if (line_at_[pos] != kInvalidAddr)
            live.push_back(line_at_[pos]);
    }
    std::uint64_t capacity = tree_.size();
    while (live.size() * 2 > capacity)
        capacity *= 2;
    tree_.assign(capacity, 0);
    line_at_.assign(capacity, kInvalidAddr);
    next_ = 0;
    for (Addr line : live) {
        line_at_[next_] = line;
        last_pos_[line] = next_;
        add(next_, +1);
        ++next_;
    }
}

std::uint64_t
StackDistance::onAccess(Addr line)
{
    if (next_ == tree_.size())
        compact();
    std::uint64_t distance = kNoReuse;
    auto it = last_pos_.find(line);
    if (it != last_pos_.end()) {
        const std::uint64_t last = it->second;
        // Marked positions in (last, next_) are exactly the lines whose
        // most recent access falls after this line's — its LRU depth.
        distance = prefix(next_ == 0 ? 0 : next_ - 1) - prefix(last);
        add(last, -1);
        line_at_[last] = kInvalidAddr;
    }
    line_at_[next_] = line;
    add(next_, +1);
    last_pos_[line] = next_;
    ++next_;
    return distance;
}

// ---------------------------------------------------------------------
// ShadowCache

ShadowCache::ShadowCache(const CacheConfig &config)
    : sets_(config.sets()),
      ways_(config.ways),
      line_shift_(log2Exact(config.line_bytes)),
      set_shift_(log2Exact(config.sets())),
      set_mask_(config.sets() - 1),
      lines_(config.sets() * config.ways)
{}

bool
ShadowCache::access(Addr line_addr)
{
    const std::uint64_t set = (line_addr >> line_shift_) & set_mask_;
    const Addr tag = line_addr >> (line_shift_ + set_shift_);
    Line *const base = &lines_[set * ways_];
    Line *victim = &base[0];
    for (unsigned way = 0; way < ways_; ++way) {
        Line &line = base[way];
        if (line.valid && line.tag == tag) {
            line.lru = ++clock_;
            return true;
        }
        if (!victim->valid)
            continue;
        if (!line.valid || line.lru < victim->lru)
            victim = &line;
    }
    victim->tag = tag;
    victim->valid = true;
    victim->lru = ++clock_;
    return false;
}

// ---------------------------------------------------------------------
// LevelModel

LevelModel::LevelModel(const CacheConfig &config)
    : capacity_lines_(config.size_bytes / config.line_bytes),
      shadow_(config)
{}

std::uint64_t
LevelModel::classifiedTotal() const
{
    std::uint64_t total = 0;
    for (std::uint64_t c : classes_)
        total += c;
    return total;
}

LevelModel::Result
LevelModel::onAccess(Addr line_addr, bool real_miss, bool line_present)
{
    ++accesses_;
    Result result;
    result.first_touch = seen_.insert(line_addr).second;
    result.reuse_distance = stack_.onAccess(line_addr);
    const bool shadow_hit = shadow_.access(line_addr);
    if (shadow_hit)
        ++shadow_hits_;
    if (!result.first_touch)
        reuse_.sample(result.reuse_distance);
    if (!real_miss)
        return result;
    // Priority order: compulsory (no model could have held the line),
    // then pollution (the demand-only shadow did hold it, so prefetch
    // fills displaced it), then conflict vs capacity by exact stack
    // distance against a fully-associative cache of the same capacity.
    // An in-flight (MSHR-merge) miss still holds the line in the real
    // cache — nothing displaced it — so the pollution rule is skipped.
    if (result.first_touch)
        result.cls = MissClass::Compulsory;
    else if (shadow_hit && !line_present)
        result.cls = MissClass::Pollution;
    else if (result.reuse_distance < capacity_lines_)
        result.cls = MissClass::Conflict;
    else
        result.cls = MissClass::Capacity;
    ++classes_[static_cast<std::size_t>(result.cls)];
    return result;
}

// ---------------------------------------------------------------------
// MemRecorder

MemRecorder::MemRecorder(const MemoryConfig &config, Options options,
                         TraceEventWriter *events)
    : options_(options),
      events_(events),
      l1_(config.l1d),
      l2_(config.l2),
      l1_sets_(config.l1d.sets()),
      l2_sets_(config.l2.sets())
{}

void
MemRecorder::creditPollution(std::uint8_t level, Addr line_addr,
                             Addr demand_pc)
{
    auto &victims = level == 1 ? l1_victims_ : l2_victims_;
    auto it = victims.find(line_addr);
    if (it == victims.end()) {
        ++pollution_unattributed_[level - 1];
        return;
    }
    ++pollution_attributed_[level - 1];
    const PairKey key{it->second, demand_pc, level};
    victims.erase(it);
    auto pair = pairs_.find(key);
    if (pair != pairs_.end()) {
        ++pair->second;
    } else if (pairs_.size() < options_.max_pairs) {
        pairs_.emplace(key, 1);
    } else {
        ++pairs_overflow_;
    }
}

void
MemRecorder::emitCounterTracks(Cycle cycle)
{
    events_->counter(
        "mem.l1", cycle,
        {{"compulsory",
          static_cast<double>(l1_.classCount(MissClass::Compulsory))},
         {"capacity",
          static_cast<double>(l1_.classCount(MissClass::Capacity))},
         {"conflict",
          static_cast<double>(l1_.classCount(MissClass::Conflict))},
         {"pollution",
          static_cast<double>(l1_.classCount(MissClass::Pollution))}});
    events_->counter(
        "mem.l2", cycle,
        {{"compulsory",
          static_cast<double>(l2_.classCount(MissClass::Compulsory))},
         {"capacity",
          static_cast<double>(l2_.classCount(MissClass::Capacity))},
         {"conflict",
          static_cast<double>(l2_.classCount(MissClass::Conflict))},
         {"pollution",
          static_cast<double>(l2_.classCount(MissClass::Pollution))}});
}

void
MemRecorder::onDemandAccess(const MemAccessEvent &event)
{
    ++accesses_;
    const bool l1_miss = event.kind != MemAccessKind::L1Hit;
    const bool l1_present = event.kind == MemAccessKind::L1Hit ||
                            event.kind == MemAccessKind::L1InFlight;
    const LevelModel::Result l1r =
        l1_.onAccess(event.line_addr, l1_miss, l1_present);
    if (l1r.cls == MissClass::Pollution)
        creditPollution(1, event.line_addr, event.pc);

    // Per-PC telemetry: exact for the first max_pcs distinct PCs (the
    // synthetic workloads have tens), aggregated beyond that.
    PcStats *pc = &other_pcs_;
    auto it = pcs_.find(event.pc);
    if (it != pcs_.end())
        pc = &it->second;
    else if (pcs_.size() < options_.max_pcs)
        pc = &pcs_[event.pc];
    ++pc->accesses;
    if (l1_miss)
        ++pc->l1_misses;
    if (!l1r.first_touch)
        pc->reuse.sample(l1r.reuse_distance);

    // The L2 reference stream is the full L1 misses (the requests that
    // actually reached L2); its classified misses are the demand
    // accesses that went all the way to DRAM.
    if (event.kind == MemAccessKind::L2Hit ||
        event.kind == MemAccessKind::Memory) {
        const bool l2_miss = event.kind == MemAccessKind::Memory;
        const LevelModel::Result l2r =
            l2_.onAccess(event.line_addr, l2_miss,
                         /*line_present=*/false);
        if (l2r.cls == MissClass::Pollution)
            creditPollution(2, event.line_addr, event.pc);
        if (l2r.cls != MissClass::Count)
            ++pc->l2_misses;
    }

    if (events_ != nullptr && options_.counter_every != 0 &&
        accesses_ % options_.counter_every == 0) {
        emitCounterTracks(event.cycle);
    }
}

void
MemRecorder::onFill(const MemFillEvent &event)
{
    auto &sets = event.level == 1 ? l1_sets_ : l2_sets_;
    SetStats &set = sets[event.set];
    if (event.is_prefetch)
        ++set.fills_prefetch;
    else
        ++set.fills_demand;
    if (!event.victim_valid)
        return;
    ++set.evictions;
    if (event.is_prefetch) {
        // Remember who displaced this line; if the victim takes a
        // pollution-classified miss later, the blame lands on this
        // prefetch's issuer PC. Latest displacement wins; the map is
        // bounded by the distinct-line count of the run.
        auto &victims = event.level == 1 ? l1_victims_ : l2_victims_;
        victims[event.victim_addr] = event.pc;
    }
}

void
MemRecorder::onQueueSample(const MemQueueSample &sample)
{
    timeline_.push_back(sample);
    last_sample_ = sample;
    next_queue_sample_ = accesses_ + options_.queue_sample_every;
}

void
MemRecorder::registerStats(stats::Registry &registry)
{
    static const char *const kClassDesc[] = {
        "first-touch misses (no finite cache could hold the line)",
        "misses a demand-only shadow of same geometry would have hit",
        "misses a fully-assoc LRU of same capacity would have hit",
        "misses even the fully-assoc same-capacity shadow takes",
    };
    for (unsigned level = 1; level <= 2; ++level) {
        LevelModel &model = level == 1 ? l1_ : l2_;
        const std::string prefix =
            std::string("mem.class.l") + (level == 1 ? "1" : "2") + '.';
        for (std::size_t c = 0;
             c < static_cast<std::size_t>(MissClass::Count); ++c) {
            registry.counter(
                prefix + missClassName(static_cast<MissClass>(c)),
                &model.classes_[c], kClassDesc[c]);
        }
        const std::string ln = level == 1 ? "l1" : "l2";
        registry.distribution(
            "mem.reuse." + ln, &model.reuse_,
            "LRU stack distance per re-access (lines)");
        registry.counter("mem.shadow." + ln + ".hits",
                         &model.shadow_hits_,
                         "demand-only shadow-cache hits");
    }
    registry.counter(
        "mem.shadow.compactions",
        [this] { return l1_.compactions() + l2_.compactions(); },
        "stack-distance index compactions (cost telemetry)");

    for (unsigned level = 1; level <= 2; ++level) {
        const std::string ln = level == 1 ? "l1" : "l2";
        const std::vector<SetStats> *const sets =
            level == 1 ? &l1_sets_ : &l2_sets_;
        registry.counter(
            "mem.sets." + ln + ".evictions",
            [sets] {
                std::uint64_t total = 0;
                for (const SetStats &s : *sets)
                    total += s.evictions;
                return total;
            },
            "valid lines displaced across all sets");
        registry.gauge(
            "mem.sets." + ln + ".hot_evictions",
            [sets] {
                std::uint64_t hot = 0;
                for (const SetStats &s : *sets)
                    hot = std::max(hot, s.evictions);
                return static_cast<double>(hot);
            },
            "evictions in the single hottest set");
        registry.counter("mem.pollution." + ln + ".attributed",
                         &pollution_attributed_[level - 1],
                         "pollution misses traced to a prefetch issuer");
        registry.counter("mem.pollution." + ln + ".unattributed",
                         &pollution_unattributed_[level - 1],
                         "pollution misses with no recorded displacer");
    }

    registry.counter(
        "mem.timeline.samples",
        [this] { return queueSamples(); },
        "MSHR/DRAM queue-depth samples taken");
    registry.gauge(
        "mem.timeline.l1_mshr",
        [this] { return static_cast<double>(last_sample_.l1_mshr_busy); },
        "L1 MSHR slots busy at the last queue sample");
    registry.gauge(
        "mem.timeline.l2_mshr",
        [this] { return static_cast<double>(last_sample_.l2_mshr_busy); },
        "L2 MSHR slots busy at the last queue sample");
    registry.gauge(
        "mem.timeline.dram_backlog",
        [this] {
            return static_cast<double>(last_sample_.dram_backlog);
        },
        "cycles until DRAM frees up, at the last queue sample");
}

void
MemRecorder::writeLevelJson(std::ostream &out, const char *name,
                            const LevelModel &model,
                            const std::vector<SetStats> &sets) const
{
    out << '"' << name << "\":{\"accesses\":" << model.accesses()
        << ",\"classified\":" << model.classifiedTotal()
        << ",\"classes\":{";
    for (std::size_t c = 0;
         c < static_cast<std::size_t>(MissClass::Count); ++c) {
        out << (c == 0 ? "" : ",") << '"'
            << missClassName(static_cast<MissClass>(c)) << "\":"
            << model.classCount(static_cast<MissClass>(c));
    }
    out << "},\"shadow_hits\":" << model.shadowHits()
        << ",\"capacity_lines\":" << model.capacityLines()
        << ",\"reuse\":";
    writeHistJson(out, model.reuseHistogram());

    // Set-pressure heatmap: totals plus the top-K hottest sets by
    // eviction pressure (ties broken by set index — deterministic).
    std::uint64_t fills_demand = 0, fills_prefetch = 0, evictions = 0;
    for (const SetStats &s : sets) {
        fills_demand += s.fills_demand;
        fills_prefetch += s.fills_prefetch;
        evictions += s.evictions;
    }
    std::vector<std::uint64_t> order(sets.size());
    for (std::uint64_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&sets](std::uint64_t a, std::uint64_t b) {
                         if (sets[a].evictions != sets[b].evictions)
                             return sets[a].evictions > sets[b].evictions;
                         return a < b;
                     });
    out << ",\"sets\":{\"count\":" << sets.size()
        << ",\"fills_demand\":" << fills_demand
        << ",\"fills_prefetch\":" << fills_prefetch
        << ",\"evictions\":" << evictions << ",\"top\":[";
    const std::size_t top =
        std::min<std::size_t>(options_.top_sets, order.size());
    for (std::size_t i = 0; i < top; ++i) {
        const SetStats &s = sets[order[i]];
        const std::uint64_t fills = s.fills_demand + s.fills_prefetch;
        out << (i == 0 ? "" : ",") << "{\"set\":" << order[i]
            << ",\"fills_demand\":" << s.fills_demand
            << ",\"fills_prefetch\":" << s.fills_prefetch
            << ",\"evictions\":" << s.evictions << ",\"demand_share\":"
            << (fills == 0 ? 1.0
                           : static_cast<double>(s.fills_demand) /
                                 static_cast<double>(fills))
            << '}';
    }
    out << "]}}";
}

void
MemRecorder::writeMemJson(std::ostream &out,
                          const std::string &manifest_json,
                          const std::string &prefetcher) const
{
    out << std::setprecision(12);
    out << "{\"schema\":\"csp-mem-v1\"";
    if (!manifest_json.empty())
        out << ",\"manifest\":" << manifest_json;
    out << ",\"prefetcher\":\"" << prefetcher << '"';
    out << ",\"mem\":{\"interval\":" << options_.queue_sample_every
        << ",\"accesses\":" << accesses_ << ',';
    writeLevelJson(out, "l1", l1_, l1_sets_);
    out << ',';
    writeLevelJson(out, "l2", l2_, l2_sets_);

    // Top demand PCs by L1 misses (ties by accesses, then PC).
    std::vector<std::pair<Addr, const PcStats *>> pcs;
    pcs.reserve(pcs_.size());
    for (const auto &entry : pcs_)
        pcs.emplace_back(entry.first, &entry.second);
    std::sort(pcs.begin(), pcs.end(),
              [](const auto &a, const auto &b) {
                  if (a.second->l1_misses != b.second->l1_misses)
                      return a.second->l1_misses > b.second->l1_misses;
                  if (a.second->accesses != b.second->accesses)
                      return a.second->accesses > b.second->accesses;
                  return a.first < b.first;
              });
    out << ",\"pc\":[";
    const std::size_t top_pcs =
        std::min<std::size_t>(options_.top_pcs, pcs.size());
    for (std::size_t i = 0; i < top_pcs; ++i) {
        const PcStats &s = *pcs[i].second;
        out << (i == 0 ? "" : ",") << "{\"pc\":\""
            << hexAddr(pcs[i].first)
            << "\",\"accesses\":" << s.accesses
            << ",\"l1_misses\":" << s.l1_misses
            << ",\"l2_misses\":" << s.l2_misses << ",\"reuse\":";
        writeHistJson(out, s.reuse);
        out << '}';
    }
    out << "],\"pc_tracked\":" << pcs_.size()
        << ",\"pc_other_accesses\":" << other_pcs_.accesses;

    // Pollution attribution pairs, hottest first.
    std::vector<std::pair<PairKey, std::uint64_t>> pairs(pairs_.begin(),
                                                         pairs_.end());
    std::sort(pairs.begin(), pairs.end(),
              [](const auto &a, const auto &b) {
                  if (a.second != b.second)
                      return a.second > b.second;
                  if (a.first.level != b.first.level)
                      return a.first.level < b.first.level;
                  if (a.first.issuer != b.first.issuer)
                      return a.first.issuer < b.first.issuer;
                  return a.first.demand < b.first.demand;
              });
    out << ",\"pollution\":{\"l1\":{\"attributed\":"
        << pollution_attributed_[0]
        << ",\"unattributed\":" << pollution_unattributed_[0]
        << "},\"l2\":{\"attributed\":" << pollution_attributed_[1]
        << ",\"unattributed\":" << pollution_unattributed_[1]
        << "},\"pairs_overflow\":" << pairs_overflow_
        << ",\"pairs\":[";
    const std::size_t top_pairs =
        std::min<std::size_t>(options_.top_pairs, pairs.size());
    for (std::size_t i = 0; i < top_pairs; ++i) {
        out << (i == 0 ? "" : ",")
            << "{\"level\":" << static_cast<unsigned>(pairs[i].first.level)
            << ",\"issuer_pc\":\"" << hexAddr(pairs[i].first.issuer)
            << "\",\"demand_pc\":\"" << hexAddr(pairs[i].first.demand)
            << "\",\"count\":" << pairs[i].second << '}';
    }
    out << "]}";

    out << ",\"shadow\":{\"compactions\":"
        << l1_.compactions() + l2_.compactions()
        << ",\"l1_live_lines\":" << l1_.stack_.liveLines()
        << ",\"l2_live_lines\":" << l2_.stack_.liveLines() << '}';

    out << ",\"timeline\":[";
    for (std::size_t i = 0; i < timeline_.size(); ++i) {
        const MemQueueSample &s = timeline_[i];
        out << (i == 0 ? "" : ",") << "{\"access\":" << s.accesses
            << ",\"cycle\":" << s.cycle
            << ",\"l1_mshr\":" << s.l1_mshr_busy
            << ",\"l2_mshr\":" << s.l2_mshr_busy
            << ",\"dram_backlog\":" << s.dram_backlog << '}';
    }
    out << "]}}\n";
}

} // namespace csp::obs
