/**
 * @file
 * The concrete memory-observatory sink: a MemObserver that classifies
 * every demand miss per level as compulsory / capacity / conflict /
 * pollution-induced against three shadow models (an infinite tag set,
 * an exact fully-associative LRU stack of the same capacity, and a
 * same-geometry demand-only shadow cache), maintains reuse-distance
 * log2 histograms per level and per demand PC, per-set fill/eviction
 * pressure heatmaps, a pollution-attribution table (which issuer PCs'
 * prefetches displaced which demand PCs' lines) and MSHR/DRAM
 * queue-depth timelines. The telemetry lands under the
 * "mem.class/reuse/sets/pollution/timeline/shadow" registry subtrees
 * (so interval sampling picks it up) and in the `--mem-out mem.json`
 * export (schema "csp-mem-v1") that `cspmem` renders.
 *
 * The recorder is strictly read-only with respect to the simulation:
 * it owns no RNG, touches no hierarchy state, and its presence never
 * changes a single simulated count (tested bit-for-bit). All cadences
 * are counted in demand accesses, never wall clock, so the export is
 * byte-identical across --jobs.
 */

#ifndef CSP_OBS_MEM_RECORDER_H
#define CSP_OBS_MEM_RECORDER_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/config.h"
#include "core/stats.h"
#include "core/types.h"
#include "obs/mem_observer.h"

namespace csp::stats {
class Registry;
}

namespace csp::obs {

class TraceEventWriter;

/** The 3C+pollution miss taxonomy (DESIGN.md §9 has the shadow-model
 *  definitions). Every classified demand miss lands in exactly one
 *  class, so the four counters sum to the level's miss counter. */
enum class MissClass : std::uint8_t
{
    Compulsory, ///< first touch of the line in this level's stream
    Pollution,  ///< demand-only shadow cache would have hit
    Conflict,   ///< fully-assoc LRU of same capacity would have hit
    Capacity,   ///< even the fully-assoc same-capacity shadow misses
    Count,
};

/** Human-readable label for a MissClass. */
const char *missClassName(MissClass cls);

/**
 * Exact LRU stack distance (Olken's algorithm): a Fenwick tree over
 * access positions, marking each line's most recent position, answers
 * "how many distinct lines since the last access to this one" in
 * O(log n). Positions are compacted in place when the index space
 * fills, so memory stays proportional to the number of live lines —
 * and because compaction is triggered by access counts, never wall
 * clock, the structure is bit-deterministic.
 */
class StackDistance
{
  public:
    /** Returned for a line's first access (no previous position). */
    static constexpr std::uint64_t kNoReuse = ~0ull;

    StackDistance();

    /** Record an access to @p line; returns the stack distance (number
     *  of distinct lines accessed since its previous access), or
     *  kNoReuse on first touch. */
    std::uint64_t onAccess(Addr line);

    /** Distinct lines tracked so far. */
    std::uint64_t liveLines() const { return last_pos_.size(); }

    /** Index-space compactions performed (cost telemetry). */
    std::uint64_t compactions() const { return compactions_; }

  private:
    void add(std::uint64_t pos, int delta);
    std::uint64_t prefix(std::uint64_t pos) const; // inclusive sum
    void compact();

    std::vector<std::uint32_t> tree_;          ///< Fenwick over positions
    std::vector<Addr> line_at_;                ///< position -> line
    std::unordered_map<Addr, std::uint64_t> last_pos_;
    std::uint64_t next_ = 0;
    std::uint64_t compactions_ = 0;
};

/**
 * Same-geometry demand-only shadow cache: plain set-associative LRU
 * with the real level's sets/ways, fed only by the demand stream (no
 * prefetch fills, no LIP). A real demand miss that this shadow would
 * have served is pollution-induced — the only difference between the
 * two models is the prefetcher's fills and the displacement they
 * caused.
 */
class ShadowCache
{
  public:
    explicit ShadowCache(const CacheConfig &config);

    /** Probe-then-touch for @p line_addr: returns whether the shadow
     *  held the line before this access, and installs/refreshes it. */
    bool access(Addr line_addr);

  private:
    struct Line
    {
        Addr tag = 0;
        std::uint64_t lru = 0;
        bool valid = false;
    };

    std::uint64_t sets_;
    unsigned ways_;
    unsigned line_shift_;
    unsigned set_shift_;
    std::uint64_t set_mask_;
    std::vector<Line> lines_;
    std::uint64_t clock_ = 0;
};

/**
 * The per-level classifier: composes the three shadow models and
 * assigns each demand miss its MissClass. Public (and self-contained:
 * it consumes only the demand line stream) so the differential test
 * can replay the same stream through a brute-force naive reference
 * and compare classifications bit for bit.
 */
class LevelModel
{
  public:
    explicit LevelModel(const CacheConfig &config);

    struct Result
    {
        bool first_touch = false;
        /** Stack distance; StackDistance::kNoReuse on first touch. */
        std::uint64_t reuse_distance = StackDistance::kNoReuse;
        /** Valid only when the access was classified (a real miss). */
        MissClass cls = MissClass::Count;
    };

    /**
     * Feed one demand access to the models and, when @p real_miss,
     * classify it. @p line_present is true when the real cache still
     * holds the line (an in-flight MSHR-merge miss): such a miss was
     * not caused by a displacement, so the pollution rule is skipped
     * for it (DESIGN.md §9).
     */
    Result onAccess(Addr line_addr, bool real_miss, bool line_present);

    std::uint64_t classCount(MissClass cls) const
    {
        return classes_[static_cast<std::size_t>(cls)];
    }

    std::uint64_t classifiedTotal() const;
    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t shadowHits() const { return shadow_hits_; }
    std::uint64_t compactions() const { return stack_.compactions(); }
    std::uint64_t capacityLines() const { return capacity_lines_; }
    const Log2Histogram &reuseHistogram() const { return reuse_; }

  private:
    friend class MemRecorder; // registry reads class counters directly

    std::uint64_t capacity_lines_;
    std::unordered_set<Addr> seen_; ///< infinite tag set (compulsory)
    StackDistance stack_;
    ShadowCache shadow_;
    std::uint64_t classes_[static_cast<std::size_t>(MissClass::Count)] =
        {};
    std::uint64_t accesses_ = 0;
    std::uint64_t shadow_hits_ = 0;
    Log2Histogram reuse_{26};
};

/** See file comment. */
class MemRecorder final : public MemObserver
{
  public:
    struct Options
    {
        /** Demand accesses between MSHR/DRAM queue-depth samples;
         *  0 disables the timeline. */
        std::uint64_t queue_sample_every = 0;
        /** Hot sets exported per level in mem.json. */
        unsigned top_sets = 8;
        /** Demand PCs exported in mem.json. */
        unsigned top_pcs = 8;
        /** Pollution (issuer PC, demand PC) pairs exported. */
        unsigned top_pairs = 16;
        /** Demand accesses between "mem.l1"/"mem.l2" counter-track
         *  samples when a trace-event writer is attached; 0 disables
         *  the tracks. */
        std::uint64_t counter_every = 4096;
        /** Distinct demand PCs tracked exactly; the tail aggregates. */
        std::size_t max_pcs = 4096;
        /** Distinct pollution pairs tracked exactly. */
        std::size_t max_pairs = 4096;
    };

    /** Default options, no counter track. */
    explicit MemRecorder(const MemoryConfig &config)
        : MemRecorder(config, Options(), nullptr)
    {}

    /** @param events optional Perfetto writer for the miss-class
     *  counter tracks (borrowed, may be null). */
    MemRecorder(const MemoryConfig &config, Options options,
                TraceEventWriter *events = nullptr);

    void onDemandAccess(const MemAccessEvent &event) override;
    void onFill(const MemFillEvent &event) override;
    bool queueSampleDue() const override
    {
        return options_.queue_sample_every != 0 &&
               accesses_ >= next_queue_sample_;
    }
    void onQueueSample(const MemQueueSample &sample) override;

    /** Publish the distilled telemetry under "mem.class" / "mem.reuse"
     *  / "mem.sets" / "mem.pollution" / "mem.timeline" / "mem.shadow". */
    void registerStats(stats::Registry &registry) override;

    /**
     * Write the full memory-observatory document (schema "csp-mem-v1"):
     * the run's provenance manifest, per-level miss taxonomy,
     * reuse-distance histograms, set-pressure heatmap, per-PC table,
     * pollution attribution and the queue-depth timeline, as the JSON
     * file `cspmem` and `cspdiff` consume. @p manifest_json is the
     * RunManifest as a JSON object literal.
     */
    void writeMemJson(std::ostream &out,
                      const std::string &manifest_json,
                      const std::string &prefetcher) const;

    const LevelModel &l1Model() const { return l1_; }
    const LevelModel &l2Model() const { return l2_; }
    std::uint64_t l1Classified() const { return l1_.classifiedTotal(); }
    std::uint64_t l2Classified() const { return l2_.classifiedTotal(); }
    std::uint64_t queueSamples() const
    {
        return static_cast<std::uint64_t>(timeline_.size());
    }

  private:
    struct SetStats
    {
        std::uint64_t fills_demand = 0;
        std::uint64_t fills_prefetch = 0;
        std::uint64_t evictions = 0;
    };

    struct PcStats
    {
        std::uint64_t accesses = 0;
        std::uint64_t l1_misses = 0;
        std::uint64_t l2_misses = 0;
        Log2Histogram reuse{16};
    };

    struct PairKey
    {
        Addr issuer = 0;
        Addr demand = 0;
        std::uint8_t level = 1;

        bool operator==(const PairKey &o) const
        {
            return issuer == o.issuer && demand == o.demand &&
                   level == o.level;
        }
    };

    struct PairKeyHash
    {
        std::size_t operator()(const PairKey &k) const
        {
            std::uint64_t h = k.issuer * 0x9e3779b97f4a7c15ull;
            h ^= k.demand + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
            return static_cast<std::size_t>(h ^ k.level);
        }
    };

    void creditPollution(std::uint8_t level, Addr line_addr,
                         Addr demand_pc);
    void emitCounterTracks(Cycle cycle);
    void writeLevelJson(std::ostream &out, const char *name,
                        const LevelModel &model,
                        const std::vector<SetStats> &sets) const;

    Options options_;
    TraceEventWriter *events_; ///< borrowed, may be null

    LevelModel l1_;
    LevelModel l2_;

    std::uint64_t accesses_ = 0; ///< demand accesses seen
    std::uint64_t next_queue_sample_ = 0;

    std::vector<SetStats> l1_sets_;
    std::vector<SetStats> l2_sets_;

    // Pollution attribution: evicted line -> issuer PC of the prefetch
    // fill that displaced it, consumed when the line next takes a
    // pollution-classified miss at that level (latest eviction wins).
    std::unordered_map<Addr, Addr> l1_victims_;
    std::unordered_map<Addr, Addr> l2_victims_;
    std::unordered_map<PairKey, std::uint64_t, PairKeyHash> pairs_;
    std::uint64_t pollution_attributed_[2] = {};   ///< [level - 1]
    std::uint64_t pollution_unattributed_[2] = {};
    std::uint64_t pairs_overflow_ = 0; ///< pairs folded past max_pairs

    std::unordered_map<Addr, PcStats> pcs_;
    PcStats other_pcs_; ///< aggregate past max_pcs

    std::vector<MemQueueSample> timeline_;
    MemQueueSample last_sample_;
};

} // namespace csp::obs

#endif // CSP_OBS_MEM_RECORDER_H
