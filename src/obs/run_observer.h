/**
 * @file
 * The bundle a caller hands to Simulator::setObserver(): the optional
 * lifecycle tracker (autopsy + Perfetto spans) and the optional RL tap
 * (reward / bandit events). Installing an observer — even one with
 * every sink null — selects the simulator's observed replay
 * instantiation; leaving it unset keeps the control path, whose
 * codegen carries no observer plumbing at all. The micro benchmark's
 * disabled-overhead gate compares exactly those two.
 */

#ifndef CSP_OBS_RUN_OBSERVER_H
#define CSP_OBS_RUN_OBSERVER_H

#include "obs/learning_observer.h"
#include "obs/lifecycle.h"
#include "obs/mem_observer.h"
#include "obs/taps.h"

namespace csp::obs {

/** See file comment. All pointers are borrowed, never owned. */
struct RunObserver
{
    PrefetchTracker *tracker = nullptr; ///< lifecycle + autopsy sink
    RlTap *rl = nullptr;                ///< learning-event sink
    LearningObserver *learn = nullptr;  ///< learning-dynamics sink
    MemObserver *mem = nullptr;         ///< memory-hierarchy sink
};

} // namespace csp::obs

#endif // CSP_OBS_RUN_OBSERVER_H
