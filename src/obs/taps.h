/**
 * @file
 * RL introspection tap: the interface through which the context
 * prefetcher's learning loop publishes reward applications and bandit
 * state without knowing anything about sinks. Header-only on purpose —
 * csp_prefetch sees only this pure interface and needs no link
 * dependency on csp_obs; concrete sinks (the Perfetto event tap) live
 * in the obs library and are injected by the simulator.
 */

#ifndef CSP_OBS_TAPS_H
#define CSP_OBS_TAPS_H

#include <cstdint>

#include "core/types.h"

namespace csp::obs {

/** One reward application: the feedback unit credited (or penalised)
 *  a CST link for a prediction of @p block. */
struct RewardEvent
{
    Addr block = 0;           ///< predicted block address
    std::int64_t delta = 0;   ///< CST link delta (blocks)
    unsigned depth = 0;       ///< accesses between prediction and use
    int amount = 0;           ///< signed reward applied to the link
    bool in_window = false;   ///< inside the bell reward window
    bool expiry = false;      ///< prediction aged out unmatched
};

/** Periodic snapshot of the epsilon-greedy policy. */
struct BanditSnapshot
{
    double epsilon = 0.0;     ///< current exploration rate
    double accuracy = 0.0;    ///< smoothed prefetch-queue hit rate
    std::uint64_t explorations = 0; ///< exploratory draws so far
};

/** See file comment. */
class RlTap
{
  public:
    virtual ~RlTap() = default;

    /** A reward (or expiry penalty) was applied at @p cycle. */
    virtual void onReward(Cycle cycle, const RewardEvent &event) = 0;

    /** Periodic bandit state snapshot. */
    virtual void onBandit(Cycle cycle, const BanditSnapshot &snap) = 0;
};

} // namespace csp::obs

#endif // CSP_OBS_TAPS_H
