#include "obs/trace_events.h"

#include <ostream>
#include <sstream>

namespace csp::obs {

std::string
hexAddr(Addr addr)
{
    std::ostringstream out;
    out << "0x" << std::hex << addr;
    return out.str();
}

TraceEventWriter::TraceEventWriter(std::ostream &out) : out_(out)
{
    out_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    metadata("process_name", 0, "cspsim");
    metadata("thread_name", kTidPrefetch, "prefetch lifecycles");
    metadata("thread_name", kTidDemand, "demand misses");
    metadata("thread_name", kTidRl, "rl events");
}

TraceEventWriter::~TraceEventWriter() { close(); }

void
TraceEventWriter::metadata(const char *name, int tid,
                           const std::string &value)
{
    out_ << (events_ == 0 ? "" : ",\n") << "{\"name\":\"" << name
         << "\",\"ph\":\"M\",\"pid\":" << kPid << ",\"tid\":" << tid
         << ",\"args\":{\"name\":\"" << value << "\"}}";
    ++events_;
}

void
TraceEventWriter::begin(const char *name, const char *cat, char ph,
                        int tid, Cycle ts)
{
    out_ << (events_ == 0 ? "" : ",\n") << "{\"name\":\"" << name
         << "\",\"cat\":\"" << cat << "\",\"ph\":\"" << ph
         << "\",\"ts\":" << ts << ",\"pid\":" << kPid
         << ",\"tid\":" << tid;
    ++events_;
}

void
TraceEventWriter::asyncBegin(const char *cat, const char *name,
                             std::uint64_t id, Cycle ts,
                             const std::string &args_json)
{
    begin(name, cat, 'b', kTidPrefetch, ts);
    out_ << ",\"id\":" << id;
    if (!args_json.empty())
        out_ << ",\"args\":" << args_json;
    out_ << '}';
}

void
TraceEventWriter::asyncEnd(const char *cat, const char *name,
                           std::uint64_t id, Cycle ts,
                           const std::string &args_json)
{
    begin(name, cat, 'e', kTidPrefetch, ts);
    out_ << ",\"id\":" << id;
    if (!args_json.empty())
        out_ << ",\"args\":" << args_json;
    out_ << '}';
}

void
TraceEventWriter::instant(const char *cat, const char *name, int tid,
                          Cycle ts, const std::string &args_json)
{
    begin(name, cat, 'i', tid, ts);
    out_ << ",\"s\":\"t\"";
    if (!args_json.empty())
        out_ << ",\"args\":" << args_json;
    out_ << '}';
}

void
TraceEventWriter::counter(
    const char *name, Cycle ts,
    std::initializer_list<std::pair<const char *, double>> values)
{
    begin(name, "counter", 'C', 0, ts);
    out_ << ",\"args\":{";
    bool first = true;
    for (const auto &[key, value] : values) {
        out_ << (first ? "" : ",") << '"' << key << "\":" << value;
        first = false;
    }
    out_ << "}}";
}

void
TraceEventWriter::policyCounter(Cycle ts, double epsilon,
                                double entropy)
{
    counter("policy", ts, {{"epsilon", epsilon}, {"entropy", entropy}});
}

void
TraceEventWriter::close()
{
    if (!open_)
        return;
    open_ = false;
    out_ << "\n]}\n";
    out_.flush();
}

RlEventTap::RlEventTap(TraceEventWriter *events,
                       std::uint64_t sample_every)
    : events_(events),
      sample_every_(sample_every == 0 ? 1 : sample_every)
{}

void
RlEventTap::onReward(Cycle cycle, const RewardEvent &event)
{
    if (events_ == nullptr)
        return;
    if (rewards_seen_++ % sample_every_ != 0)
        return;
    std::ostringstream args;
    args << "{\"block\":\"" << hexAddr(event.block)
         << "\",\"delta\":" << event.delta
         << ",\"depth\":" << event.depth
         << ",\"amount\":" << event.amount << ",\"in_window\":"
         << (event.in_window ? "true" : "false")
         << ",\"expiry\":" << (event.expiry ? "true" : "false") << '}';
    events_->instant("rl", event.expiry ? "expiry" : "reward",
                     TraceEventWriter::kTidRl, cycle, args.str());
}

void
RlEventTap::onBandit(Cycle cycle, const BanditSnapshot &snap)
{
    if (events_ == nullptr)
        return;
    events_->counter("bandit", cycle,
                     {{"epsilon", snap.epsilon},
                      {"accuracy", snap.accuracy}});
}

} // namespace csp::obs
