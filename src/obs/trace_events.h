/**
 * @file
 * Chrome-trace-event (Perfetto-loadable) JSON exporter. Emits the
 * "traceEvents" array format understood by ui.perfetto.dev and
 * chrome://tracing: prefetch lifecycles as async spans (ph "b"/"e"
 * paired by category + id), demand misses and RL reward applications
 * as instant events (ph "i"), and MSHR occupancy / bandit state as
 * counter tracks (ph "C").
 *
 * Timestamps are simulated cycles written directly into the "ts"
 * field; the viewer labels them as microseconds, so read 1 "us" in the
 * UI as 1 core cycle. Events stream to the output as they happen —
 * nothing is buffered beyond the ostream — so a writer costs O(1)
 * memory no matter how long the run is. close() terminates the JSON;
 * the destructor calls it if the caller forgot.
 *
 * Writers are single-threaded by design: cspsim's parallel
 * per-prefetcher runs each get their own writer and file.
 */

#ifndef CSP_OBS_TRACE_EVENTS_H
#define CSP_OBS_TRACE_EVENTS_H

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <utility>

#include "core/types.h"
#include "obs/taps.h"

namespace csp::obs {

/** See file comment. */
class TraceEventWriter
{
  public:
    /** Starts the JSON document on @p out immediately (metadata events
     *  naming the pid/tid tracks included). */
    explicit TraceEventWriter(std::ostream &out);
    ~TraceEventWriter();

    TraceEventWriter(const TraceEventWriter &) = delete;
    TraceEventWriter &operator=(const TraceEventWriter &) = delete;

    /** Track ids: Perfetto groups async spans per (pid, cat, id) and
     *  instants per tid, so each event family gets its own lane. */
    static constexpr int kPid = 1;
    static constexpr int kTidPrefetch = 1;
    static constexpr int kTidDemand = 2;
    static constexpr int kTidRl = 3;

    /** Open an async span. @p args_json is a JSON object literal
     *  ("{...}") or empty for no args. */
    void asyncBegin(const char *cat, const char *name, std::uint64_t id,
                    Cycle ts, const std::string &args_json = "");

    /** Close the async span opened with the same (cat, id). */
    void asyncEnd(const char *cat, const char *name, std::uint64_t id,
                  Cycle ts, const std::string &args_json = "");

    /** Thread-scoped instant event on @p tid. */
    void instant(const char *cat, const char *name, int tid, Cycle ts,
                 const std::string &args_json = "");

    /** One sample on the counter track @p name (each pair becomes a
     *  series in the same track). */
    void counter(const char *name, Cycle ts,
                 std::initializer_list<std::pair<const char *, double>>
                     values);

    /** One sample on the "policy" counter track: the learning
     *  observatory's exploration-rate and policy-entropy series
     *  (convergence = both decaying together). */
    void policyCounter(Cycle ts, double epsilon, double entropy);

    /** Terminate the JSON document. Idempotent. */
    void close();

    /** Events emitted so far (metadata included). */
    std::uint64_t eventCount() const { return events_; }

  private:
    void begin(const char *name, const char *cat, char ph, int tid,
               Cycle ts);
    void metadata(const char *name, int tid, const std::string &value);

    std::ostream &out_;
    std::uint64_t events_ = 0;
    bool open_ = true;
};

/** Hex-formatted address ("0x1234") for JSON args and autopsy rows. */
std::string hexAddr(Addr addr);

/**
 * RlTap implementation forwarding the context prefetcher's learning
 * events into a TraceEventWriter: reward applications as instant
 * events (1-in-N sampled), bandit snapshots as an epsilon/accuracy
 * counter track.
 */
class RlEventTap final : public RlTap
{
  public:
    explicit RlEventTap(TraceEventWriter *events,
                        std::uint64_t sample_every = 1);

    void onReward(Cycle cycle, const RewardEvent &event) override;
    void onBandit(Cycle cycle, const BanditSnapshot &snap) override;

  private:
    TraceEventWriter *events_;
    std::uint64_t sample_every_;
    std::uint64_t rewards_seen_ = 0;
};

} // namespace csp::obs

#endif // CSP_OBS_TRACE_EVENTS_H
