#include "prefetch/context/bandit.h"

namespace csp::prefetch::ctx {

BanditPolicy::BanditPolicy(const ContextPrefetcherConfig &config,
                           std::uint64_t seed, bool explore_enabled)
    : config_(config),
      rng_(seed),
      explore_enabled_(explore_enabled),
      accuracy_(0.005, 0.0)
{
    refreshDerived();
}

} // namespace csp::prefetch::ctx
