#include "prefetch/context/bandit.h"

#include <algorithm>

namespace csp::prefetch::ctx {

BanditPolicy::BanditPolicy(const ContextPrefetcherConfig &config,
                           std::uint64_t seed, bool explore_enabled)
    : config_(config),
      rng_(seed),
      explore_enabled_(explore_enabled),
      accuracy_(0.005, 0.0)
{}

double
BanditPolicy::epsilon() const
{
    const double spread = config_.epsilon_max - config_.epsilon_min;
    return config_.epsilon_min + spread * (1.0 - accuracy_.value());
}

bool
BanditPolicy::explore()
{
    return explore_enabled_ && rng_.chance(epsilon());
}

unsigned
BanditPolicy::degree(unsigned free_mshrs) const
{
    if (config_.max_degree == 0)
        return 0;
    // One prefetch is always attempted (the memory system may still
    // refuse it, converting it to a shadow operation); extra degree
    // must be earned by accuracy and backed by MSHR headroom.
    const double acc = accuracy_.value();
    unsigned degree =
        1 + static_cast<unsigned>(acc * (config_.max_degree - 1) + 0.5);
    degree = std::min(degree, config_.max_degree);
    return std::min(degree, 1 + free_mshrs);
}

} // namespace csp::prefetch::ctx
