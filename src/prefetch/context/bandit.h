/**
 * @file
 * The contextual-bandit action-selection policy (paper sections 4.1 and
 * 5): epsilon-greedy exploration over the CST's per-context action sets,
 * with the exploration rate adapted to prediction accuracy in the spirit
 * of Tokic's adaptive epsilon-greedy [29] — exploration shrinks as the
 * predictor converges — and a prediction degree throttled by the same
 * accuracy signal plus memory-system pressure (paper section 4.2).
 */

#ifndef CSP_PREFETCH_CONTEXT_BANDIT_H
#define CSP_PREFETCH_CONTEXT_BANDIT_H

#include "core/config.h"
#include "core/rng.h"
#include "core/stats.h"
#include "obs/learning_observer.h"

namespace csp::prefetch::ctx {

/** See file comment. */
class BanditPolicy
{
  public:
    explicit BanditPolicy(const ContextPrefetcherConfig &config,
                          std::uint64_t seed, bool explore_enabled = true);

    /** Record the outcome of one queued prediction (hit or expired). */
    void
    recordOutcome(bool hit)
    {
        accuracy_.record(hit);
        if (learn_ != nullptr) {
            learn_->onEpsilonAdapt(
                {hit, accuracy_.value(), epsilon()});
        }
    }

    /** Smoothed prefetch-queue hit rate. */
    double accuracy() const { return accuracy_.value(); }

    /**
     * Current exploration rate: linear between epsilon_min (converged)
     * and epsilon_max (untrained).
     */
    double epsilon() const;

    /** Draw: should this lookup issue an exploratory shadow prefetch? */
    bool explore();

    /**
     * Number of real prefetches to issue for the current lookup, scaled
     * by accuracy and bounded by MSHR headroom (degree throttling,
     * paper section 4.2).
     */
    unsigned degree(unsigned free_mshrs) const;

    Rng &rng() { return rng_; }

    /** Stream epsilon-adaptation events to a learning observer
     *  (notification only — never consulted by the policy). */
    void setLearningObserver(obs::LearningObserver *learn)
    {
        learn_ = learn;
    }

  private:
    ContextPrefetcherConfig config_;
    Rng rng_;
    bool explore_enabled_;
    EwmaRate accuracy_;
    obs::LearningObserver *learn_ = nullptr; ///< borrowed, may be null
};

} // namespace csp::prefetch::ctx

#endif // CSP_PREFETCH_CONTEXT_BANDIT_H
