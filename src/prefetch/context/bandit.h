/**
 * @file
 * The contextual-bandit action-selection policy (paper sections 4.1 and
 * 5): epsilon-greedy exploration over the CST's per-context action sets,
 * with the exploration rate adapted to prediction accuracy in the spirit
 * of Tokic's adaptive epsilon-greedy [29] — exploration shrinks as the
 * predictor converges — and a prediction degree throttled by the same
 * accuracy signal plus memory-system pressure (paper section 4.2).
 *
 * Epsilon and the accuracy-scaled degree are pure functions of the EWMA
 * accuracy, which only moves in recordOutcome — so both are computed
 * there (once per feedback event) and served from cached fields on the
 * per-access read paths (explore()/degree() run every observe; outcomes
 * arrive only when a queued prediction resolves).
 */

#ifndef CSP_PREFETCH_CONTEXT_BANDIT_H
#define CSP_PREFETCH_CONTEXT_BANDIT_H

#include <algorithm>

#include "core/config.h"
#include "core/rng.h"
#include "core/stats.h"
#include "obs/learning_observer.h"

namespace csp::prefetch::ctx {

/** See file comment. */
class BanditPolicy
{
  public:
    explicit BanditPolicy(const ContextPrefetcherConfig &config,
                          std::uint64_t seed, bool explore_enabled = true);

    /** Record the outcome of one queued prediction (hit or expired). */
    void
    recordOutcome(bool hit)
    {
        if (learn_ != nullptr)
            recordOutcomeT<true>(hit);
        else
            recordOutcomeT<false>(hit);
    }

    /** recordOutcome with the learning-tap notification compiled out
     *  (kLearn=false) — the replay hot path's entry point. */
    template <bool kLearn>
    void
    recordOutcomeT(bool hit)
    {
        accuracy_.record(hit);
        refreshDerived();
        if constexpr (kLearn) {
            if (learn_ != nullptr) {
                learn_->onEpsilonAdapt(
                    {hit, accuracy_.value(), epsilon_});
            }
        }
    }

    /** Smoothed prefetch-queue hit rate. */
    double accuracy() const { return accuracy_.value(); }

    /**
     * Current exploration rate: linear between epsilon_min (converged)
     * and epsilon_max (untrained).
     */
    double epsilon() const { return epsilon_; }

    /** Draw: should this lookup issue an exploratory shadow prefetch? */
    bool
    explore()
    {
        return explore_enabled_ && rng_.chance(epsilon_);
    }

    /**
     * Number of real prefetches to issue for the current lookup, scaled
     * by accuracy and bounded by MSHR headroom (degree throttling,
     * paper section 4.2).
     */
    unsigned
    degree(unsigned free_mshrs) const
    {
        if (config_.max_degree == 0)
            return 0;
        // One prefetch is always attempted (the memory system may still
        // refuse it, converting it to a shadow operation); extra degree
        // must be earned by accuracy and backed by MSHR headroom.
        return std::min(degree_base_, 1 + free_mshrs);
    }

    Rng &rng() { return rng_; }

    /** Stream epsilon-adaptation events to a learning observer
     *  (notification only — never consulted by the policy). */
    void setLearningObserver(obs::LearningObserver *learn)
    {
        learn_ = learn;
    }

  private:
    /** Recompute the accuracy-derived caches (exact expressions the
     *  former on-demand getters used, so values are bit-identical). */
    void
    refreshDerived()
    {
        const double acc = accuracy_.value();
        const double spread = config_.epsilon_max - config_.epsilon_min;
        epsilon_ = config_.epsilon_min + spread * (1.0 - acc);
        if (config_.max_degree > 0) {
            degree_base_ = std::min(
                1 + static_cast<unsigned>(
                        acc * (config_.max_degree - 1) + 0.5),
                config_.max_degree);
        }
    }

    ContextPrefetcherConfig config_;
    Rng rng_;
    bool explore_enabled_;
    EwmaRate accuracy_;
    double epsilon_ = 0.0;       ///< cached; moves only on recordOutcome
    unsigned degree_base_ = 1;   ///< accuracy-scaled degree, pre-MSHR cap
    obs::LearningObserver *learn_ = nullptr; ///< borrowed, may be null
};

} // namespace csp::prefetch::ctx

#endif // CSP_PREFETCH_CONTEXT_BANDIT_H
