#include "prefetch/context/context_prefetcher.h"

#include <algorithm>
#include <cstdlib>

#include "core/logging.h"
#include "core/profiling.h"
#include "core/stats_registry.h"
#include "core/types.h"
#include "obs/taps.h"

namespace csp::prefetch::ctx {

using trace::Attr;
using trace::AttrMask;
using trace::attrBit;

namespace {

/** Initial active-attribute set for fresh Reducer entries: the load
 *  site plus the compiler hints — cheap, general attributes; the
 *  adaptation machinery widens from there. */
AttrMask
initialMask(bool software_hints)
{
    AttrMask mask = attrBit(Attr::IP);
    if (software_hints) {
        mask |= attrBit(Attr::TypeInfo);
        mask |= attrBit(Attr::LinkOffset);
        mask |= attrBit(Attr::RefForm);
    }
    return mask;
}

} // namespace

ContextPrefetcher::ContextPrefetcher(
    const ContextPrefetcherConfig &config, std::uint64_t seed,
    ContextFeatureToggles toggles)
    : config_(config),
      toggles_(toggles),
      reward_(config.reward),
      cst_(config),
      reducer_(config, initialMask(toggles.software_hints),
               toggles.adaptive_reducer),
      history_(config.history_entries),
      pq_(config.prefetch_queue_entries),
      policy_(config, seed, toggles.exploration),
      hit_depths_(config.prefetch_queue_entries,
                  config.prefetch_queue_entries)
{}

std::int64_t
ContextPrefetcher::maxDelta() const
{
    // Paper: 1-byte delta of cache-line granularity, pointing up to 8kB
    // in each direction.
    return 127;
}

void
ContextPrefetcher::setLearningObserver(obs::LearningObserver *learn)
{
    learn_ = learn;
    cst_.setLearningObserver(learn);
    policy_.setLearningObserver(learn);
    if (learn != nullptr) {
        learn_snapshot_every_ = learn->snapshotEvery();
        learn_top_k_ = learn->snapshotTopK();
        next_learn_snapshot_ =
            learn_snapshot_every_ == 0
                ? UINT64_MAX
                : stats_.lookups + learn_snapshot_every_;
    } else {
        learn_snapshot_every_ = 0;
        next_learn_snapshot_ = UINT64_MAX;
        learn_top_k_ = 0;
    }
}

void
ContextPrefetcher::captureLearnSnapshot(Cycle cycle)
{
    obs::LearningSnapshot snap;
    snap.lookup = stats_.lookups;
    snap.epsilon = policy_.epsilon();
    snap.accuracy = policy_.accuracy();
    snap.explorations = stats_.explorations;
    snap.associations = stats_.associations;
    snap.pq_hits = stats_.pq_hits;
    snap.pq_expiries = stats_.pq_expiries;
    snap.cst_entries = cst_.entries();
    snap.cst_live_entries =
        cst_.snapshotTopK(learn_top_k_, snap.top_contexts);
    learn_->onSnapshot(cycle, snap);
}

template <bool kInstr>
void
ContextPrefetcher::expireEntry(const PendingPrefetch &entry)
{
    int penalty = reward_.expiryPenalty();
    if (!toggles_.negative_rewards)
        penalty = 0;
    cst_.reward(entry.reduced_key, entry.delta, penalty);
    policy_.recordOutcomeT<kInstr>(false);
    ++stats_.pq_expiries;
    if constexpr (kInstr) {
        if (rl_tap_ != nullptr) {
            rl_tap_->onReward(last_cycle_,
                              {entry.line, entry.delta, /*depth=*/0,
                               penalty, /*in_window=*/false,
                               /*expiry=*/true});
        }
        if (learn_ != nullptr) {
            learn_->onRewardApplied(last_cycle_,
                                    {entry.line, entry.delta,
                                     /*depth=*/0, penalty,
                                     /*in_window=*/false,
                                     /*expiry=*/true});
        }
    }
}

void
ContextPrefetcher::observe(const AccessInfo &info,
                           std::vector<PrefetchRequest> &out)
{
    if (rl_tap_ != nullptr || learn_ != nullptr || profiler_ != nullptr)
        observeImpl<true>(info, out);
    else
        observeImpl<false>(info, out);
}

template <bool kInstr>
void
ContextPrefetcher::observeImpl(const AccessInfo &info,
                               std::vector<PrefetchRequest> &out)
{
    CSP_ASSERT(info.context != nullptr);
    // Train/predict phase attribution (explicit clock reads, not
    // ScopedTimer, to avoid re-scoping the unit sections): everything
    // through the collection unit is training, the prediction unit
    // onward is prediction. No clock is touched unless a profiler is
    // attached.
    std::chrono::steady_clock::time_point phase_start;
    if constexpr (kInstr) {
        if (profiler_ != nullptr)
            phase_start = std::chrono::steady_clock::now();
    }
    const Addr block = alignDown(info.vaddr, config_.block_bytes);
    const AccessSeq seq = info.seq;
    last_cycle_ = info.cycle;
    ++stats_.lookups;
    if constexpr (kInstr) {
        if (rl_tap_ != nullptr && (stats_.lookups & 4095) == 0) {
            rl_tap_->onBandit(info.cycle,
                              {policy_.epsilon(), policy_.accuracy(),
                               stats_.explorations});
        }
    }

    // ------------------------------------------------------------------
    // Feedback unit: reward the predictions this access confirms.
    // ------------------------------------------------------------------
    pq_.onAccess(
        block, seq, [&](const PendingPrefetch &entry, unsigned depth) {
            int amount = reward_(depth);
            const bool in_window = depth >= reward_.windowLo() &&
                                   depth <= reward_.windowHi();
            if (!toggles_.negative_rewards && amount < 0)
                amount = 0;
            cst_.reward(entry.reduced_key, entry.delta, amount);
            hit_depths_.sample(depth);
            reward_by_depth_.sample(depth);
            policy_.recordOutcomeT<kInstr>(in_window);
            ++stats_.pq_hits;
            if (in_window)
                ++stats_.pq_hits_in_window;
            if constexpr (kInstr) {
                if (rl_tap_ != nullptr) {
                    rl_tap_->onReward(info.cycle,
                                      {entry.line, entry.delta, depth,
                                       amount, in_window,
                                       /*expiry=*/false});
                }
                if (learn_ != nullptr) {
                    learn_->onRewardApplied(
                        info.cycle,
                        {entry.line, entry.delta, depth, amount,
                         in_window, /*expiry=*/false});
                }
            }
        });

    // ------------------------------------------------------------------
    // Two-level context indexing (Figure 7).
    // ------------------------------------------------------------------
    // The ablation path (software hints off) blanks the compiler-hint
    // attributes in a scratch copy; the normal path hashes the
    // simulator-owned snapshot in place (its lanes stay warm across
    // accesses — no copy, no re-mixing of unchanged attributes).
    const trace::ContextSnapshot *ctx_view = info.context;
    if (!toggles_.software_hints) {
        hint_scratch_ = *info.context;
        hint_scratch_.set(Attr::TypeInfo, 0);
        hint_scratch_.set(Attr::LinkOffset, 0);
        hint_scratch_.set(Attr::RefForm, 0);
        ctx_view = &hint_scratch_;
    }
    const auto full_hash = static_cast<std::uint16_t>(
        ctx_view->hash(trace::kAllAttrs, config_.full_hash_bits));
    const AttrMask mask = reducer_.lookup(full_hash);
    const auto reduced_key = static_cast<std::uint32_t>(
        ctx_view->hash(mask, config_.reduced_hash_bits));

    // ------------------------------------------------------------------
    // Collection unit: bind sampled history contexts to this block.
    // ------------------------------------------------------------------
    const auto expiry = [this](const PendingPrefetch &entry) {
        expireEntry<kInstr>(entry);
    };
    // Walk the sample ladder directly (same order HistoryQueue::sample
    // would visit, minus the scratch vector of pointers).
    for (const unsigned sample_depth : history_.sampleDepths()) {
        const HistoryEntry *hist = history_.at(sample_depth);
        if (hist == nullptr)
            continue;
        // Paper Algorithm 1: only contexts whose depth is within the
        // prefetch window are associated — a context bound to a
        // too-near address would only ever earn late penalties.
        const auto depth = static_cast<unsigned>(seq - hist->seq);
        if (depth < reward_.windowLo() || depth > reward_.windowHi())
            continue;
        const std::int64_t delta =
            blockDelta(hist->line, block, config_.block_bytes);
        if (delta == 0)
            continue;
        if (std::llabs(delta) > maxDelta()) {
            ++stats_.delta_overflows;
            continue;
        }
        const CstAddResult added = cst_.addLinkT<kInstr>(
            hist->reduced_key, static_cast<std::int32_t>(delta));
        if (added.inserted)
            ++stats_.associations;
        // Overload adaptation: heavy link churn on an entry that is
        // NOT earning rewards means too many distinct futures share
        // one reduced context — split it. Churn on a healthy entry
        // (one that already holds a vetted link) is just candidate
        // competition and is discarded. addLink already reports the
        // entry's post-insert churn, so the common (quiet) case needs
        // no second table probe.
        if (added.entry_matches &&
            added.churn >= config_.overload_threshold) {
            // "Healthy" = some link has accumulated at least one
            // full-strength reward; deliberately independent of the
            // dispatch threshold.
            if (cst_.bestScore(hist->reduced_key) <
                    config_.reward.peak_reward &&
                reducer_.onOverload(hist->full_hash)) {
                ++stats_.overload_events;
            }
            cst_.clearChurn(hist->reduced_key);
        }
    }

    if constexpr (kInstr) {
        if (profiler_ != nullptr) {
            const auto now = std::chrono::steady_clock::now();
            profiler_->add(prof::Phase::PrefetchTrain,
                           static_cast<std::uint64_t>(
                               std::chrono::duration_cast<
                                   std::chrono::nanoseconds>(
                                   now - phase_start)
                                   .count()));
            phase_start = now;
        }
    }

    // ------------------------------------------------------------------
    // Prediction unit: exploit the best links, explore a random one.
    // ------------------------------------------------------------------
    const std::uint64_t learn_real_before = stats_.real_predictions;
    const std::uint64_t learn_shadow_before = stats_.shadow_predictions;
    const std::uint64_t learn_explore_before = stats_.explorations;
    bool useful = false;
    std::int32_t deltas[16];
    int scores[16];
    const unsigned degree = policy_.degree(info.free_l1_mshrs);
    const unsigned want =
        std::max(degree, 1u); // track at least one candidate as shadow
    const unsigned n = cst_.bestLinksT<kInstr>(
        reduced_key, deltas, std::min<unsigned>(want, 16),
        /*min_score=*/-1, scores);
    for (unsigned i = 0; i < n; ++i) {
        const Addr target =
            block + static_cast<Addr>(
                        static_cast<std::int64_t>(deltas[i]) *
                        config_.block_bytes);
        // Unvetted links explore as shadow operations; only links the
        // reward loop has confirmed dispatch real prefetches.
        bool shadow = i >= degree ||
                      scores[i] < config_.real_score_threshold;
        // Paper: a duplicate of an earlier (dispatched) prefetch
        // re-enters the queue as a shadow operation to train another
        // pair. Pending shadows do not block dispatch.
        if (pq_.pendingReal(target))
            shadow = true;
        pq_.push(target, reduced_key, deltas[i], seq, shadow, expiry);
        // Shadow candidates are reported too (flagged) so the simulator
        // can account "predicted but not issued" demand misses.
        out.push_back({target, shadow, info.pc});
        if (shadow)
            ++stats_.shadow_predictions;
        else
            ++stats_.real_predictions;
        useful = true;
    }

    if (policy_.explore()) {
        std::int32_t delta = 0;
        const bool drew =
            config_.softmax_exploration
                ? cst_.softmaxLink(reduced_key, policy_.rng(),
                                   config_.softmax_temperature, &delta)
                : cst_.randomLink(reduced_key, policy_.rng(), &delta);
        if (drew) {
            const Addr target =
                block + static_cast<Addr>(
                            static_cast<std::int64_t>(delta) *
                            config_.block_bytes);
            if (!pq_.pending(target)) {
                pq_.push(target, reduced_key, delta, seq, true, expiry);
                out.push_back({target, true, info.pc});
                ++stats_.explorations;
                ++stats_.shadow_predictions;
            }
        }
    }

    if constexpr (kInstr) {
        if (learn_ != nullptr) {
            obs::ArmSelectionEvent sel;
            sel.real = static_cast<unsigned>(stats_.real_predictions -
                                             learn_real_before);
            sel.shadow = static_cast<unsigned>(
                stats_.shadow_predictions - learn_shadow_before);
            sel.explored = stats_.explorations != learn_explore_before;
            sel.epsilon = policy_.epsilon();
            learn_->onArmSelection(info.cycle, sel);
            if (stats_.lookups >= next_learn_snapshot_) {
                captureLearnSnapshot(info.cycle);
                next_learn_snapshot_ += learn_snapshot_every_;
            }
        }
    }

    // Underload adaptation: contexts that never yield a usable
    // prediction are over-specialised — merge them.
    if (reducer_.recordOutcome(full_hash, useful))
        ++stats_.underload_events;

    // ------------------------------------------------------------------
    // Remember this context for future associations.
    // ------------------------------------------------------------------
    history_.push({reduced_key, full_hash, block, seq});

    if constexpr (kInstr) {
        if (profiler_ != nullptr) {
            profiler_->add(prof::Phase::PrefetchPredict,
                           static_cast<std::uint64_t>(
                               std::chrono::duration_cast<
                                   std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() -
                                   phase_start)
                                   .count()));
        }
    }
}

void
ContextPrefetcher::onPrefetchOutcome(Addr addr,
                                     mem::PrefetchOutcome outcome)
{
    if (outcome != mem::PrefetchOutcome::Issued) {
        // The memory system refused or elided the dispatch; keep the
        // prediction for training only (paper: prefetch operations may
        // be skipped under stress, converting them to shadow ops).
        pq_.demoteToShadow(alignDown(addr, config_.block_bytes));
    }
}

void
ContextPrefetcher::finish()
{
    if (rl_tap_ != nullptr || learn_ != nullptr) {
        pq_.flush([this](const PendingPrefetch &entry) {
            expireEntry<true>(entry);
        });
    } else {
        pq_.flush([this](const PendingPrefetch &entry) {
            expireEntry<false>(entry);
        });
    }
    // Always leave the observer one final snapshot of the converged
    // learning state (captured after the queue flush so the policy's
    // accuracy reflects every expiry).
    if (learn_ != nullptr)
        captureLearnSnapshot(last_cycle_);
}

void
ContextPrefetcher::registerStats(stats::Registry &registry) const
{
    registry.counter("context.lookups", &stats_.lookups,
                     "demand accesses observed");
    registry.counter("context.predictions.real",
                     &stats_.real_predictions,
                     "predictions dispatched as real prefetches");
    registry.counter("context.predictions.shadow",
                     &stats_.shadow_predictions,
                     "predictions tracked as shadow operations");
    registry.counter("context.predictions.delta_overflows",
                     &stats_.delta_overflows,
                     "associations outside the delta range");

    registry.gauge(
        "context.bandit.epsilon", [this] { return policy_.epsilon(); },
        "current exploration rate");
    registry.gauge(
        "context.bandit.accuracy",
        [this] { return policy_.accuracy(); },
        "smoothed prefetch-queue hit rate");
    registry.counter("context.bandit.explorations",
                     &stats_.explorations,
                     "exploratory shadow prefetches drawn");

    registry.counter("context.cst.associations", &stats_.associations,
                     "links added by the collection unit");
    registry.counter("context.cst.link_evictions",
                     &cst_.linkEvictions(),
                     "links displaced by score-based replacement");
    registry.counter("context.cst.entry_evictions",
                     &cst_.entryEvictions(),
                     "entries displaced by conflicting contexts");
    registry.gauge(
        "context.cst.occupancy",
        [this] { return static_cast<double>(cst_.liveEntries()); },
        "valid CST entries");
    registry.gauge(
        "context.cst.occupancy_frac",
        [this] {
            return static_cast<double>(cst_.liveEntries()) /
                   static_cast<double>(cst_.entries());
        },
        "fraction of CST entries in use");
    registry.distribution(
        "context.cst.score", [this] { return cst_.scoreSummary(); },
        "scores of all valid CST links");

    registry.counter("context.pq.hits", &stats_.pq_hits,
                     "queued predictions matched by demand");
    registry.counter("context.pq.hits_in_window",
                     &stats_.pq_hits_in_window,
                     "matches inside the reward window");
    registry.counter("context.pq.expiries", &stats_.pq_expiries,
                     "queued predictions never matched");
    registry.gauge(
        "context.pq.depth",
        [this] { return static_cast<double>(pq_.size()); },
        "live prefetch-queue entries");
    registry.distribution("context.pq.hit_depth", &hit_depths_,
                          "accesses between prediction and use");
    registry.distribution("context.reward.by_depth", &reward_by_depth_,
                          "reward applications by prediction depth "
                          "(log2 buckets)");
    registry.formula("context.reward.in_window_rate",
                     "context.pq.hits_in_window", "context.pq.hits",
                     1.0, "fraction of rewards inside the bell window");
    registry.formula("context.reward.expiry_rate",
                     "context.pq.expiries", "context.lookups", 1.0,
                     "expiry penalties per demand access");

    registry.counter("context.reducer.overloads",
                     &stats_.overload_events,
                     "attribute activations (context splits)");
    registry.counter("context.reducer.underloads",
                     &stats_.underload_events,
                     "attribute deactivations (context merges)");
    registry.gauge(
        "context.reducer.active_attrs_mean",
        [this] { return reducer_.meanActiveAttrs(); },
        "mean active attributes per reducer entry");
}

} // namespace csp::prefetch::ctx
