/**
 * @file
 * The context-based prefetcher — the paper's primary contribution
 * (sections 4 and 5). It approximates semantic locality by learning,
 * with a contextual-bandit policy, which block deltas follow each
 * machine context within the effective prefetch window.
 *
 * Per demand access (Algorithm 1), three units operate:
 *
 *  - the feedback unit searches the Prefetch Queue for predictions of
 *    the accessed block and rewards/demotes the producing CST links with
 *    the bell-shaped reward function;
 *  - the collection unit samples the History Queue at predefined depths
 *    and associates each sampled context with the current block (as a
 *    compact signed delta) in the CST, and drives the Reducer's
 *    overload/underload feature-set adaptation;
 *  - the prediction unit hashes the current context through the
 *    Reducer + CST (two-level indexing, Figure 7), issues the
 *    highest-scoring deltas as real prefetches (degree throttled by
 *    accuracy and MSHR pressure), re-queues duplicates as shadow
 *    prefetches, and occasionally explores a random link as a shadow
 *    prefetch (epsilon-greedy).
 */

#ifndef CSP_PREFETCH_CONTEXT_CONTEXT_PREFETCHER_H
#define CSP_PREFETCH_CONTEXT_CONTEXT_PREFETCHER_H

#include <cstdint>
#include <memory>
#include <vector>

#include "core/config.h"
#include "core/stats.h"
#include "prefetch/context/bandit.h"
#include "prefetch/context/cst.h"
#include "prefetch/context/history_queue.h"
#include "prefetch/context/prefetch_queue.h"
#include "prefetch/context/reducer.h"
#include "prefetch/context/reward.h"
#include "prefetch/prefetcher.h"

namespace csp::prefetch::ctx {

/** Learning-specific statistics exposed for the evaluation figures. */
struct ContextStats
{
    std::uint64_t lookups = 0;
    std::uint64_t real_predictions = 0;
    std::uint64_t shadow_predictions = 0;
    std::uint64_t explorations = 0;
    std::uint64_t pq_hits = 0;         ///< predictions matched by demand
    std::uint64_t pq_hits_in_window = 0;
    std::uint64_t pq_expiries = 0;     ///< predictions never matched
    std::uint64_t associations = 0;    ///< links added by collection
    std::uint64_t overload_events = 0; ///< attribute activations
    std::uint64_t underload_events = 0;///< attribute deactivations
    std::uint64_t delta_overflows = 0; ///< associations out of delta range
};

/** Feature toggles for the ablation benchmarks. */
struct ContextFeatureToggles
{
    bool adaptive_reducer = true; ///< Reducer overload/underload on
    bool exploration = true;      ///< epsilon-greedy shadow prefetches
    bool software_hints = true;   ///< use compiler-hint attributes
    bool negative_rewards = true; ///< penalties outside the window
};

/** See file comment. */
class ContextPrefetcher final : public Prefetcher
{
  public:
    ContextPrefetcher(const ContextPrefetcherConfig &config,
                      std::uint64_t seed = 1,
                      ContextFeatureToggles toggles = {});

    std::string name() const override { return "context"; }

    void observe(const AccessInfo &info,
                 std::vector<PrefetchRequest> &out) override;

    void onPrefetchOutcome(Addr addr,
                           mem::PrefetchOutcome outcome) override;

    void finish() override;

    /** Learning telemetry under "context.*": the bandit's exploration
     *  state, CST occupancy/evictions/scores, prefetch-queue pressure
     *  and the reward mix — the dynamics behind paper Figures 5/8/9. */
    void registerStats(stats::Registry &registry) const override;

    /** Stream reward applications and periodic bandit snapshots to an
     *  observability tap (Perfetto instants / counter tracks). */
    void setRlTap(obs::RlTap *tap) override { rl_tap_ = tap; }

    /** Stream learning dynamics — arm selections, epsilon adaptation,
     *  CST probe/insert traffic, reward applications and periodic
     *  learning-state snapshots — to a learning observer. The observer
     *  is a pure notification sink: attaching one never changes what
     *  the prefetcher predicts. */
    void setLearningObserver(obs::LearningObserver *learn) override;

    /** Split observe() wall-clock into prof.prefetch.train (feedback +
     *  collection units) and prof.prefetch.predict (prediction unit),
     *  both nested inside the simulator's prefetch.observe phase. */
    void setProfiler(prof::Profiler *profiler) override
    {
        profiler_ = profiler;
    }

    const Histogram *hitDepths() const override { return &hit_depths_; }

    const ContextStats &stats() const { return stats_; }
    const Cst &cst() const { return cst_; }
    const Reducer &reducer() const { return reducer_; }
    const BanditPolicy &policy() const { return policy_; }
    const RewardFunction &rewardFunction() const { return reward_; }

  private:
    /**
     * The whole of Algorithm 1, compiled twice: kInstr=true is the
     * instrumented build (RL tap, learning observer, phase profiler —
     * each still null-checked at runtime), kInstr=false is the bare
     * replay hot path with every observer touch point compiled out.
     * observe() dispatches on whether any sink is attached, so runs
     * with no observability attached pay zero instrumentation cost.
     */
    template <bool kInstr>
    void observeImpl(const AccessInfo &info,
                     std::vector<PrefetchRequest> &out);

    template <bool kInstr>
    void expireEntry(const PendingPrefetch &entry);

    std::int64_t maxDelta() const;
    void captureLearnSnapshot(Cycle cycle);

    ContextPrefetcherConfig config_;
    ContextFeatureToggles toggles_;
    RewardFunction reward_;
    Cst cst_;
    Reducer reducer_;
    HistoryQueue history_;
    PrefetchQueue pq_;
    BanditPolicy policy_;
    Histogram hit_depths_;
    /// Reward applications bucketed by prediction depth (log2) — the
    /// §4.3 reward-window shape as a percentile-capable distribution.
    Log2Histogram reward_by_depth_;
    ContextStats stats_;
    /// Scratch snapshot for the software-hints-off ablation (the only
    /// path that must mutate the simulator-owned context).
    trace::ContextSnapshot hint_scratch_;
    obs::RlTap *rl_tap_ = nullptr; ///< borrowed, may be null
    obs::LearningObserver *learn_ = nullptr; ///< borrowed, may be null
    std::uint64_t learn_snapshot_every_ = 0;
    std::uint64_t next_learn_snapshot_ = UINT64_MAX;
    unsigned learn_top_k_ = 0;
    prof::Profiler *profiler_ = nullptr; ///< borrowed, may be null
    Cycle last_cycle_ = 0; ///< cycle of the access being observed
};

} // namespace csp::prefetch::ctx

#endif // CSP_PREFETCH_CONTEXT_CONTEXT_PREFETCHER_H
