#include "prefetch/context/cst.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "core/logging.h"
#include "core/types.h"

namespace csp::prefetch::ctx {

Cst::Cst(const ContextPrefetcherConfig &config)
    : index_bits_(floorLog2(config.cst_entries)),
      index_mask_((1u << index_bits_) - 1),
      links_per_entry_(config.cst_links),
      entries_(config.cst_entries),
      stride_words_(1 + (2 * config.cst_links + 7) / 8),
      arena_(static_cast<std::size_t>(config.cst_entries) *
             (1 + (2 * config.cst_links + 7) / 8))
{
    CSP_ASSERT(isPowerOfTwo(config.cst_entries));
    CSP_ASSERT(config.cst_links >= 1 && config.cst_links <= 16);
}

const Cst::Entry *
Cst::entryIfMatch(std::uint32_t reduced_key) const
{
    const Entry *entry = entryAt(indexOf(reduced_key));
    if (entry->valid != 0 && entry->tag == tagOf(reduced_key))
        return entry;
    return nullptr;
}

const Cst::Entry *
Cst::lookup(std::uint32_t reduced_key) const
{
    return entryIfMatch(reduced_key);
}

int
Cst::bestScore(std::uint32_t reduced_key) const
{
    const std::uint32_t index = indexOf(reduced_key);
    const Entry &entry = *entryAt(index);
    const std::int8_t *const scores =
        deltasAt(index) + links_per_entry_;
    int best = -128;
    std::uint32_t mask = entry.link_mask;
    while (mask != 0) {
        const unsigned i =
            static_cast<unsigned>(std::countr_zero(mask));
        mask &= mask - 1;
        best = std::max(best, static_cast<int>(scores[i]));
    }
    return best;
}

template <bool kLearn>
unsigned
Cst::bestLinksT(std::uint32_t reduced_key, std::int32_t *out,
                unsigned max_links, int min_score,
                int *scores_out) const
{
    const std::uint32_t index = indexOf(reduced_key);
    const Entry &entry = *entryAt(index);
    const bool hit =
        entry.valid != 0 && entry.tag == tagOf(reduced_key);
    const std::int8_t *const deltas = deltasAt(index);
    const std::int8_t *const scores = deltas + links_per_entry_;
    if constexpr (kLearn) {
        if (learn_ != nullptr) {
            obs::CstProbeEvent probe;
            probe.hit = hit;
            if (hit) {
                std::uint32_t mask = entry.link_mask;
                while (mask != 0 &&
                       probe.valid_links < obs::kMaxLearnLinks) {
                    const unsigned i =
                        static_cast<unsigned>(std::countr_zero(mask));
                    mask &= mask - 1;
                    probe.scores[probe.valid_links++] =
                        static_cast<int>(scores[i]);
                }
            }
            learn_->onCstProbe(probe);
        }
    }
    if (!hit)
        return 0;
    struct Candidate
    {
        std::int32_t delta;
        int score;
    };
    Candidate candidates[16];
    unsigned count = 0;
    std::uint32_t mask = entry.link_mask;
    while (mask != 0) {
        const unsigned i =
            static_cast<unsigned>(std::countr_zero(mask));
        mask &= mask - 1;
        const int score = scores[i];
        if (score > min_score && count < 16)
            candidates[count++] = {deltas[i], score};
    }
    std::sort(candidates, candidates + count,
              [](const Candidate &a, const Candidate &b) {
                  return a.score > b.score;
              });
    const unsigned emit = std::min(count, max_links);
    for (unsigned i = 0; i < emit; ++i) {
        out[i] = candidates[i].delta;
        if (scores_out != nullptr)
            scores_out[i] = candidates[i].score;
    }
    return emit;
}

template unsigned Cst::bestLinksT<false>(std::uint32_t, std::int32_t *,
                                         unsigned, int, int *) const;
template unsigned Cst::bestLinksT<true>(std::uint32_t, std::int32_t *,
                                        unsigned, int, int *) const;

bool
Cst::randomLink(std::uint32_t reduced_key, Rng &rng,
                std::int32_t *delta_out) const
{
    const std::uint32_t index = indexOf(reduced_key);
    const Entry &entry = *entryAt(index);
    if (entry.valid == 0 || entry.tag != tagOf(reduced_key))
        return false;
    const std::int8_t *const deltas = deltasAt(index);
    std::int32_t valid_deltas[16];
    unsigned count = 0;
    std::uint32_t mask = entry.link_mask;
    while (mask != 0 && count < 16) {
        const unsigned i =
            static_cast<unsigned>(std::countr_zero(mask));
        mask &= mask - 1;
        valid_deltas[count++] = deltas[i];
    }
    if (count == 0)
        return false;
    *delta_out = valid_deltas[rng.below(count)];
    return true;
}

bool
Cst::softmaxLink(std::uint32_t reduced_key, Rng &rng,
                 double temperature, std::int32_t *delta_out) const
{
    CSP_ASSERT(temperature > 0.0);
    const std::uint32_t index = indexOf(reduced_key);
    const Entry &entry = *entryAt(index);
    if (entry.valid == 0 || entry.tag != tagOf(reduced_key))
        return false;
    const std::int8_t *const link_deltas = deltasAt(index);
    const std::int8_t *const scores = link_deltas + links_per_entry_;
    double weights[16];
    std::int32_t deltas[16];
    unsigned count = 0;
    double total = 0.0;
    std::uint32_t mask = entry.link_mask;
    while (mask != 0 && count < 16) {
        const unsigned i =
            static_cast<unsigned>(std::countr_zero(mask));
        mask &= mask - 1;
        const double w = std::exp(
            static_cast<double>(scores[i]) / temperature);
        weights[count] = w;
        deltas[count] = link_deltas[i];
        total += w;
        ++count;
    }
    if (count == 0)
        return false;
    double pick = rng.uniform() * total;
    for (unsigned i = 0; i < count; ++i) {
        pick -= weights[i];
        if (pick <= 0.0) {
            *delta_out = deltas[i];
            return true;
        }
    }
    *delta_out = deltas[count - 1];
    return true;
}

void
Cst::clearChurn(std::uint32_t reduced_key)
{
    Entry &entry = *entryAt(indexOf(reduced_key));
    if (entry.valid != 0 && entry.tag == tagOf(reduced_key))
        entry.churn = 0;
}

unsigned
Cst::liveEntries() const
{
    unsigned live = 0;
    for (std::uint32_t i = 0; i < entries_; ++i) {
        if (entryAt(i)->valid != 0)
            ++live;
    }
    return live;
}

unsigned
Cst::snapshotTopK(unsigned top_k,
                  std::vector<obs::SnapshotContext> &out) const
{
    struct Ranked
    {
        int best;
        std::uint32_t index;
    };
    std::vector<Ranked> ranked;
    unsigned live = 0;
    for (std::uint32_t i = 0; i < entries_; ++i) {
        const Entry &entry = *entryAt(i);
        if (entry.valid == 0)
            continue;
        ++live;
        const std::int8_t *const scores =
            deltasAt(i) + links_per_entry_;
        int best = -128;
        std::uint32_t mask = entry.link_mask;
        while (mask != 0) {
            const unsigned j =
                static_cast<unsigned>(std::countr_zero(mask));
            mask &= mask - 1;
            best = std::max(best, static_cast<int>(scores[j]));
        }
        ranked.push_back({best, i});
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const Ranked &a, const Ranked &b) {
                  return a.best != b.best ? a.best > b.best
                                          : a.index < b.index;
              });
    const auto emit = std::min<std::size_t>(top_k, ranked.size());
    out.clear();
    out.reserve(emit);
    for (std::size_t k = 0; k < emit; ++k) {
        const std::uint32_t index = ranked[k].index;
        const Entry &entry = *entryAt(index);
        const std::int8_t *const deltas = deltasAt(index);
        const std::int8_t *const scores = deltas + links_per_entry_;
        obs::SnapshotContext ctx;
        ctx.key = (entry.tag << index_bits_) | index;
        ctx.churn = entry.churn;
        std::uint32_t mask = entry.link_mask;
        while (mask != 0 && ctx.n_links < obs::kMaxLearnLinks) {
            const unsigned j =
                static_cast<unsigned>(std::countr_zero(mask));
            mask &= mask - 1;
            ctx.deltas[ctx.n_links] = deltas[j];
            ctx.scores[ctx.n_links] = static_cast<int>(scores[j]);
            ++ctx.n_links;
        }
        out.push_back(ctx);
    }
    return live;
}

stats::DistSummary
Cst::scoreSummary() const
{
    stats::DistSummary s;
    double sum = 0.0;
    for (std::uint32_t i = 0; i < entries_; ++i) {
        const Entry &entry = *entryAt(i);
        if (entry.valid == 0)
            continue;
        const std::int8_t *const scores =
            deltasAt(i) + links_per_entry_;
        std::uint32_t mask = entry.link_mask;
        while (mask != 0) {
            const unsigned j =
                static_cast<unsigned>(std::countr_zero(mask));
            mask &= mask - 1;
            const double score = scores[j];
            if (s.count == 0) {
                s.min = score;
                s.max = score;
            } else {
                s.min = std::min(s.min, score);
                s.max = std::max(s.max, score);
            }
            sum += score;
            ++s.count;
        }
    }
    if (s.count > 0)
        s.mean = sum / static_cast<double>(s.count);
    return s;
}

void
Cst::reset()
{
    std::fill(arena_.begin(), arena_.end(), 0);
    link_evictions_ = 0;
    entry_evictions_ = 0;
}

} // namespace csp::prefetch::ctx
