#include "prefetch/context/cst.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"
#include "core/types.h"

namespace csp::prefetch::ctx {

Cst::Cst(const ContextPrefetcherConfig &config)
    : index_bits_(floorLog2(config.cst_entries)),
      links_per_entry_(config.cst_links),
      table_(config.cst_entries),
      link_arena_(static_cast<std::size_t>(config.cst_entries) *
                  config.cst_links)
{
    CSP_ASSERT(isPowerOfTwo(config.cst_entries));
    CSP_ASSERT(config.cst_links >= 1);
}

std::uint32_t
Cst::indexOf(std::uint32_t reduced_key) const
{
    return reduced_key & ((1u << index_bits_) - 1);
}

std::uint32_t
Cst::tagOf(std::uint32_t reduced_key) const
{
    return reduced_key >> index_bits_;
}

Cst::Entry *
Cst::entryIfMatch(std::uint32_t reduced_key)
{
    Entry &entry = table_[indexOf(reduced_key)];
    if (entry.valid && entry.tag == tagOf(reduced_key))
        return &entry;
    return nullptr;
}

const Cst::Entry *
Cst::entryIfMatch(std::uint32_t reduced_key) const
{
    const Entry &entry = table_[indexOf(reduced_key)];
    if (entry.valid && entry.tag == tagOf(reduced_key))
        return &entry;
    return nullptr;
}

const Cst::Entry *
Cst::lookup(std::uint32_t reduced_key) const
{
    return entryIfMatch(reduced_key);
}

CstAddResult
Cst::addLink(std::uint32_t reduced_key, std::int32_t delta)
{
    CstAddResult result;
    bool new_entry = false;
    bool entry_evicted = false;
    // Notification only: the observer sees every insertion outcome but
    // can never influence one.
    const auto notify = [&] {
        if (learn_ != nullptr) {
            learn_->onCstInsert({result.inserted,
                                 result.already_present, new_entry,
                                 entry_evicted, result.evicted_link,
                                 result.entry_conflict});
        }
    };
    Entry &entry = table_[indexOf(reduced_key)];
    CstLink *const entry_links = linksOf(entry);
    const std::uint32_t tag = tagOf(reduced_key);

    if (!entry.valid || entry.tag != tag) {
        if (entry.valid) {
            // Conflicting live entry: protect it while it still holds
            // positively scored links, but age it so stale contexts
            // eventually yield the slot.
            int best = -128;
            for (unsigned i = 0; i < links_per_entry_; ++i) {
                CstLink &link = entry_links[i];
                if (link.valid) {
                    best = std::max(best,
                                    static_cast<int>(link.score.value()));
                    link.score.add(-1);
                }
            }
            if (best > 0) {
                result.entry_conflict = true;
                notify();
                return result;
            }
        }
        if (entry.valid) {
            ++entry_evictions_;
            entry_evicted = true;
        }
        new_entry = true;
        entry.valid = true;
        entry.tag = tag;
        entry.churn = 0;
        for (unsigned i = 0; i < links_per_entry_; ++i)
            entry_links[i] = CstLink{};
    }

    CstLink *free_slot = nullptr;
    CstLink *weakest = nullptr;
    for (unsigned i = 0; i < links_per_entry_; ++i) {
        CstLink &link = entry_links[i];
        if (!link.valid) {
            if (free_slot == nullptr)
                free_slot = &link;
            continue;
        }
        if (link.delta == delta) {
            result.already_present = true;
            notify();
            return result;
        }
        if (weakest == nullptr || link.score < weakest->score)
            weakest = &link;
    }

    CstLink *slot = free_slot;
    if (slot == nullptr) {
        // Score-based replacement: only displace non-positive links.
        if (weakest->score.value() > 0) {
            if (entry.churn < 255)
                ++entry.churn;
            notify();
            return result;
        }
        slot = weakest;
        result.evicted_link = true;
        ++link_evictions_;
        if (entry.churn < 255)
            ++entry.churn;
    }
    slot->valid = true;
    slot->delta = delta;
    slot->score = Score8{0};
    result.inserted = true;
    notify();
    return result;
}

void
Cst::reward(std::uint32_t reduced_key, std::int32_t delta, int amount)
{
    Entry *entry = entryIfMatch(reduced_key);
    if (entry == nullptr)
        return;
    CstLink *const entry_links = linksOf(*entry);
    for (unsigned i = 0; i < links_per_entry_; ++i) {
        CstLink &link = entry_links[i];
        if (link.valid && link.delta == delta) {
            link.score.add(amount);
            // A rewarded entry is healthy: candidate pressure on it is
            // competition, not overload. Decay the churn signal so the
            // Reducer only splits contexts that fail to earn rewards.
            if (amount > 0 && entry->churn > 0)
                --entry->churn;
            return;
        }
    }
}

unsigned
Cst::bestLinks(std::uint32_t reduced_key, std::int32_t *out,
               unsigned max_links, int min_score,
               int *scores_out) const
{
    const Entry *entry = entryIfMatch(reduced_key);
    if (learn_ != nullptr) {
        obs::CstProbeEvent probe;
        probe.hit = entry != nullptr;
        if (entry != nullptr) {
            for (const CstLink &link : links(entry)) {
                if (link.valid &&
                    probe.valid_links < obs::kMaxLearnLinks) {
                    probe.scores[probe.valid_links++] =
                        static_cast<int>(link.score.value());
                }
            }
        }
        learn_->onCstProbe(probe);
    }
    if (entry == nullptr)
        return 0;
    // Selection sort over at most links_per_entry_ candidates.
    struct Candidate
    {
        std::int32_t delta;
        int score;
    };
    Candidate candidates[16];
    unsigned count = 0;
    for (const CstLink &link : links(entry)) {
        if (link.valid && link.score.value() > min_score &&
            count < 16) {
            candidates[count++] = {link.delta,
                                   static_cast<int>(link.score.value())};
        }
    }
    std::sort(candidates, candidates + count,
              [](const Candidate &a, const Candidate &b) {
                  return a.score > b.score;
              });
    const unsigned emit = std::min(count, max_links);
    for (unsigned i = 0; i < emit; ++i) {
        out[i] = candidates[i].delta;
        if (scores_out != nullptr)
            scores_out[i] = candidates[i].score;
    }
    return emit;
}

bool
Cst::randomLink(std::uint32_t reduced_key, Rng &rng,
                std::int32_t *delta_out) const
{
    const Entry *entry = entryIfMatch(reduced_key);
    if (entry == nullptr)
        return false;
    std::int32_t valid_deltas[16];
    unsigned count = 0;
    for (const CstLink &link : links(entry)) {
        if (link.valid && count < 16)
            valid_deltas[count++] = link.delta;
    }
    if (count == 0)
        return false;
    *delta_out = valid_deltas[rng.below(count)];
    return true;
}

bool
Cst::softmaxLink(std::uint32_t reduced_key, Rng &rng,
                 double temperature, std::int32_t *delta_out) const
{
    CSP_ASSERT(temperature > 0.0);
    const Entry *entry = entryIfMatch(reduced_key);
    if (entry == nullptr)
        return false;
    double weights[16];
    std::int32_t deltas[16];
    unsigned count = 0;
    double total = 0.0;
    for (const CstLink &link : links(entry)) {
        if (link.valid && count < 16) {
            const double w = std::exp(
                static_cast<double>(link.score.value()) / temperature);
            weights[count] = w;
            deltas[count] = link.delta;
            total += w;
            ++count;
        }
    }
    if (count == 0)
        return false;
    double pick = rng.uniform() * total;
    for (unsigned i = 0; i < count; ++i) {
        pick -= weights[i];
        if (pick <= 0.0) {
            *delta_out = deltas[i];
            return true;
        }
    }
    *delta_out = deltas[count - 1];
    return true;
}

void
Cst::clearChurn(std::uint32_t reduced_key)
{
    if (Entry *entry = entryIfMatch(reduced_key))
        entry->churn = 0;
}

unsigned
Cst::liveEntries() const
{
    unsigned live = 0;
    for (const Entry &entry : table_) {
        if (entry.valid)
            ++live;
    }
    return live;
}

unsigned
Cst::snapshotTopK(unsigned top_k,
                  std::vector<obs::SnapshotContext> &out) const
{
    struct Ranked
    {
        int best;
        std::uint32_t index;
    };
    std::vector<Ranked> ranked;
    unsigned live = 0;
    for (std::uint32_t i = 0; i < table_.size(); ++i) {
        const Entry &entry = table_[i];
        if (!entry.valid)
            continue;
        ++live;
        int best = -128;
        for (const CstLink &link : links(&entry)) {
            if (link.valid)
                best = std::max(best,
                                static_cast<int>(link.score.value()));
        }
        ranked.push_back({best, i});
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const Ranked &a, const Ranked &b) {
                  return a.best != b.best ? a.best > b.best
                                          : a.index < b.index;
              });
    const auto emit =
        std::min<std::size_t>(top_k, ranked.size());
    out.clear();
    out.reserve(emit);
    for (std::size_t k = 0; k < emit; ++k) {
        const Entry &entry = table_[ranked[k].index];
        obs::SnapshotContext ctx;
        ctx.key = (entry.tag << index_bits_) | ranked[k].index;
        ctx.churn = entry.churn;
        for (const CstLink &link : links(&entry)) {
            if (link.valid && ctx.n_links < obs::kMaxLearnLinks) {
                ctx.deltas[ctx.n_links] = link.delta;
                ctx.scores[ctx.n_links] =
                    static_cast<int>(link.score.value());
                ++ctx.n_links;
            }
        }
        out.push_back(ctx);
    }
    return live;
}

stats::DistSummary
Cst::scoreSummary() const
{
    stats::DistSummary s;
    double sum = 0.0;
    for (const Entry &entry : table_) {
        if (!entry.valid)
            continue;
        for (const CstLink &link : links(&entry)) {
            if (!link.valid)
                continue;
            const double score = link.score.value();
            if (s.count == 0) {
                s.min = score;
                s.max = score;
            } else {
                s.min = std::min(s.min, score);
                s.max = std::max(s.max, score);
            }
            sum += score;
            ++s.count;
        }
    }
    if (s.count > 0)
        s.mean = sum / static_cast<double>(s.count);
    return s;
}

void
Cst::reset()
{
    for (Entry &entry : table_) {
        entry.valid = false;
        entry.churn = 0;
    }
    for (CstLink &link : link_arena_)
        link = CstLink{};
    link_evictions_ = 0;
    entry_evictions_ = 0;
}

} // namespace csp::prefetch::ctx
