/**
 * @file
 * The Context-States Table (CST) — the action-value store of the
 * contextual-bandit learner (paper section 5, Figure 6/7).
 *
 * The CST is direct-mapped and indexed by the *reduced* context hash
 * (low bits index, high bits tag). Each entry holds a small set of
 * (delta, score) links: candidate prefetch targets expressed as signed
 * block deltas relative to the address observed with the context, each
 * carrying a saturating score updated by the reward function. Links
 * compete for the entry's slots under score-based replacement, so that
 * associations that earn positive rewards survive (paper section 5).
 */

#ifndef CSP_PREFETCH_CONTEXT_CST_H
#define CSP_PREFETCH_CONTEXT_CST_H

#include <cstdint>
#include <vector>

#include "core/config.h"
#include "core/rng.h"
#include "core/stats.h"
#include "core/stats_registry.h"
#include "obs/learning_observer.h"

namespace csp::prefetch::ctx {

/** One context-address association. */
struct CstLink
{
    std::int32_t delta = 0; ///< block delta (paper: 1-byte, configurable)
    Score8 score{};
    bool valid = false;
};

/** Result of a data-collection insertion. */
struct CstAddResult
{
    bool inserted = false;      ///< a new link was stored
    bool already_present = false;
    bool evicted_link = false;  ///< link churn: an overload signal
    bool entry_conflict = false;///< tag conflict with a live entry
};

/** See file comment. */
class Cst
{
  public:
    explicit Cst(const ContextPrefetcherConfig &config);

    struct Entry
    {
        std::uint32_t tag = 0;
        bool valid = false;
        std::uint8_t churn = 0; ///< recent link evictions (overload cue)
    };

    /**
     * View of one entry's link slots. Links live in a single
     * contiguous arena (entry index * links-per-entry), not per-entry
     * vectors, so steady-state operation never allocates and a lookup
     * touches one cache line of links.
     */
    struct LinkSpan
    {
        const CstLink *first;
        unsigned count;

        const CstLink *begin() const { return first; }
        const CstLink *end() const { return first + count; }
    };

    /** Entry for @p reduced_key iff present with a matching tag. */
    const Entry *lookup(std::uint32_t reduced_key) const;

    /** The link slots of @p entry (as returned by lookup()). */
    LinkSpan
    links(const Entry *entry) const
    {
        return LinkSpan{linksOf(*entry), links_per_entry_};
    }

    /**
     * Data collection: associate @p delta with @p reduced_key. New links
     * start at score 0 and must earn rewards to survive; the
     * lowest-scoring link is evicted when the entry is full, but only if
     * its score is at or below zero (positive scores are protected and
     * the insertion is dropped instead).
     */
    CstAddResult addLink(std::uint32_t reduced_key, std::int32_t delta);

    /** Feedback: apply @p reward to the (key, delta) association. */
    void reward(std::uint32_t reduced_key, std::int32_t delta, int amount);

    /**
     * Exploitation: collect up to @p max_links deltas with score >
     * @p min_score, best first. Returns the number written to @p out
     * (and, when @p scores_out is non-null, the matching scores).
     */
    unsigned bestLinks(std::uint32_t reduced_key, std::int32_t *out,
                       unsigned max_links, int min_score,
                       int *scores_out = nullptr) const;

    /**
     * Exploration: a uniformly random valid link of the entry (paper:
     * "choosing a random address from the set of previously correlated
     * ones"). Returns false when the entry has no links.
     */
    bool randomLink(std::uint32_t reduced_key, Rng &rng,
                    std::int32_t *delta_out) const;

    /**
     * Softmax exploration (the policy-search direction the paper's
     * conclusion points to): draw a link with probability proportional
     * to exp(score / temperature), biasing exploration toward
     * promising-but-unproven candidates instead of uniform chance.
     */
    bool softmaxLink(std::uint32_t reduced_key, Rng &rng,
                     double temperature, std::int32_t *delta_out) const;

    /** Clear the churn counter after the Reducer consumed the signal. */
    void clearChurn(std::uint32_t reduced_key);

    unsigned entries() const
    {
        return static_cast<unsigned>(table_.size());
    }

    /** Number of valid entries (occupancy diagnostics). */
    unsigned liveEntries() const;

    /** Links displaced by score-based replacement so far. */
    const std::uint64_t &linkEvictions() const { return link_evictions_; }

    /** Live entries displaced by a conflicting context so far. */
    const std::uint64_t &entryEvictions() const
    {
        return entry_evictions_;
    }

    /** Distribution of the scores of all currently valid links. */
    stats::DistSummary scoreSummary() const;

    /**
     * Capture the @p top_k live entries with the best link scores into
     * @p out (best score descending, table index ascending on ties —
     * a deterministic order). Returns the live-entry count.
     */
    unsigned snapshotTopK(unsigned top_k,
                          std::vector<obs::SnapshotContext> &out) const;

    /** Stream probe/insert events to a learning observer (notification
     *  only — table behaviour never depends on it). */
    void setLearningObserver(obs::LearningObserver *learn)
    {
        learn_ = learn;
    }

    /** Drop all learned state. */
    void reset();

  private:
    Entry *entryIfMatch(std::uint32_t reduced_key);
    const Entry *entryIfMatch(std::uint32_t reduced_key) const;
    std::uint32_t indexOf(std::uint32_t reduced_key) const;
    std::uint32_t tagOf(std::uint32_t reduced_key) const;

    CstLink *
    linksOf(const Entry &entry)
    {
        return link_arena_.data() +
               static_cast<std::size_t>(&entry - table_.data()) *
                   links_per_entry_;
    }

    const CstLink *
    linksOf(const Entry &entry) const
    {
        return link_arena_.data() +
               static_cast<std::size_t>(&entry - table_.data()) *
                   links_per_entry_;
    }

    unsigned index_bits_;
    unsigned links_per_entry_;
    std::vector<Entry> table_;
    std::vector<CstLink> link_arena_; ///< entries() * links_per_entry_
    std::uint64_t link_evictions_ = 0;
    std::uint64_t entry_evictions_ = 0;
    obs::LearningObserver *learn_ = nullptr; ///< borrowed, may be null
};

} // namespace csp::prefetch::ctx

#endif // CSP_PREFETCH_CONTEXT_CST_H
