/**
 * @file
 * The Context-States Table (CST) — the action-value store of the
 * contextual-bandit learner (paper section 5, Figure 6/7).
 *
 * The CST is direct-mapped and indexed by the *reduced* context hash
 * (low bits index, high bits tag). Each entry holds a small set of
 * (delta, score) links: candidate prefetch targets expressed as signed
 * block deltas relative to the address observed with the context, each
 * carrying a saturating score updated by the reward function. Links
 * compete for the entry's slots under score-based replacement, so that
 * associations that earn positive rewards survive (paper section 5).
 *
 * Storage is a single flat arena of fixed-stride entry blocks. Each
 * block packs the tag/valid/churn replacement metadata and the link
 * arms — struct-of-arrays int8 delta and score lanes — into one run of
 * bytes, so with the default 4 links an entry is exactly 16 bytes and a
 * probe touches one cache line (the whole default table is 32 KiB).
 * Scores are the paper's 1-byte saturating integers, applied
 * branchlessly; deltas are likewise 1-byte (the prefetcher's delta
 * range is +-127 by construction, asserted on insert).
 */

#ifndef CSP_PREFETCH_CONTEXT_CST_H
#define CSP_PREFETCH_CONTEXT_CST_H

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "core/config.h"
#include "core/logging.h"
#include "core/rng.h"
#include "core/stats.h"
#include "core/stats_registry.h"
#include "obs/learning_observer.h"

namespace csp::prefetch::ctx {

/** Result of a data-collection insertion. */
struct CstAddResult
{
    bool inserted = false;      ///< a new link was stored
    bool already_present = false;
    bool evicted_link = false;  ///< link churn: an overload signal
    bool entry_conflict = false;///< tag conflict with a live entry
    /// The entry now holding this key (false only on entry_conflict);
    /// when true, churn reports its post-insert churn counter so the
    /// caller's overload check needs no second probe.
    bool entry_matches = false;
    std::uint8_t churn = 0;
};

/** See file comment. */
class Cst
{
  public:
    explicit Cst(const ContextPrefetcherConfig &config);

    /** Entry header: replacement metadata, packed in front of the link
     *  lanes within the same arena block. */
    struct Entry
    {
        std::uint32_t tag = 0;
        std::uint8_t valid = 0;
        std::uint8_t churn = 0; ///< recent link evictions (overload cue)
        std::uint16_t link_mask = 0; ///< bit i set: link slot i holds a link
    };
    static_assert(sizeof(Entry) == 8, "header must pack into one word");

    /** Entry for @p reduced_key iff present with a matching tag. */
    const Entry *lookup(std::uint32_t reduced_key) const;

    /**
     * Data collection: associate @p delta with @p reduced_key. New links
     * start at score 0 and must earn rewards to survive; the
     * lowest-scoring link is evicted when the entry is full, but only if
     * its score is at or below zero (positive scores are protected and
     * the insertion is dropped instead).
     */
    CstAddResult
    addLink(std::uint32_t reduced_key, std::int32_t delta)
    {
        return learn_ != nullptr ? addLinkT<true>(reduced_key, delta)
                                 : addLinkT<false>(reduced_key, delta);
    }

    /** addLink with the learning-tap notifications compiled out
     *  (kLearn=false) — the replay hot path's entry point. */
    template <bool kLearn>
    CstAddResult addLinkT(std::uint32_t reduced_key, std::int32_t delta);

    /** Feedback: apply @p reward to the (key, delta) association. */
    void reward(std::uint32_t reduced_key, std::int32_t delta, int amount);

    /**
     * Exploitation: collect up to @p max_links deltas with score >
     * @p min_score, best first. Returns the number written to @p out
     * (and, when @p scores_out is non-null, the matching scores).
     */
    unsigned
    bestLinks(std::uint32_t reduced_key, std::int32_t *out,
              unsigned max_links, int min_score,
              int *scores_out = nullptr) const
    {
        return learn_ != nullptr
                   ? bestLinksT<true>(reduced_key, out, max_links,
                                      min_score, scores_out)
                   : bestLinksT<false>(reduced_key, out, max_links,
                                       min_score, scores_out);
    }

    /** bestLinks with the probe-event notification compiled out. */
    template <bool kLearn>
    unsigned bestLinksT(std::uint32_t reduced_key, std::int32_t *out,
                        unsigned max_links, int min_score,
                        int *scores_out = nullptr) const;

    /** Best valid-link score of the entry holding @p reduced_key
     *  (-128 when the entry has no links; key must be present). */
    int bestScore(std::uint32_t reduced_key) const;

    /**
     * Exploration: a uniformly random valid link of the entry (paper:
     * "choosing a random address from the set of previously correlated
     * ones"). Returns false when the entry has no links.
     */
    bool randomLink(std::uint32_t reduced_key, Rng &rng,
                    std::int32_t *delta_out) const;

    /**
     * Softmax exploration (the policy-search direction the paper's
     * conclusion points to): draw a link with probability proportional
     * to exp(score / temperature), biasing exploration toward
     * promising-but-unproven candidates instead of uniform chance.
     */
    bool softmaxLink(std::uint32_t reduced_key, Rng &rng,
                     double temperature, std::int32_t *delta_out) const;

    /** Clear the churn counter after the Reducer consumed the signal. */
    void clearChurn(std::uint32_t reduced_key);

    /**
     * Hint that the entry for @p reduced_key is about to be probed.
     * Purely a memory-system hint (the arena is far larger than the
     * data cache, so probes are almost always cold); never changes any
     * table state or result.
     */
    void
    prefetchEntry(std::uint32_t reduced_key) const
    {
        __builtin_prefetch(arena_.data() +
                           static_cast<std::size_t>(
                               indexOf(reduced_key)) *
                               stride_words_);
    }

    unsigned entries() const { return entries_; }

    /** Links per entry (the paper's action-set size). */
    unsigned linksPerEntry() const { return links_per_entry_; }

    /** Number of valid entries (occupancy diagnostics). */
    unsigned liveEntries() const;

    /** Links displaced by score-based replacement so far. */
    const std::uint64_t &linkEvictions() const { return link_evictions_; }

    /** Live entries displaced by a conflicting context so far. */
    const std::uint64_t &entryEvictions() const
    {
        return entry_evictions_;
    }

    /** Distribution of the scores of all currently valid links. */
    stats::DistSummary scoreSummary() const;

    /**
     * Capture the @p top_k live entries with the best link scores into
     * @p out (best score descending, table index ascending on ties —
     * a deterministic order). Returns the live-entry count.
     */
    unsigned snapshotTopK(unsigned top_k,
                          std::vector<obs::SnapshotContext> &out) const;

    /** Stream probe/insert events to a learning observer (notification
     *  only — table behaviour never depends on it). */
    void setLearningObserver(obs::LearningObserver *learn)
    {
        learn_ = learn;
    }

    /** Drop all learned state. */
    void reset();

  private:
    Entry *
    entryAt(std::uint32_t index)
    {
        return reinterpret_cast<Entry *>(arena_.data() +
                                         index * stride_words_);
    }

    const Entry *
    entryAt(std::uint32_t index) const
    {
        return reinterpret_cast<const Entry *>(arena_.data() +
                                               index * stride_words_);
    }

    /** Delta lane of the entry block at @p index; the score lane
     *  follows links_per_entry_ bytes later. */
    std::int8_t *
    deltasAt(std::uint32_t index)
    {
        return reinterpret_cast<std::int8_t *>(arena_.data() +
                                               index * stride_words_ + 1);
    }

    const std::int8_t *
    deltasAt(std::uint32_t index) const
    {
        return reinterpret_cast<const std::int8_t *>(
            arena_.data() + index * stride_words_ + 1);
    }

    std::uint32_t
    indexOf(std::uint32_t reduced_key) const
    {
        return reduced_key & index_mask_;
    }

    std::uint32_t
    tagOf(std::uint32_t reduced_key) const
    {
        return reduced_key >> index_bits_;
    }

    const Entry *entryIfMatch(std::uint32_t reduced_key) const;

    /** addLinkT body, with the link count a compile-time constant on
     *  the common configuration (kLinks = 0 reads it at runtime) so the
     *  per-slot scans fully unroll. */
    template <bool kLearn, unsigned kLinks>
    CstAddResult addLinkImpl(std::uint32_t reduced_key,
                             std::int32_t delta);

    /** reward() body under the same link-count specialization. */
    template <unsigned kLinks>
    void rewardImpl(std::uint32_t reduced_key, std::int32_t delta,
                    int amount);

    unsigned index_bits_;
    std::uint32_t index_mask_;
    unsigned links_per_entry_;
    unsigned entries_;
    unsigned stride_words_; ///< 64-bit words per entry block
    /// entries_ * stride_words_ 64-bit words: per entry, one header
    /// word then the int8 delta lane and int8 score lane, padded to a
    /// word boundary.
    std::vector<std::uint64_t> arena_;
    std::uint64_t link_evictions_ = 0;
    std::uint64_t entry_evictions_ = 0;
    obs::LearningObserver *learn_ = nullptr; ///< borrowed, may be null
};

// The data-collection path runs several times per demand access (one
// addLink per sampled history depth) and every reward lands here too;
// both are defined inline so the replay loop never pays a call, and
// both dispatch to a body whose link count is a compile-time constant
// for the stock 4-link configuration so every per-slot scan unrolls.

template <bool kLearn>
inline CstAddResult
Cst::addLinkT(std::uint32_t reduced_key, std::int32_t delta)
{
    if (links_per_entry_ == 4)
        return addLinkImpl<kLearn, 4>(reduced_key, delta);
    return addLinkImpl<kLearn, 0>(reduced_key, delta);
}

template <bool kLearn, unsigned kLinks>
CstAddResult
Cst::addLinkImpl(std::uint32_t reduced_key, std::int32_t delta)
{
    const unsigned nlinks =
        kLinks != 0 ? kLinks : links_per_entry_;
    CSP_ASSERT(delta >= -128 && delta <= 127);
    CstAddResult result;
    bool new_entry = false;
    bool entry_evicted = false;
    // Notification only: the observer sees every insertion outcome but
    // can never influence one.
    const auto notify = [&] {
        if constexpr (kLearn) {
            if (learn_ != nullptr) {
                learn_->onCstInsert({result.inserted,
                                     result.already_present, new_entry,
                                     entry_evicted, result.evicted_link,
                                     result.entry_conflict});
            }
        }
    };
    const std::uint32_t index = indexOf(reduced_key);
    Entry &entry = *entryAt(index);
    std::int8_t *const deltas = deltasAt(index);
    std::int8_t *const scores = deltas + nlinks;
    const std::uint32_t tag = tagOf(reduced_key);

    if (entry.valid == 0 || entry.tag != tag) {
        if (entry.valid != 0) {
            // Conflicting live entry: protect it while it still holds
            // positively scored links, but age it so stale contexts
            // eventually yield the slot.
            int best = -128;
            for (unsigned i = 0; i < nlinks; ++i) {
                if (!(entry.link_mask & (1u << i)))
                    continue;
                best = std::max(best, static_cast<int>(scores[i]));
                scores[i] = static_cast<std::int8_t>(
                    std::max(static_cast<int>(scores[i]) - 1, -128));
            }
            if (best > 0) {
                result.entry_conflict = true;
                notify();
                return result;
            }
            ++entry_evictions_;
            entry_evicted = true;
        }
        new_entry = true;
        entry.valid = 1;
        entry.tag = tag;
        entry.churn = 0;
        entry.link_mask = 0;
    }

    const std::uint32_t full_mask = (1u << nlinks) - 1;
    const std::uint32_t free_bits = ~entry.link_mask & full_mask;
    const unsigned no_slot = nlinks;
    unsigned weakest = no_slot;
    int weakest_score = 0;
    for (unsigned i = 0; i < nlinks; ++i) {
        if (!(entry.link_mask & (1u << i)))
            continue;
        if (deltas[i] == delta) {
            result.already_present = true;
            result.entry_matches = true;
            result.churn = entry.churn;
            notify();
            return result;
        }
        if (weakest == no_slot ||
            static_cast<int>(scores[i]) < weakest_score) {
            weakest = i;
            weakest_score = scores[i];
        }
    }

    unsigned slot;
    if (free_bits != 0) {
        slot = static_cast<unsigned>(std::countr_zero(free_bits));
    } else {
        // Score-based replacement: only displace non-positive links.
        if (weakest_score > 0) {
            if (entry.churn < 255)
                ++entry.churn;
            result.entry_matches = true;
            result.churn = entry.churn;
            notify();
            return result;
        }
        slot = weakest;
        result.evicted_link = true;
        ++link_evictions_;
        if (entry.churn < 255)
            ++entry.churn;
    }
    deltas[slot] = static_cast<std::int8_t>(delta);
    scores[slot] = 0;
    entry.link_mask |= static_cast<std::uint16_t>(1u << slot);
    result.inserted = true;
    result.entry_matches = true;
    result.churn = entry.churn;
    notify();
    return result;
}

inline void
Cst::reward(std::uint32_t reduced_key, std::int32_t delta, int amount)
{
    if (links_per_entry_ == 4)
        return rewardImpl<4>(reduced_key, delta, amount);
    return rewardImpl<0>(reduced_key, delta, amount);
}

template <unsigned kLinks>
void
Cst::rewardImpl(std::uint32_t reduced_key, std::int32_t delta,
                int amount)
{
    const unsigned nlinks =
        kLinks != 0 ? kLinks : links_per_entry_;
    const std::uint32_t index = indexOf(reduced_key);
    Entry &entry = *entryAt(index);
    if (entry.valid == 0 || entry.tag != tagOf(reduced_key))
        return;
    std::int8_t *const deltas = deltasAt(index);
    std::int8_t *const scores = deltas + nlinks;
    for (unsigned i = 0; i < nlinks; ++i) {
        if (!(entry.link_mask & (1u << i)))
            continue;
        if (deltas[i] == delta) {
            // Branchless saturating apply on the int8 score lane.
            scores[i] = static_cast<std::int8_t>(std::clamp(
                static_cast<int>(scores[i]) + amount, -128, 127));
            // A rewarded entry is healthy: candidate pressure on it is
            // competition, not overload. Decay the churn signal so the
            // Reducer only splits contexts that fail to earn rewards.
            if (amount > 0 && entry.churn > 0)
                --entry.churn;
            return;
        }
    }
}

} // namespace csp::prefetch::ctx

#endif // CSP_PREFETCH_CONTEXT_CST_H
