#include "prefetch/context/history_queue.h"

#include "core/logging.h"

namespace csp::prefetch::ctx {

HistoryQueue::HistoryQueue(unsigned capacity,
                           std::vector<unsigned> sample_depths)
    : capacity_(capacity), depths_(std::move(sample_depths)),
      ring_(capacity)
{
    CSP_ASSERT(capacity > 0);
    if (depths_.empty()) {
        // Default ladder: spans the positive reward window (18-50) so
        // that every association made by the collection unit can earn
        // positive feedback when the pattern recurs.
        depths_ = {18, 21, 24, 27, 30, 34, 38, 42, 46, 50};
        std::erase_if(depths_,
                      [this](unsigned d) { return d > capacity_; });
        if (depths_.empty())
            depths_ = {1};
    }
    for (unsigned depth : depths_)
        CSP_ASSERT(depth >= 1 && depth <= capacity_);
}



std::uint64_t
HistoryQueue::size() const
{
    return pushes_ < capacity_ ? pushes_ : capacity_;
}

void
HistoryQueue::clear()
{
    pushes_ = 0;
    head_ = 0;
}

} // namespace csp::prefetch::ctx
