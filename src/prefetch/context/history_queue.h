/**
 * @file
 * The History Queue of the collection unit (paper section 5, Figure 6):
 * a ring of recently observed contexts waiting to be associated with
 * impending memory addresses. To avoid a fully associative search, the
 * collection unit samples the queue at a small set of predefined depths
 * (probabilistic lookup, paper section 5).
 */

#ifndef CSP_PREFETCH_CONTEXT_HISTORY_QUEUE_H
#define CSP_PREFETCH_CONTEXT_HISTORY_QUEUE_H

#include <cstdint>
#include <span>
#include <vector>

#include "core/types.h"

namespace csp::prefetch::ctx {

/** One remembered context observation. */
struct HistoryEntry
{
    std::uint32_t reduced_key = 0; ///< CST index+tag of the context
    std::uint16_t full_hash = 0;   ///< full-context hash (reducer index)
    Addr line = 0;                 ///< block address of that access
    AccessSeq seq = 0;             ///< position in the demand stream
};

/** See file comment. */
class HistoryQueue
{
  public:
    /**
     * @param capacity queue depth (paper Table 2: 50 entries).
     * @param sample_depths depths (in accesses) at which the collection
     *        unit probes the queue; empty selects a default ladder
     *        spanning the prefetch window.
     */
    explicit HistoryQueue(unsigned capacity,
                          std::vector<unsigned> sample_depths = {});

    /** Record the context observed at demand access @p seq. */
    void
    push(const HistoryEntry &entry)
    {
        ring_[head_] = entry;
        if (++head_ == capacity_)
            head_ = 0;
        ++pushes_;
    }

    /**
     * Collect the sampled entries, i.e. those at the configured depths
     * behind the most recent push. Results are appended to @p out.
     */
    void
    sample(std::vector<const HistoryEntry *> &out) const
    {
        for (unsigned depth : depths_) {
            if (const HistoryEntry *entry = at(depth))
                out.push_back(entry);
        }
    }

    /** Entry exactly @p depth pushes behind the newest (null if absent). */
    const HistoryEntry *
    at(unsigned depth) const
    {
        // depth 1 = the most recent push. head_ is the next write
        // position (== pushes_ mod capacity_), so the entry `depth`
        // pushes back sits at (head_ - depth) mod capacity_ — computed
        // without a division since 1 <= depth <= capacity_.
        if (depth == 0 || depth > capacity_ || depth > pushes_)
            return nullptr;
        const unsigned idx = head_ >= depth
                                 ? head_ - depth
                                 : head_ + capacity_ - depth;
        return &ring_[idx];
    }

    unsigned capacity() const { return capacity_; }
    std::uint64_t size() const;
    std::span<const unsigned> sampleDepths() const { return depths_; }

    /** Drop all history. */
    void clear();

  private:
    unsigned capacity_;
    std::vector<unsigned> depths_;
    std::vector<HistoryEntry> ring_;
    std::uint64_t pushes_ = 0;
    unsigned head_ = 0; ///< next write position (pushes_ mod capacity_)
};

} // namespace csp::prefetch::ctx

#endif // CSP_PREFETCH_CONTEXT_HISTORY_QUEUE_H
