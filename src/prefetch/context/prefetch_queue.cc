#include "prefetch/context/prefetch_queue.h"

#include <algorithm>

#include "core/logging.h"

namespace csp::prefetch::ctx {

namespace {

std::size_t
nextPowerOfTwo(std::size_t v)
{
    std::size_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

PrefetchQueue::PrefetchQueue(unsigned capacity) : ring_(capacity)
{
    CSP_ASSERT(capacity > 0);
    words_ = (capacity + 63) / 64;
    // At most `capacity` distinct lines are indexed at once; 4x slots
    // keeps the load factor <= 1/4 so probe chains stay short.
    const std::size_t slots =
        std::max<std::size_t>(nextPowerOfTwo(capacity) * 4, 8);
    slot_mask_ = slots - 1;
    home_shift_ =
        64 - static_cast<unsigned>(std::countr_zero(slots));
    slots_.resize(slots);
    bits_.assign(slots * words_, 0);
}

void
PrefetchQueue::demoteToShadow(Addr line)
{
    const std::size_t islot = indexFind(line);
    if (islot == kNoSlot)
        return;
    const std::uint64_t *bits = bitsAt(islot);
    PendingPrefetch *newest = nullptr;
    for (unsigned w = 0; w < words_; ++w) {
        std::uint64_t word = bits[w];
        while (word != 0) {
            const unsigned b =
                static_cast<unsigned>(std::countr_zero(word));
            word &= word - 1;
            PendingPrefetch &entry = ring_[w * 64 + b];
            if (!entry.shadow &&
                (newest == nullptr || entry.seq > newest->seq)) {
                newest = &entry;
            }
        }
    }
    if (newest != nullptr)
        newest->shadow = true;
}



void
PrefetchQueue::indexClearAll()
{
    for (IndexSlot &slot : slots_)
        slot.used = false;
    std::fill(bits_.begin(), bits_.end(), 0);
}

unsigned
PrefetchQueue::size() const
{
    unsigned live = 0;
    for (const PendingPrefetch &entry : ring_) {
        if (entry.valid)
            ++live;
    }
    return live;
}

void
PrefetchQueue::clear()
{
    for (PendingPrefetch &entry : ring_)
        entry.valid = false;
    pushes_ = 0;
    head_ = 0;
    indexClearAll();
}

} // namespace csp::prefetch::ctx
