#include "prefetch/context/prefetch_queue.h"

#include "core/logging.h"

namespace csp::prefetch::ctx {

PrefetchQueue::PrefetchQueue(unsigned capacity) : ring_(capacity)
{
    CSP_ASSERT(capacity > 0);
}

void
PrefetchQueue::push(Addr line, std::uint32_t reduced_key,
                    std::int32_t delta, AccessSeq seq, bool shadow,
                    const ExpiryCallback &on_expiry)
{
    PendingPrefetch &slot = ring_[pushes_ % ring_.size()];
    if (slot.valid && !slot.hit && on_expiry)
        on_expiry(slot);
    slot = PendingPrefetch{line, reduced_key, delta, seq, shadow, false,
                           true};
    ++pushes_;
}

unsigned
PrefetchQueue::onAccess(Addr line, AccessSeq seq,
                        const HitCallback &on_hit)
{
    unsigned matches = 0;
    for (PendingPrefetch &entry : ring_) {
        if (entry.valid && !entry.hit && entry.line == line) {
            entry.hit = true;
            ++matches;
            if (on_hit) {
                const unsigned depth =
                    static_cast<unsigned>(seq - entry.seq);
                on_hit(entry, depth);
            }
        }
    }
    return matches;
}

bool
PrefetchQueue::pending(Addr line) const
{
    for (const PendingPrefetch &entry : ring_) {
        if (entry.valid && !entry.hit && entry.line == line)
            return true;
    }
    return false;
}

bool
PrefetchQueue::pendingReal(Addr line) const
{
    for (const PendingPrefetch &entry : ring_) {
        if (entry.valid && !entry.hit && !entry.shadow &&
            entry.line == line)
            return true;
    }
    return false;
}

void
PrefetchQueue::demoteToShadow(Addr line)
{
    PendingPrefetch *newest = nullptr;
    for (PendingPrefetch &entry : ring_) {
        if (entry.valid && !entry.hit && !entry.shadow &&
            entry.line == line) {
            if (newest == nullptr || entry.seq > newest->seq)
                newest = &entry;
        }
    }
    if (newest != nullptr)
        newest->shadow = true;
}

void
PrefetchQueue::flush(const ExpiryCallback &on_expiry)
{
    for (PendingPrefetch &entry : ring_) {
        if (entry.valid && !entry.hit && on_expiry)
            on_expiry(entry);
        entry.valid = false;
    }
}

unsigned
PrefetchQueue::size() const
{
    unsigned live = 0;
    for (const PendingPrefetch &entry : ring_) {
        if (entry.valid)
            ++live;
    }
    return live;
}

void
PrefetchQueue::clear()
{
    for (PendingPrefetch &entry : ring_)
        entry.valid = false;
    pushes_ = 0;
}

} // namespace csp::prefetch::ctx
