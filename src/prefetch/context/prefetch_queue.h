/**
 * @file
 * The Prefetch Queue of the feedback unit (paper section 5, Figure 6):
 * a ring of the most recent predictions — real and shadow — awaiting
 * reward. On every demand access the queue is searched for entries that
 * predicted the accessed block; the depth at which an entry is hit (in
 * demand accesses since the prediction) feeds the reward function.
 * Entries popped without ever being hit earn the expiry penalty
 * (paper: the queue, at 128 entries, is deliberately larger than the
 * useful prefetch window so that too-early predictions are observed and
 * demoted).
 */

#ifndef CSP_PREFETCH_CONTEXT_PREFETCH_QUEUE_H
#define CSP_PREFETCH_CONTEXT_PREFETCH_QUEUE_H

#include <cstdint>
#include <functional>
#include <vector>

#include "core/types.h"

namespace csp::prefetch::ctx {

/** One pending prediction. */
struct PendingPrefetch
{
    Addr line = 0;              ///< predicted block address
    std::uint32_t reduced_key = 0; ///< CST entry that produced it
    std::int32_t delta = 0;     ///< which link of that entry
    AccessSeq seq = 0;          ///< demand-access index at prediction
    bool shadow = false;        ///< tracked only, never dispatched
    bool hit = false;           ///< matched by a demand access
    bool valid = false;
};

/** See file comment. */
class PrefetchQueue
{
  public:
    /** Called when an entry is hit: (entry, depth in accesses). */
    using HitCallback =
        std::function<void(const PendingPrefetch &, unsigned)>;
    /** Called when an entry expires unhit. */
    using ExpiryCallback = std::function<void(const PendingPrefetch &)>;

    explicit PrefetchQueue(unsigned capacity);

    /**
     * Queue a new prediction, evicting (and expiring) the oldest entry
     * when full.
     */
    void push(Addr line, std::uint32_t reduced_key, std::int32_t delta,
              AccessSeq seq, bool shadow,
              const ExpiryCallback &on_expiry);

    /**
     * Search for predictions of @p line at demand access @p seq; each
     * un-hit match is marked hit and reported through @p on_hit.
     * Returns the number of matches.
     */
    unsigned onAccess(Addr line, AccessSeq seq, const HitCallback &on_hit);

    /** True iff an un-hit entry for @p line is pending (dedup check). */
    bool pending(Addr line) const;

    /** True iff an un-hit REAL (dispatched) entry for @p line is
     *  pending. Only these demote duplicates to shadow; a pending
     *  shadow must not block a vetted link from dispatching. */
    bool pendingReal(Addr line) const;

    /** Flip the most recent un-hit real entry for @p line to shadow
     *  (used when the memory system refused the dispatch). */
    void demoteToShadow(Addr line);

    /** Expire every remaining entry (end of run). */
    void flush(const ExpiryCallback &on_expiry);

    unsigned capacity() const
    {
        return static_cast<unsigned>(ring_.size());
    }

    /** Live (valid) entry count. */
    unsigned size() const;

    /** Drop all entries without expiring them. */
    void clear();

  private:
    std::vector<PendingPrefetch> ring_;
    std::uint64_t pushes_ = 0;
};

} // namespace csp::prefetch::ctx

#endif // CSP_PREFETCH_CONTEXT_PREFETCH_QUEUE_H
