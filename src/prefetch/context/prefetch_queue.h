/**
 * @file
 * The Prefetch Queue of the feedback unit (paper section 5, Figure 6):
 * a ring of the most recent predictions — real and shadow — awaiting
 * reward. On every demand access the queue is searched for entries that
 * predicted the accessed block; the depth at which an entry is hit (in
 * demand accesses since the prediction) feeds the reward function.
 * Entries popped without ever being hit earn the expiry penalty
 * (paper: the queue, at 128 entries, is deliberately larger than the
 * useful prefetch window so that too-early predictions are observed and
 * demoted).
 *
 * The ring is paired with an open-addressed index from block address to
 * a bitmap of the ring slots holding un-hit predictions of that block
 * (the sim/predicted_set.h idiom: Fibonacci hashing, backward-shift
 * deletion, load factor <= 1/4). Every per-access query — the feedback
 * search, the dedup checks, the demotion scan — is one hash probe
 * instead of a scan of all 128 slots. Bitmaps enumerate matching slots
 * in ascending slot order, which reproduces the original linear scan's
 * callback order exactly (reward application is order-sensitive: the
 * bandit's EWMA accuracy and saturating scores do not commute).
 */

#ifndef CSP_PREFETCH_CONTEXT_PREFETCH_QUEUE_H
#define CSP_PREFETCH_CONTEXT_PREFETCH_QUEUE_H

#include <bit>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "core/logging.h"
#include "core/types.h"

namespace csp::prefetch::ctx {

/** One pending prediction. */
struct PendingPrefetch
{
    Addr line = 0;              ///< predicted block address
    std::uint32_t reduced_key = 0; ///< CST entry that produced it
    std::int32_t delta = 0;     ///< which link of that entry
    AccessSeq seq = 0;          ///< demand-access index at prediction
    bool shadow = false;        ///< tracked only, never dispatched
    bool hit = false;           ///< matched by a demand access
    bool valid = false;
};

/** See file comment. */
class PrefetchQueue
{
    template <typename Fn>
    static constexpr bool kIsNullFn =
        std::is_same_v<std::decay_t<Fn>, std::nullptr_t>;

  public:
    explicit PrefetchQueue(unsigned capacity);

    /**
     * Queue a new prediction, evicting (and expiring) the oldest entry
     * when full. @p on_expiry is any callable taking
     * (const PendingPrefetch &), or nullptr.
     */
    template <typename ExpiryFn>
    void
    push(Addr line, std::uint32_t reduced_key, std::int32_t delta,
         AccessSeq seq, bool shadow, const ExpiryFn &on_expiry)
    {
        const std::size_t s = head_;
        if (++head_ == ring_.size())
            head_ = 0;
        PendingPrefetch &slot = ring_[s];
        if (slot.valid && !slot.hit) {
            indexClearBit(slot.line, s);
            if constexpr (!kIsNullFn<ExpiryFn>)
                on_expiry(static_cast<const PendingPrefetch &>(slot));
        }
        slot = PendingPrefetch{line, reduced_key, delta, seq, shadow,
                               false, true};
        indexSetBit(line, s);
        ++pushes_;
    }

    /**
     * Search for predictions of @p line at demand access @p seq; each
     * un-hit match is marked hit and reported through @p on_hit (any
     * callable taking (const PendingPrefetch &, unsigned depth), or
     * nullptr) in ascending ring-slot order. Returns the match count.
     *
     * @p on_match_hint, when not nullptr, is called with each matched
     * entry (const, same ascending order) BEFORE any entry is reported
     * as hit. It exists solely so the caller can issue memory-prefetch
     * hints for the table lines the hit callback is about to probe; it
     * must not mutate anything.
     */
    template <typename HitFn, typename HintFn = std::nullptr_t>
    unsigned
    onAccess(Addr line, AccessSeq seq, const HitFn &on_hit,
             const HintFn &on_match_hint = nullptr)
    {
        const std::size_t islot = indexFind(line);
        if (islot == kNoSlot)
            return 0;
        unsigned matches = 0;
        std::uint64_t *bits = bitsAt(islot);
        if constexpr (!kIsNullFn<HintFn>) {
            for (unsigned w = 0; w < words_; ++w) {
                std::uint64_t word = bits[w];
                while (word != 0) {
                    const unsigned b =
                        static_cast<unsigned>(std::countr_zero(word));
                    word &= word - 1;
                    on_match_hint(static_cast<const PendingPrefetch &>(
                        ring_[w * 64 + b]));
                }
            }
        }
        for (unsigned w = 0; w < words_; ++w) {
            std::uint64_t word = bits[w];
            bits[w] = 0;
            while (word != 0) {
                const unsigned b =
                    static_cast<unsigned>(std::countr_zero(word));
                word &= word - 1;
                PendingPrefetch &entry = ring_[w * 64 + b];
                entry.hit = true;
                ++matches;
                if constexpr (!kIsNullFn<HitFn>) {
                    on_hit(static_cast<const PendingPrefetch &>(entry),
                           static_cast<unsigned>(seq - entry.seq));
                }
            }
        }
        indexEraseSlot(islot);
        return matches;
    }

    /** True iff an un-hit entry for @p line is pending (dedup check). */
    bool
    pending(Addr line) const
    {
        return indexFind(line) != kNoSlot;
    }

    /** True iff an un-hit REAL (dispatched) entry for @p line is
     *  pending. Only these demote duplicates to shadow; a pending
     *  shadow must not block a vetted link from dispatching. */
    bool
    pendingReal(Addr line) const
    {
        const std::size_t islot = indexFind(line);
        if (islot == kNoSlot)
            return false;
        const std::uint64_t *bits = bitsAt(islot);
        for (unsigned w = 0; w < words_; ++w) {
            std::uint64_t word = bits[w];
            while (word != 0) {
                const unsigned b =
                    static_cast<unsigned>(std::countr_zero(word));
                word &= word - 1;
                if (!ring_[w * 64 + b].shadow)
                    return true;
            }
        }
        return false;
    }

    /** Flip the most recent un-hit real entry for @p line to shadow
     *  (used when the memory system refused the dispatch). */
    void demoteToShadow(Addr line);

    /** Expire every remaining entry (end of run). */
    template <typename ExpiryFn>
    void
    flush(const ExpiryFn &on_expiry)
    {
        for (PendingPrefetch &entry : ring_) {
            if (entry.valid && !entry.hit) {
                if constexpr (!kIsNullFn<ExpiryFn>) {
                    on_expiry(
                        static_cast<const PendingPrefetch &>(entry));
                }
            }
            entry.valid = false;
        }
        indexClearAll();
    }

    unsigned capacity() const
    {
        return static_cast<unsigned>(ring_.size());
    }

    /** Live (valid) entry count. */
    unsigned size() const;

    /** Drop all entries without expiring them. */
    void clear();

  private:
    static constexpr std::size_t kNoSlot = ~std::size_t{0};

    struct IndexSlot
    {
        Addr line = 0;
        bool used = false;
    };

    std::size_t
    homeOf(Addr line) const
    {
        // Fibonacci hash; top bits select the bucket.
        return static_cast<std::size_t>(
            (line * 0x9e3779b97f4a7c15ull) >> home_shift_);
    }

    std::uint64_t *
    bitsAt(std::size_t islot)
    {
        return bits_.data() + islot * words_;
    }

    const std::uint64_t *
    bitsAt(std::size_t islot) const
    {
        return bits_.data() + islot * words_;
    }

    /** Index slot holding @p line, or kNoSlot. */
    std::size_t
    indexFind(Addr line) const
    {
        std::size_t i = homeOf(line);
        while (slots_[i].used) {
            if (slots_[i].line == line)
                return i;
            i = (i + 1) & slot_mask_;
        }
        return kNoSlot;
    }

    void
    indexSetBit(Addr line, std::size_t ring_slot)
    {
        std::size_t i = homeOf(line);
        while (slots_[i].used) {
            if (slots_[i].line == line) {
                bitsAt(i)[ring_slot / 64] |=
                    std::uint64_t{1} << (ring_slot % 64);
                return;
            }
            i = (i + 1) & slot_mask_;
        }
        slots_[i] = IndexSlot{line, true};
        // Unused slots hold all-zero bitmaps, so only the new bit is
        // set.
        bitsAt(i)[ring_slot / 64] =
            std::uint64_t{1} << (ring_slot % 64);
    }

    void
    indexClearBit(Addr line, std::size_t ring_slot)
    {
        const std::size_t i = indexFind(line);
        CSP_ASSERT(i != kNoSlot);
        std::uint64_t *bits = bitsAt(i);
        bits[ring_slot / 64] &=
            ~(std::uint64_t{1} << (ring_slot % 64));
        for (unsigned w = 0; w < words_; ++w) {
            if (bits[w] != 0)
                return;
        }
        indexEraseSlot(i);
    }

    void
    indexEraseSlot(std::size_t islot)
    {
        // Backward-shift deletion (no tombstones): entries past the
        // hole move back into it unless that would break their own
        // probe chain. Bitmaps travel with their slots.
        std::size_t i = islot;
        std::size_t j = islot;
        for (;;) {
            slots_[i].used = false;
            for (;;) {
                j = (j + 1) & slot_mask_;
                if (!slots_[j].used) {
                    std::uint64_t *bits = bitsAt(i);
                    for (unsigned w = 0; w < words_; ++w)
                        bits[w] = 0;
                    return;
                }
                const std::size_t h = homeOf(slots_[j].line);
                const bool stuck = i <= j ? (i < h && h <= j)
                                          : (i < h || h <= j);
                if (!stuck)
                    break;
            }
            slots_[i] = slots_[j];
            const std::uint64_t *src = bitsAt(j);
            std::uint64_t *dst = bitsAt(i);
            for (unsigned w = 0; w < words_; ++w)
                dst[w] = src[w];
            i = j;
        }
    }

    void indexClearAll();

    std::vector<PendingPrefetch> ring_;
    std::uint64_t pushes_ = 0;
    std::size_t head_ = 0; ///< next ring slot (pushes_ mod capacity)
    // line -> bitmap-of-ring-slots index. Invariants: a slot exists iff
    // at least one valid un-hit ring entry predicts its line; unused
    // slots have all-zero bitmaps.
    unsigned words_;        ///< bitmap words per index slot
    std::size_t slot_mask_; ///< index size - 1 (power of two)
    unsigned home_shift_;   ///< 64 - log2(index size)
    std::vector<IndexSlot> slots_;
    std::vector<std::uint64_t> bits_; ///< slots * words_, slot-major
};

} // namespace csp::prefetch::ctx

#endif // CSP_PREFETCH_CONTEXT_PREFETCH_QUEUE_H
