#include "prefetch/context/reducer.h"

#include <bit>

#include "core/logging.h"
#include "core/types.h"

namespace csp::prefetch::ctx {

using trace::Attr;
using trace::AttrMask;
using trace::attrBit;
using trace::kNumAttrs;

Reducer::Reducer(const ContextPrefetcherConfig &config,
                 AttrMask initial_mask, bool adaptive)
    : index_bits_(floorLog2(config.reducer_entries)),
      initial_mask_(initial_mask),
      adaptive_(adaptive),
      underload_lookups_(16),
      table_(config.reducer_entries)
{
    CSP_ASSERT(isPowerOfTwo(config.reducer_entries));
    CSP_ASSERT(initial_mask != 0);
}

Attr
Reducer::activationOrder(unsigned step)
{
    // Fixed priority: matches the enumeration order of trace::Attr —
    // cheap/general attributes first, address history last (paper
    // Table 1 warns it must be used sparingly).
    CSP_ASSERT(step < kNumAttrs);
    return static_cast<Attr>(step);
}

std::uint32_t
Reducer::indexOf(std::uint16_t full_hash) const
{
    return full_hash & ((1u << index_bits_) - 1);
}

std::uint8_t
Reducer::tagOf(std::uint16_t full_hash) const
{
    return static_cast<std::uint8_t>(full_hash >> index_bits_);
}

Reducer::Entry &
Reducer::entryFor(std::uint16_t full_hash)
{
    Entry &entry = table_[indexOf(full_hash)];
    if (!entry.valid || entry.tag != tagOf(full_hash)) {
        // Direct-mapped: conflicts simply displace (paper: "conflicts
        // have little impact on the prefetcher's performance").
        entry.valid = true;
        entry.tag = tagOf(full_hash);
        entry.mask = initial_mask_;
        entry.barren_lookups = 0;
    }
    return entry;
}

AttrMask
Reducer::lookup(std::uint16_t full_hash)
{
    return entryFor(full_hash).mask;
}

bool
Reducer::onOverload(std::uint16_t full_hash)
{
    if (!adaptive_)
        return false;
    Entry &entry = entryFor(full_hash);
    for (unsigned step = 0; step < kNumAttrs; ++step) {
        const AttrMask bit = attrBit(activationOrder(step));
        if (!(entry.mask & bit)) {
            entry.mask |= bit;
            entry.barren_lookups = 0;
            return true;
        }
    }
    return false; // everything already active
}

bool
Reducer::onUnderload(std::uint16_t full_hash)
{
    if (!adaptive_)
        return false;
    Entry &entry = entryFor(full_hash);
    // Never shrink below the initial attribute set.
    for (unsigned step = kNumAttrs; step-- > 0;) {
        const AttrMask bit = attrBit(activationOrder(step));
        if ((entry.mask & bit) && !(initial_mask_ & bit)) {
            entry.mask &= static_cast<AttrMask>(~bit);
            entry.barren_lookups = 0;
            return true;
        }
    }
    return false;
}

bool
Reducer::recordOutcome(std::uint16_t full_hash, bool useful)
{
    Entry &entry = entryFor(full_hash);
    if (useful) {
        entry.barren_lookups = 0;
        return false;
    }
    if (!adaptive_)
        return false;
    if (++entry.barren_lookups >= underload_lookups_) {
        entry.barren_lookups = 0;
        return onUnderload(full_hash);
    }
    return false;
}

double
Reducer::meanActiveAttrs() const
{
    std::uint64_t live = 0;
    std::uint64_t active = 0;
    for (const Entry &entry : table_) {
        if (entry.valid) {
            ++live;
            active += std::popcount(
                static_cast<unsigned>(entry.mask));
        }
    }
    return live == 0 ? 0.0
                     : static_cast<double>(active) /
                           static_cast<double>(live);
}

void
Reducer::reset()
{
    for (Entry &entry : table_)
        entry = Entry{};
}

} // namespace csp::prefetch::ctx
