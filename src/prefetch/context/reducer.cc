#include "prefetch/context/reducer.h"

#include <bit>

#include "core/logging.h"
#include "core/types.h"

namespace csp::prefetch::ctx {

using trace::Attr;
using trace::AttrMask;
using trace::attrBit;
using trace::kNumAttrs;

Reducer::Reducer(const ContextPrefetcherConfig &config,
                 AttrMask initial_mask, bool adaptive)
    : index_bits_(floorLog2(config.reducer_entries)),
      initial_mask_(initial_mask),
      adaptive_(adaptive),
      underload_lookups_(16),
      table_(config.reducer_entries)
{
    CSP_ASSERT(isPowerOfTwo(config.reducer_entries));
    CSP_ASSERT(initial_mask != 0);
}

Attr
Reducer::activationOrder(unsigned step)
{
    // Fixed priority: matches the enumeration order of trace::Attr —
    // cheap/general attributes first, address history last (paper
    // Table 1 warns it must be used sparingly).
    CSP_ASSERT(step < kNumAttrs);
    return static_cast<Attr>(step);
}

bool
Reducer::onOverload(std::uint16_t full_hash)
{
    if (!adaptive_)
        return false;
    Entry &entry = entryFor(full_hash);
    for (unsigned step = 0; step < kNumAttrs; ++step) {
        const AttrMask bit = attrBit(activationOrder(step));
        if (!(entry.mask & bit)) {
            entry.mask |= bit;
            entry.barren_lookups = 0;
            return true;
        }
    }
    return false; // everything already active
}

bool
Reducer::onUnderload(std::uint16_t full_hash)
{
    if (!adaptive_)
        return false;
    Entry &entry = entryFor(full_hash);
    // Never shrink below the initial attribute set.
    for (unsigned step = kNumAttrs; step-- > 0;) {
        const AttrMask bit = attrBit(activationOrder(step));
        if ((entry.mask & bit) && !(initial_mask_ & bit)) {
            entry.mask &= static_cast<AttrMask>(~bit);
            entry.barren_lookups = 0;
            return true;
        }
    }
    return false;
}

double
Reducer::meanActiveAttrs() const
{
    std::uint64_t live = 0;
    std::uint64_t active = 0;
    for (const Entry &entry : table_) {
        if (entry.valid) {
            ++live;
            active += std::popcount(
                static_cast<unsigned>(entry.mask));
        }
    }
    return live == 0 ? 0.0
                     : static_cast<double>(active) /
                           static_cast<double>(live);
}

void
Reducer::reset()
{
    for (Entry &entry : table_)
        entry = Entry{};
}

} // namespace csp::prefetch::ctx
