/**
 * @file
 * The Reducer — the online feature-selection stage of the context-based
 * prefetcher (paper sections 4.4 and 5, Figure 7).
 *
 * The full context (all Table 1 attributes) is hashed to a 16-bit value;
 * its low 14 bits index the direct-mapped Reducer and the top 2 bits form
 * a tag. Each Reducer entry stores a bitmap of *active* attributes. The
 * active subset is re-hashed to produce the 19-bit reduced key that
 * indexes the CST.
 *
 * Adaptation (paper section 4.4):
 *  - overload — too many full contexts collapse onto one reduced context
 *    (detected through CST link churn): activate the next inactive
 *    attribute, splitting the reduced context;
 *  - underload — contexts are spread over too many unique states and
 *    never recur usefully (detected as many lookups with no usable
 *    prediction): deactivate the most recently activated attribute,
 *    merging states back together.
 */

#ifndef CSP_PREFETCH_CONTEXT_REDUCER_H
#define CSP_PREFETCH_CONTEXT_REDUCER_H

#include <cstdint>
#include <vector>

#include "core/config.h"
#include "trace/context.h"

namespace csp::prefetch::ctx {

/** See file comment. */
class Reducer
{
  public:
    /**
     * @param config sizing and adaptation thresholds.
     * @param initial_mask attributes active for fresh entries.
     * @param adaptive disable to freeze masks (ablation).
     */
    Reducer(const ContextPrefetcherConfig &config,
            trace::AttrMask initial_mask, bool adaptive = true);

    /**
     * Active-attribute mask for @p full_hash, allocating (or displacing,
     * direct-mapped) the entry if needed.
     */
    trace::AttrMask
    lookup(std::uint16_t full_hash)
    {
        return entryFor(full_hash).mask;
    }

    /** Overload signal for the entry: activate one more attribute.
     *  Returns true if the mask changed. */
    bool onOverload(std::uint16_t full_hash);

    /** Underload signal: deactivate the most recent attribute.
     *  Returns true if the mask changed. */
    bool onUnderload(std::uint16_t full_hash);

    /** Record whether a lookup produced a usable prediction; drives the
     *  underload heuristic internally. Returns true if the entry decided
     *  to underload itself (mask changed). */
    bool
    recordOutcome(std::uint16_t full_hash, bool useful)
    {
        Entry &entry = entryFor(full_hash);
        if (useful) {
            entry.barren_lookups = 0;
            return false;
        }
        if (!adaptive_)
            return false;
        if (++entry.barren_lookups >= underload_lookups_) {
            entry.barren_lookups = 0;
            return onUnderload(full_hash);
        }
        return false;
    }

    unsigned entries() const
    {
        return static_cast<unsigned>(table_.size());
    }

    /** Attribute-activation order (fixed priority, see trace::Attr). */
    static trace::Attr activationOrder(unsigned step);

    /** Mean number of active attributes over valid entries. */
    double meanActiveAttrs() const;

    /** Drop all state. */
    void reset();

  private:
    struct Entry
    {
        std::uint8_t tag = 0;
        bool valid = false;
        trace::AttrMask mask = 0;
        std::uint16_t barren_lookups = 0; ///< lookups since last success
    };

    Entry &
    entryFor(std::uint16_t full_hash)
    {
        Entry &entry = table_[indexOf(full_hash)];
        if (!entry.valid || entry.tag != tagOf(full_hash)) {
            // Direct-mapped: conflicts simply displace (paper:
            // "conflicts have little impact on the prefetcher's
            // performance").
            entry.valid = true;
            entry.tag = tagOf(full_hash);
            entry.mask = initial_mask_;
            entry.barren_lookups = 0;
        }
        return entry;
    }

    std::uint32_t
    indexOf(std::uint16_t full_hash) const
    {
        return full_hash & ((1u << index_bits_) - 1);
    }

    std::uint8_t
    tagOf(std::uint16_t full_hash) const
    {
        return static_cast<std::uint8_t>(full_hash >> index_bits_);
    }

    unsigned index_bits_;
    trace::AttrMask initial_mask_;
    bool adaptive_;
    std::uint16_t underload_lookups_; ///< barren lookups before merging
    std::vector<Entry> table_;
};

} // namespace csp::prefetch::ctx

#endif // CSP_PREFETCH_CONTEXT_REDUCER_H
