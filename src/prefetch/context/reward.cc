#include "prefetch/context/reward.h"

#include <cmath>

#include "core/logging.h"

namespace csp::prefetch::ctx {

RewardFunction::RewardFunction(const RewardConfig &config)
    : config_(config)
{
    CSP_ASSERT(config.window_lo < config.window_hi);
    CSP_ASSERT(config.window_lo <= config.window_center &&
               config.window_center <= config.window_hi);
    CSP_ASSERT(config.peak_reward > 0);
}

int
RewardFunction::operator()(unsigned depth) const
{
    if (depth < config_.window_lo)
        return config_.late_penalty;
    if (depth > config_.window_hi)
        return config_.early_penalty;
    // Gaussian bell over the window, scaled so the window edges still
    // earn at least +1 (graceful degradation, paper section 4.3).
    const double center = static_cast<double>(config_.window_center);
    const double width =
        static_cast<double>(config_.window_hi - config_.window_lo);
    const double sigma = width / 4.0;
    const double x = (static_cast<double>(depth) - center) / sigma;
    const double bell = std::exp(-0.5 * x * x);
    const int reward = static_cast<int>(
        std::lround(bell * config_.peak_reward));
    return reward < 1 ? 1 : reward;
}

std::vector<int>
RewardFunction::tabulate(unsigned max_depth) const
{
    std::vector<int> table;
    table.reserve(max_depth + 1);
    for (unsigned depth = 0; depth <= max_depth; ++depth)
        table.push_back((*this)(depth));
    return table;
}

} // namespace csp::prefetch::ctx
