/**
 * @file
 * The bell-shaped reward function of paper section 4.3 / Figure 5.
 *
 * The reward maps the *depth* of a prefetch-queue hit — the number of
 * demand accesses between issuing a prediction and the demand fetch that
 * matched it — to a score delta for the context-address association that
 * produced the prediction:
 *
 *  - depths inside the effective prefetch window [window_lo, window_hi]
 *    earn a positive, bell-shaped reward peaking at window_center;
 *  - depths below the window (prediction too late to hide latency) and
 *    above it (data likely evicted before use) earn negative rewards,
 *    demoting associations that drifted out of the window;
 *  - predictions that expire unhit earn the expiry penalty.
 */

#ifndef CSP_PREFETCH_CONTEXT_REWARD_H
#define CSP_PREFETCH_CONTEXT_REWARD_H

#include <vector>

#include "core/config.h"

namespace csp::prefetch::ctx {

/** See file comment. */
class RewardFunction
{
  public:
    explicit RewardFunction(const RewardConfig &config);

    /** Reward for a prediction hit at @p depth demand accesses. */
    int operator()(unsigned depth) const;

    /** Reward for a prediction that left the queue unhit. */
    int expiryPenalty() const { return config_.expiry_penalty; }

    /** First depth with a positive reward. */
    unsigned windowLo() const { return config_.window_lo; }

    /** Last depth with a positive reward. */
    unsigned windowHi() const { return config_.window_hi; }

    const RewardConfig &config() const { return config_; }

    /** Tabulate rewards over [0, max_depth] (bench/fig05_reward). */
    std::vector<int> tabulate(unsigned max_depth) const;

  private:
    RewardConfig config_;
};

} // namespace csp::prefetch::ctx

#endif // CSP_PREFETCH_CONTEXT_REWARD_H
