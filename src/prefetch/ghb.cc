#include "prefetch/ghb.h"

#include <algorithm>

#include "core/hashing.h"
#include "core/stats_registry.h"

namespace csp::prefetch {

GhbPrefetcher::GhbPrefetcher(const GhbConfig &config, GhbFlavor flavor,
                             unsigned line_bytes)
    : config_(config),
      flavor_(flavor),
      line_bytes_(line_bytes),
      buffer_(config.ghb_entries),
      index_(config.index_entries)
{}

std::string
GhbPrefetcher::name() const
{
    return flavor_ == GhbFlavor::GlobalDC ? "ghb-gdc" : "ghb-pcdc";
}

Addr
GhbPrefetcher::indexKey(const AccessInfo &info) const
{
    return flavor_ == GhbFlavor::GlobalDC ? 0 : info.pc;
}

void
GhbPrefetcher::rebuildStream(std::uint64_t head,
                             std::vector<Addr> &stream) const
{
    stream.clear();
    std::uint64_t pos = head;
    const std::uint64_t capacity = buffer_.size();
    while (pos != kNoLink && stream.size() < kMaxChain) {
        // A link is stale once the buffer has wrapped past it.
        if (next_pos_ - pos > capacity)
            break;
        const GhbEntry &entry = buffer_[pos % capacity];
        stream.push_back(entry.line);
        if (entry.prev != kNoLink && entry.prev >= pos)
            break; // defensive: links must strictly decrease
        pos = entry.prev;
    }
    // Collected newest-first; flip to oldest-first for delta analysis.
    std::reverse(stream.begin(), stream.end());
}

void
GhbPrefetcher::observe(const AccessInfo &info,
                       std::vector<PrefetchRequest> &out)
{
    // Train on the miss stream (see file comment).
    if (!info.l1_miss && !info.hit_prefetched_line)
        return;

    const Addr key = indexKey(info);
    IndexEntry &idx =
        index_[mix64(key) % index_.size()];
    std::uint64_t prev_head = kNoLink;
    if (idx.valid && idx.key_tag == key)
        prev_head = idx.head;

    // Insert the new access at the global position.
    const std::uint64_t pos = next_pos_++;
    buffer_[pos % buffer_.size()] =
        GhbEntry{info.line_addr, prev_head};
    idx.key_tag = key;
    idx.valid = true;
    idx.head = pos;

    // Reconstruct the localized stream and delta-correlate.
    rebuildStream(pos, scratch_stream_);
    const std::size_t n = scratch_stream_.size();
    const unsigned hist = config_.history_length;
    if (n < hist + 1)
        return;

    scratch_deltas_.clear();
    for (std::size_t i = 1; i < n; ++i) {
        scratch_deltas_.push_back(
            blockDelta(scratch_stream_[i - 1], scratch_stream_[i],
                       line_bytes_) );
    }
    const std::size_t d = scratch_deltas_.size();
    // Pattern: the most recent (hist - 1) deltas.
    const std::size_t plen = hist - 1;
    if (d < plen + 1)
        return;

    // Search backwards for an earlier occurrence of the pattern
    // (which itself occupies deltas[d-plen .. d-1]).
    for (std::size_t j = d - 2;; --j) {
        bool match = true;
        for (std::size_t k = 0; k < plen; ++k) {
            if (scratch_deltas_[j - k] != scratch_deltas_[d - 1 - k]) {
                match = false;
                break;
            }
        }
        if (match) {
            // Replay the deltas that followed the matched occurrence.
            Addr target = info.line_addr;
            unsigned issued = 0;
            for (std::size_t k = j + 1;
                 k < d && issued < config_.degree; ++k, ++issued) {
                target += static_cast<Addr>(
                    scratch_deltas_[k] *
                    static_cast<std::int64_t>(line_bytes_));
                if (target != info.line_addr) {
                    out.push_back({target, false, info.pc});
                    ++predictions_;
                }
            }
            return;
        }
        if (j == plen - 1)
            break;
    }
}

void
GhbPrefetcher::registerStats(stats::Registry &registry) const
{
    const std::string prefix = "prefetch." + name();
    registry.counter(prefix + ".predictions", &predictions_,
                     "prefetch candidates emitted");
    registry.gauge(
        prefix + ".index_live",
        [this] {
            double live = 0.0;
            for (const IndexEntry &entry : index_)
                live += entry.valid ? 1.0 : 0.0;
            return live;
        },
        "valid index-table entries");
}

} // namespace csp::prefetch
