/**
 * @file
 * Global History Buffer prefetcher (Nesbit & Smith, HPCA 2004) in its two
 * delta-correlating flavors evaluated by the paper: Global/DC (one global
 * access stream) and PC/DC (streams localised by the load PC).
 *
 * The GHB is a circular buffer of recent access addresses; each entry is
 * chained to the previous entry of the same index-table key. Delta
 * correlation reconstructs the key's recent address stream, takes the
 * last `history_length - 1` deltas as a pattern, finds that pattern's
 * previous occurrence in the stream, and replays the deltas that followed
 * it as prefetch candidates.
 *
 * Following the original design, the GHB trains on the L1 miss stream
 * (plus accesses that hit prefetched lines, so training continues once
 * prefetching becomes effective).
 */

#ifndef CSP_PREFETCH_GHB_H
#define CSP_PREFETCH_GHB_H

#include <cstdint>
#include <vector>

#include "core/config.h"
#include "prefetch/prefetcher.h"

namespace csp::prefetch {

/** Index-table localisation of the GHB. */
enum class GhbFlavor
{
    GlobalDC, ///< one global stream ("G/DC")
    PcDC,     ///< streams localised by load PC ("PC/DC")
};

/** See file comment. */
class GhbPrefetcher final : public Prefetcher
{
  public:
    GhbPrefetcher(const GhbConfig &config, GhbFlavor flavor,
                  unsigned line_bytes = 64);

    std::string name() const override;

    void observe(const AccessInfo &info,
                 std::vector<PrefetchRequest> &out) override;

    void registerStats(stats::Registry &registry) const override;

  private:
    struct GhbEntry
    {
        Addr line = 0;
        std::uint64_t prev = kNoLink; ///< global position of predecessor
    };

    struct IndexEntry
    {
        Addr key_tag = 0;
        bool valid = false;
        std::uint64_t head = kNoLink; ///< global position of newest entry
    };

    static constexpr std::uint64_t kNoLink = ~0ull;
    /// Upper bound on chain reconstruction work per access.
    static constexpr std::size_t kMaxChain = 64;

    Addr indexKey(const AccessInfo &info) const;

    /** Reconstruct the key's recent line stream, oldest first. */
    void rebuildStream(std::uint64_t head, std::vector<Addr> &stream) const;

    GhbConfig config_;
    GhbFlavor flavor_;
    unsigned line_bytes_;
    std::vector<GhbEntry> buffer_;
    std::uint64_t next_pos_ = 0; ///< global insertion counter
    std::vector<IndexEntry> index_;
    std::vector<Addr> scratch_stream_;
    std::vector<std::int64_t> scratch_deltas_;
    std::uint64_t predictions_ = 0;
};

} // namespace csp::prefetch

#endif // CSP_PREFETCH_GHB_H
