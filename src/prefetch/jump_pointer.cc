#include "prefetch/jump_pointer.h"

#include "core/hashing.h"

namespace csp::prefetch {

JumpPointerPrefetcher::JumpPointerPrefetcher(
    const JumpPointerConfig &config, unsigned line_bytes)
    : config_(config),
      line_bytes_(line_bytes),
      pointers_(config.pointer_table_entries),
      producers_(config.producer_entries)
{}

JumpPointerPrefetcher::PointerEntry &
JumpPointerPrefetcher::pointerSlot(Addr line)
{
    return pointers_[mix64(line) % pointers_.size()];
}

JumpPointerPrefetcher::ProducerEntry &
JumpPointerPrefetcher::producerSlot(Addr pc)
{
    return producers_[mix64(pc) % producers_.size()];
}

void
JumpPointerPrefetcher::observe(const AccessInfo &info,
                               std::vector<PrefetchRequest> &out)
{
    if (info.is_store)
        return;

    const Addr line = info.line_addr;

    // Dependence detection: this load's address falls inside the block
    // named by the previous load's returned value — the pointer-chase
    // signature the Roth et al. predictors key on.
    if (last_loaded_value_ != 0 &&
        alignDown(last_loaded_value_, line_bytes_) == line) {
        ProducerEntry &producer = producerSlot(last_load_pc_);
        if (!producer.valid || producer.pc_tag != last_load_pc_) {
            producer = ProducerEntry{};
            producer.pc_tag = last_load_pc_;
            producer.valid = true;
        }
        if (producer.confidence < 3)
            ++producer.confidence;
    }

    // Jump-pointer training: remember what this block pointed to.
    if (info.loaded_value != 0) {
        PointerEntry &entry = pointerSlot(line);
        entry.line_tag = line;
        entry.pointee = info.loaded_value;
        entry.valid = true;
    }

    // Prediction: from a confident chasing site, launch a bounded
    // chain of prefetches through the stored jump pointers.
    const ProducerEntry &producer = producerSlot(info.pc);
    if (producer.valid && producer.pc_tag == info.pc &&
        producer.confidence >= 2 && info.loaded_value != 0) {
        Addr cursor = alignDown(info.loaded_value, line_bytes_);
        for (unsigned depth = 0; depth < config_.chain_depth;
             ++depth) {
            if (cursor == 0 || cursor == line)
                break;
            out.push_back({cursor, false, info.pc});
            const PointerEntry &entry = pointerSlot(cursor);
            if (!entry.valid || entry.line_tag != cursor)
                break;
            const Addr next = alignDown(entry.pointee, line_bytes_);
            if (next == cursor)
                break;
            cursor = next;
        }
    }

    last_load_pc_ = info.pc;
    last_loaded_value_ = info.loaded_value;
}

unsigned
JumpPointerPrefetcher::livePointers() const
{
    unsigned live = 0;
    for (const PointerEntry &entry : pointers_) {
        if (entry.valid)
            ++live;
    }
    return live;
}

} // namespace csp::prefetch
