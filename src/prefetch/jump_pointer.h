/**
 * @file
 * Dependence-based / jump-pointer prefetcher in the style of Roth,
 * Moshovos & Sohi (ASPLOS 1998) and Roth & Sohi (ISCA 1999) — the
 * linked-data-structure prefetchers the paper's related-work section
 * positions the context-based approach against.
 *
 * The predictor watches loads whose *returned value* is itself used as
 * the address of a subsequent load (a pointer dereference chain, which
 * our traces expose through loaded_value and the dep_on_prev_load
 * flag). For each producing load PC it records the offset at which the
 * consumer dereferences the pointer; on the next visit it launches a
 * bounded chain of prefetches by chasing stored pointer values through
 * a small correlation table (the "jump pointer" store).
 *
 * Not part of the paper's evaluated lineup (Table 2 scales only GHB
 * and SMS); available in the CLI and experiment runner as "jump" for
 * comparison studies.
 */

#ifndef CSP_PREFETCH_JUMP_POINTER_H
#define CSP_PREFETCH_JUMP_POINTER_H

#include <cstdint>
#include <vector>

#include "core/config.h"
#include "prefetch/prefetcher.h"

namespace csp::prefetch {

/** Configuration for the jump-pointer prefetcher. */
struct JumpPointerConfig
{
    unsigned pointer_table_entries = 4096; ///< line -> pointee map
    unsigned producer_entries = 256;       ///< chasing load sites
    unsigned chain_depth = 3;              ///< prefetches per trigger
};

/** See file comment. */
class JumpPointerPrefetcher final : public Prefetcher
{
  public:
    explicit JumpPointerPrefetcher(const JumpPointerConfig &config,
                                   unsigned line_bytes = 64);

    std::string name() const override { return "jump"; }

    void observe(const AccessInfo &info,
                 std::vector<PrefetchRequest> &out) override;

    /** Pointer-table occupancy (diagnostics/tests). */
    unsigned livePointers() const;

  private:
    /** line address -> pointer value loaded from it. */
    struct PointerEntry
    {
        Addr line_tag = kInvalidAddr;
        Addr pointee = 0;
        bool valid = false;
    };

    /** A load site observed to chase pointers. */
    struct ProducerEntry
    {
        Addr pc_tag = 0;
        bool valid = false;
        unsigned confidence = 0; ///< saturating, chase evidence
    };

    PointerEntry &pointerSlot(Addr line);
    ProducerEntry &producerSlot(Addr pc);

    JumpPointerConfig config_;
    unsigned line_bytes_;
    std::vector<PointerEntry> pointers_;
    std::vector<ProducerEntry> producers_;
    Addr last_loaded_value_ = 0;
    Addr last_load_pc_ = 0;
};

} // namespace csp::prefetch

#endif // CSP_PREFETCH_JUMP_POINTER_H
