#include "prefetch/markov.h"

#include <algorithm>

#include "core/hashing.h"
#include "core/logging.h"
#include "core/stats_registry.h"

namespace csp::prefetch {

MarkovPrefetcher::MarkovPrefetcher(const MarkovConfig &config)
    : config_(config), table_(config.table_entries)
{
    CSP_ASSERT(config.successors <= 8);
}

MarkovPrefetcher::Entry &
MarkovPrefetcher::entryFor(Addr line)
{
    return table_[mix64(line) % table_.size()];
}

void
MarkovPrefetcher::observe(const AccessInfo &info,
                          std::vector<PrefetchRequest> &out)
{
    // Model the L1 miss stream, like the original proposal.
    if (!info.l1_miss && !info.hit_prefetched_line)
        return;

    const Addr line = info.line_addr;

    // Train: prev_line transitions to line.
    if (prev_line_ != kInvalidAddr && prev_line_ != line) {
        Entry &entry = entryFor(prev_line_);
        if (!entry.valid || entry.line_tag != prev_line_) {
            entry = Entry{};
            entry.line_tag = prev_line_;
            entry.valid = true;
        }
        Successor *slot = nullptr;
        for (unsigned i = 0; i < config_.successors; ++i) {
            Successor &s = entry.successors[i];
            if (s.line == line) {
                slot = &s;
                break;
            }
            if (slot == nullptr || s.count < slot->count)
                slot = &s;
        }
        if (slot->line == line) {
            slot->count = std::min(slot->count + 1, 3u);
        } else if (slot->count > 0) {
            --slot->count; // decay the weakest before replacing it
        } else {
            slot->line = line;
            slot->count = 1;
        }
    }
    prev_line_ = line;

    // Predict: strongest successors of the current line.
    Entry &entry = entryFor(line);
    if (entry.valid && entry.line_tag == line) {
        const unsigned slots = std::min(config_.successors, 8u);
        std::array<Successor, 8> sorted = entry.successors;
        std::sort(sorted.begin(), sorted.begin() + slots,
                  [](const Successor &a, const Successor &b) {
                      return a.count > b.count;
                  });
        unsigned issued = 0;
        for (unsigned i = 0; i < slots && issued < config_.degree;
             ++i) {
            if (sorted[i].count == 0 || sorted[i].line == kInvalidAddr)
                break;
            out.push_back({sorted[i].line, false, info.pc});
            ++predictions_;
            ++issued;
        }
    }
}

void
MarkovPrefetcher::registerStats(stats::Registry &registry) const
{
    registry.counter("prefetch.markov.predictions", &predictions_,
                     "prefetch candidates emitted");
    registry.gauge(
        "prefetch.markov.table_live",
        [this] {
            double live = 0.0;
            for (const Entry &entry : table_)
                live += entry.valid ? 1.0 : 0.0;
            return live;
        },
        "valid Markov-table entries");
}

} // namespace csp::prefetch
