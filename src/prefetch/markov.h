/**
 * @file
 * Markov prefetcher (Joseph & Grunwald, ISCA 1997): models the miss
 * stream as a first-order Markov process over line addresses. Discussed
 * in the paper's related work as the closest prior machine-learning
 * approach; included as an additional baseline because it is the natural
 * context-free ancestor of the context-based prefetcher.
 */

#ifndef CSP_PREFETCH_MARKOV_H
#define CSP_PREFETCH_MARKOV_H

#include <array>
#include <cstdint>
#include <vector>

#include "core/config.h"
#include "prefetch/prefetcher.h"

namespace csp::prefetch {

/** See file comment. */
class MarkovPrefetcher final : public Prefetcher
{
  public:
    explicit MarkovPrefetcher(const MarkovConfig &config);

    std::string name() const override { return "markov"; }

    void observe(const AccessInfo &info,
                 std::vector<PrefetchRequest> &out) override;

    void registerStats(stats::Registry &registry) const override;

  private:
    struct Successor
    {
        Addr line = kInvalidAddr;
        unsigned count = 0; ///< 2-bit saturating
    };

    struct Entry
    {
        Addr line_tag = kInvalidAddr;
        bool valid = false;
        std::array<Successor, 8> successors{};
    };

    Entry &entryFor(Addr line);

    MarkovConfig config_;
    std::vector<Entry> table_;
    Addr prev_line_ = kInvalidAddr;
    std::uint64_t predictions_ = 0;
};

} // namespace csp::prefetch

#endif // CSP_PREFETCH_MARKOV_H
