/**
 * @file
 * Tagged next-line prefetcher (Smith, 1982) — the simplest reference
 * point in the prefetching literature. On an L1 miss, or on the first
 * demand touch of a prefetched line (the "tag"), it fetches the next
 * sequential line(s). Not evaluated by the paper; provided as the
 * zero-knowledge baseline for comparison studies via the CLI name
 * "next-line".
 */

#ifndef CSP_PREFETCH_NEXT_LINE_H
#define CSP_PREFETCH_NEXT_LINE_H

#include "prefetch/prefetcher.h"

namespace csp::prefetch {

/** Configuration for the next-line prefetcher. */
struct NextLineConfig
{
    unsigned degree = 1; ///< sequential lines fetched per trigger
};

/** See file comment. */
class NextLinePrefetcher final : public Prefetcher
{
  public:
    explicit NextLinePrefetcher(const NextLineConfig &config,
                                unsigned line_bytes = 64)
        : config_(config), line_bytes_(line_bytes)
    {}

    std::string name() const override { return "next-line"; }

    void
    observe(const AccessInfo &info,
            std::vector<PrefetchRequest> &out) override
    {
        if (!info.l1_miss && !info.hit_prefetched_line)
            return;
        for (unsigned i = 1; i <= config_.degree; ++i) {
            out.push_back(
                {info.line_addr + static_cast<Addr>(i) * line_bytes_,
                 false, info.pc});
        }
    }

  private:
    NextLineConfig config_;
    unsigned line_bytes_;
};

} // namespace csp::prefetch

#endif // CSP_PREFETCH_NEXT_LINE_H
