#include "prefetch/prefetcher.h"

namespace csp::prefetch {

Prefetcher::~Prefetcher() = default;

} // namespace csp::prefetch
