/**
 * @file
 * The prefetcher interface shared by the context-based prefetcher (the
 * paper's contribution) and the competing spatio-temporal prefetchers it
 * is evaluated against (stride, GHB G/DC, GHB PC/DC, SMS, Markov).
 *
 * The simulator calls observe() once per demand access, in program
 * order, with the access's machine context and memory-system pressure;
 * the prefetcher appends candidate prefetches (real or shadow) to the
 * output vector. The simulator dispatches real candidates to the
 * hierarchy and reports each outcome back through onPrefetchOutcome().
 */

#ifndef CSP_PREFETCH_PREFETCHER_H
#define CSP_PREFETCH_PREFETCHER_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/stats.h"
#include "core/types.h"
#include "mem/hierarchy.h"
#include "trace/context.h"

namespace csp::stats {
class Registry;
}

namespace csp::obs {
class RlTap;
class LearningObserver;
}

namespace csp::prof {
class Profiler;
}

namespace csp::prefetch {

/** One candidate emitted by a prefetcher. */
struct PrefetchRequest
{
    Addr addr = 0;
    /**
     * Shadow operations (paper section 4.1) are tracked for training but
     * never dispatched to the memory system.
     */
    bool shadow = false;
    /// Demand PC the candidate was predicted from — lifecycle-tracker
    /// attribution only, never consulted by the memory system.
    Addr pc = 0;
};

/** Everything a prefetcher may inspect about the current demand access. */
struct AccessInfo
{
    AccessSeq seq = 0;   ///< index of this access in the demand stream
    Cycle cycle = 0;     ///< issue cycle of the access
    Addr pc = 0;
    Addr vaddr = 0;
    Addr line_addr = 0;  ///< vaddr aligned to the L1 line
    bool is_store = false;
    bool l1_miss = false;
    bool hit_prefetched_line = false;
    unsigned free_l1_mshrs = 0; ///< throttle input
    /// Value returned by this load (0 when unknown/not a load). Used
    /// by pointer-aware prefetchers (jump-pointer chasing).
    std::uint64_t loaded_value = 0;
    /// Full machine context (paper Table 1); never null.
    const trace::ContextSnapshot *context = nullptr;
};

/** Abstract prefetcher. */
class Prefetcher
{
  public:
    virtual ~Prefetcher();

    /** Short identifier, e.g. "context", "ghb-gdc". */
    virtual std::string name() const = 0;

    /** Observe one demand access; append candidates to @p out. */
    virtual void observe(const AccessInfo &info,
                         std::vector<PrefetchRequest> &out) = 0;

    /** Dispatch outcome for a previously emitted real candidate. */
    virtual void
    onPrefetchOutcome(Addr addr, mem::PrefetchOutcome outcome)
    {
        (void)addr;
        (void)outcome;
    }

    /** End-of-run hook (flush training structures into stats). */
    virtual void finish() {}

    /**
     * Hit-depth histogram (accesses between prediction and use), when
     * the prefetcher tracks one — the context prefetcher's feedback unit
     * does (paper Figure 8). Null otherwise.
     */
    virtual const Histogram *hitDepths() const { return nullptr; }

    /**
     * Register internal counters and gauges with the run's stats
     * registry — baselines under "prefetch.<name>.*", the context
     * prefetcher under "context.*". The registry reads through
     * pointers into this object, so it must not outlive the
     * prefetcher. Default: no stats.
     */
    virtual void registerStats(stats::Registry &registry) const
    {
        (void)registry;
    }

    /**
     * Attach a learning-event tap (reward applications, bandit
     * snapshots). Only prefetchers that learn online emit anything;
     * the default ignores the tap. Pass nullptr to detach.
     */
    virtual void setRlTap(obs::RlTap *tap) { (void)tap; }

    /**
     * Attach a learning observer (arm selections, epsilon adaptation,
     * action-store probe/insert traffic, periodic learning-state
     * snapshots). Only prefetchers that learn online emit anything;
     * the default ignores it. Pass nullptr to detach.
     */
    virtual void setLearningObserver(obs::LearningObserver *learn)
    {
        (void)learn;
    }

    /**
     * Attach a self-profiler so the prefetcher can attribute its
     * observe() time to finer train/predict phases. Only prefetchers
     * with a meaningful split implement this; the default ignores it.
     * Pass nullptr to detach (the simulator does, at end of run).
     */
    virtual void setProfiler(prof::Profiler *profiler)
    {
        (void)profiler;
    }
};

/**
 * The no-op prefetcher: the paper's "baseline with no prefetching".
 */
class NullPrefetcher final : public Prefetcher
{
  public:
    std::string name() const override { return "none"; }

    void
    observe(const AccessInfo &, std::vector<PrefetchRequest> &) override
    {}
};

} // namespace csp::prefetch

#endif // CSP_PREFETCH_PREFETCHER_H
