#include "prefetch/sms.h"

#include "core/hashing.h"
#include "core/logging.h"
#include "core/stats_registry.h"

namespace csp::prefetch {

SmsPrefetcher::SmsPrefetcher(const SmsConfig &config)
    : config_(config),
      lines_per_region_(
          static_cast<unsigned>(config.region_bytes / config.line_bytes)),
      filter_(config.filter_entries),
      agt_(config.agt_entries),
      pht_(config.pht_entries)
{
    CSP_ASSERT(lines_per_region_ >= 2 && lines_per_region_ <= 64);
}

std::uint64_t
SmsPrefetcher::triggerKey(Addr pc, unsigned offset_line) const
{
    return hashCombine(pc, offset_line);
}

void
SmsPrefetcher::trainPht(const AgtEntry &entry)
{
    // Single-access generations carry no spatial information.
    if ((entry.pattern & (entry.pattern - 1)) == 0)
        return;
    PhtEntry &slot = pht_[mix64(entry.trigger_key) % pht_.size()];
    slot.key_tag = entry.trigger_key;
    slot.pattern = entry.pattern;
    slot.valid = true;
}

void
SmsPrefetcher::observe(const AccessInfo &info,
                       std::vector<PrefetchRequest> &out)
{
    const Addr region = info.vaddr / config_.region_bytes;
    const unsigned offset_line = static_cast<unsigned>(
        (info.vaddr % config_.region_bytes) / config_.line_bytes);
    ++lru_clock_;

    // Already accumulating this region?
    for (AgtEntry &entry : agt_) {
        if (entry.valid && entry.region == region) {
            entry.pattern |= 1ull << offset_line;
            entry.lru = lru_clock_;
            return;
        }
    }

    // Second access to a filtered region promotes it to the AGT.
    for (FilterEntry &fe : filter_) {
        if (fe.valid && fe.region == region) {
            if (fe.first_line == offset_line)
                return; // same line again: still a single-line region
            AgtEntry *victim = nullptr;
            for (AgtEntry &entry : agt_) {
                if (!entry.valid) {
                    victim = &entry;
                    break;
                }
                if (victim == nullptr || entry.lru < victim->lru)
                    victim = &entry;
            }
            if (victim->valid)
                trainPht(*victim);
            victim->valid = true;
            victim->region = region;
            victim->trigger_key = fe.trigger_key;
            victim->pattern =
                (1ull << fe.first_line) | (1ull << offset_line);
            victim->lru = lru_clock_;
            fe.valid = false;
            return;
        }
    }

    // First access to the region: this is the trigger. Predict from the
    // PHT, then start tracking a new generation in the filter.
    const std::uint64_t key = triggerKey(info.pc, offset_line);
    const PhtEntry &pred = pht_[mix64(key) % pht_.size()];
    if (pred.valid && pred.key_tag == key) {
        const Addr region_base = region * config_.region_bytes;
        for (unsigned line = 0; line < lines_per_region_; ++line) {
            if (line == offset_line)
                continue;
            if (pred.pattern & (1ull << line)) {
                out.push_back(
                    {region_base + static_cast<Addr>(line) *
                                       config_.line_bytes,
                     false, info.pc});
                ++predictions_;
            }
        }
    }

    FilterEntry *victim = nullptr;
    for (FilterEntry &fe : filter_) {
        if (!fe.valid) {
            victim = &fe;
            break;
        }
        if (victim == nullptr || fe.lru < victim->lru)
            victim = &fe;
    }
    victim->valid = true;
    victim->region = region;
    victim->trigger_key = key;
    victim->first_line = offset_line;
    victim->lru = lru_clock_;
}

void
SmsPrefetcher::finish()
{
    // Close out live generations so their patterns are not lost.
    for (AgtEntry &entry : agt_) {
        if (entry.valid)
            trainPht(entry);
        entry.valid = false;
    }
}

void
SmsPrefetcher::registerStats(stats::Registry &registry) const
{
    registry.counter("prefetch.sms.predictions", &predictions_,
                     "prefetch candidates emitted");
    registry.gauge(
        "prefetch.sms.pht_live",
        [this] {
            double live = 0.0;
            for (const PhtEntry &entry : pht_)
                live += entry.valid ? 1.0 : 0.0;
            return live;
        },
        "trained pattern-history-table entries");
}

} // namespace csp::prefetch
