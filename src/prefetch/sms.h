/**
 * @file
 * Spatial Memory Streaming prefetcher (Somogyi et al., ISCA 2006) — the
 * strongest competing prefetcher in the paper's evaluation.
 *
 * SMS records, per *spatial region generation*, the bit pattern of lines
 * touched while the region is live, indexed by the (PC, region offset)
 * of the triggering access. When the same trigger recurs, the recorded
 * pattern is prefetched wholesale.
 *
 * Structures (paper Table 2): a Filter Table holding regions with a
 * single access so far, an Active Generation Table (AGT) accumulating
 * patterns of live regions, and a Pattern History Table (PHT) holding
 * trained patterns. A generation ends when its AGT entry is evicted, at
 * which point the pattern trains the PHT.
 */

#ifndef CSP_PREFETCH_SMS_H
#define CSP_PREFETCH_SMS_H

#include <cstdint>
#include <vector>

#include "core/config.h"
#include "prefetch/prefetcher.h"

namespace csp::prefetch {

/** See file comment. */
class SmsPrefetcher final : public Prefetcher
{
  public:
    explicit SmsPrefetcher(const SmsConfig &config);

    std::string name() const override { return "sms"; }

    void observe(const AccessInfo &info,
                 std::vector<PrefetchRequest> &out) override;

    void finish() override;

    void registerStats(stats::Registry &registry) const override;

  private:
    struct FilterEntry
    {
        Addr region = kInvalidAddr;
        std::uint64_t trigger_key = 0;
        unsigned first_line = 0;
        std::uint64_t lru = 0;
        bool valid = false;
    };

    struct AgtEntry
    {
        Addr region = kInvalidAddr;
        std::uint64_t trigger_key = 0;
        std::uint64_t pattern = 0; ///< bit per line in the region
        std::uint64_t lru = 0;
        bool valid = false;
    };

    struct PhtEntry
    {
        std::uint64_t key_tag = 0;
        std::uint64_t pattern = 0;
        bool valid = false;
    };

    std::uint64_t triggerKey(Addr pc, unsigned offset_line) const;
    void trainPht(const AgtEntry &entry);

    SmsConfig config_;
    unsigned lines_per_region_;
    std::vector<FilterEntry> filter_;
    std::vector<AgtEntry> agt_;
    std::vector<PhtEntry> pht_;
    std::uint64_t lru_clock_ = 0;
    std::uint64_t predictions_ = 0;
};

} // namespace csp::prefetch

#endif // CSP_PREFETCH_SMS_H
