#include "prefetch/stride.h"

#include "core/hashing.h"
#include "core/stats_registry.h"

namespace csp::prefetch {

StridePrefetcher::StridePrefetcher(const StrideConfig &config,
                                   unsigned line_bytes)
    : config_(config), line_bytes_(line_bytes),
      table_(config.table_entries)
{}

void
StridePrefetcher::observe(const AccessInfo &info,
                          std::vector<PrefetchRequest> &out)
{
    Entry &entry = table_[mix64(info.pc) % table_.size()];
    if (!entry.valid || entry.pc_tag != info.pc) {
        entry = Entry{};
        entry.pc_tag = info.pc;
        entry.valid = true;
        entry.last_addr = info.vaddr;
        return;
    }
    const std::int64_t delta =
        static_cast<std::int64_t>(info.vaddr) -
        static_cast<std::int64_t>(entry.last_addr);
    if (delta == entry.stride && delta != 0) {
        if (entry.confidence < 3)
            ++entry.confidence;
    } else {
        if (entry.confidence > 0)
            --entry.confidence;
        else
            entry.stride = delta;
    }
    entry.last_addr = info.vaddr;

    if (entry.confidence >= config_.confidence_threshold &&
        entry.stride != 0) {
        Addr prev_line = kInvalidAddr;
        for (unsigned i = 1; i <= config_.degree; ++i) {
            const Addr target =
                info.vaddr + static_cast<Addr>(entry.stride * i);
            const Addr line = alignDown(target, line_bytes_);
            if (line != prev_line &&
                line != alignDown(info.vaddr, line_bytes_)) {
                out.push_back({line, false, info.pc});
                prev_line = line;
                ++predictions_;
            }
        }
    }
}

void
StridePrefetcher::registerStats(stats::Registry &registry) const
{
    registry.counter("prefetch.stride.predictions", &predictions_,
                     "prefetch candidates emitted");
    registry.gauge(
        "prefetch.stride.table_live",
        [this] {
            double live = 0.0;
            for (const Entry &entry : table_)
                live += entry.valid ? 1.0 : 0.0;
            return live;
        },
        "valid PC-indexed table entries");
}

} // namespace csp::prefetch
