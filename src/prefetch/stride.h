/**
 * @file
 * Classic PC-indexed stride prefetcher (Fu, Patel & Janssens, MICRO
 * 1992) — evaluated by the paper but "significantly lower" than the
 * others; included here both as a baseline and as the fastest-training
 * comparison point for the training-speed limitation discussed in paper
 * section 7.3.
 */

#ifndef CSP_PREFETCH_STRIDE_H
#define CSP_PREFETCH_STRIDE_H

#include <vector>

#include "core/config.h"
#include "prefetch/prefetcher.h"

namespace csp::prefetch {

/** See file comment. */
class StridePrefetcher final : public Prefetcher
{
  public:
    explicit StridePrefetcher(const StrideConfig &config,
                              unsigned line_bytes = 64);

    std::string name() const override { return "stride"; }

    void observe(const AccessInfo &info,
                 std::vector<PrefetchRequest> &out) override;

    void registerStats(stats::Registry &registry) const override;

  private:
    struct Entry
    {
        Addr pc_tag = 0;
        bool valid = false;
        Addr last_addr = 0;
        std::int64_t stride = 0;
        unsigned confidence = 0;
    };

    StrideConfig config_;
    unsigned line_bytes_;
    std::vector<Entry> table_;
    std::uint64_t predictions_ = 0;
};

} // namespace csp::prefetch

#endif // CSP_PREFETCH_STRIDE_H
