#include "runtime/arena.h"

#include <algorithm>

#include "core/logging.h"

namespace csp::runtime {

Arena::Arena(std::uint64_t capacity_bytes, Placement placement,
             std::uint64_t seed, Addr base_addr)
    : capacity_(capacity_bytes),
      placement_(placement),
      base_addr_(base_addr),
      rng_(seed),
      buffer_(new std::byte[capacity_bytes])
{
    CSP_ASSERT(capacity_bytes >= kMaxClass);
    unsigned classes = classIndex(kMaxClass) + 1;
    free_lists_.resize(classes);
}

unsigned
Arena::classIndex(std::size_t size)
{
    std::size_t rounded = kMinClass;
    unsigned index = 0;
    while (rounded < size) {
        rounded <<= 1;
        ++index;
    }
    return index;
}

std::size_t
Arena::classSize(unsigned index)
{
    return kMinClass << index;
}

void
Arena::carveSlab(unsigned class_index)
{
    const std::size_t slot = classSize(class_index);
    const std::uint64_t slab_bytes =
        static_cast<std::uint64_t>(slot) * kSlotsPerSlab;
    if (bump_ + slab_bytes > capacity_) {
        fatal("Arena exhausted: capacity %llu, need %llu more",
              static_cast<unsigned long long>(capacity_),
              static_cast<unsigned long long>(bump_ + slab_bytes -
                                              capacity_));
    }
    auto &list = free_lists_[class_index];
    const std::size_t first = list.size();
    for (std::size_t i = 0; i < kSlotsPerSlab; ++i)
        list.push_back(bump_ + i * slot);
    bump_ += slab_bytes;
    if (placement_ == Placement::Randomized) {
        // Fisher-Yates over the newly added slots only.
        for (std::size_t i = list.size() - 1; i > first; --i) {
            std::size_t j =
                first + static_cast<std::size_t>(
                            rng_.below(static_cast<std::uint64_t>(
                                i - first + 1)));
            std::swap(list[i], list[j]);
        }
    } else {
        // LIFO stack: reverse so that pops come out in address order.
        std::reverse(list.begin() + static_cast<std::ptrdiff_t>(first),
                     list.end());
    }
}

void *
Arena::allocate(std::size_t size)
{
    CSP_ASSERT(size > 0);
    if (size > kMaxClass) {
        // Large request: bump-allocate, 64-byte aligned, no reuse.
        std::uint64_t offset = alignUp(bump_, 64);
        if (offset + size > capacity_) {
            fatal("Arena exhausted on large allocation of %zu bytes",
                  size);
        }
        bump_ = offset + size;
        bytes_live_ += size;
        return buffer_.get() + offset;
    }
    unsigned cls = classIndex(size);
    auto &list = free_lists_[cls];
    if (list.empty())
        carveSlab(cls);
    std::uint64_t offset = list.back();
    list.pop_back();
    bytes_live_ += classSize(cls);
    return buffer_.get() + offset;
}

void
Arena::deallocate(void *ptr, std::size_t size)
{
    if (ptr == nullptr)
        return;
    CSP_ASSERT(size > 0);
    const auto *bytes = static_cast<const std::byte *>(ptr);
    CSP_ASSERT(bytes >= buffer_.get() && bytes < buffer_.get() + capacity_);
    if (size > kMaxClass) {
        bytes_live_ -= size;
        return; // large blocks are not recycled
    }
    unsigned cls = classIndex(size);
    free_lists_[cls].push_back(
        static_cast<std::uint64_t>(bytes - buffer_.get()));
    bytes_live_ -= classSize(cls);
}

Addr
Arena::addrOf(const void *ptr) const
{
    const auto *bytes = static_cast<const std::byte *>(ptr);
    CSP_ASSERT(bytes >= buffer_.get() && bytes < buffer_.get() + capacity_);
    return base_addr_ +
           static_cast<Addr>(bytes - buffer_.get());
}

void *
Arena::hostOf(Addr addr) const
{
    CSP_ASSERT(contains(addr));
    return buffer_.get() + (addr - base_addr_);
}

bool
Arena::contains(Addr addr) const
{
    return addr >= base_addr_ && addr < base_addr_ + capacity_;
}

} // namespace csp::runtime
