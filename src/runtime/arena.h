/**
 * @file
 * Deterministic simulated heap.
 *
 * Workload kernels build real, operating data structures (lists, trees,
 * graphs) inside an Arena. The arena hands out host pointers backed by one
 * contiguous buffer, and every host pointer maps 1:1 to a *simulated*
 * virtual address that the trace layer reports to the memory model. This
 * gives three properties the experiments need:
 *
 *  1. Determinism — identical seeds produce identical address streams, so
 *     every figure regenerates bit-exactly.
 *  2. Controlled layout — with placement randomisation on, consecutive
 *     allocations land in shuffled slots of a slab, reproducing the
 *     "dynamically allocated at random points" layouts of paper Figure 1
 *     without depending on host-allocator behaviour.
 *  3. Layout contrast — the same kernel can run over a sequential arena
 *     (spatially-optimised layout) and a randomised one (naive linked
 *     layout) for the Figure 14 experiment.
 *
 * Allocation uses power-of-two size classes with slab carving; free()
 * returns a slot to its class's free stack.
 */

#ifndef CSP_RUNTIME_ARENA_H
#define CSP_RUNTIME_ARENA_H

#include <cstddef>
#include <memory>
#include <vector>

#include "core/rng.h"
#include "core/types.h"

namespace csp::runtime {

/** Placement policy for newly carved slabs. */
enum class Placement
{
    Sequential, ///< slots handed out in address order (spatial layout)
    Randomized, ///< slots handed out in shuffled order (scattered layout)
};

/** Deterministic simulated heap; see file comment. */
class Arena
{
  public:
    /**
     * @param capacity_bytes backing-buffer size; allocation beyond it is
     *        a fatal error (size your workload accordingly).
     * @param placement slot hand-out order within carved slabs.
     * @param seed shuffle seed for randomised placement.
     * @param base_addr simulated address of the first byte.
     */
    explicit Arena(std::uint64_t capacity_bytes,
                   Placement placement = Placement::Sequential,
                   std::uint64_t seed = 1,
                   Addr base_addr = 0x10000000ull);

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /** Allocate @p size bytes; returns a host pointer into the buffer. */
    void *allocate(std::size_t size);

    /** Return @p ptr (from allocate()) to its size-class free stack. */
    void deallocate(void *ptr, std::size_t size);

    /** Typed allocation + default construction. */
    template <typename T, typename... Args>
    T *
    make(Args &&...args)
    {
        void *raw = allocate(sizeof(T));
        return new (raw) T(std::forward<Args>(args)...);
    }

    /** Typed destroy + deallocation. */
    template <typename T>
    void
    destroy(T *ptr)
    {
        ptr->~T();
        deallocate(ptr, sizeof(T));
    }

    /** Simulated address of a host pointer returned by allocate(). */
    Addr addrOf(const void *ptr) const;

    /** Host pointer for a simulated address inside the arena. */
    void *hostOf(Addr addr) const;

    /** True iff @p addr lies inside this arena's simulated range. */
    bool contains(Addr addr) const;

    /** Simulated base address. */
    Addr baseAddr() const { return base_addr_; }

    /** Bytes handed out to live allocations. */
    std::uint64_t bytesLive() const { return bytes_live_; }

    /** High-water mark of carved slab space. */
    std::uint64_t bytesCarved() const { return bump_; }

    /** Backing capacity. */
    std::uint64_t capacity() const { return capacity_; }

  private:
    /// Slots carved per slab, per size class.
    static constexpr std::size_t kSlotsPerSlab = 64;
    /// Smallest size class in bytes.
    static constexpr std::size_t kMinClass = 16;
    /// Largest slabbed size class; bigger requests are bump-allocated.
    static constexpr std::size_t kMaxClass = 8192;

    static unsigned classIndex(std::size_t size);
    static std::size_t classSize(unsigned index);

    void carveSlab(unsigned class_index);

    std::uint64_t capacity_;
    Placement placement_;
    Addr base_addr_;
    Rng rng_;
    std::unique_ptr<std::byte[]> buffer_;
    std::uint64_t bump_ = 0;      ///< next un-carved offset
    std::uint64_t bytes_live_ = 0;
    /// Free slot offsets per size class (LIFO).
    std::vector<std::vector<std::uint64_t>> free_lists_;
};

} // namespace csp::runtime

#endif // CSP_RUNTIME_ARENA_H
