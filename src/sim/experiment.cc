#include "sim/experiment.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <numeric>

#include "core/hashing.h"
#include "core/logging.h"
#include "core/profiling.h"
#include "core/thread_pool.h"
#include "obs/learning.h"
#include "obs/run_observer.h"
#include "prefetch/context/context_prefetcher.h"
#include "prefetch/ghb.h"
#include "prefetch/jump_pointer.h"
#include "prefetch/markov.h"
#include "prefetch/next_line.h"
#include "prefetch/sms.h"
#include "prefetch/stride.h"

namespace csp::sim {

namespace {

std::string
joinNames(const std::vector<std::string> &names)
{
    std::string joined;
    for (const std::string &name : names) {
        if (!joined.empty())
            joined += ',';
        joined += name;
    }
    return joined;
}

} // namespace

std::unique_ptr<prefetch::Prefetcher>
makePrefetcher(const std::string &name, const SystemConfig &config)
{
    const unsigned line = config.memory.l1d.line_bytes;
    if (name == "none")
        return std::make_unique<prefetch::NullPrefetcher>();
    if (name == "stride") {
        return std::make_unique<prefetch::StridePrefetcher>(
            config.stride, line);
    }
    if (name == "ghb-gdc") {
        return std::make_unique<prefetch::GhbPrefetcher>(
            config.ghb, prefetch::GhbFlavor::GlobalDC, line);
    }
    if (name == "ghb-pcdc") {
        return std::make_unique<prefetch::GhbPrefetcher>(
            config.ghb, prefetch::GhbFlavor::PcDC, line);
    }
    if (name == "sms")
        return std::make_unique<prefetch::SmsPrefetcher>(config.sms);
    if (name == "jump") {
        return std::make_unique<prefetch::JumpPointerPrefetcher>(
            prefetch::JumpPointerConfig{}, line);
    }
    if (name == "next-line") {
        return std::make_unique<prefetch::NextLinePrefetcher>(
            prefetch::NextLineConfig{}, line);
    }
    if (name == "markov") {
        return std::make_unique<prefetch::MarkovPrefetcher>(
            config.markov);
    }
    if (name == "context") {
        return std::make_unique<prefetch::ctx::ContextPrefetcher>(
            config.context, config.seed);
    }
    fatal("unknown prefetcher: %s", name.c_str());
}

std::vector<std::string>
paperPrefetchers()
{
    return {"none", "stride", "ghb-gdc", "ghb-pcdc", "sms", "context"};
}

std::vector<std::string>
ubenchWorkloads()
{
    return {"array", "list",    "listsort", "bst",
            "hashtest", "maptest", "prim",    "ssca_lds"};
}

std::vector<std::string>
specWorkloads()
{
    return {"sjeng", "povray",  "soplex",     "dealII",
            "h264ref", "gobmk", "hmmer",      "bzip2",
            "milc",  "namd",    "omnetpp",    "astar",
            "libquantum", "mcf", "sphinx3",   "lbm"};
}

std::vector<std::string>
irregularWorkloads()
{
    return {"graph500", "graph500-list", "ssca2-csr", "ssca2-list",
            "suffixArray", "BFS", "setCover", "KNN", "convexHull"};
}

std::vector<std::string>
allWorkloads()
{
    std::vector<std::string> names = specWorkloads();
    for (const auto &n : irregularWorkloads())
        names.push_back(n);
    for (const auto &n : ubenchWorkloads())
        names.push_back(n);
    return names;
}

std::uint64_t
effectiveScale(std::uint64_t base)
{
    const char *env = std::getenv("CSP_SCALE");
    if (env == nullptr)
        return base;
    const double factor = std::atof(env);
    if (factor <= 0.0)
        return base;
    return static_cast<std::uint64_t>(
        static_cast<double>(base) * factor);
}

const RunStats &
SweepResult::at(const std::string &workload,
                const std::string &prefetcher) const
{
    for (const CellResult &cell : cells) {
        if (cell.workload == workload && cell.prefetcher == prefetcher)
            return cell.stats;
    }
    fatal("sweep has no cell (%s, %s)", workload.c_str(),
          prefetcher.c_str());
}

double
SweepResult::speedup(const std::string &workload,
                     const std::string &prefetcher) const
{
    const double base = at(workload, "none").ipc();
    const double with = at(workload, prefetcher).ipc();
    return base == 0.0 ? 0.0 : with / base;
}

double
SweepResult::geomeanSpeedup(const std::string &prefetcher) const
{
    std::vector<double> speedups;
    speedups.reserve(workload_names.size());
    for (const std::string &workload : workload_names)
        speedups.push_back(speedup(workload, prefetcher));
    return geomean(speedups);
}

Heartbeat::Heartbeat(std::string label, std::uint64_t total_insts,
                     double min_seconds)
    : label_(std::move(label)),
      total_(total_insts),
      min_seconds_(min_seconds),
      start_(std::chrono::steady_clock::now()),
      last_(start_)
{}

Simulator::ProgressFn
Heartbeat::hook()
{
    return [this](std::uint64_t instructions) { beat(instructions); };
}

void
Heartbeat::setStatus(std::function<std::string()> status)
{
    status_ = std::move(status);
}

void
Heartbeat::beat(std::uint64_t instructions)
{
    const auto now = std::chrono::steady_clock::now();
    const double since_last =
        std::chrono::duration<double>(now - last_).count();
    if (since_last < min_seconds_)
        return;
    last_ = now;
    const double elapsed =
        std::chrono::duration<double>(now - start_).count();
    const double rate =
        elapsed > 0.0 ? static_cast<double>(instructions) / elapsed
                      : 0.0;
    const double pct =
        total_ == 0 ? 0.0
                    : 100.0 * static_cast<double>(instructions) /
                          static_cast<double>(total_);
    // The status suffix is folded into the one inform() call so the
    // line is still a single atomic write (concurrent heartbeats never
    // interleave mid-line).
    std::string status;
    if (status_) {
        status = status_();
        if (!status.empty())
            status.insert(0, ", ");
    }
    inform("%s: %5.1f%% (%.1fM insts, %.2fM insts/s%s)", label_.c_str(),
           pct, static_cast<double>(instructions) / 1e6, rate / 1e6,
           status.c_str());
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 1.0;
    double log_sum = 0.0;
    for (double v : values) {
        if (v <= 0.0) {
            warn("geomean: non-positive value %g clamped to 1e-9 "
                 "(zero-IPC cell — broken run?)",
                 v);
            v = 1e-9;
        }
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

SweepProgress::SweepProgress(std::string label,
                             std::vector<std::uint64_t> cell_totals,
                             unsigned jobs, double min_seconds)
    : label_(std::move(label)),
      totals_(std::move(cell_totals)),
      current_(totals_.size(), 0),
      jobs_(jobs),
      min_seconds_(min_seconds),
      start_(std::chrono::steady_clock::now()),
      last_(start_)
{
    total_sum_ = std::accumulate(totals_.begin(), totals_.end(),
                                 std::uint64_t{0});
}

Simulator::ProgressFn
SweepProgress::hook(std::size_t cell)
{
    return [this, cell](std::uint64_t instructions) {
        update(cell, instructions);
    };
}

void
SweepProgress::update(std::size_t cell, std::uint64_t instructions)
{
    std::lock_guard<std::mutex> lock(mutex_);
    instructions = std::min(instructions, totals_[cell]);
    if (instructions <= current_[cell])
        return;
    done_sum_ += instructions - current_[cell];
    current_[cell] = instructions;

    const auto now = std::chrono::steady_clock::now();
    if (std::chrono::duration<double>(now - last_).count() <
        min_seconds_) {
        return;
    }
    last_ = now;
    report();
}

void
SweepProgress::cellDone(std::size_t cell)
{
    std::lock_guard<std::mutex> lock(mutex_);
    done_sum_ += totals_[cell] - current_[cell];
    current_[cell] = totals_[cell];
    ++cells_done_;
    if (cells_done_ == totals_.size()) {
        last_ = std::chrono::steady_clock::now();
        report();
    }
}

void
SweepProgress::report()
{
    const double elapsed =
        std::chrono::duration<double>(last_ - start_).count();
    const double rate =
        elapsed > 0.0 ? static_cast<double>(done_sum_) / elapsed : 0.0;
    const double pct =
        total_sum_ == 0 ? 100.0
                        : 100.0 * static_cast<double>(done_sum_) /
                              static_cast<double>(total_sum_);
    inform("%s: %5.1f%% (%.1fM/%.1fM insts, %.2fM insts/s, "
           "%zu/%zu cells, jobs=%u)",
           label_.c_str(), pct,
           static_cast<double>(done_sum_) / 1e6,
           static_cast<double>(total_sum_) / 1e6, rate / 1e6,
           cells_done_, totals_.size(), jobs_);
}

SweepResult
runSweep(const std::vector<std::string> &workload_names,
         const std::vector<std::string> &prefetcher_names,
         const workloads::WorkloadParams &params,
         const SystemConfig &config, const SweepOptions &options)
{
    SweepResult result;
    result.workload_names = workload_names;
    result.prefetcher_names = prefetcher_names;
    const std::size_t n_workloads = workload_names.size();
    const std::size_t n_prefetchers = prefetcher_names.size();
    const std::size_t n_cells = n_workloads * n_prefetchers;
    result.manifest = makeRunManifest("runSweep", config);
    result.manifest.seed = params.seed;
    result.manifest.scale = params.scale;
    result.manifest.placement =
        params.placement == runtime::Placement::Sequential ? "seq"
                                                           : "rand";
    result.manifest.workloads = joinNames(workload_names);
    result.manifest.prefetchers = joinNames(prefetcher_names);
    if (n_cells == 0)
        return result;

    const workloads::Registry &registry =
        workloads::Registry::builtin();
    const unsigned jobs = options.jobs != 0
                              ? options.jobs
                              : ThreadPool::defaultJobs();
    result.manifest.jobs = jobs;
    ThreadPool pool(jobs);

    // Phase 1: generate every workload's trace once, workloads in
    // parallel. Each trace is then shared read-only by all of that
    // workload's cells. Summary lines print afterwards in workload
    // order, so verbose output is deterministic.
    const auto trace_gen_start = std::chrono::steady_clock::now();
    std::vector<trace::TraceBuffer> traces(n_workloads);
    pool.parallelFor(n_workloads, [&](std::size_t wi) {
        traces[wi] =
            registry.create(workload_names[wi])->generate(params);
    });
    result.manifest.trace_gen_seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - trace_gen_start)
            .count();
    // Trace provenance must be captured now: traces are released as
    // their last cell completes in phase 2.
    {
        WordHasher combined;
        for (const trace::TraceBuffer &t : traces) {
            combined.add(t.contentDigest());
            result.manifest.trace_records += t.size();
            result.manifest.trace_instructions += t.instructions();
            result.manifest.trace_accesses += t.memAccesses();
        }
        result.manifest.trace_digest =
            hexDigest(combined.digest());
    }
    if (options.verbose) {
        for (std::size_t wi = 0; wi < n_workloads; ++wi) {
            inform("%-14s %8.2fM insts, %6.2fM accesses",
                   workload_names[wi].c_str(),
                   static_cast<double>(traces[wi].instructions()) / 1e6,
                   static_cast<double>(traces[wi].memAccesses()) / 1e6);
        }
    }

    const auto sim_start = std::chrono::steady_clock::now();

    // Phase 2: simulate the independent cells, scheduled longest
    // trace first so a big workload never straggles at the end.
    // Results land in pre-sized row-major slots, so assembly order is
    // identical to the serial path no matter how cells interleave.
    std::vector<std::uint64_t> cell_totals(n_cells);
    for (std::size_t k = 0; k < n_cells; ++k)
        cell_totals[k] = traces[k / n_prefetchers].instructions();

    std::vector<std::size_t> order(n_cells);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&cell_totals](std::size_t a, std::size_t b) {
                         return cell_totals[a] > cell_totals[b];
                     });

    result.cells.resize(n_cells);
    SweepProgress progress("sweep", cell_totals, jobs);
    // Per-workload countdown so the last finishing cell releases its
    // trace — peak memory tapers during the sweep instead of holding
    // every trace until the end.
    std::unique_ptr<std::atomic<std::size_t>[]> cells_left(
        new std::atomic<std::size_t>[n_workloads]);
    for (std::size_t wi = 0; wi < n_workloads; ++wi)
        cells_left[wi].store(n_prefetchers,
                             std::memory_order_relaxed);

    for (const std::size_t k : order) {
        pool.submit([&, k] {
            const std::size_t wi = k / n_prefetchers;
            auto prefetcher = makePrefetcher(
                prefetcher_names[k % n_prefetchers], config);
            Simulator simulator(config);
            obs::PrefetchTracker tracker;
            obs::LearningRecorder learner;
            obs::RunObserver observer;
            prof::Profiler profiler;
            if (options.observe)
                observer.tracker = &tracker;
            if (options.observe_learning)
                observer.learn = &learner;
            if (options.observe || options.observe_learning)
                simulator.setObserver(&observer);
            if (options.profile)
                simulator.setProfiler(&profiler);
            if (options.verbose)
                simulator.setProgress(progress.hook(k));
            CellResult cell;
            cell.workload = workload_names[wi];
            cell.prefetcher = prefetcher_names[k % n_prefetchers];
            cell.stats = simulator.run(traces[wi], *prefetcher);
            result.cells[k] = std::move(cell);
            if (options.verbose)
                progress.cellDone(k);
            if (cells_left[wi].fetch_sub(
                    1, std::memory_order_acq_rel) == 1) {
                traces[wi] = trace::TraceBuffer();
            }
        });
    }
    pool.wait();
    result.manifest.sim_seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - sim_start)
            .count();
    if (result.manifest.sim_seconds > 0.0) {
        std::uint64_t simulated = 0;
        for (const CellResult &cell : result.cells)
            simulated += cell.stats.instructions;
        result.manifest.insts_per_sec =
            static_cast<double>(simulated) /
            result.manifest.sim_seconds;
    }
    return result;
}

SweepResult
runSweep(const std::vector<std::string> &workload_names,
         const std::vector<std::string> &prefetcher_names,
         const workloads::WorkloadParams &params,
         const SystemConfig &config, bool verbose)
{
    SweepOptions options;
    options.verbose = verbose;
    return runSweep(workload_names, prefetcher_names, params, config,
                    options);
}

} // namespace csp::sim
