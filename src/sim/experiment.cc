#include "sim/experiment.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <numeric>

#include "core/content_store.h"
#include "core/hashing.h"
#include "core/logging.h"
#include "core/profiling.h"
#include "core/thread_pool.h"
#include "obs/learning.h"
#include "obs/mem_recorder.h"
#include "obs/run_observer.h"
#include "sim/result_cache.h"
#include "sim/sweep_events.h"
#include "trace/trace_io.h"
#include "prefetch/context/context_prefetcher.h"
#include "prefetch/ghb.h"
#include "prefetch/jump_pointer.h"
#include "prefetch/markov.h"
#include "prefetch/next_line.h"
#include "prefetch/sms.h"
#include "prefetch/stride.h"

namespace csp::sim {

namespace {

std::string
joinNames(const std::vector<std::string> &names)
{
    std::string joined;
    for (const std::string &name : names) {
        if (!joined.empty())
            joined += ',';
        joined += name;
    }
    return joined;
}

/**
 * Cache path of a workload's generated trace. The key folds in
 * kResultCacheEpoch — the same "bump on result-affecting changes"
 * epoch the result cache uses — because a stale trace file is exactly
 * as wrong as a stale result entry: the file's self-digest only proves
 * the bytes match what some past generator produced, not that today's
 * generator agrees. The workload name rides along in the filename for
 * debuggability.
 */
std::string
traceCachePath(const std::string &dir, const std::string &workload,
               const workloads::WorkloadParams &params)
{
    WordHasher h;
    h.add(kResultCacheEpoch);
    h.add(fnv1a({reinterpret_cast<const std::uint8_t *>(workload.data()),
                 workload.size()}));
    h.add(params.scale);
    h.add(params.seed);
    h.add(params.placement == runtime::Placement::Sequential ? 0 : 1);
    return dir + "/" + workload + "-" + hexDigest(h.digest()) +
           ".csptrace";
}

/** Publish @p buffer at @p path atomically (temp sibling + rename);
 *  a failed store only warns — the sweep still has the buffer. */
void
storeTraceInCache(const trace::TraceBuffer &buffer,
                  const std::string &dir, const std::string &path)
{
    if (!ensureDirectories(dir)) {
        warn("trace cache: cannot create %s", dir.c_str());
        return;
    }
    const std::string tmp = uniqueTempPath(path);
    if (!trace::saveTraceFile(buffer, tmp) ||
        !atomicRename(tmp, path)) {
        std::remove(tmp.c_str());
        warn("trace cache: cannot store %s", path.c_str());
    }
}

} // namespace

std::unique_ptr<prefetch::Prefetcher>
makePrefetcher(const std::string &name, const SystemConfig &config)
{
    const unsigned line = config.memory.l1d.line_bytes;
    if (name == "none")
        return std::make_unique<prefetch::NullPrefetcher>();
    if (name == "stride") {
        return std::make_unique<prefetch::StridePrefetcher>(
            config.stride, line);
    }
    if (name == "ghb-gdc") {
        return std::make_unique<prefetch::GhbPrefetcher>(
            config.ghb, prefetch::GhbFlavor::GlobalDC, line);
    }
    if (name == "ghb-pcdc") {
        return std::make_unique<prefetch::GhbPrefetcher>(
            config.ghb, prefetch::GhbFlavor::PcDC, line);
    }
    if (name == "sms")
        return std::make_unique<prefetch::SmsPrefetcher>(config.sms);
    if (name == "jump") {
        return std::make_unique<prefetch::JumpPointerPrefetcher>(
            prefetch::JumpPointerConfig{}, line);
    }
    if (name == "next-line") {
        return std::make_unique<prefetch::NextLinePrefetcher>(
            prefetch::NextLineConfig{}, line);
    }
    if (name == "markov") {
        return std::make_unique<prefetch::MarkovPrefetcher>(
            config.markov);
    }
    if (name == "context") {
        return std::make_unique<prefetch::ctx::ContextPrefetcher>(
            config.context, config.seed);
    }
    fatal("unknown prefetcher: %s", name.c_str());
}

std::vector<std::string>
paperPrefetchers()
{
    return {"none", "stride", "ghb-gdc", "ghb-pcdc", "sms", "context"};
}

std::vector<std::string>
ubenchWorkloads()
{
    return {"array", "list",    "listsort", "bst",
            "hashtest", "maptest", "prim",    "ssca_lds"};
}

std::vector<std::string>
specWorkloads()
{
    return {"sjeng", "povray",  "soplex",     "dealII",
            "h264ref", "gobmk", "hmmer",      "bzip2",
            "milc",  "namd",    "omnetpp",    "astar",
            "libquantum", "mcf", "sphinx3",   "lbm"};
}

std::vector<std::string>
irregularWorkloads()
{
    return {"graph500", "graph500-list", "ssca2-csr", "ssca2-list",
            "suffixArray", "BFS", "setCover", "KNN", "convexHull"};
}

std::vector<std::string>
allWorkloads()
{
    std::vector<std::string> names = specWorkloads();
    for (const auto &n : irregularWorkloads())
        names.push_back(n);
    for (const auto &n : ubenchWorkloads())
        names.push_back(n);
    return names;
}

std::uint64_t
effectiveScale(std::uint64_t base)
{
    const char *env = std::getenv("CSP_SCALE");
    if (env == nullptr)
        return base;
    const double factor = std::atof(env);
    if (factor <= 0.0)
        return base;
    return static_cast<std::uint64_t>(
        static_cast<double>(base) * factor);
}

const RunStats &
SweepResult::at(const std::string &workload,
                const std::string &prefetcher) const
{
    for (const CellResult &cell : cells) {
        if (cell.workload == workload && cell.prefetcher == prefetcher)
            return cell.stats;
    }
    fatal("sweep has no cell (%s, %s)", workload.c_str(),
          prefetcher.c_str());
}

double
SweepResult::speedup(const std::string &workload,
                     const std::string &prefetcher) const
{
    const double base = at(workload, "none").ipc();
    const double with = at(workload, prefetcher).ipc();
    return base == 0.0 ? 0.0 : with / base;
}

double
SweepResult::geomeanSpeedup(const std::string &prefetcher) const
{
    std::vector<double> speedups;
    speedups.reserve(workload_names.size());
    for (const std::string &workload : workload_names)
        speedups.push_back(speedup(workload, prefetcher));
    return geomean(speedups);
}

Heartbeat::Heartbeat(std::string label, std::uint64_t total_insts,
                     double min_seconds)
    : label_(std::move(label)),
      total_(total_insts),
      min_seconds_(min_seconds),
      start_(std::chrono::steady_clock::now()),
      last_(start_)
{}

Simulator::ProgressFn
Heartbeat::hook()
{
    return [this](std::uint64_t instructions) { beat(instructions); };
}

void
Heartbeat::setStatus(std::function<std::string()> status)
{
    status_ = std::move(status);
}

void
Heartbeat::beat(std::uint64_t instructions)
{
    const auto now = std::chrono::steady_clock::now();
    const double since_last =
        std::chrono::duration<double>(now - last_).count();
    if (since_last < min_seconds_)
        return;
    last_ = now;
    const double elapsed =
        std::chrono::duration<double>(now - start_).count();
    const double rate =
        elapsed > 0.0 ? static_cast<double>(instructions) / elapsed
                      : 0.0;
    const double pct =
        total_ == 0 ? 0.0
                    : 100.0 * static_cast<double>(instructions) /
                          static_cast<double>(total_);
    // The status suffix is folded into the one inform() call so the
    // line is still a single atomic write (concurrent heartbeats never
    // interleave mid-line).
    std::string status;
    if (status_) {
        status = status_();
        if (!status.empty())
            status.insert(0, ", ");
    }
    inform("%s: %5.1f%% (%.1fM insts, %.2fM insts/s%s)", label_.c_str(),
           pct, static_cast<double>(instructions) / 1e6, rate / 1e6,
           status.c_str());
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 1.0;
    double log_sum = 0.0;
    for (double v : values) {
        if (v <= 0.0) {
            warn("geomean: non-positive value %g clamped to 1e-9 "
                 "(zero-IPC cell — broken run?)",
                 v);
            v = 1e-9;
        }
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

SweepProgress::SweepProgress(std::string label,
                             std::vector<std::uint64_t> cell_totals,
                             unsigned jobs, double min_seconds)
    : label_(std::move(label)),
      totals_(std::move(cell_totals)),
      current_(totals_.size(), 0),
      expected_cells_(totals_.size()),
      jobs_(jobs),
      min_seconds_(min_seconds),
      start_(std::chrono::steady_clock::now()),
      last_(start_)
{
    total_sum_ = std::accumulate(totals_.begin(), totals_.end(),
                                 std::uint64_t{0});
}

void
SweepProgress::setExpectedCells(std::size_t expected)
{
    std::lock_guard<std::mutex> lock(mutex_);
    expected_cells_ = expected;
}

void
SweepProgress::setJournal(SweepEventJournal *journal)
{
    std::lock_guard<std::mutex> lock(mutex_);
    journal_ = journal;
}

void
SweepProgress::setPrint(bool print)
{
    std::lock_guard<std::mutex> lock(mutex_);
    print_ = print;
}

Simulator::ProgressFn
SweepProgress::hook(std::size_t cell)
{
    return [this, cell](std::uint64_t instructions) {
        update(cell, instructions);
    };
}

void
SweepProgress::update(std::size_t cell, std::uint64_t instructions)
{
    std::lock_guard<std::mutex> lock(mutex_);
    instructions = std::min(instructions, totals_[cell]);
    if (instructions <= current_[cell])
        return;
    done_sum_ += instructions - current_[cell];
    current_[cell] = instructions;

    const auto now = std::chrono::steady_clock::now();
    if (std::chrono::duration<double>(now - last_).count() <
        min_seconds_) {
        return;
    }
    last_ = now;
    report();
}

void
SweepProgress::cellDone(std::size_t cell)
{
    std::lock_guard<std::mutex> lock(mutex_);
    done_sum_ += totals_[cell] - current_[cell];
    current_[cell] = totals_[cell];
    ++cells_done_;
    if (cells_done_ == expected_cells_) {
        last_ = std::chrono::steady_clock::now();
        report();
    }
}

void
SweepProgress::cellCached(std::size_t cell)
{
    std::lock_guard<std::mutex> lock(mutex_);
    done_sum_ += totals_[cell] - current_[cell];
    current_[cell] = totals_[cell];
    ++cells_done_;
    ++cells_cached_;
    if (cells_done_ == expected_cells_) {
        last_ = std::chrono::steady_clock::now();
        report();
    }
}

void
SweepProgress::report()
{
    const double elapsed =
        std::chrono::duration<double>(last_ - start_).count();
    const double rate =
        elapsed > 0.0 ? static_cast<double>(done_sum_) / elapsed : 0.0;
    const double pct =
        total_sum_ == 0 ? 100.0
                        : 100.0 * static_cast<double>(done_sum_) /
                              static_cast<double>(total_sum_);
    // Every rate-limited report also lands in the journal, so a
    // non-verbose sweep with --events-out still records progress for
    // csptop --follow (ETA, cells/s) without printing anything.
    if (journal_ != nullptr) {
        journal_->emit(
            "heartbeat",
            {SweepEventJournal::u64("cells_done", cells_done_),
             SweepEventJournal::u64("cells_expected",
                                    expected_cells_),
             SweepEventJournal::u64("cells_cached", cells_cached_),
             SweepEventJournal::u64("insts_done", done_sum_),
             SweepEventJournal::u64("insts_total", total_sum_),
             SweepEventJournal::u64(
                 "insts_per_sec",
                 static_cast<std::uint64_t>(rate))});
    }
    if (!print_)
        return;
    // Memoized cells show up as a suffix so a warm sweep's log makes
    // the cache's contribution visible: "12/40 cells (7 cached)".
    char cached[32] = "";
    if (cells_cached_ != 0) {
        std::snprintf(cached, sizeof cached, " (%zu cached)",
                      cells_cached_);
    }
    inform("%s: %5.1f%% (%.1fM/%.1fM insts, %.2fM insts/s, "
           "%zu/%zu cells%s, jobs=%u)",
           label_.c_str(), pct,
           static_cast<double>(done_sum_) / 1e6,
           static_cast<double>(total_sum_) / 1e6, rate / 1e6,
           cells_done_, expected_cells_, cached, jobs_);
}

SweepResult
runSweep(const std::vector<std::string> &workload_names,
         const std::vector<std::string> &prefetcher_names,
         const workloads::WorkloadParams &params,
         const SystemConfig &config, const SweepOptions &options)
{
    if (options.shard_count == 0 ||
        options.shard_index >= options.shard_count) {
        fatal("runSweep: invalid shard %u/%u", options.shard_index,
              options.shard_count);
    }
    SweepResult result;
    result.workload_names = workload_names;
    result.prefetcher_names = prefetcher_names;
    result.shard_index = options.shard_index;
    result.shard_count = options.shard_count;
    const std::size_t n_workloads = workload_names.size();
    const std::size_t n_prefetchers = prefetcher_names.size();
    const std::size_t n_cells = n_workloads * n_prefetchers;
    result.manifest = makeRunManifest("runSweep", config);
    result.manifest.seed = params.seed;
    result.manifest.scale = params.scale;
    result.manifest.placement =
        params.placement == runtime::Placement::Sequential ? "seq"
                                                           : "rand";
    result.manifest.workloads = joinNames(workload_names);
    result.manifest.prefetchers = joinNames(prefetcher_names);
    if (n_cells == 0)
        return result;

    const workloads::Registry &registry =
        workloads::Registry::builtin();
    const unsigned jobs = options.jobs != 0
                              ? options.jobs
                              : ThreadPool::defaultJobs();
    result.manifest.jobs = jobs;
    ThreadPool pool(jobs);

    // The journal is strictly side-band: every emission site below
    // only records values the sweep already computed, so a null (or
    // unopened) journal and a live one produce bit-identical results.
    SweepEventJournal *journal =
        options.journal != nullptr && options.journal->isOpen()
            ? options.journal
            : nullptr;
    using J = SweepEventJournal;
    if (journal != nullptr) {
        journal->setShard(options.shard_index);
        journal->emit(
            "sweep_start",
            {J::str("schema", kSweepEventsSchema),
             J::u64("unix_ns", journal->unixStartNs()),
             J::str("config_digest", result.manifest.config_digest),
             J::u64("seed", params.seed),
             J::u64("scale", params.scale),
             J::str("placement", result.manifest.placement),
             J::str("workloads", result.manifest.workloads),
             J::str("prefetchers", result.manifest.prefetchers),
             J::u64("shard_count", options.shard_count),
             J::u64("jobs", jobs),
             J::str("git_sha", result.manifest.git_sha)});
    }
    SweepTelemetry telemetry;
    std::mutex telemetry_mutex;

    const std::string trace_cache_dir =
        options.trace_cache_dir.empty() ? defaultTraceCacheDir()
                                        : options.trace_cache_dir;
    std::mutex sink_mutex; // guards options.profiler_sink merges
    const auto generateTrace = [&](std::size_t wi) {
        const auto t0 = std::chrono::steady_clock::now();
        trace::TraceBuffer buffer =
            registry.create(workload_names[wi])->generate(params);
        if (options.profiler_sink != nullptr) {
            const auto ns =
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            std::lock_guard<std::mutex> lock(sink_mutex);
            options.profiler_sink->add(
                prof::Phase::TraceGen,
                static_cast<std::uint64_t>(ns));
        }
        return buffer;
    };

    // Phase 1: establish every workload trace's summary (counts +
    // content digest) once, workloads in parallel. A trace-cache hit
    // contributes only its O(1) header here — the payload is mapped or
    // loaded lazily in phase 2, and only if a cell actually misses the
    // result cache. Misses generate (and store) the trace now. Summary
    // lines print afterwards in workload order, so verbose output is
    // deterministic.
    const auto trace_gen_start = std::chrono::steady_clock::now();
    std::vector<trace::TraceBuffer> traces(n_workloads);
    std::vector<trace::TraceFileSummary> summaries(n_workloads);
    std::vector<std::string> cache_paths(n_workloads);
    // Written only before pool.wait() (phase 1) or under trace_once
    // (phase 2), so no atomics needed.
    std::vector<std::uint8_t> materialized(n_workloads, 0);
    std::atomic<std::uint64_t> trace_cache_hits{0};
    pool.parallelFor(n_workloads, [&](std::size_t wi) {
        if (options.use_trace_cache) {
            cache_paths[wi] = traceCachePath(
                trace_cache_dir, workload_names[wi], params);
            trace::TraceFileSummary summary;
            if (trace::readTraceFileSummary(cache_paths[wi],
                                            summary) ==
                trace::TraceIoStatus::Ok) {
                summaries[wi] = summary;
                trace_cache_hits.fetch_add(
                    1, std::memory_order_relaxed);
                if (journal != nullptr) {
                    journal->emit(
                        "trace_cache",
                        {J::str("workload", workload_names[wi]),
                         J::str("digest",
                                hexDigest(summary.content_digest)),
                         J::u64("records", summary.records),
                         J::u64("insts", summary.instructions),
                         J::u64("worker",
                                static_cast<std::uint64_t>(std::max(
                                    0,
                                    ThreadPool::currentWorkerId())))});
                }
                return;
            }
        }
        const auto gen_start = std::chrono::steady_clock::now();
        traces[wi] = generateTrace(wi);
        summaries[wi] = {traces[wi].size(), traces[wi].instructions(),
                         traces[wi].memAccesses(),
                         traces[wi].contentDigest()};
        materialized[wi] = 1;
        if (options.use_trace_cache) {
            storeTraceInCache(traces[wi], trace_cache_dir,
                              cache_paths[wi]);
        }
        if (journal != nullptr) {
            const auto gen_ns = static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - gen_start)
                    .count());
            journal->emit(
                "trace_gen",
                {J::str("workload", workload_names[wi]),
                 J::str("digest",
                        hexDigest(summaries[wi].content_digest)),
                 J::u64("records", summaries[wi].records),
                 J::u64("insts", summaries[wi].instructions),
                 J::u64("accesses", summaries[wi].mem_accesses),
                 J::u64("duration_ns", gen_ns),
                 J::u64("cached",
                        options.use_trace_cache ? 1 : 0),
                 J::u64("worker",
                        static_cast<std::uint64_t>(std::max(
                            0, ThreadPool::currentWorkerId())))});
        }
        std::lock_guard<std::mutex> lock(telemetry_mutex);
        ++telemetry.traces_generated;
    });
    result.trace_cache_hits =
        trace_cache_hits.load(std::memory_order_relaxed);
    result.manifest.trace_gen_seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - trace_gen_start)
            .count();
    // Trace provenance must be captured now: traces are released as
    // their last cell completes in phase 2.
    {
        WordHasher combined;
        for (const trace::TraceFileSummary &s : summaries) {
            combined.add(s.content_digest);
            result.manifest.trace_records += s.records;
            result.manifest.trace_instructions += s.instructions;
            result.manifest.trace_accesses += s.mem_accesses;
        }
        result.manifest.trace_digest =
            hexDigest(combined.digest());
    }
    if (options.verbose) {
        for (std::size_t wi = 0; wi < n_workloads; ++wi) {
            inform("%-14s %8.2fM insts, %6.2fM accesses%s",
                   workload_names[wi].c_str(),
                   static_cast<double>(summaries[wi].instructions) /
                       1e6,
                   static_cast<double>(summaries[wi].mem_accesses) /
                       1e6,
                   materialized[wi] ? "" : " [trace cache]");
        }
    }

    const auto sim_start = std::chrono::steady_clock::now();

    // Phase 2: simulate the independent cells, scheduled longest
    // trace first so a big workload never straggles at the end.
    // Results land in pre-sized row-major slots, so assembly order is
    // identical to the serial path no matter how cells interleave.
    std::vector<std::uint64_t> cell_totals(n_cells);
    for (std::size_t k = 0; k < n_cells; ++k)
        cell_totals[k] = summaries[k / n_prefetchers].instructions;

    std::vector<std::size_t> order(n_cells);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&cell_totals](std::size_t a, std::size_t b) {
                         return cell_totals[a] > cell_totals[b];
                     });

    // Shard ownership: rank in the global longest-first order, mod
    // shard_count. Every shard computes the same order from the same
    // summaries, so the partition is deterministic and disjoint; the
    // round-robin over sorted ranks also balances big workloads across
    // shards instead of handing shard 0 all the long traces.
    std::vector<std::uint8_t> owned(n_cells, 1);
    if (options.shard_count > 1) {
        owned.assign(n_cells, 0);
        for (std::size_t rank = 0; rank < n_cells; ++rank) {
            if (rank % options.shard_count == options.shard_index)
                owned[order[rank]] = 1;
        }
    }
    std::size_t owned_cells = 0;
    std::vector<std::uint64_t> progress_totals(n_cells, 0);
    for (std::size_t k = 0; k < n_cells; ++k) {
        if (owned[k]) {
            ++owned_cells;
            progress_totals[k] = cell_totals[k];
        }
    }

    std::uint64_t owned_insts = 0;
    for (std::size_t k = 0; k < n_cells; ++k) {
        if (owned[k])
            owned_insts += cell_totals[k];
    }
    if (journal != nullptr) {
        journal->emit(
            "schedule",
            {J::u64("cells_total", n_cells),
             J::u64("cells_owned", owned_cells),
             J::u64("insts_owned", owned_insts),
             J::str("trace_digest", result.manifest.trace_digest)});
    }

    result.cells.resize(n_cells);
    // Progress tracking runs for verbose output or a live journal;
    // the hooks only observe instruction counts, so tracking on/off
    // cannot change results.
    const bool track = options.verbose || journal != nullptr;
    SweepProgress progress("sweep", std::move(progress_totals), jobs);
    progress.setExpectedCells(owned_cells);
    progress.setJournal(journal);
    progress.setPrint(options.verbose);

    const bool use_result_cache = options.use_result_cache;
    const ResultCache result_cache(options.result_cache_dir.empty()
                                       ? defaultResultCacheDir()
                                       : options.result_cache_dir);
    if (use_result_cache &&
        !ensureDirectories(result_cache.root())) {
        warn("result cache: cannot create %s",
             result_cache.root().c_str());
    }
    const std::uint64_t config_digest = configDigest(config);
    std::atomic<std::uint64_t> cells_cached{0};
    std::atomic<std::uint64_t> cells_simulated{0};

    // Lazy trace materialization for cache-hit workloads: the first
    // cell of a workload to miss the result cache loads (or, on a
    // corrupt file, regenerates) the trace; call_once publishes it to
    // every other cell.
    std::unique_ptr<std::once_flag[]> trace_once(
        new std::once_flag[n_workloads]);
    const auto ensureTrace = [&](std::size_t wi) {
        std::call_once(trace_once[wi], [&] {
            if (materialized[wi])
                return; // generated in phase 1
            const auto load_start = std::chrono::steady_clock::now();
            trace::TraceBuffer loaded;
            const trace::TraceIoStatus status =
                trace::loadTraceFile(cache_paths[wi], loaded);
            if (journal != nullptr) {
                const auto load_ns = static_cast<std::uint64_t>(
                    std::chrono::duration_cast<
                        std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - load_start)
                        .count());
                journal->emit(
                    "trace_load",
                    {J::str("workload", workload_names[wi]),
                     J::str("status",
                            trace::traceIoStatusName(status)),
                     J::u64("duration_ns", load_ns),
                     J::u64("worker",
                            static_cast<std::uint64_t>(std::max(
                                0,
                                ThreadPool::currentWorkerId())))});
            }
            if (status == trace::TraceIoStatus::Ok) {
                traces[wi] = std::move(loaded);
                std::lock_guard<std::mutex> lock(telemetry_mutex);
                ++telemetry.traces_loaded;
            } else {
                warn("trace cache: %s for %s, regenerating",
                     trace::traceIoStatusName(status),
                     cache_paths[wi].c_str());
                traces[wi] = generateTrace(wi);
                {
                    std::lock_guard<std::mutex> lock(telemetry_mutex);
                    ++telemetry.traces_generated;
                }
                if (traces[wi].contentDigest() !=
                    summaries[wi].content_digest) {
                    // The header lied (corrupt digest field). Results
                    // stay correct — cells simulate the regenerated
                    // trace — but their cache keys carry the stale
                    // digest, so they can only pollute, never alias.
                    warn("trace cache: stale header digest in %s",
                         cache_paths[wi].c_str());
                }
                storeTraceInCache(traces[wi], trace_cache_dir,
                                  cache_paths[wi]);
            }
            materialized[wi] = 1;
        });
    };

    // Per-workload countdown so the last finishing cell releases its
    // trace — peak memory tapers during the sweep instead of holding
    // every trace until the end. Sharded sweeps count owned cells
    // only; a workload with no owned cells frees (or never loads) its
    // trace immediately.
    std::unique_ptr<std::atomic<std::size_t>[]> cells_left(
        new std::atomic<std::size_t>[n_workloads]);
    for (std::size_t wi = 0; wi < n_workloads; ++wi) {
        std::size_t owned_here = 0;
        for (std::size_t pi = 0; pi < n_prefetchers; ++pi)
            owned_here += owned[wi * n_prefetchers + pi];
        cells_left[wi].store(owned_here, std::memory_order_relaxed);
        if (owned_here == 0)
            traces[wi] = trace::TraceBuffer();
    }

    for (const std::size_t k : order) {
        if (!owned[k])
            continue;
        pool.submit([&, k] {
            const std::size_t wi = k / n_prefetchers;
            const std::size_t pi = k % n_prefetchers;
            CellResult cell;
            cell.workload = workload_names[wi];
            cell.prefetcher = prefetcher_names[pi];
            cell.present = true;
            CellKey key;
            key.config_digest = config_digest;
            key.trace_digest = summaries[wi].content_digest;
            key.workload = cell.workload;
            key.prefetcher = cell.prefetcher;
            key.scale = params.scale;
            key.seed = params.seed;
            key.placement = result.manifest.placement;
            const auto worker = static_cast<std::uint64_t>(
                std::max(0, ThreadPool::currentWorkerId()));
            const auto cell_start = std::chrono::steady_clock::now();
            const auto cellNs = [&cell_start] {
                return static_cast<std::uint64_t>(
                    std::chrono::duration_cast<
                        std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - cell_start)
                        .count());
            };
            if (journal != nullptr) {
                journal->emit(
                    "cell_start",
                    {J::u64("cell", k),
                     J::str("workload", cell.workload),
                     J::str("prefetcher", cell.prefetcher),
                     J::u64("worker", worker)});
            }
            ResultCache::LoadStats load_stats;
            if (use_result_cache &&
                result_cache.load(key, cell.stats, &load_stats)) {
                cells_cached.fetch_add(1, std::memory_order_relaxed);
                if (track)
                    progress.cellCached(k);
                const std::uint64_t duration_ns = cellNs();
                {
                    std::lock_guard<std::mutex> lock(telemetry_mutex);
                    telemetry.cache_read_ns += load_stats.read_ns;
                    telemetry.cache_parse_ns += load_stats.parse_ns;
                    telemetry.cache_entry_bytes += load_stats.bytes;
                    telemetry.cell_duration_ns.sample(duration_ns);
                    telemetry.cache_load_ns.sample(
                        load_stats.read_ns + load_stats.parse_ns);
                    telemetry.cache_entry_bytes_dist.sample(
                        load_stats.bytes);
                }
                if (journal != nullptr) {
                    journal->emit(
                        "cell_end",
                        {J::u64("cell", k),
                         J::str("workload", cell.workload),
                         J::str("prefetcher", cell.prefetcher),
                         J::u64("worker", worker),
                         J::str("source", "cached"),
                         J::u64("duration_ns", duration_ns),
                         J::u64("read_ns", load_stats.read_ns),
                         J::u64("parse_ns", load_stats.parse_ns),
                         J::u64("bytes", load_stats.bytes),
                         J::u64("insts", cell.stats.instructions)});
                }
            } else {
                // A rejected entry (verify failure) cost a read+parse
                // before the miss; attribute it like a hit's so the
                // warm-path totals stay honest.
                if (load_stats.verify_failed ||
                    load_stats.bytes != 0) {
                    std::lock_guard<std::mutex> lock(telemetry_mutex);
                    telemetry.cache_read_ns += load_stats.read_ns;
                    telemetry.cache_parse_ns += load_stats.parse_ns;
                    telemetry.cache_entry_bytes += load_stats.bytes;
                    telemetry.cache_load_ns.sample(
                        load_stats.read_ns + load_stats.parse_ns);
                    telemetry.cache_entry_bytes_dist.sample(
                        load_stats.bytes);
                    if (load_stats.verify_failed)
                        ++telemetry.cache_verify_failures;
                }
                ensureTrace(wi);
                auto prefetcher =
                    makePrefetcher(cell.prefetcher, config);
                Simulator simulator(config);
                obs::PrefetchTracker tracker;
                obs::LearningRecorder learner;
                obs::RunObserver observer;
                prof::Profiler profiler;
                std::unique_ptr<obs::MemRecorder> memrec;
                if (options.observe)
                    observer.tracker = &tracker;
                if (options.observe_learning)
                    observer.learn = &learner;
                if (options.observe_mem) {
                    memrec = std::make_unique<obs::MemRecorder>(
                        config.memory);
                    observer.mem = memrec.get();
                }
                if (options.observe || options.observe_learning ||
                    options.observe_mem) {
                    simulator.setObserver(&observer);
                }
                if (options.profile ||
                    options.profiler_sink != nullptr)
                    simulator.setProfiler(&profiler);
                if (track)
                    simulator.setProgress(progress.hook(k));
                cell.stats = simulator.run(traces[wi], *prefetcher);
                cells_simulated.fetch_add(1,
                                          std::memory_order_relaxed);
                if (use_result_cache) {
                    result_cache.store(key, cell.stats,
                                       result.manifest.git_sha);
                }
                if (track)
                    progress.cellDone(k);
                const std::uint64_t duration_ns = cellNs();
                {
                    std::lock_guard<std::mutex> lock(telemetry_mutex);
                    telemetry.cell_duration_ns.sample(duration_ns);
                }
                if (journal != nullptr) {
                    journal->emit(
                        "cell_end",
                        {J::u64("cell", k),
                         J::str("workload", cell.workload),
                         J::str("prefetcher", cell.prefetcher),
                         J::u64("worker", worker),
                         J::str("source", "simulated"),
                         J::u64("duration_ns", duration_ns),
                         J::u64("verify_failed",
                                load_stats.verify_failed ? 1 : 0),
                         J::u64("insts", cell.stats.instructions)});
                }
                if (options.profiler_sink != nullptr) {
                    std::lock_guard<std::mutex> lock(sink_mutex);
                    for (std::size_t p = 0;
                         p <
                         static_cast<std::size_t>(prof::Phase::Count);
                         ++p) {
                        const auto phase =
                            static_cast<prof::Phase>(p);
                        options.profiler_sink->add(
                            phase, profiler.ns(phase),
                            profiler.calls(phase));
                    }
                }
            }
            result.cells[k] = std::move(cell);
            if (cells_left[wi].fetch_sub(
                    1, std::memory_order_acq_rel) == 1) {
                traces[wi] = trace::TraceBuffer();
            }
        });
    }
    pool.wait();
    result.cells_cached =
        cells_cached.load(std::memory_order_relaxed);
    result.cells_simulated =
        cells_simulated.load(std::memory_order_relaxed);
    result.manifest.sim_seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - sim_start)
            .count();
    if (result.manifest.sim_seconds > 0.0) {
        std::uint64_t simulated = 0;
        for (const CellResult &cell : result.cells)
            simulated += cell.stats.instructions;
        result.manifest.insts_per_sec =
            static_cast<double>(simulated) /
            result.manifest.sim_seconds;
    }
    // Fold the roll-up into the artefact's cache block (summed by
    // cspmerge) and the journal's sweep_end event. No lock: the pool
    // is drained.
    result.cache_read_ns = telemetry.cache_read_ns;
    result.cache_parse_ns = telemetry.cache_parse_ns;
    result.cache_entry_bytes = telemetry.cache_entry_bytes;
    result.cache_verify_failures = telemetry.cache_verify_failures;
    if (journal != nullptr) {
        telemetry.cells_owned = owned_cells;
        telemetry.cells_cached = result.cells_cached;
        telemetry.cells_simulated = result.cells_simulated;
        telemetry.trace_cache_hits = result.trace_cache_hits;
        journal->emit(
            "sweep_end",
            {J::u64("cells_owned", owned_cells),
             J::u64("cells_cached", result.cells_cached),
             J::u64("cells_simulated", result.cells_simulated),
             J::u64("trace_cache_hits", result.trace_cache_hits),
             J::u64("cache_read_ns", result.cache_read_ns),
             J::u64("cache_parse_ns", result.cache_parse_ns),
             J::u64("cache_entry_bytes", result.cache_entry_bytes),
             J::u64("cache_verify_failures",
                    result.cache_verify_failures),
             J::u64("trace_gen_ns",
                    static_cast<std::uint64_t>(
                        result.manifest.trace_gen_seconds * 1e9)),
             J::u64("sim_ns",
                    static_cast<std::uint64_t>(
                        result.manifest.sim_seconds * 1e9)),
             J::raw("stats", telemetry.statsJson())});
    }
    return result;
}

SweepResult
runSweep(const std::vector<std::string> &workload_names,
         const std::vector<std::string> &prefetcher_names,
         const workloads::WorkloadParams &params,
         const SystemConfig &config, bool verbose)
{
    SweepOptions options;
    options.verbose = verbose;
    return runSweep(workload_names, prefetcher_names, params, config,
                    options);
}

} // namespace csp::sim
