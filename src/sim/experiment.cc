#include "sim/experiment.h"

#include <cmath>
#include <cstdlib>

#include "core/logging.h"
#include "prefetch/context/context_prefetcher.h"
#include "prefetch/ghb.h"
#include "prefetch/jump_pointer.h"
#include "prefetch/markov.h"
#include "prefetch/next_line.h"
#include "prefetch/sms.h"
#include "prefetch/stride.h"

namespace csp::sim {

std::unique_ptr<prefetch::Prefetcher>
makePrefetcher(const std::string &name, const SystemConfig &config)
{
    const unsigned line = config.memory.l1d.line_bytes;
    if (name == "none")
        return std::make_unique<prefetch::NullPrefetcher>();
    if (name == "stride") {
        return std::make_unique<prefetch::StridePrefetcher>(
            config.stride, line);
    }
    if (name == "ghb-gdc") {
        return std::make_unique<prefetch::GhbPrefetcher>(
            config.ghb, prefetch::GhbFlavor::GlobalDC, line);
    }
    if (name == "ghb-pcdc") {
        return std::make_unique<prefetch::GhbPrefetcher>(
            config.ghb, prefetch::GhbFlavor::PcDC, line);
    }
    if (name == "sms")
        return std::make_unique<prefetch::SmsPrefetcher>(config.sms);
    if (name == "jump") {
        return std::make_unique<prefetch::JumpPointerPrefetcher>(
            prefetch::JumpPointerConfig{}, line);
    }
    if (name == "next-line") {
        return std::make_unique<prefetch::NextLinePrefetcher>(
            prefetch::NextLineConfig{}, line);
    }
    if (name == "markov") {
        return std::make_unique<prefetch::MarkovPrefetcher>(
            config.markov);
    }
    if (name == "context") {
        return std::make_unique<prefetch::ctx::ContextPrefetcher>(
            config.context, config.seed);
    }
    fatal("unknown prefetcher: %s", name.c_str());
}

std::vector<std::string>
paperPrefetchers()
{
    return {"none", "stride", "ghb-gdc", "ghb-pcdc", "sms", "context"};
}

std::vector<std::string>
ubenchWorkloads()
{
    return {"array", "list",    "listsort", "bst",
            "hashtest", "maptest", "prim",    "ssca_lds"};
}

std::vector<std::string>
specWorkloads()
{
    return {"sjeng", "povray",  "soplex",     "dealII",
            "h264ref", "gobmk", "hmmer",      "bzip2",
            "milc",  "namd",    "omnetpp",    "astar",
            "libquantum", "mcf", "sphinx3",   "lbm"};
}

std::vector<std::string>
irregularWorkloads()
{
    return {"graph500", "graph500-list", "ssca2-csr", "ssca2-list",
            "suffixArray", "BFS", "setCover", "KNN", "convexHull"};
}

std::vector<std::string>
allWorkloads()
{
    std::vector<std::string> names = specWorkloads();
    for (const auto &n : irregularWorkloads())
        names.push_back(n);
    for (const auto &n : ubenchWorkloads())
        names.push_back(n);
    return names;
}

std::uint64_t
effectiveScale(std::uint64_t base)
{
    const char *env = std::getenv("CSP_SCALE");
    if (env == nullptr)
        return base;
    const double factor = std::atof(env);
    if (factor <= 0.0)
        return base;
    return static_cast<std::uint64_t>(
        static_cast<double>(base) * factor);
}

const RunStats &
SweepResult::at(const std::string &workload,
                const std::string &prefetcher) const
{
    for (const CellResult &cell : cells) {
        if (cell.workload == workload && cell.prefetcher == prefetcher)
            return cell.stats;
    }
    fatal("sweep has no cell (%s, %s)", workload.c_str(),
          prefetcher.c_str());
}

double
SweepResult::speedup(const std::string &workload,
                     const std::string &prefetcher) const
{
    const double base = at(workload, "none").ipc();
    const double with = at(workload, prefetcher).ipc();
    return base == 0.0 ? 0.0 : with / base;
}

double
SweepResult::geomeanSpeedup(const std::string &prefetcher) const
{
    std::vector<double> speedups;
    speedups.reserve(workload_names.size());
    for (const std::string &workload : workload_names)
        speedups.push_back(speedup(workload, prefetcher));
    return geomean(speedups);
}

Heartbeat::Heartbeat(std::string label, std::uint64_t total_insts,
                     double min_seconds)
    : label_(std::move(label)),
      total_(total_insts),
      min_seconds_(min_seconds),
      start_(std::chrono::steady_clock::now()),
      last_(start_)
{}

Simulator::ProgressFn
Heartbeat::hook()
{
    return [this](std::uint64_t instructions) { beat(instructions); };
}

void
Heartbeat::beat(std::uint64_t instructions)
{
    const auto now = std::chrono::steady_clock::now();
    const double since_last =
        std::chrono::duration<double>(now - last_).count();
    if (since_last < min_seconds_)
        return;
    last_ = now;
    const double elapsed =
        std::chrono::duration<double>(now - start_).count();
    const double rate =
        elapsed > 0.0 ? static_cast<double>(instructions) / elapsed
                      : 0.0;
    const double pct =
        total_ == 0 ? 0.0
                    : 100.0 * static_cast<double>(instructions) /
                          static_cast<double>(total_);
    inform("%s: %5.1f%% (%.1fM insts, %.2fM insts/s)", label_.c_str(),
           pct, static_cast<double>(instructions) / 1e6, rate / 1e6);
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 1.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v <= 0.0 ? 1e-9 : v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

SweepResult
runSweep(const std::vector<std::string> &workload_names,
         const std::vector<std::string> &prefetcher_names,
         const workloads::WorkloadParams &params,
         const SystemConfig &config, bool verbose)
{
    SweepResult result;
    result.workload_names = workload_names;
    result.prefetcher_names = prefetcher_names;
    const workloads::Registry &registry = workloads::Registry::builtin();

    for (const std::string &workload_name : workload_names) {
        const auto workload = registry.create(workload_name);
        const trace::TraceBuffer trace = workload->generate(params);
        if (verbose) {
            inform("%-14s %8.2fM insts, %6.2fM accesses",
                   workload_name.c_str(),
                   static_cast<double>(trace.instructions()) / 1e6,
                   static_cast<double>(trace.memAccesses()) / 1e6);
        }
        for (const std::string &pf_name : prefetcher_names) {
            auto prefetcher = makePrefetcher(pf_name, config);
            Simulator simulator(config);
            Heartbeat heartbeat(workload_name + "/" + pf_name,
                                trace.instructions());
            if (verbose)
                simulator.setProgress(heartbeat.hook());
            CellResult cell;
            cell.workload = workload_name;
            cell.prefetcher = pf_name;
            cell.stats = simulator.run(trace, *prefetcher);
            result.cells.push_back(std::move(cell));
        }
    }
    return result;
}

} // namespace csp::sim
