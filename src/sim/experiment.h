/**
 * @file
 * Experiment runner: prefetcher construction by name, workload x
 * prefetcher sweeps with trace reuse, speedup/geomean helpers, and the
 * benchmark groupings the paper's figures use. Every bench/ binary is a
 * thin shell over this module.
 */

#ifndef CSP_SIM_EXPERIMENT_H
#define CSP_SIM_EXPERIMENT_H

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/run_manifest.h"
#include "prefetch/prefetcher.h"
#include "sim/simulator.h"
#include "workloads/registry.h"

namespace csp::prof {
class Profiler;
}

namespace csp::sim {

class SweepEventJournal;

/**
 * Build a prefetcher by name: "none", "stride", "ghb-gdc", "ghb-pcdc",
 * "sms", "markov", "context". fatal() on unknown names.
 */
std::unique_ptr<prefetch::Prefetcher>
makePrefetcher(const std::string &name, const SystemConfig &config);

/** The paper's evaluated lineup (Figures 9-12), baseline first. */
std::vector<std::string> paperPrefetchers();

/** The paper's benchmark groupings. */
std::vector<std::string> ubenchWorkloads();
std::vector<std::string> specWorkloads();
std::vector<std::string> irregularWorkloads();
std::vector<std::string> allWorkloads();

/**
 * Effective workload scale: the compiled-in default, scaled by the
 * CSP_SCALE environment variable when set (a multiplier, e.g.
 * CSP_SCALE=4 quadruples every trace).
 */
std::uint64_t effectiveScale(std::uint64_t base);

/** One (workload, prefetcher) cell of a sweep. */
struct CellResult
{
    std::string workload;
    std::string prefetcher;
    RunStats stats;
    /** False for cells a sharded sweep did not own (see
     *  SweepOptions::shard_count); their stats are default-valued. */
    bool present = false;
};

/** Result matrix of a sweep, row-major by workload. */
struct SweepResult
{
    std::vector<std::string> workload_names;
    std::vector<std::string> prefetcher_names;
    std::vector<CellResult> cells;

    // Scale-out accounting: how the cells were obtained. Cached and
    // simulated counts cover this shard's owned cells only.
    std::uint64_t cells_cached = 0;
    std::uint64_t cells_simulated = 0;
    std::uint64_t trace_cache_hits = 0; ///< workload traces not regenerated
    // Warm-path cost attribution, summed over this shard's cached
    // cells (see ResultCache::LoadStats). Side-band telemetry like the
    // manifest's timing block: never part of the deterministic cell
    // data, carried in the artefact's cache block so cspmerge can sum
    // it and csptop can report it.
    std::uint64_t cache_read_ns = 0;
    std::uint64_t cache_parse_ns = 0;
    std::uint64_t cache_entry_bytes = 0;
    std::uint64_t cache_verify_failures = 0;
    unsigned shard_index = 0;
    unsigned shard_count = 1;
    /**
     * Provenance of the sweep: build + config digest + seed, the
     * combined content digest of every workload trace (in workload
     * order), and the sweep's trace-gen/simulate wall-clock. Consumers
     * embedding sweep numbers in a file should embed this too; never
     * part of the deterministic cell data.
     */
    RunManifest manifest;

    const RunStats &at(const std::string &workload,
                       const std::string &prefetcher) const;

    /** IPC speedup of @p prefetcher over "none" for @p workload. */
    double speedup(const std::string &workload,
                   const std::string &prefetcher) const;

    /** Geometric-mean speedup of @p prefetcher over all workloads. */
    double geomeanSpeedup(const std::string &prefetcher) const;
};

/**
 * Wall-clock rate-limited progress reporter for long simulations.
 * Install hook() as a Simulator progress callback; it prints via
 * inform() at most once every @p min_seconds, showing percent complete
 * and simulated instructions per second. Any bench/ or tools/ binary
 * can reuse it for a uniform heartbeat.
 */
class Heartbeat
{
  public:
    Heartbeat(std::string label, std::uint64_t total_insts,
              double min_seconds = 2.0);

    /** The callback to pass to Simulator::setProgress(). */
    Simulator::ProgressFn hook();

    /**
     * Extra live state appended to each progress line (e.g. the
     * context prefetcher's current accuracy/epsilon). The callback
     * runs on the simulating thread, inside the single inform() call,
     * so the log line stays one atomic write. Empty results are
     * omitted.
     */
    void setStatus(std::function<std::string()> status);

    /** Report progress at @p instructions (rate-limited). */
    void beat(std::uint64_t instructions);

  private:
    std::string label_;
    std::uint64_t total_;
    double min_seconds_;
    std::function<std::string()> status_;
    std::chrono::steady_clock::time_point start_;
    std::chrono::steady_clock::time_point last_;
};

/**
 * Mutex-guarded, wall-clock rate-limited progress reporter for a
 * multi-cell sweep running on several worker threads at once. Each
 * cell installs hook(cell) as its Simulator progress callback;
 * updates from all workers fold into one aggregate line (percent of
 * total instructions, simulated instructions per second, cells done)
 * printed via inform() at most once every @p min_seconds, plus a
 * final line when the last cell completes.
 */
class SweepProgress
{
  public:
    /** @param cell_totals expected instruction count per cell. */
    SweepProgress(std::string label,
                  std::vector<std::uint64_t> cell_totals, unsigned jobs,
                  double min_seconds = 2.0);

    /** The callback to pass to Simulator::setProgress() for @p cell. */
    Simulator::ProgressFn hook(std::size_t cell);

    /** Fold in cell progress; prints when the rate limit allows. */
    void update(std::size_t cell, std::uint64_t instructions);

    /** Mark @p cell finished; the last cell always prints. */
    void cellDone(std::size_t cell);

    /**
     * Mark @p cell satisfied from the result cache: its instructions
     * count as done instantly and the progress line grows a
     * "(N cached)" suffix distinguishing memoized cells from simulated
     * ones.
     */
    void cellCached(std::size_t cell);

    /**
     * Sharded sweeps own a subset of the grid: the final line prints
     * (and the cell denominator reads) @p expected instead of the full
     * cell count. Call before any worker reports.
     */
    void setExpectedCells(std::size_t expected);

    /**
     * Mirror every rate-limited report as a `heartbeat` journal event
     * (cells done/cached, instructions done/total, rate). Call before
     * any worker reports.
     */
    void setJournal(SweepEventJournal *journal);

    /**
     * Suppress the inform() lines while keeping journal heartbeats —
     * a non-verbose sweep with --events-out still records progress
     * without spamming stderr. Call before any worker reports.
     */
    void setPrint(bool print);

  private:
    void report();

    std::string label_;
    std::vector<std::uint64_t> totals_;
    std::vector<std::uint64_t> current_;
    std::uint64_t total_sum_ = 0;
    std::uint64_t done_sum_ = 0;
    std::size_t cells_done_ = 0;
    std::size_t cells_cached_ = 0;
    std::size_t expected_cells_ = 0;
    SweepEventJournal *journal_ = nullptr;
    bool print_ = true;
    unsigned jobs_;
    double min_seconds_;
    std::chrono::steady_clock::time_point start_;
    std::chrono::steady_clock::time_point last_;
    std::mutex mutex_;
};

/** Knobs for runSweep. */
struct SweepOptions
{
    /** Per-workload summary lines plus a SweepProgress heartbeat. */
    bool verbose = true;
    /**
     * Worker threads simulating cells; 0 resolves through
     * ThreadPool::defaultJobs() (CSP_JOBS, else all hardware
     * threads). Results are bit-identical for every value.
     */
    unsigned jobs = 0;
    /**
     * Attach a per-cell lifecycle tracker (no Perfetto sink) to every
     * run. The autopsy results are discarded — this knob exists so the
     * determinism tests can assert that observed and unobserved sweeps
     * produce bit-identical RunStats.
     */
    bool observe = false;
    /**
     * Attach a per-cell learning recorder (snapshots discarded), the
     * learning-observer analogue of observe: determinism tests assert
     * that sweeps with the learning hooks live are bit-identical to
     * unobserved ones.
     */
    bool observe_learning = false;
    /**
     * Attach a per-cell memory-hierarchy recorder (miss taxonomy and
     * telemetry discarded), the mem-observer analogue of observe:
     * determinism tests assert that sweeps with the shadow models
     * live are bit-identical to unobserved ones.
     */
    bool observe_mem = false;
    /**
     * Attach a per-cell self-profiler (phase timings discarded), the
     * prof.* analogue of observe: determinism tests assert that the
     * instrumented replay loop produces bit-identical RunStats.
     */
    bool profile = false;
    /**
     * Memoize cells in the content-addressed result cache (see
     * result_cache.h): consult before simulating, store after. Off by
     * default at the library level so tests and benches measure real
     * simulation; the cspsim sweep front-end turns it on unless
     * --no-result-cache / CSP_RESULT_CACHE=0 says otherwise.
     */
    bool use_result_cache = false;
    /**
     * Persist generated workload traces as
     * <trace_cache_dir>/<key>.csptrace and reuse them across runs. A
     * warm sweep reads only each file's header (content digest) up
     * front and maps the payload lazily, only for cells that miss the
     * result cache.
     */
    bool use_trace_cache = false;
    /** Result-cache directory; empty -> defaultResultCacheDir(). */
    std::string result_cache_dir;
    /** Trace-cache directory; empty -> defaultTraceCacheDir(). */
    std::string trace_cache_dir;
    /**
     * Deterministic 1-of-N partition of the sweep grid: this process
     * owns every cell whose rank in the global longest-trace-first
     * order is congruent to shard_index mod shard_count. Non-owned
     * cells come back with present=false; cspmerge reassembles the
     * full matrix bit-identically. shard_count=1 owns everything.
     */
    unsigned shard_index = 0;
    unsigned shard_count = 1;
    /**
     * When set, every cell's phase timings (and trace generation) are
     * merged into this aggregate profiler. The warm-sweep tests use it
     * to assert a fully cached run does zero simulation work: Replay /
     * MemAccess / TraceGen call counts stay 0.
     */
    prof::Profiler *profiler_sink = nullptr;
    /**
     * When non-null (and open), runSweep appends csp-events-v1
     * lifecycle events — sweep_start, trace_cache/trace_gen/
     * trace_load, schedule, cell_start/cell_end, heartbeat, sweep_end
     * — to this journal (see sweep_events.h). Strictly side-band: the
     * journal observes the sweep but never alters scheduling or
     * results; sweeps with and without a journal are bit-identical
     * (enforced by test). runSweep stamps the journal with
     * shard_index; the cspsim front-end owns open/close.
     */
    SweepEventJournal *journal = nullptr;
};

/**
 * Run every workload against every prefetcher. Each workload's trace
 * is generated once (workloads in parallel) and shared read-only by
 * all of that workload's cells; the independent (workload, prefetcher)
 * cells are then simulated on @p options.jobs worker threads,
 * scheduled longest-trace-first. Cells are assembled in row-major
 * (workload-major) order and every cell's RunStats is bit-identical
 * to a jobs=1 run — parallelism never changes results.
 *
 * With options.use_trace_cache, a cached trace contributes only its
 * header (content digest + counts) up front and is materialised lazily
 * — only if one of its cells actually misses the result cache; with
 * options.use_result_cache, memoized cells are returned without any
 * simulation. A fully warm sweep therefore does zero trace-generation
 * and zero replay work while producing the same SweepResult cells
 * bit-for-bit (caching is invisible modulo manifest timing fields).
 */
SweepResult runSweep(const std::vector<std::string> &workload_names,
                     const std::vector<std::string> &prefetcher_names,
                     const workloads::WorkloadParams &params,
                     const SystemConfig &config,
                     const SweepOptions &options = {});

/** Convenience overload keeping the historical verbose flag. */
SweepResult runSweep(const std::vector<std::string> &workload_names,
                     const std::vector<std::string> &prefetcher_names,
                     const workloads::WorkloadParams &params,
                     const SystemConfig &config, bool verbose);

/** Geometric mean of a value vector (empty -> 1.0). */
double geomean(const std::vector<double> &values);

} // namespace csp::sim

#endif // CSP_SIM_EXPERIMENT_H
