/**
 * @file
 * Constant-time window membership for predicted-but-unissued lines.
 *
 * The Figure-9 "non-timely" class asks, per demand miss, whether the
 * missed line was recently predicted by the prefetcher but never issued.
 * The original implementation kept the last 256 such lines in a ring and
 * scanned all 256 slots per miss; this structure answers the identical
 * question with one hash probe.
 *
 * Equivalence argument: the ring's 256 slots always hold the values
 * recorded at the last 256 record() positions (each position maps to a
 * unique slot, and a slot's current value is its most recent write), so
 * the ring contains `line` iff `line`'s most recent record() happened
 * within the last 256 record() calls. PredictedSet maintains exactly
 * that predicate: a map from line to its last record position, with
 * entries removed the moment the position falls out of the 256-wide
 * window. tests/test_predicted_set.cc checks equivalence against the
 * reference linear-scan ring on randomized traffic.
 */

#ifndef CSP_SIM_PREDICTED_SET_H
#define CSP_SIM_PREDICTED_SET_H

#include <array>
#include <cstdint>

#include "core/types.h"

namespace csp::sim {

/** Tracks whether a line was recorded within the last 256 record()s. */
class PredictedSet
{
  public:
    void
    record(Addr line)
    {
        if (pos_ >= kWindow) {
            // The record at pos_-kWindow leaves the window. Its value
            // still sits in the ring slot being overwritten; drop its
            // map entry unless the line was recorded again since.
            const Addr old = ring_[pos_ & (kWindow - 1)];
            const std::size_t slot = find(old);
            if (slot != kNone && slots_[slot].pos == pos_ - kWindow)
                erase(slot);
        }
        ring_[pos_ & (kWindow - 1)] = line;
        const std::size_t slot = find(line);
        if (slot != kNone) {
            slots_[slot].pos = pos_;
        } else {
            std::size_t i = home(line);
            while (slots_[i].used)
                i = (i + 1) & (kSlots - 1);
            slots_[i] = Slot{line, pos_, true};
        }
        ++pos_;
    }

    bool contains(Addr line) const { return find(line) != kNone; }

  private:
    static constexpr std::size_t kWindow = 256;
    static constexpr std::size_t kSlots = 1024; ///< load factor <= 1/4
    static constexpr std::size_t kNone = kSlots;

    struct Slot
    {
        Addr line = 0;
        std::uint64_t pos = 0;
        bool used = false;
    };

    static std::size_t
    home(Addr line)
    {
        // Fibonacci hash; top bits select among kSlots buckets.
        return static_cast<std::size_t>(
            (line * 0x9e3779b97f4a7c15ull) >> 54);
    }

    std::size_t
    find(Addr line) const
    {
        std::size_t i = home(line);
        while (slots_[i].used) {
            if (slots_[i].line == line)
                return i;
            i = (i + 1) & (kSlots - 1);
        }
        return kNone;
    }

    /** Remove slot @p i, backward-shifting the probe chain (no
     *  tombstones, so probe lengths never degrade). */
    void
    erase(std::size_t i)
    {
        std::size_t j = i;
        for (;;) {
            slots_[i].used = false;
            for (;;) {
                j = (j + 1) & (kSlots - 1);
                if (!slots_[j].used)
                    return;
                const std::size_t h = home(slots_[j].line);
                // Entry at j may fill the hole at i unless its home
                // lies cyclically within (i, j] — moving it would then
                // break its own probe chain.
                const bool stuck = i <= j ? (i < h && h <= j)
                                          : (i < h || h <= j);
                if (!stuck)
                    break;
            }
            slots_[i] = slots_[j];
            i = j;
        }
    }

    std::array<Addr, kWindow> ring_{};
    std::array<Slot, kSlots> slots_{};
    std::uint64_t pos_ = 0;
};

} // namespace csp::sim

#endif // CSP_SIM_PREDICTED_SET_H
