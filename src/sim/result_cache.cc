#include "sim/result_cache.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <ostream>
#include <sstream>
#include <utility>

#include "core/content_store.h"
#include "core/hashing.h"
#include "core/logging.h"
#include "core/run_manifest.h"
#include "diff/csp_diff.h"

namespace csp::sim {

namespace {

constexpr const char *kSchema = "csp-result-cache-v1";

std::uint64_t
stringHash(const std::string &text)
{
    return fnv1a({reinterpret_cast<const std::uint8_t *>(text.data()),
                  text.size()});
}

/** Parse a uint64 from the flattened value's source text — the double
 *  lane loses precision above 2^53. */
bool
parseU64(const diff::FlatDoc &doc, const std::string &name,
         std::uint64_t &out)
{
    const diff::FlatValue *value = doc.find(name);
    if (value == nullptr || !value->is_number)
        return false;
    char *end = nullptr;
    out = std::strtoull(value->text.c_str(), &end, 10);
    return end != nullptr && *end == '\0';
}

bool
matchText(const diff::FlatDoc &doc, const std::string &name,
          const std::string &expect)
{
    const diff::FlatValue *value = doc.find(name);
    return value != nullptr && value->text == expect;
}

/** Every integer field of a RunStats, in serialization order, fed to
 *  one visitor — the writer, parser and digest never disagree on the
 *  field list. */
template <typename Fn>
void
forEachRunStatsField(RunStats &stats, Fn &&fn)
{
    fn("instructions", stats.instructions);
    fn("cycles", stats.cycles);
    fn("demand_accesses", stats.demand_accesses);
    fn("l1_misses", stats.l1_misses);
    fn("l2_demand_misses", stats.l2_demand_misses);
    for (std::size_t c = 0;
         c < static_cast<std::size_t>(AccessClass::Count); ++c) {
        fn(accessClassName(static_cast<AccessClass>(c)),
           stats.classes[c]);
    }
    fn("prefetch_never_hit", stats.prefetch_never_hit);
    mem::HierarchyStats &h = stats.hierarchy;
    fn("hierarchy.demand_accesses", h.demand_accesses);
    fn("hierarchy.l1_misses", h.l1_misses);
    fn("hierarchy.l2_demand_misses", h.l2_demand_misses);
    fn("hierarchy.prefetches_issued", h.prefetches_issued);
    fn("hierarchy.prefetches_duplicate", h.prefetches_duplicate);
    fn("hierarchy.prefetches_dropped", h.prefetches_dropped);
    fn("hierarchy.prefetch_evicted_unused", h.prefetch_evicted_unused);
    fn("hierarchy.prefetch_unused_at_end", h.prefetch_unused_at_end);
    fn("hierarchy.l1_writebacks", h.l1_writebacks);
    fn("hierarchy.l2_writebacks", h.l2_writebacks);
}

} // namespace

std::uint64_t
cellKeyDigest(const CellKey &key)
{
    WordHasher h;
    h.add(kResultCacheEpoch);
    h.add(key.config_digest);
    h.add(key.trace_digest);
    h.add(stringHash(key.workload));
    h.add(stringHash(key.prefetcher));
    h.add(key.scale);
    h.add(key.seed);
    h.add(stringHash(key.placement));
    return h.digest();
}

void
writeRunStatsJson(std::ostream &out, const RunStats &stats)
{
    out << '{';
    bool first = true;
    // The visitor takes a mutable RunStats; serialization only reads.
    forEachRunStatsField(
        const_cast<RunStats &>(stats),
        [&](const char *name, std::uint64_t value) {
            // Dotted field names are emitted literally; parseJsonFlat
            // joins nested keys with '.' too, so the flattened names
            // agree either way.
            out << (first ? "" : ",") << '"' << name << "\":" << value;
            first = false;
        });
    out << '}';
}

bool
parseRunStatsFlat(const diff::FlatDoc &doc, const std::string &prefix,
                  RunStats &stats)
{
    bool ok = true;
    forEachRunStatsField(stats,
                         [&](const char *name, std::uint64_t &value) {
                             if (!parseU64(doc, prefix + name, value))
                                 ok = false;
                         });
    return ok;
}

std::uint64_t
runStatsDigest(const RunStats &stats)
{
    WordHasher h;
    forEachRunStatsField(const_cast<RunStats &>(stats),
                         [&](const char *, std::uint64_t value) {
                             h.add(value);
                         });
    return h.digest();
}

std::vector<std::pair<const char *, std::uint64_t>>
runStatsFields(const RunStats &stats)
{
    std::vector<std::pair<const char *, std::uint64_t>> fields;
    forEachRunStatsField(const_cast<RunStats &>(stats),
                         [&](const char *name, std::uint64_t value) {
                             fields.emplace_back(name, value);
                         });
    return fields;
}

bool
parseByteSize(const std::string &text, std::uint64_t &out)
{
    // strtoull silently wraps a leading '-'; only plain digits lead.
    if (text.empty() ||
        std::isdigit(static_cast<unsigned char>(text[0])) == 0)
        return false;
    char *end = nullptr;
    const std::uint64_t value =
        std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str())
        return false;
    std::uint64_t scale = 1;
    if (*end != '\0') {
        switch (std::toupper(static_cast<unsigned char>(*end))) {
        case 'K': scale = std::uint64_t{1} << 10; break;
        case 'M': scale = std::uint64_t{1} << 20; break;
        case 'G': scale = std::uint64_t{1} << 30; break;
        case 'T': scale = std::uint64_t{1} << 40; break;
        default: return false;
        }
        if (end[1] != '\0')
            return false;
    }
    out = value * scale;
    return true;
}

std::uint64_t
cacheMaxBytesFromEnv()
{
    const char *env = std::getenv("CSP_CACHE_MAX_BYTES");
    if (env == nullptr || *env == '\0')
        return 0;
    std::uint64_t bytes = 0;
    if (!parseByteSize(env, bytes)) {
        warn("CSP_CACHE_MAX_BYTES: malformed size %s ignored "
             "(want N with optional K/M/G/T suffix)",
             env);
        return 0;
    }
    return bytes;
}

bool
resultCacheEnabledByEnv()
{
    const char *env = std::getenv("CSP_RESULT_CACHE");
    return env == nullptr || std::strcmp(env, "0") != 0;
}

std::string
defaultResultCacheDir()
{
    const char *env = std::getenv("CSP_RESULT_CACHE_DIR");
    return env != nullptr && *env != '\0' ? env : "results/cache";
}

bool
traceCacheEnabledByEnv()
{
    const char *env = std::getenv("CSP_TRACE_CACHE");
    return env == nullptr || std::strcmp(env, "0") != 0;
}

std::string
defaultTraceCacheDir()
{
    const char *env = std::getenv("CSP_TRACE_CACHE_DIR");
    return env != nullptr && *env != '\0' ? env : "traces/cache";
}

ResultCache::ResultCache(std::string root) : root_(std::move(root)) {}

std::string
ResultCache::entryPath(const CellKey &key) const
{
    return root_ + "/" + hexDigest(cellKeyDigest(key)) + ".json";
}

bool
ResultCache::load(const CellKey &key, RunStats &stats,
                  LoadStats *load_stats) const
{
    const std::string path = entryPath(key);
    // The read/parse split below is what the sweep journal's
    // warm-path attribution is built from (the ROADMAP-named "warm
    // bottleneck is JSON parse of cached entries"): read_ns covers
    // getting bytes off disk, parse_ns everything after (flatten,
    // key checks, stats fields, payload digest).
    const auto read_start = std::chrono::steady_clock::now();
    std::string text;
    if (!readFileToString(path, text))
        return false; // clean miss
    const auto parse_start = std::chrono::steady_clock::now();
    const auto finish = [&](bool verify_failed) {
        if (load_stats == nullptr)
            return;
        const auto ns = [](auto from, auto to) {
            return static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    to - from)
                    .count());
        };
        load_stats->read_ns = ns(read_start, parse_start);
        load_stats->parse_ns =
            ns(parse_start, std::chrono::steady_clock::now());
        load_stats->bytes = text.size();
        load_stats->verify_failed = verify_failed;
    };
    const auto reject = [&](const char *why) {
        warn("result cache: invalid entry %s (%s), recomputing",
             path.c_str(), why);
        finish(true);
        return false;
    };
    diff::FlatDoc doc;
    std::string error;
    if (!diff::parseJsonFlat(text, doc, &error))
        return reject(error.c_str());
    if (!matchText(doc, "schema", kSchema))
        return reject("schema mismatch");
    std::uint64_t epoch = 0;
    if (!parseU64(doc, "epoch", epoch) || epoch != kResultCacheEpoch)
        return reject("epoch mismatch");
    // A digest collision mapping two different cells to one entry path
    // would silently serve wrong results; the stored identity makes
    // that (and any mis-keyed write) detectable.
    if (!matchText(doc, "config_digest", hexDigest(key.config_digest)) ||
        !matchText(doc, "trace_digest", hexDigest(key.trace_digest)) ||
        !matchText(doc, "workload", key.workload) ||
        !matchText(doc, "prefetcher", key.prefetcher) ||
        !matchText(doc, "placement", key.placement))
        return reject("key mismatch");
    std::uint64_t scale = 0, seed = 0;
    if (!parseU64(doc, "scale", scale) || scale != key.scale ||
        !parseU64(doc, "seed", seed) || seed != key.seed)
        return reject("key mismatch");
    RunStats parsed;
    if (!parseRunStatsFlat(doc, "stats.", parsed))
        return reject("missing stats fields");
    const diff::FlatValue *digest_field = doc.find("payload_digest");
    if (digest_field == nullptr || digest_field->text.empty())
        return reject("missing payload digest");
    char *end = nullptr;
    const std::uint64_t payload_digest =
        std::strtoull(digest_field->text.c_str(), &end, 16);
    if (end == nullptr || *end != '\0')
        return reject("malformed payload digest");
    if (runStatsDigest(parsed) != payload_digest)
        return reject("payload digest mismatch");
    stats = parsed;
    finish(false);
    // Touch the entry so trimResultCache's mtime order is LRU by use.
    // Best-effort: a read-only cache still hits, it just trims by
    // write time.
    std::error_code ec;
    std::filesystem::last_write_time(
        path, std::filesystem::file_time_type::clock::now(), ec);
    return true;
}

CacheTrimResult
trimResultCache(const std::string &dir, std::uint64_t max_bytes)
{
    CacheTrimResult result;
    if (max_bytes == 0)
        return result;
    namespace fs = std::filesystem;
    struct Entry
    {
        fs::file_time_type mtime;
        std::string name;
        std::uint64_t bytes = 0;
    };
    std::vector<Entry> entries;
    std::error_code ec;
    fs::directory_iterator it(dir, ec);
    if (ec)
        return result; // no cache directory -> nothing to trim
    for (const fs::directory_entry &de :
         fs::directory_iterator(dir, ec)) {
        if (!de.is_regular_file(ec))
            continue;
        if (de.path().extension() != ".json")
            continue;
        Entry entry;
        entry.name = de.path().filename().string();
        entry.bytes = de.file_size(ec);
        if (ec)
            continue;
        entry.mtime = de.last_write_time(ec);
        if (ec)
            continue;
        result.scanned_bytes += entry.bytes;
        ++result.scanned_entries;
        entries.push_back(std::move(entry));
    }
    if (result.scanned_bytes <= max_bytes)
        return result;
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  if (a.mtime != b.mtime)
                      return a.mtime < b.mtime;
                  return a.name < b.name;
              });
    std::uint64_t remaining = result.scanned_bytes;
    for (const Entry &entry : entries) {
        if (remaining <= max_bytes)
            break;
        std::error_code rm_ec;
        if (!fs::remove(dir + "/" + entry.name, rm_ec) || rm_ec) {
            warn("cache trim: cannot remove %s/%s", dir.c_str(),
                 entry.name.c_str());
            continue;
        }
        remaining -= entry.bytes;
        result.evicted_bytes += entry.bytes;
        ++result.evicted_entries;
        result.evicted.emplace_back(entry.name, entry.bytes);
    }
    return result;
}

bool
ResultCache::store(const CellKey &key, const RunStats &stats,
                   const std::string &git_sha) const
{
    std::ostringstream out;
    out << "{\"schema\":\"" << kSchema << '"'
        << ",\"epoch\":" << kResultCacheEpoch
        << ",\"config_digest\":\"" << hexDigest(key.config_digest)
        << '"' << ",\"trace_digest\":\"" << hexDigest(key.trace_digest)
        << '"' << ",\"workload\":\"" << key.workload << '"'
        << ",\"prefetcher\":\"" << key.prefetcher << '"'
        << ",\"scale\":" << key.scale << ",\"seed\":" << key.seed
        << ",\"placement\":\"" << key.placement << '"'
        << ",\"git_sha\":\"" << git_sha << '"'
        << ",\"payload_digest\":\"" << hexDigest(runStatsDigest(stats))
        << '"' << ",\"stats\":";
    writeRunStatsJson(out, stats);
    out << "}\n";
    return atomicWriteFile(entryPath(key), out.str());
}

} // namespace csp::sim
