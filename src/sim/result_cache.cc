#include "sim/result_cache.h"

#include <cstdlib>
#include <cstring>
#include <ostream>
#include <sstream>
#include <utility>

#include "core/content_store.h"
#include "core/hashing.h"
#include "core/logging.h"
#include "core/run_manifest.h"
#include "diff/csp_diff.h"

namespace csp::sim {

namespace {

constexpr const char *kSchema = "csp-result-cache-v1";

std::uint64_t
stringHash(const std::string &text)
{
    return fnv1a({reinterpret_cast<const std::uint8_t *>(text.data()),
                  text.size()});
}

/** Parse a uint64 from the flattened value's source text — the double
 *  lane loses precision above 2^53. */
bool
parseU64(const diff::FlatDoc &doc, const std::string &name,
         std::uint64_t &out)
{
    const diff::FlatValue *value = doc.find(name);
    if (value == nullptr || !value->is_number)
        return false;
    char *end = nullptr;
    out = std::strtoull(value->text.c_str(), &end, 10);
    return end != nullptr && *end == '\0';
}

bool
matchText(const diff::FlatDoc &doc, const std::string &name,
          const std::string &expect)
{
    const diff::FlatValue *value = doc.find(name);
    return value != nullptr && value->text == expect;
}

/** Every integer field of a RunStats, in serialization order, fed to
 *  one visitor — the writer, parser and digest never disagree on the
 *  field list. */
template <typename Fn>
void
forEachRunStatsField(RunStats &stats, Fn &&fn)
{
    fn("instructions", stats.instructions);
    fn("cycles", stats.cycles);
    fn("demand_accesses", stats.demand_accesses);
    fn("l1_misses", stats.l1_misses);
    fn("l2_demand_misses", stats.l2_demand_misses);
    for (std::size_t c = 0;
         c < static_cast<std::size_t>(AccessClass::Count); ++c) {
        fn(accessClassName(static_cast<AccessClass>(c)),
           stats.classes[c]);
    }
    fn("prefetch_never_hit", stats.prefetch_never_hit);
    mem::HierarchyStats &h = stats.hierarchy;
    fn("hierarchy.demand_accesses", h.demand_accesses);
    fn("hierarchy.l1_misses", h.l1_misses);
    fn("hierarchy.l2_demand_misses", h.l2_demand_misses);
    fn("hierarchy.prefetches_issued", h.prefetches_issued);
    fn("hierarchy.prefetches_duplicate", h.prefetches_duplicate);
    fn("hierarchy.prefetches_dropped", h.prefetches_dropped);
    fn("hierarchy.prefetch_evicted_unused", h.prefetch_evicted_unused);
    fn("hierarchy.prefetch_unused_at_end", h.prefetch_unused_at_end);
    fn("hierarchy.l1_writebacks", h.l1_writebacks);
    fn("hierarchy.l2_writebacks", h.l2_writebacks);
}

} // namespace

std::uint64_t
cellKeyDigest(const CellKey &key)
{
    WordHasher h;
    h.add(kResultCacheEpoch);
    h.add(key.config_digest);
    h.add(key.trace_digest);
    h.add(stringHash(key.workload));
    h.add(stringHash(key.prefetcher));
    h.add(key.scale);
    h.add(key.seed);
    h.add(stringHash(key.placement));
    return h.digest();
}

void
writeRunStatsJson(std::ostream &out, const RunStats &stats)
{
    out << '{';
    bool first = true;
    // The visitor takes a mutable RunStats; serialization only reads.
    forEachRunStatsField(
        const_cast<RunStats &>(stats),
        [&](const char *name, std::uint64_t value) {
            // Dotted field names are emitted literally; parseJsonFlat
            // joins nested keys with '.' too, so the flattened names
            // agree either way.
            out << (first ? "" : ",") << '"' << name << "\":" << value;
            first = false;
        });
    out << '}';
}

bool
parseRunStatsFlat(const diff::FlatDoc &doc, const std::string &prefix,
                  RunStats &stats)
{
    bool ok = true;
    forEachRunStatsField(stats,
                         [&](const char *name, std::uint64_t &value) {
                             if (!parseU64(doc, prefix + name, value))
                                 ok = false;
                         });
    return ok;
}

std::uint64_t
runStatsDigest(const RunStats &stats)
{
    WordHasher h;
    forEachRunStatsField(const_cast<RunStats &>(stats),
                         [&](const char *, std::uint64_t value) {
                             h.add(value);
                         });
    return h.digest();
}

std::vector<std::pair<const char *, std::uint64_t>>
runStatsFields(const RunStats &stats)
{
    std::vector<std::pair<const char *, std::uint64_t>> fields;
    forEachRunStatsField(const_cast<RunStats &>(stats),
                         [&](const char *name, std::uint64_t value) {
                             fields.emplace_back(name, value);
                         });
    return fields;
}

bool
resultCacheEnabledByEnv()
{
    const char *env = std::getenv("CSP_RESULT_CACHE");
    return env == nullptr || std::strcmp(env, "0") != 0;
}

std::string
defaultResultCacheDir()
{
    const char *env = std::getenv("CSP_RESULT_CACHE_DIR");
    return env != nullptr && *env != '\0' ? env : "results/cache";
}

bool
traceCacheEnabledByEnv()
{
    const char *env = std::getenv("CSP_TRACE_CACHE");
    return env == nullptr || std::strcmp(env, "0") != 0;
}

std::string
defaultTraceCacheDir()
{
    const char *env = std::getenv("CSP_TRACE_CACHE_DIR");
    return env != nullptr && *env != '\0' ? env : "traces/cache";
}

ResultCache::ResultCache(std::string root) : root_(std::move(root)) {}

std::string
ResultCache::entryPath(const CellKey &key) const
{
    return root_ + "/" + hexDigest(cellKeyDigest(key)) + ".json";
}

bool
ResultCache::load(const CellKey &key, RunStats &stats) const
{
    const std::string path = entryPath(key);
    std::string text;
    if (!readFileToString(path, text))
        return false; // clean miss
    const auto reject = [&](const char *why) {
        warn("result cache: invalid entry %s (%s), recomputing",
             path.c_str(), why);
        return false;
    };
    diff::FlatDoc doc;
    std::string error;
    if (!diff::parseJsonFlat(text, doc, &error))
        return reject(error.c_str());
    if (!matchText(doc, "schema", kSchema))
        return reject("schema mismatch");
    std::uint64_t epoch = 0;
    if (!parseU64(doc, "epoch", epoch) || epoch != kResultCacheEpoch)
        return reject("epoch mismatch");
    // A digest collision mapping two different cells to one entry path
    // would silently serve wrong results; the stored identity makes
    // that (and any mis-keyed write) detectable.
    if (!matchText(doc, "config_digest", hexDigest(key.config_digest)) ||
        !matchText(doc, "trace_digest", hexDigest(key.trace_digest)) ||
        !matchText(doc, "workload", key.workload) ||
        !matchText(doc, "prefetcher", key.prefetcher) ||
        !matchText(doc, "placement", key.placement))
        return reject("key mismatch");
    std::uint64_t scale = 0, seed = 0;
    if (!parseU64(doc, "scale", scale) || scale != key.scale ||
        !parseU64(doc, "seed", seed) || seed != key.seed)
        return reject("key mismatch");
    RunStats parsed;
    if (!parseRunStatsFlat(doc, "stats.", parsed))
        return reject("missing stats fields");
    const diff::FlatValue *digest_field = doc.find("payload_digest");
    if (digest_field == nullptr || digest_field->text.empty())
        return reject("missing payload digest");
    char *end = nullptr;
    const std::uint64_t payload_digest =
        std::strtoull(digest_field->text.c_str(), &end, 16);
    if (end == nullptr || *end != '\0')
        return reject("malformed payload digest");
    if (runStatsDigest(parsed) != payload_digest)
        return reject("payload digest mismatch");
    stats = parsed;
    return true;
}

bool
ResultCache::store(const CellKey &key, const RunStats &stats,
                   const std::string &git_sha) const
{
    std::ostringstream out;
    out << "{\"schema\":\"" << kSchema << '"'
        << ",\"epoch\":" << kResultCacheEpoch
        << ",\"config_digest\":\"" << hexDigest(key.config_digest)
        << '"' << ",\"trace_digest\":\"" << hexDigest(key.trace_digest)
        << '"' << ",\"workload\":\"" << key.workload << '"'
        << ",\"prefetcher\":\"" << key.prefetcher << '"'
        << ",\"scale\":" << key.scale << ",\"seed\":" << key.seed
        << ",\"placement\":\"" << key.placement << '"'
        << ",\"git_sha\":\"" << git_sha << '"'
        << ",\"payload_digest\":\"" << hexDigest(runStatsDigest(stats))
        << '"' << ",\"stats\":";
    writeRunStatsJson(out, stats);
    out << "}\n";
    return atomicWriteFile(entryPath(key), out.str());
}

} // namespace csp::sim
