/**
 * @file
 * Content-addressed memoization of sweep cells.
 *
 * A sweep cell's RunStats are a pure function of (simulator code,
 * resolved configuration, workload trace, prefetcher name) — the
 * repo's determinism contract, enforced since PR 2 by the
 * bit-identical serial-vs-parallel tests. That makes the RunManifest
 * digests a sound memoization key: `runSweep` consults
 * `results/cache/<digest>.json` before simulating a cell and stores a
 * manifest-stamped entry after, so repeated sweeps (CI, figure
 * regeneration) do zero simulation work and still produce byte-
 * identical output.
 *
 * Invalidation rule (documented in DESIGN.md §7): the key digest folds
 * in kResultCacheEpoch, the config digest (every knob + seed), the
 * trace content digest, the cell identity (workload, prefetcher,
 * scale, seed, placement). The epoch — not the git SHA — is the code
 * component: bump it in the same commit as any result-affecting
 * simulator change (the same commits that must refresh
 * `results/baseline/`). Keying on the git SHA instead would defeat the
 * cache on every commit; the SHA is recorded in each entry as
 * provenance only.
 *
 * Entries are self-verifying: a stats payload digest is stored and
 * re-checked on load, so truncated or corrupted entries are detected
 * and silently recomputed (with a warning).
 */

#ifndef CSP_SIM_RESULT_CACHE_H
#define CSP_SIM_RESULT_CACHE_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "sim/simulator.h"

namespace csp::diff {
struct FlatDoc;
}

namespace csp::sim {

/**
 * Result-format epoch: participates in every cell key, so bumping it
 * orphans all stored entries. Bump in the same commit as any change
 * that alters simulation results (see file comment).
 */
inline constexpr std::uint64_t kResultCacheEpoch = 1;

/** Everything that identifies one sweep cell's inputs. */
struct CellKey
{
    std::uint64_t config_digest = 0; ///< configDigest(config), incl. seed
    std::uint64_t trace_digest = 0;  ///< the cell's workload trace
    std::string workload;
    std::string prefetcher;
    std::uint64_t scale = 0;
    std::uint64_t seed = 0;
    std::string placement; ///< "seq" or "rand"
};

/** The key's content address (folds in kResultCacheEpoch). */
std::uint64_t cellKeyDigest(const CellKey &key);

/** Serialize every RunStats field (all integers) as one JSON object.
 *  The cache entry format and the sweep JSON share this shape. */
void writeRunStatsJson(std::ostream &out, const RunStats &stats);

/** Parse a writeRunStatsJson object back out of a flattened document;
 *  every field must be present under @p prefix (e.g. "stats."). */
bool parseRunStatsFlat(const diff::FlatDoc &doc,
                       const std::string &prefix, RunStats &stats);

/** Order-sensitive digest over every RunStats field — the entry's
 *  self-verification payload digest. */
std::uint64_t runStatsDigest(const RunStats &stats);

/** Name/value pairs of every RunStats field in serialization order —
 *  the sweep CSV's column list (names are static literals). */
std::vector<std::pair<const char *, std::uint64_t>>
runStatsFields(const RunStats &stats);

/**
 * Parse a byte-size string with an optional K/M/G/T suffix (powers of
 * 1024, case-insensitive): "64M" -> 67108864. False on malformed
 * input; plain integers are bytes.
 */
bool parseByteSize(const std::string &text, std::uint64_t &out);

/**
 * $CSP_CACHE_MAX_BYTES as a byte budget for the result cache, or 0
 * (unbounded) when unset/empty. Malformed values warn and count as
 * unbounded. The cspsim --cache-max-bytes flag overrides this.
 */
std::uint64_t cacheMaxBytesFromEnv();

/** True unless CSP_RESULT_CACHE=0 disables the result cache. */
bool resultCacheEnabledByEnv();

/** $CSP_RESULT_CACHE_DIR when set, else "results/cache". */
std::string defaultResultCacheDir();

/** True unless CSP_TRACE_CACHE=0 disables the on-disk trace cache. */
bool traceCacheEnabledByEnv();

/** $CSP_TRACE_CACHE_DIR when set, else "traces/cache". */
std::string defaultTraceCacheDir();

/** See file comment. */
class ResultCache
{
  public:
    /** @param root cache directory, created lazily on first store. */
    explicit ResultCache(std::string root);

    const std::string &root() const { return root_; }

    /** Entry path for @p key: <root>/<hex key digest>.json. */
    std::string entryPath(const CellKey &key) const;

    /**
     * Warm-path cost breakdown of one load(), for the sweep journal's
     * cell events and `cache.*` telemetry. All side-band: nothing here
     * feeds back into results.
     */
    struct LoadStats
    {
        std::uint64_t read_ns = 0;  ///< file read (0 on a clean miss)
        std::uint64_t parse_ns = 0; ///< JSON parse + key/digest verify
        std::uint64_t bytes = 0;    ///< entry size read (0 on miss)
        /// Entry existed but failed verification (schema/epoch/key/
        /// digest) — a rejected entry, not a clean miss.
        bool verify_failed = false;
    };

    /**
     * Look up @p key. True with @p stats filled on a verified hit;
     * false on a miss. A present-but-invalid entry (schema/epoch/key
     * mismatch, parse failure, payload digest mismatch) warns and
     * counts as a miss — the caller recomputes and re-stores. A hit
     * refreshes the entry's mtime, so the mtime order trimResultCache
     * evicts by is least-recently-*used*, not least-recently-written.
     * @p load_stats, when non-null, receives the cost breakdown.
     */
    bool load(const CellKey &key, RunStats &stats,
              LoadStats *load_stats = nullptr) const;

    /**
     * Store @p stats under @p key (atomic write; concurrent shards
     * storing the same digest race benignly). @p git_sha is recorded
     * as provenance. False on filesystem failure — never fatal, a
     * sweep without a writable cache still runs.
     */
    bool store(const CellKey &key, const RunStats &stats,
               const std::string &git_sha) const;

  private:
    std::string root_;
};

/**
 * Mtime-LRU bound on a result-cache directory (the ROADMAP "currently
 * unbounded" item): when the *.json entries exceed @p max_bytes,
 * delete oldest-mtime-first until the total fits. Run after sweep
 * completion (cspsim --cache-max-bytes / CSP_CACHE_MAX_BYTES), never
 * during one — a concurrent shard may be about to hit an entry.
 * @p max_bytes == 0 means unbounded (no-op). Eviction order ties on
 * mtime break by path, so a given directory state trims
 * deterministically. Filesystem errors warn and skip the entry.
 */
struct CacheTrimResult
{
    std::uint64_t scanned_entries = 0;
    std::uint64_t scanned_bytes = 0;
    std::uint64_t evicted_entries = 0;
    std::uint64_t evicted_bytes = 0;
    /** Evicted (filename, bytes), oldest first — journal `evict`
     *  events are emitted from this by the caller. */
    std::vector<std::pair<std::string, std::uint64_t>> evicted;
};
CacheTrimResult trimResultCache(const std::string &dir,
                                std::uint64_t max_bytes);

} // namespace csp::sim

#endif // CSP_SIM_RESULT_CACHE_H
