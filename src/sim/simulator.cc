#include "sim/simulator.h"

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <vector>

#include "core/profiling.h"
#include "cpu/core_model.h"
#include "obs/run_observer.h"
#include "sim/predicted_set.h"
#include "trace/hw_state.h"
#include "trace/trace_io.h"

namespace csp::sim {

using trace::InstKind;
using trace::TraceRecord;

const char *
accessClassName(AccessClass cls)
{
    switch (cls) {
      case AccessClass::HitPrefetchedLine: return "hit-prefetched";
      case AccessClass::ShorterWait: return "shorter-wait";
      case AccessClass::NonTimely: return "non-timely";
      case AccessClass::MissNotPrefetched: return "miss-not-prefetched";
      case AccessClass::HitOlderDemand: return "hit-older-demand";
      case AccessClass::Count: break;
    }
    return "?";
}

double
RunStats::classFraction(AccessClass cls) const
{
    return demand_accesses == 0
               ? 0.0
               : static_cast<double>(classCount(cls)) /
                     static_cast<double>(demand_accesses);
}

double
RunStats::targetPrefetchDistance(const MemoryConfig &memory) const
{
    return memory.l1MissPenalty(l2MissRate()) * ipc() * memFraction();
}

std::string
RunStats::toJson() const
{
    std::ostringstream out;
    out << "{\"instructions\":" << instructions
        << ",\"cycles\":" << cycles << ",\"ipc\":" << ipc()
        << ",\"l1_mpki\":" << l1Mpki() << ",\"l2_mpki\":" << l2Mpki()
        << ",\"demand_accesses\":" << demand_accesses
        << ",\"prefetches_issued\":" << hierarchy.prefetches_issued
        << ",\"prefetch_never_hit\":" << prefetch_never_hit
        << ",\"classes\":{";
    for (std::size_t c = 0;
         c < static_cast<std::size_t>(AccessClass::Count); ++c) {
        out << (c == 0 ? "" : ",") << '"'
            << accessClassName(static_cast<AccessClass>(c))
            << "\":" << classes[c];
    }
    out << "}}";
    return out.str();
}

namespace {

/** Record source over a materialised vector, matching TraceCursor's
 *  `const TraceRecord *next()` shape for runFrom(). */
class VectorSource
{
  public:
    explicit VectorSource(const std::vector<TraceRecord> &records)
        : cur_(records.data()), end_(records.data() + records.size())
    {}

    const TraceRecord *
    next()
    {
        return cur_ == end_ ? nullptr : cur_++;
    }

  private:
    const TraceRecord *cur_;
    const TraceRecord *end_;
};

} // namespace

Simulator::Simulator(const SystemConfig &config) : config_(config) {}

void
Simulator::setSampling(std::uint64_t interval_insts,
                       const std::string &filter)
{
    stats_interval_ = interval_insts;
    stats_filter_ = filter;
}

void
Simulator::setReportFilter(const std::string &filter)
{
    report_filter_ = filter;
}

void
Simulator::setProgress(ProgressFn fn, std::uint64_t every_insts)
{
    progress_ = std::move(fn);
    progress_every_ = every_insts;
}

RunStats
Simulator::run(const trace::TraceBuffer &trace,
               prefetch::Prefetcher &prefetcher)
{
    trace::TraceCursor cursor = trace.cursor();
    return dispatchRun(cursor, prefetcher);
}

RunStats
Simulator::run(const std::vector<trace::TraceRecord> &records,
               prefetch::Prefetcher &prefetcher)
{
    VectorSource source(records);
    return dispatchRun(source, prefetcher);
}

RunStats
Simulator::run(const trace::MappedTrace &trace,
               prefetch::Prefetcher &prefetcher)
{
    trace::StreamingTraceSource source(trace);
    return dispatchRun(source, prefetcher);
}

template <typename Source>
RunStats
Simulator::dispatchRun(Source &source, prefetch::Prefetcher &prefetcher)
{
    if (observer_ != nullptr) {
        return profiler_ != nullptr
                   ? runFrom<true, true>(source, prefetcher)
                   : runFrom<true, false>(source, prefetcher);
    }
    return profiler_ != nullptr
               ? runFrom<false, true>(source, prefetcher)
               : runFrom<false, false>(source, prefetcher);
}

template <bool kObserved, bool kProfiled, typename Source>
RunStats
Simulator::runFrom(Source &source, prefetch::Prefetcher &prefetcher)
{
    // Folds to a compile-time nullptr in the unprofiled instantiation,
    // so every ScopedTimer below vanishes from its codegen.
    prof::Profiler *const profiler = kProfiled ? profiler_ : nullptr;
    cpu::CoreModel core(config_.core);
    mem::Hierarchy hierarchy(config_.memory);
    if constexpr (kObserved) {
        hierarchy.setTracker(observer_->tracker);
        hierarchy.setMemObserver(observer_->mem);
        prefetcher.setRlTap(observer_->rl);
        prefetcher.setLearningObserver(observer_->learn);
    }
    if constexpr (kProfiled)
        prefetcher.setProfiler(profiler);
    trace::HwContextTracker hw(config_.memory.l1d.line_bytes);
    PredictedSet predicted_unissued;

    RunStats stats;
    AccessSeq seq = 0;
    std::vector<prefetch::PrefetchRequest> requests;

    // Run-local counters that exist only as registry stats.
    std::uint64_t requests_real = 0;
    std::uint64_t requests_shadow = 0;
    std::uint64_t useful_hits = 0;

    // The run's stats registry: every layer contributes named stats,
    // the registry reads them through pointers/callbacks only when a
    // snapshot is taken (end of run, or each sampling interval).
    stats::Registry registry;
    registry.counter(
        "sim.instructions", [&core] { return core.instructions(); },
        "instructions dispatched");
    registry.counter(
        "sim.cycles", [&core] { return core.elapsed(); },
        "cycles elapsed (last retirement)");
    registry.formula("sim.ipc", "sim.instructions", "sim.cycles", 1.0,
                     "instructions per cycle");
    registry.formula("sim.l1_mpki", "mem.l1.misses",
                     "sim.instructions", 1000.0,
                     "L1D misses per kilo-instruction");
    registry.formula("sim.l2_mpki", "mem.l2.demand_misses",
                     "sim.instructions", 1000.0,
                     "demand L2 misses per kilo-instruction");
    for (std::size_t c = 0;
         c < static_cast<std::size_t>(AccessClass::Count); ++c) {
        registry.counter(
            std::string("sim.class.") +
                accessClassName(static_cast<AccessClass>(c)),
            &stats.classes[c],
            "demand accesses in this Figure-9 benefit class");
    }
    registry.counter("sim.prefetch.requests_real", &requests_real,
                     "real prefetch candidates emitted");
    registry.counter("sim.prefetch.requests_shadow", &requests_shadow,
                     "shadow (training-only) candidates emitted");
    registry.counter("sim.prefetch.useful_hits", &useful_hits,
                     "demand accesses sped up by a prefetch");
    hierarchy.registerStats(registry);
    prefetcher.registerStats(registry);
    if constexpr (kObserved) {
        if (observer_->learn != nullptr)
            observer_->learn->registerStats(registry);
        if (observer_->mem != nullptr)
            observer_->mem->registerStats(registry);
    }
    if constexpr (kProfiled)
        profiler->registerStats(registry);
    registry.formula("mem.mshr.occupancy_avg",
                     "mem.mshr.l1_busy_cycles", "sim.cycles", 1.0,
                     "average L1 MSHR slots in use");
    registry.formula("mem.mshr.l2_occupancy_avg",
                     "mem.mshr.l2_busy_cycles", "sim.cycles", 1.0,
                     "average L2 MSHR slots in use");

    stats::IntervalSampler sampler(registry, stats_interval_,
                                   stats_filter_);
    const std::uint64_t progress_every =
        progress_ ? progress_every_ : 0;
    std::uint64_t next_progress =
        progress_every == 0 ? UINT64_MAX : progress_every;

    // The hot loop pays for instrumentation with ONE compare against
    // this fused boundary (UINT64_MAX when sampling and progress are
    // both off); the cold path below recomputes it.
    std::uint64_t next_event =
        std::min(sampler.nextSampleAt(), next_progress);

    // One context snapshot for the whole run; captureInto() writes
    // every attribute per access.
    trace::ContextSnapshot ctx;

    // Replay wall-clock is inclusive of the finer phases timed inside
    // the loop (mem.access, mem.prefetch, prefetch.observe). Timed
    // manually rather than via ScopedTimer: the accumulated value must
    // land in the profiler before the end-of-run registry snapshot.
    std::chrono::steady_clock::time_point replay_start;
    if (profiler != nullptr)
        replay_start = std::chrono::steady_clock::now();

    while (const TraceRecord *rec_ptr = source.next()) {
        const TraceRecord &rec = *rec_ptr;
        switch (rec.kind) {
          case InstKind::Compute:
            core.computeBurst(rec.repeat);
            break;

          case InstKind::Branch: {
            const Cycle dispatch = core.dispatchNext();
            core.complete(dispatch + 1);
            hw.update(rec);
            break;
          }

          case InstKind::Load:
          case InstKind::Store: {
            const bool is_store = rec.kind == InstKind::Store;
            const Cycle dispatch = core.dispatchNext();
            const Cycle issue = is_store
                                    ? dispatch
                                    : core.loadIssueAt(
                                          dispatch,
                                          rec.dep_on_prev_load);
            mem::AccessResult result;
            {
                prof::ScopedTimer timer(profiler,
                                        prof::Phase::MemAccess);
                result = hierarchy.access(rec.vaddr, issue, is_store,
                                          rec.pc);
            }
            if (is_store) {
                // The store buffer hides the fill latency; retirement
                // only needs the L1 write port.
                core.complete(
                    issue + config_.memory.l1d.access_latency);
            } else {
                core.completeLoad(result.complete);
            }

            // Classify the access (paper Figure 9).
            const Addr line = hierarchy.lineAddr(rec.vaddr);
            AccessClass cls;
            if (result.hit_prefetched_line)
                cls = AccessClass::HitPrefetchedLine;
            else if (result.shorter_wait)
                cls = AccessClass::ShorterWait;
            else if (!result.l1_miss)
                cls = AccessClass::HitOlderDemand;
            else if (predicted_unissued.contains(line))
                cls = AccessClass::NonTimely;
            else
                cls = AccessClass::MissNotPrefetched;
            ++stats.classes[static_cast<std::size_t>(cls)];
            if (cls == AccessClass::HitPrefetchedLine ||
                cls == AccessClass::ShorterWait) {
                ++useful_hits;
            }

            // Hand the access to the prefetcher and dispatch its
            // requests.
            hw.captureInto(rec, ctx);
            prefetch::AccessInfo info;
            info.seq = seq;
            info.cycle = issue;
            info.pc = rec.pc;
            info.vaddr = rec.vaddr;
            info.line_addr = line;
            info.is_store = is_store;
            info.l1_miss = result.l1_miss;
            info.hit_prefetched_line = result.hit_prefetched_line;
            info.free_l1_mshrs = hierarchy.freeL1Mshrs(issue);
            info.loaded_value = is_store ? 0 : rec.loaded_value;
            info.context = &ctx;
            requests.clear();
            {
                prof::ScopedTimer timer(profiler,
                                        prof::Phase::PrefetchObserve);
                prefetcher.observe(info, requests);
            }
            {
                prof::ScopedTimer timer(profiler,
                                        prof::Phase::MemPrefetch);
                for (const prefetch::PrefetchRequest &req : requests) {
                    if (req.shadow)
                        ++requests_shadow;
                    else
                        ++requests_real;
                    if (req.shadow) {
                        predicted_unissued.record(
                            hierarchy.lineAddr(req.addr));
                        continue;
                    }
                    const mem::PrefetchOutcome outcome =
                        hierarchy.prefetch(
                            req.addr, issue,
                            config_.context.min_free_mshrs, req.pc);
                    prefetcher.onPrefetchOutcome(req.addr, outcome);
                    if (outcome == mem::PrefetchOutcome::NoMshr) {
                        predicted_unissued.record(
                            hierarchy.lineAddr(req.addr));
                    }
                }
            }

            hw.update(rec);
            ++seq;

            // Instrumentation boundary check, on the memory-access
            // path only (every boundary is crossed within a few
            // hundred instructions on any workload; the compute/branch
            // paths stay call-free and register-resident). One compare
            // against the fused bound when nothing is enabled.
            if (core.instructions() >= next_event) [[unlikely]] {
                const std::uint64_t insts = core.instructions();
                if (sampler.due(insts)) {
                    prof::ScopedTimer timer(profiler,
                                            prof::Phase::StatsFlush);
                    sampler.sample(insts);
                }
                if (insts >= next_progress) {
                    progress_(insts);
                    while (next_progress <= insts)
                        next_progress += progress_every;
                }
                next_event =
                    std::min(sampler.nextSampleAt(), next_progress);
            }
            break;
          }
        }
    }

    prefetcher.finish();
    hierarchy.finish();
    if constexpr (kProfiled) {
        if (profiler != nullptr) {
            const auto replay_ns =
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - replay_start)
                    .count();
            profiler->add(prof::Phase::Replay,
                          static_cast<std::uint64_t>(replay_ns));
        }
    }
    {
        prof::ScopedTimer timer(profiler, prof::Phase::StatsFlush);
        sampler.finish(core.instructions());
    }
    if constexpr (kProfiled)
        prefetcher.setProfiler(nullptr);
    if constexpr (kObserved) {
        // Close every still-active lifecycle as Useless and detach the
        // taps: the prefetcher may outlive this run. The learning
        // observer detaches after finish() so the final snapshot above
        // reached it.
        if (observer_->tracker != nullptr)
            observer_->tracker->finish(core.elapsed());
        prefetcher.setRlTap(nullptr);
        prefetcher.setLearningObserver(nullptr);
    }

    // RunStats keeps its public shape but is populated from the
    // registry — the registry is the single source of truth.
    stats.instructions =
        static_cast<std::uint64_t>(registry.value("sim.instructions"));
    stats.cycles = static_cast<Cycle>(registry.value("sim.cycles"));
    stats.hierarchy = hierarchy.stats();
    stats.demand_accesses = static_cast<std::uint64_t>(
        registry.value("mem.l1.demand_accesses"));
    stats.l1_misses =
        static_cast<std::uint64_t>(registry.value("mem.l1.misses"));
    stats.l2_demand_misses = static_cast<std::uint64_t>(
        registry.value("mem.l2.demand_misses"));
    stats.prefetch_never_hit = static_cast<std::uint64_t>(
        registry.value("mem.prefetch.never_hit"));

    last_report_ = registry.report(report_filter_);
    last_series_ = sampler.takeSeries();
    return stats;
}

} // namespace csp::sim
