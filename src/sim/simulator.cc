#include "sim/simulator.h"

#include <sstream>
#include <vector>

#include "cpu/core_model.h"
#include "trace/hw_state.h"

namespace csp::sim {

using trace::InstKind;
using trace::TraceRecord;

const char *
accessClassName(AccessClass cls)
{
    switch (cls) {
      case AccessClass::HitPrefetchedLine: return "hit-prefetched";
      case AccessClass::ShorterWait: return "shorter-wait";
      case AccessClass::NonTimely: return "non-timely";
      case AccessClass::MissNotPrefetched: return "miss-not-prefetched";
      case AccessClass::HitOlderDemand: return "hit-older-demand";
      case AccessClass::Count: break;
    }
    return "?";
}

double
RunStats::classFraction(AccessClass cls) const
{
    return demand_accesses == 0
               ? 0.0
               : static_cast<double>(classCount(cls)) /
                     static_cast<double>(demand_accesses);
}

double
RunStats::targetPrefetchDistance(const MemoryConfig &memory) const
{
    return memory.l1MissPenalty(l2MissRate()) * ipc() * memFraction();
}

std::string
RunStats::toJson() const
{
    std::ostringstream out;
    out << "{\"instructions\":" << instructions
        << ",\"cycles\":" << cycles << ",\"ipc\":" << ipc()
        << ",\"l1_mpki\":" << l1Mpki() << ",\"l2_mpki\":" << l2Mpki()
        << ",\"demand_accesses\":" << demand_accesses
        << ",\"prefetches_issued\":" << hierarchy.prefetches_issued
        << ",\"prefetch_never_hit\":" << prefetch_never_hit
        << ",\"classes\":{";
    for (std::size_t c = 0;
         c < static_cast<std::size_t>(AccessClass::Count); ++c) {
        out << (c == 0 ? "" : ",") << '"'
            << accessClassName(static_cast<AccessClass>(c))
            << "\":" << classes[c];
    }
    out << "}}";
    return out.str();
}

namespace {

/** Small ring of recently predicted-but-not-issued block addresses,
 *  backing the Non-Timely category of Figure 9. */
class PredictedRing
{
  public:
    void
    record(Addr line)
    {
        ring_[pos_ % ring_.size()] = line;
        ++pos_;
    }

    bool
    contains(Addr line) const
    {
        const std::size_t n = std::min<std::size_t>(pos_, ring_.size());
        for (std::size_t i = 0; i < n; ++i) {
            if (ring_[i] == line)
                return true;
        }
        return false;
    }

  private:
    std::array<Addr, 256> ring_{};
    std::size_t pos_ = 0;
};

} // namespace

Simulator::Simulator(const SystemConfig &config) : config_(config) {}

RunStats
Simulator::run(const trace::TraceBuffer &trace,
               prefetch::Prefetcher &prefetcher)
{
    cpu::CoreModel core(config_.core);
    mem::Hierarchy hierarchy(config_.memory);
    trace::HwContextTracker hw(config_.memory.l1d.line_bytes);
    PredictedRing predicted_unissued;

    RunStats stats;
    AccessSeq seq = 0;
    std::vector<prefetch::PrefetchRequest> requests;

    for (const TraceRecord &rec : trace.records()) {
        switch (rec.kind) {
          case InstKind::Compute:
            core.computeBurst(rec.repeat);
            break;

          case InstKind::Branch: {
            const Cycle dispatch = core.dispatchNext();
            core.complete(dispatch + 1);
            hw.update(rec);
            break;
          }

          case InstKind::Load:
          case InstKind::Store: {
            const bool is_store = rec.kind == InstKind::Store;
            const Cycle dispatch = core.dispatchNext();
            const Cycle issue = is_store
                                    ? dispatch
                                    : core.loadIssueAt(
                                          dispatch,
                                          rec.dep_on_prev_load);
            const mem::AccessResult result =
                hierarchy.access(rec.vaddr, issue, is_store);
            if (is_store) {
                // The store buffer hides the fill latency; retirement
                // only needs the L1 write port.
                core.complete(
                    issue + config_.memory.l1d.access_latency);
            } else {
                core.completeLoad(result.complete);
            }

            // Classify the access (paper Figure 9).
            const Addr line = hierarchy.lineAddr(rec.vaddr);
            AccessClass cls;
            if (result.hit_prefetched_line)
                cls = AccessClass::HitPrefetchedLine;
            else if (result.shorter_wait)
                cls = AccessClass::ShorterWait;
            else if (!result.l1_miss)
                cls = AccessClass::HitOlderDemand;
            else if (predicted_unissued.contains(line))
                cls = AccessClass::NonTimely;
            else
                cls = AccessClass::MissNotPrefetched;
            ++stats.classes[static_cast<std::size_t>(cls)];

            // Hand the access to the prefetcher and dispatch its
            // requests.
            const trace::ContextSnapshot ctx = hw.capture(rec);
            prefetch::AccessInfo info;
            info.seq = seq;
            info.cycle = issue;
            info.pc = rec.pc;
            info.vaddr = rec.vaddr;
            info.line_addr = line;
            info.is_store = is_store;
            info.l1_miss = result.l1_miss;
            info.hit_prefetched_line = result.hit_prefetched_line;
            info.free_l1_mshrs = hierarchy.freeL1Mshrs(issue);
            info.loaded_value = is_store ? 0 : rec.loaded_value;
            info.context = &ctx;
            requests.clear();
            prefetcher.observe(info, requests);
            for (const prefetch::PrefetchRequest &req : requests) {
                if (req.shadow) {
                    predicted_unissued.record(
                        hierarchy.lineAddr(req.addr));
                    continue;
                }
                const mem::PrefetchOutcome outcome =
                    hierarchy.prefetch(
                        req.addr, issue,
                        config_.context.min_free_mshrs);
                prefetcher.onPrefetchOutcome(req.addr, outcome);
                if (outcome == mem::PrefetchOutcome::NoMshr) {
                    predicted_unissued.record(
                        hierarchy.lineAddr(req.addr));
                }
            }

            hw.update(rec);
            ++seq;
            break;
          }
        }
    }

    prefetcher.finish();
    hierarchy.finish();

    stats.instructions = core.instructions();
    stats.cycles = core.elapsed();
    stats.hierarchy = hierarchy.stats();
    stats.demand_accesses = stats.hierarchy.demand_accesses;
    stats.l1_misses = stats.hierarchy.l1_misses;
    stats.l2_demand_misses = stats.hierarchy.l2_demand_misses;
    stats.prefetch_never_hit = stats.hierarchy.prefetchesNeverHit();
    return stats;
}

} // namespace csp::sim
