/**
 * @file
 * The simulator driver: wires the core timing model, the cache
 * hierarchy and a prefetcher together and replays a workload trace in
 * program order, producing the statistics every evaluation figure is
 * built from — IPC (Figure 12), L1/L2 MPKI (Figures 10/11), the
 * per-access benefit classification (Figure 9) and the prefetcher's
 * hit-depth distribution (Figure 8).
 */

#ifndef CSP_SIM_SIMULATOR_H
#define CSP_SIM_SIMULATOR_H

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/stats.h"
#include "core/stats_registry.h"
#include "mem/hierarchy.h"
#include "prefetch/prefetcher.h"
#include "trace/trace.h"

namespace csp::obs {
struct RunObserver;
}

namespace csp::prof {
class Profiler;
}

namespace csp::trace {
class MappedTrace;
}

namespace csp::sim {

/** Per-access benefit categories of paper Figure 9. */
enum class AccessClass : std::uint8_t
{
    HitPrefetchedLine, ///< demand hit the cache because of a prefetch
    ShorterWait,       ///< missed, but an ongoing prefetch cut the wait
    NonTimely,         ///< predicted, but no request issued before demand
    MissNotPrefetched, ///< missed and never predicted
    HitOlderDemand,    ///< plain cache hit, no prefetch needed
    Count,
};

/** Human-readable label for an AccessClass. */
const char *accessClassName(AccessClass cls);

/** Everything one simulation run produces. */
struct RunStats
{
    std::uint64_t instructions = 0;
    Cycle cycles = 0;
    std::uint64_t demand_accesses = 0;
    std::uint64_t l1_misses = 0;
    std::uint64_t l2_demand_misses = 0;
    std::array<std::uint64_t, static_cast<std::size_t>(
                                  AccessClass::Count)>
        classes{};
    /// Wrong prefetches (issued, never used) — plotted above 100% in
    /// Figure 9.
    std::uint64_t prefetch_never_hit = 0;
    mem::HierarchyStats hierarchy;

    double
    ipc() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(instructions) /
                                 static_cast<double>(cycles);
    }

    double cpi() const { return ipc() == 0.0 ? 0.0 : 1.0 / ipc(); }

    double
    l1Mpki() const
    {
        return instructions == 0
                   ? 0.0
                   : 1000.0 * static_cast<double>(l1_misses) /
                         static_cast<double>(instructions);
    }

    double
    l2Mpki() const
    {
        return instructions == 0
                   ? 0.0
                   : 1000.0 * static_cast<double>(l2_demand_misses) /
                         static_cast<double>(instructions);
    }

    std::uint64_t
    classCount(AccessClass cls) const
    {
        return classes[static_cast<std::size_t>(cls)];
    }

    /** Fraction of demand accesses in @p cls. */
    double classFraction(AccessClass cls) const;

    /** Memory operations per instruction. */
    double
    memFraction() const
    {
        return instructions == 0
                   ? 0.0
                   : static_cast<double>(demand_accesses) /
                         static_cast<double>(instructions);
    }

    /** Demand L2 miss rate relative to L1 misses. */
    double
    l2MissRate() const
    {
        return l1_misses == 0
                   ? 0.0
                   : static_cast<double>(l2_demand_misses) /
                         static_cast<double>(l1_misses);
    }

    /**
     * The paper's target prefetch distance (section 4.3), in memory
     * accesses:
     *   distance = L1 miss penalty * IPC * Prob(mem op)
     * with L1 miss penalty = L2 latency + L2 miss rate * DRAM latency.
     * The paper reports 10-90 accesses across workloads, average ~30 —
     * the number the reward window is centred on.
     */
    double targetPrefetchDistance(const MemoryConfig &memory) const;

    /** Key metrics as a single-line JSON object (tool integration). */
    std::string toJson() const;
};

/** See file comment. */
class Simulator
{
  public:
    /** Periodic progress hook: called with instructions retired so far. */
    using ProgressFn = std::function<void(std::uint64_t)>;

    explicit Simulator(const SystemConfig &config);

    /**
     * Enable interval stats sampling for subsequent run() calls: one
     * time-series row every @p interval_insts instructions (0 disables,
     * the default), keeping only columns under the dotted prefix
     * @p filter (empty keeps all). Read the result via lastSeries().
     */
    void setSampling(std::uint64_t interval_insts,
                     const std::string &filter = "");

    /** Dotted-prefix filter applied to lastReport() (dump export). */
    void setReportFilter(const std::string &filter);

    /**
     * Install a progress hook called roughly every @p every_insts
     * instructions during run() (0 disables, the default).
     */
    void setProgress(ProgressFn fn, std::uint64_t every_insts = 100000);

    /**
     * Attach an observability bundle (lifecycle tracker, RL tap) for
     * subsequent run() calls; nullptr (the default) detaches it and
     * keeps the replay loop's unobserved instantiation. Installing an
     * observer — even one with every sink null — switches to the
     * observed instantiation; results are bit-identical either way.
     * The observer must outlive the run() call.
     */
    void setObserver(obs::RunObserver *observer)
    {
        observer_ = observer;
    }

    /**
     * Attach a self-profiler for subsequent run() calls; nullptr (the
     * default) detaches it and keeps the unprofiled replay-loop
     * instantiation, which carries no timer plumbing at all (same
     * idiom as setObserver). The profiler accumulates across runs and
     * must outlive both the run() call and any report taken from it —
     * the run's registry publishes `prof.*` stats that read through
     * pointers into it. Results are bit-identical either way.
     */
    void setProfiler(prof::Profiler *profiler)
    {
        profiler_ = profiler;
    }

    /** Replay @p trace through @p prefetcher; returns the run's stats. */
    RunStats run(const trace::TraceBuffer &trace,
                 prefetch::Prefetcher &prefetcher);

    /**
     * Replay an already-materialised record vector. Same replay loop as
     * the TraceBuffer overload (both instantiate runFrom), so the
     * golden representation tests can compare packed-trace replay
     * against a reference std::vector<TraceRecord> trace bit for bit.
     */
    RunStats run(const std::vector<trace::TraceRecord> &records,
                 prefetch::Prefetcher &prefetcher);

    /**
     * Replay an mmap'd on-disk packed trace (trace_io). Streams through
     * a windowed StreamingTraceSource, so peak RSS stays near the
     * window size no matter the trace's on-disk size; results are bit
     * identical to replaying the equivalent in-memory TraceBuffer.
     */
    RunStats run(const trace::MappedTrace &trace,
                 prefetch::Prefetcher &prefetcher);

    /** Full hierarchical stats of the most recent run() (all registered
     *  counters/gauges/distributions/formulas, filter applied). */
    const stats::Report &lastReport() const { return last_report_; }

    /** Interval time-series of the most recent run() — empty unless
     *  setSampling() enabled sampling. */
    const stats::TimeSeries &lastSeries() const { return last_series_; }

  private:
    /** The replay loop, generic over a `const TraceRecord *next()`
     *  record source (TraceCursor or a plain vector walker).
     *  @tparam kObserved selects the instantiation that wires the
     *  RunObserver through the hierarchy and prefetcher; the false
     *  instantiation carries no observer plumbing at all.
     *  @tparam kProfiled likewise selects the instantiation whose hot
     *  loop carries phase timers (setProfiler). */
    template <bool kObserved, bool kProfiled, typename Source>
    RunStats runFrom(Source &source, prefetch::Prefetcher &prefetcher);

    /** Picks the runFrom instantiation for the attached observer and
     *  profiler. */
    template <typename Source>
    RunStats dispatchRun(Source &source,
                         prefetch::Prefetcher &prefetcher);

    SystemConfig config_;
    obs::RunObserver *observer_ = nullptr;
    prof::Profiler *profiler_ = nullptr;
    std::uint64_t stats_interval_ = 0;
    std::string stats_filter_;
    std::string report_filter_;
    ProgressFn progress_;
    std::uint64_t progress_every_ = 0;
    stats::Report last_report_;
    stats::TimeSeries last_series_;
};

} // namespace csp::sim

#endif // CSP_SIM_SIMULATOR_H
