#include "sim/sweep_events.h"

#include <utility>

#include "core/logging.h"
#include "core/stats_registry.h"

namespace csp::sim {

namespace {

/** Minimal JSON string escaping — journal strings are workload /
 *  prefetcher / path names, but a hostile name must not break the
 *  one-object-per-line framing. */
void
appendEscaped(std::string &out, const std::string &text)
{
    for (const char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

} // namespace

SweepEventJournal::~SweepEventJournal() { close(); }

bool
SweepEventJournal::open(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (file_ != nullptr) {
        warn("event journal: already open, ignoring open(%s)",
             path.c_str());
        return false;
    }
    std::FILE *file = std::fopen(path.c_str(), "wb");
    if (file == nullptr) {
        warn("event journal: cannot write %s", path.c_str());
        return false;
    }
    // Unbuffered so each emit()'s single fwrite reaches the file whole
    // — a reader following the journal (csptop --follow) never sees a
    // torn line, and a crashed sweep leaves a valid prefix.
    std::setvbuf(file, nullptr, _IONBF, 0);
    file_ = file;
    seq_ = 0;
    start_ = std::chrono::steady_clock::now();
    unix_start_ns_ = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    return true;
}

void
SweepEventJournal::close()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (file_ != nullptr) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

SweepEventJournal::Field
SweepEventJournal::u64(const char *key, std::uint64_t value)
{
    Field f;
    f.key = key;
    f.kind = Field::Kind::U64;
    f.u = value;
    return f;
}

SweepEventJournal::Field
SweepEventJournal::str(const char *key, std::string value)
{
    Field f;
    f.key = key;
    f.kind = Field::Kind::Str;
    f.s = std::move(value);
    return f;
}

SweepEventJournal::Field
SweepEventJournal::raw(const char *key, std::string json)
{
    Field f;
    f.key = key;
    f.kind = Field::Kind::Raw;
    f.s = std::move(json);
    return f;
}

std::uint64_t
SweepEventJournal::elapsedNs() const
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
}

void
SweepEventJournal::emit(const char *event,
                        std::initializer_list<Field> fields)
{
    // The line is fully formatted before any I/O; t_ns and seq are
    // assigned under the mutex so both are nondecreasing in the file.
    std::lock_guard<std::mutex> lock(mutex_);
    if (file_ == nullptr)
        return;
    std::string line;
    line.reserve(256);
    line += "{\"event\":\"";
    line += event;
    line += "\",\"t_ns\":";
    line += std::to_string(elapsedNs());
    line += ",\"seq\":";
    line += std::to_string(seq_++);
    line += ",\"shard\":";
    line += std::to_string(shard_);
    for (const Field &field : fields) {
        line += ",\"";
        line += field.key;
        line += "\":";
        switch (field.kind) {
        case Field::Kind::U64:
            line += std::to_string(field.u);
            break;
        case Field::Kind::Str:
            line += '"';
            appendEscaped(line, field.s);
            line += '"';
            break;
        case Field::Kind::Raw:
            line += field.s;
            break;
        }
    }
    line += "}\n";
    std::fwrite(line.data(), 1, line.size(), file_);
}

std::string
SweepTelemetry::statsJson() const
{
    stats::Registry registry;
    registry.counter("sweep.cells_owned", &cells_owned,
                     "cells this shard owned");
    registry.counter("sweep.cells_cached", &cells_cached,
                     "cells satisfied from the result cache");
    registry.counter("sweep.cells_simulated", &cells_simulated,
                     "cells actually simulated");
    registry.counter("sweep.trace_cache_hits", &trace_cache_hits,
                     "workload traces not regenerated");
    registry.counter("sweep.traces_generated", &traces_generated,
                     "workload traces generated");
    registry.counter("sweep.traces_loaded", &traces_loaded,
                     "cached traces materialised for simulation");
    registry.distribution("sweep.cell_duration_ns", &cell_duration_ns,
                          "wall-clock per cell (cached or simulated)");
    registry.counter("cache.read_ns", &cache_read_ns,
                     "cached-entry file read time");
    registry.counter("cache.parse_ns", &cache_parse_ns,
                     "cached-entry JSON parse + verify time");
    registry.counter("cache.entry_bytes", &cache_entry_bytes,
                     "cached-entry bytes read");
    registry.counter("cache.verify_failures", &cache_verify_failures,
                     "entries rejected by self-verification");
    registry.distribution("cache.load_ns", &cache_load_ns,
                          "per-entry read+parse time");
    registry.distribution("cache.entry_bytes_dist",
                          &cache_entry_bytes_dist,
                          "per-entry size in bytes");
    return registry.toJson();
}

} // namespace csp::sim
