/**
 * @file
 * Sweep observability: the csp-events-v1 JSONL journal and the
 * telemetry rolled up into its `sweep_end` event.
 *
 * A long sharded sweep is a black box without a record of which cells
 * ran where and why the caches hit or missed. `cspsim --events-out`
 * opens a SweepEventJournal and `runSweep` appends one JSON object per
 * line as the sweep progresses: `sweep_start` (identity + schedule
 * parameters), `trace_cache`/`trace_gen`/`trace_load` (per-workload
 * trace provenance), `schedule` (ownership under the longest-first
 * order), `cell_start`/`cell_end` (worker attribution, duration,
 * cached-vs-simulated, cache read+parse time), rate-limited
 * `heartbeat` snapshots, and a `sweep_end` roll-up embedding a
 * stats-registry report (`sweep.*` / `cache.*` counters and
 * Log2Histograms). `cspsim` appends `evict`/`cache_trim` events after
 * the sweep when `--cache-max-bytes` trims the result cache.
 *
 * Two rules keep the journal honest:
 *
 *  - **Side-band only.** Nothing read from the journal ever feeds back
 *    into results; emission sites only observe values the sweep
 *    already computed. Sweeps with events on/off are bit-identical
 *    (enforced by tests/test_sweep_events.cc), which is why the events
 *    may carry wall-clock timings at all.
 *  - **Atomic lines** (the PR 2 logging discipline): each event is
 *    formatted into one buffer and appended with a single unbuffered
 *    fwrite under the journal mutex, so concurrent workers never
 *    interleave mid-line and a crashed sweep leaves a valid prefix.
 *    `t_ns` (monotonic since open) and `seq` are assigned under the
 *    same mutex, so both are nondecreasing within one journal file.
 *    Merged journals (cspmerge --events-out) are ordered by
 *    `sweep_start.unix_ns + t_ns` instead.
 */

#ifndef CSP_SIM_SWEEP_EVENTS_H
#define CSP_SIM_SWEEP_EVENTS_H

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <mutex>
#include <string>

#include "core/stats.h"

namespace csp::sim {

/** The journal line schema, stamped into every sweep_start event. */
inline constexpr const char *kSweepEventsSchema = "csp-events-v1";

/** See file comment. */
class SweepEventJournal
{
  public:
    SweepEventJournal() = default;
    ~SweepEventJournal();

    SweepEventJournal(const SweepEventJournal &) = delete;
    SweepEventJournal &operator=(const SweepEventJournal &) = delete;

    /**
     * Create (truncate) @p path and start the journal clock. False
     * with a warning on failure — an unwritable journal never fails
     * the sweep, it just records nothing.
     */
    bool open(const std::string &path);

    bool isOpen() const { return file_ != nullptr; }

    /** Flush and close; further emit() calls are ignored. */
    void close();

    /** Every event line carries this shard index (default 0). */
    void setShard(unsigned shard) { shard_ = shard; }

    /** One typed field of an event line. */
    struct Field
    {
        enum class Kind : std::uint8_t
        {
            U64, ///< unsigned integer, emitted bare
            Str, ///< string, emitted quoted + escaped
            Raw, ///< pre-rendered JSON value, emitted verbatim
        };
        const char *key = "";
        Kind kind = Kind::U64;
        std::uint64_t u = 0;
        std::string s;
    };
    static Field u64(const char *key, std::uint64_t value);
    static Field str(const char *key, std::string value);
    /** @p json must be a complete JSON value (object/array/number). */
    static Field raw(const char *key, std::string json);

    /**
     * Append `{"event":"<event>","t_ns":…,"seq":…,"shard":…,<fields>}`
     * as one atomic line. Safe from any thread; no-op when closed.
     */
    void emit(const char *event, std::initializer_list<Field> fields);

    /** Wall clock (unix epoch, ns) captured at open(). */
    std::uint64_t unixStartNs() const { return unix_start_ns_; }

    /** Monotonic ns since open() — the t_ns an event emitted now gets. */
    std::uint64_t elapsedNs() const;

  private:
    std::FILE *file_ = nullptr;
    std::mutex mutex_;
    std::uint64_t seq_ = 0;
    unsigned shard_ = 0;
    std::chrono::steady_clock::time_point start_{};
    std::uint64_t unix_start_ns_ = 0;
};

/**
 * The sweep_end roll-up: counters and fixed log2 histograms folded in
 * by runSweep's workers (caller provides the locking; runSweep folds
 * under its telemetry mutex). Rendered as a stats-registry report so
 * the journal's `stats` block has exactly the shape every other stats
 * export uses (nested JSON, dist summaries with p50/p90/p99+buckets).
 */
struct SweepTelemetry
{
    std::uint64_t cells_owned = 0;
    std::uint64_t cells_cached = 0;
    std::uint64_t cells_simulated = 0;
    std::uint64_t trace_cache_hits = 0;
    std::uint64_t traces_generated = 0;
    std::uint64_t traces_loaded = 0;
    std::uint64_t cache_read_ns = 0;  ///< cached-entry file reads
    std::uint64_t cache_parse_ns = 0; ///< cached-entry JSON parse+verify
    std::uint64_t cache_entry_bytes = 0;
    std::uint64_t cache_verify_failures = 0;
    Log2Histogram cell_duration_ns{40};
    Log2Histogram cache_load_ns{40}; ///< per-entry read+parse
    Log2Histogram cache_entry_bytes_dist{32};

    /**
     * Single-line JSON of the roll-up under the `sweep.` / `cache.`
     * namespaces, via a stats::Registry report.
     */
    std::string statsJson() const;
};

} // namespace csp::sim

#endif // CSP_SIM_SWEEP_EVENTS_H
