#include "sim/sweep_io.h"

#include <cstdlib>
#include <ostream>
#include <sstream>

#include "core/content_store.h"
#include "diff/csp_diff.h"
#include "sim/result_cache.h"

namespace csp::sim {

namespace {

std::vector<std::string>
splitNames(const std::string &joined)
{
    std::vector<std::string> names;
    std::size_t start = 0;
    while (start <= joined.size()) {
        const std::size_t comma = joined.find(',', start);
        if (comma == std::string::npos) {
            if (start < joined.size())
                names.push_back(joined.substr(start));
            break;
        }
        names.push_back(joined.substr(start, comma - start));
        start = comma + 1;
    }
    return names;
}

bool
getText(const diff::FlatDoc &doc, const std::string &name,
        std::string &out, std::string *error)
{
    const diff::FlatValue *value = doc.find(name);
    if (value == nullptr) {
        if (error != nullptr)
            *error = "missing field: " + name;
        return false;
    }
    out = value->text;
    return true;
}

bool
getU64(const diff::FlatDoc &doc, const std::string &name,
       std::uint64_t &out, std::string *error)
{
    const diff::FlatValue *value = doc.find(name);
    if (value == nullptr || !value->is_number) {
        if (error != nullptr)
            *error = "missing numeric field: " + name;
        return false;
    }
    char *end = nullptr;
    out = std::strtoull(value->text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
        if (error != nullptr)
            *error = "non-integer field: " + name;
        return false;
    }
    return true;
}

bool
getDouble(const diff::FlatDoc &doc, const std::string &name,
          double &out, std::string *error)
{
    const diff::FlatValue *value = doc.find(name);
    if (value == nullptr || !value->is_number) {
        if (error != nullptr)
            *error = "missing numeric field: " + name;
        return false;
    }
    out = value->number;
    return true;
}

bool
parseManifestFlat(const diff::FlatDoc &doc, RunManifest &m,
                  std::string *error)
{
    std::uint64_t jobs = 0, hw_threads = 0;
    bool ok =
        getText(doc, "manifest.schema", m.schema, error) &&
        getText(doc, "manifest.tool", m.tool, error) &&
        getText(doc, "manifest.git_sha", m.git_sha, error) &&
        getText(doc, "manifest.build_type", m.build_type, error) &&
        getText(doc, "manifest.compiler", m.compiler, error) &&
        getText(doc, "manifest.cxx_flags", m.cxx_flags, error) &&
        getText(doc, "manifest.config_digest", m.config_digest,
                error) &&
        getU64(doc, "manifest.seed", m.seed, error) &&
        getText(doc, "manifest.workloads", m.workloads, error) &&
        getText(doc, "manifest.prefetchers", m.prefetchers, error) &&
        getU64(doc, "manifest.scale", m.scale, error) &&
        getText(doc, "manifest.placement", m.placement, error) &&
        getU64(doc, "manifest.jobs", jobs, error) &&
        getText(doc, "manifest.trace_digest", m.trace_digest, error) &&
        getU64(doc, "manifest.trace_records", m.trace_records,
               error) &&
        getU64(doc, "manifest.trace_instructions",
               m.trace_instructions, error) &&
        getU64(doc, "manifest.trace_accesses", m.trace_accesses,
               error) &&
        getText(doc, "manifest.hostname", m.hostname, error) &&
        getText(doc, "manifest.kernel", m.kernel, error) &&
        getText(doc, "manifest.arch", m.arch, error) &&
        getU64(doc, "manifest.hw_threads", hw_threads, error) &&
        getText(doc, "manifest.start_utc", m.start_utc, error) &&
        getDouble(doc, "manifest.trace_gen_seconds",
                  m.trace_gen_seconds, error) &&
        getDouble(doc, "manifest.sim_seconds", m.sim_seconds,
                  error) &&
        getDouble(doc, "manifest.insts_per_sec", m.insts_per_sec,
                  error);
    if (!ok)
        return false;
    m.jobs = static_cast<unsigned>(jobs);
    m.hw_threads = static_cast<unsigned>(hw_threads);
    const diff::FlatValue *dirty = doc.find("manifest.git_dirty");
    m.git_dirty = dirty != nullptr && dirty->text == "true";
    return true;
}

/** The sweep identity both merge and the result cache hinge on: two
 *  artefacts agreeing on all of this swept the same experiment. */
bool
sameSweepIdentity(const RunManifest &a, const RunManifest &b,
                  std::string &why)
{
    const auto differs = [&why](const char *what) {
        why = what;
        return false;
    };
    if (a.config_digest != b.config_digest)
        return differs("config_digest");
    if (a.trace_digest != b.trace_digest)
        return differs("trace_digest");
    if (a.seed != b.seed)
        return differs("seed");
    if (a.scale != b.scale)
        return differs("scale");
    if (a.placement != b.placement)
        return differs("placement");
    if (a.workloads != b.workloads)
        return differs("workloads");
    if (a.prefetchers != b.prefetchers)
        return differs("prefetchers");
    return true;
}

} // namespace

void
writeSweepCsv(std::ostream &out, const SweepResult &result)
{
    out << "workload,prefetcher";
    for (const auto &[name, value] : runStatsFields(RunStats{})) {
        static_cast<void>(value);
        out << ',' << name;
    }
    out << '\n';
    for (const CellResult &cell : result.cells) {
        if (!cell.present)
            continue;
        out << cell.workload << ',' << cell.prefetcher;
        for (const auto &[name, value] : runStatsFields(cell.stats)) {
            static_cast<void>(name);
            out << ',' << value;
        }
        out << '\n';
    }
}

void
writeSweepJson(std::ostream &out, const SweepResult &result)
{
    std::uint64_t cells_present = 0;
    for (const CellResult &cell : result.cells)
        cells_present += cell.present ? 1 : 0;
    out << "{\"schema\":\"csp-sweep-v2\"\n"
        << ",\"manifest\":" << result.manifest.toJson() << '\n'
        << ",\"shard\":{\"index\":" << result.shard_index
        << ",\"count\":" << result.shard_count << '}' << '\n'
        << ",\"cache\":{\"cells_total\":" << result.cells.size()
        << ",\"cells_present\":" << cells_present
        << ",\"cells_cached\":" << result.cells_cached
        << ",\"cells_simulated\":" << result.cells_simulated
        << ",\"trace_cache_hits\":" << result.trace_cache_hits
        << ",\"read_ns\":" << result.cache_read_ns
        << ",\"parse_ns\":" << result.cache_parse_ns
        << ",\"entry_bytes\":" << result.cache_entry_bytes
        << ",\"verify_failures\":" << result.cache_verify_failures
        << '}' << '\n'
        << ",\"cells\":[";
    bool first = true;
    for (const CellResult &cell : result.cells) {
        if (!cell.present)
            continue;
        out << (first ? "" : ",") << "\n{\"workload\":\""
            << cell.workload << "\",\"prefetcher\":\""
            << cell.prefetcher << "\",\"stats\":";
        writeRunStatsJson(out, cell.stats);
        out << '}';
        first = false;
    }
    out << "\n]}\n";
}

bool
readSweepJson(const std::string &path, SweepResult &out,
              std::string *error)
{
    std::string text;
    if (!readFileToString(path, text)) {
        if (error != nullptr)
            *error = "cannot read " + path;
        return false;
    }
    diff::FlatDoc doc;
    if (!diff::parseJsonFlat(text, doc, error))
        return false;
    const diff::FlatValue *schema = doc.find("schema");
    if (schema == nullptr || schema->text != "csp-sweep-v2") {
        if (error != nullptr)
            *error = path + ": not a csp-sweep-v2 artefact";
        return false;
    }
    SweepResult result;
    if (!parseManifestFlat(doc, result.manifest, error))
        return false;
    std::uint64_t shard_index = 0, shard_count = 1;
    if (!getU64(doc, "shard.index", shard_index, error) ||
        !getU64(doc, "shard.count", shard_count, error) ||
        !getU64(doc, "cache.cells_cached", result.cells_cached,
                error) ||
        !getU64(doc, "cache.cells_simulated", result.cells_simulated,
                error) ||
        !getU64(doc, "cache.trace_cache_hits",
                result.trace_cache_hits, error) ||
        !getU64(doc, "cache.read_ns", result.cache_read_ns, error) ||
        !getU64(doc, "cache.parse_ns", result.cache_parse_ns,
                error) ||
        !getU64(doc, "cache.entry_bytes", result.cache_entry_bytes,
                error) ||
        !getU64(doc, "cache.verify_failures",
                result.cache_verify_failures, error))
        return false;
    result.shard_index = static_cast<unsigned>(shard_index);
    result.shard_count = static_cast<unsigned>(shard_count);
    result.workload_names = splitNames(result.manifest.workloads);
    result.prefetcher_names = splitNames(result.manifest.prefetchers);
    const std::size_t n_prefetchers = result.prefetcher_names.size();
    result.cells.resize(result.workload_names.size() * n_prefetchers);
    for (std::size_t i = 0;; ++i) {
        const std::string prefix =
            "cells." + std::to_string(i) + ".";
        const diff::FlatValue *workload =
            doc.find(prefix + "workload");
        if (workload == nullptr)
            break;
        const diff::FlatValue *prefetcher =
            doc.find(prefix + "prefetcher");
        if (prefetcher == nullptr) {
            if (error != nullptr)
                *error = prefix + "prefetcher missing";
            return false;
        }
        std::size_t wi = result.workload_names.size();
        for (std::size_t w = 0; w < result.workload_names.size(); ++w)
            if (result.workload_names[w] == workload->text)
                wi = w;
        std::size_t pi = n_prefetchers;
        for (std::size_t p = 0; p < n_prefetchers; ++p)
            if (result.prefetcher_names[p] == prefetcher->text)
                pi = p;
        if (wi == result.workload_names.size() ||
            pi == n_prefetchers) {
            if (error != nullptr) {
                *error = prefix + "names (" + workload->text + ", " +
                         prefetcher->text +
                         ") not in the manifest's grid";
            }
            return false;
        }
        CellResult &cell = result.cells[wi * n_prefetchers + pi];
        if (cell.present) {
            if (error != nullptr) {
                *error = path + ": duplicate cell (" +
                         workload->text + ", " + prefetcher->text +
                         ")";
            }
            return false;
        }
        cell.workload = workload->text;
        cell.prefetcher = prefetcher->text;
        if (!parseRunStatsFlat(doc, prefix + "stats.", cell.stats)) {
            if (error != nullptr)
                *error = prefix + "stats incomplete";
            return false;
        }
        cell.present = true;
    }
    out = std::move(result);
    return true;
}

bool
mergeSweeps(const std::vector<SweepResult> &shards, SweepResult &out,
            std::string *error)
{
    if (shards.empty()) {
        if (error != nullptr)
            *error = "no shards to merge";
        return false;
    }
    SweepResult merged = shards.front();
    for (std::size_t s = 1; s < shards.size(); ++s) {
        const SweepResult &shard = shards[s];
        std::string why;
        if (!sameSweepIdentity(merged.manifest, shard.manifest,
                               why)) {
            if (error != nullptr) {
                *error = "shards disagree on " + why +
                         " — refusing to merge different sweeps";
            }
            return false;
        }
        if (shard.cells.size() != merged.cells.size()) {
            if (error != nullptr)
                *error = "shards disagree on grid size";
            return false;
        }
        for (std::size_t k = 0; k < shard.cells.size(); ++k) {
            if (!shard.cells[k].present)
                continue;
            if (merged.cells[k].present) {
                if (error != nullptr) {
                    *error = "cell (" + shard.cells[k].workload +
                             ", " + shard.cells[k].prefetcher +
                             ") owned by more than one shard";
                }
                return false;
            }
            merged.cells[k] = shard.cells[k];
        }
        merged.cells_cached += shard.cells_cached;
        merged.cells_simulated += shard.cells_simulated;
        merged.trace_cache_hits += shard.trace_cache_hits;
        merged.cache_read_ns += shard.cache_read_ns;
        merged.cache_parse_ns += shard.cache_parse_ns;
        merged.cache_entry_bytes += shard.cache_entry_bytes;
        merged.cache_verify_failures += shard.cache_verify_failures;
        merged.manifest.trace_gen_seconds +=
            shard.manifest.trace_gen_seconds;
        merged.manifest.sim_seconds += shard.manifest.sim_seconds;
    }
    for (const CellResult &cell : merged.cells) {
        if (!cell.present) {
            if (error != nullptr) {
                *error = "incomplete coverage: no shard owns some "
                         "cells (merged " +
                         std::to_string(shards.size()) + " of " +
                         std::to_string(merged.shard_count) +
                         " shards?)";
            }
            return false;
        }
    }
    merged.shard_index = 0;
    merged.shard_count = 1;
    if (merged.manifest.sim_seconds > 0.0) {
        std::uint64_t simulated = 0;
        for (const CellResult &cell : merged.cells)
            simulated += cell.stats.instructions;
        merged.manifest.insts_per_sec =
            static_cast<double>(simulated) /
            merged.manifest.sim_seconds;
    }
    out = std::move(merged);
    return true;
}

} // namespace csp::sim
