/**
 * @file
 * Sweep artefact serialization: one CSV/JSON shape shared by every
 * producer so byte-identity is structural, not accidental.
 *
 * `cspsim --workloads` (whole sweep or one shard) and `cspmerge`
 * (shards reassembled) both emit through writeSweepCsv /
 * writeSweepJson. Because cell stats are bit-identical regardless of
 * how they were obtained (simulated, memoized, or merged from another
 * process — the determinism contract), a merged CSV is byte-identical
 * to an unsharded run's and a warm sweep's output is byte-identical to
 * a cold one's; only the manifest's timing block and the cache/shard
 * accounting may differ, which cspdiff classifies as provenance.
 *
 * The JSON schema is "csp-sweep-v2": manifest, shard block, cache
 * block (counts plus warm-path read/parse attribution), then the
 * present cells in row-major (workload-major) order. v2 extends v1's
 * cache block with read_ns/parse_ns/entry_bytes/verify_failures;
 * artefacts are transient hand-off files (CI temp dirs, shard
 * scratch), so the reader requires v2 rather than special-casing old
 * files.
 */

#ifndef CSP_SIM_SWEEP_IO_H
#define CSP_SIM_SWEEP_IO_H

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/experiment.h"

namespace csp::sim {

/**
 * Write the sweep's cell matrix as CSV: a header row of
 * "workload,prefetcher,<every RunStats field>", then one row per
 * present cell in row-major order. All values are integers, so the
 * bytes are a pure function of the cell data.
 */
void writeSweepCsv(std::ostream &out, const SweepResult &result);

/** Write the full "csp-sweep-v2" JSON artefact (see file comment). */
void writeSweepJson(std::ostream &out, const SweepResult &result);

/**
 * Parse a writeSweepJson artefact. The cell matrix is rebuilt at full
 * grid size from the manifest's workload/prefetcher lists, with
 * present=false holes for cells the artefact does not carry (other
 * shards' cells). False with *error set on malformed input.
 */
bool readSweepJson(const std::string &path, SweepResult &out,
                   std::string *error);

/**
 * Assemble shard artefacts into one complete sweep. Refuses (false,
 * *error) when the shards' manifests disagree on what was swept
 * (config digest, trace digest, seed, scale, placement, workload or
 * prefetcher lists), when a cell is owned twice, or when coverage is
 * incomplete. On success the result carries every cell, summed
 * cache/shard accounting, summed wall-clock, and shard 0's manifest
 * otherwise — so writeSweepCsv(out) is byte-identical to an unsharded
 * run of the same sweep.
 */
bool mergeSweeps(const std::vector<SweepResult> &shards,
                 SweepResult &out, std::string *error);

} // namespace csp::sim

#endif // CSP_SIM_SWEEP_IO_H
