#include "sim/table.h"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "core/logging.h"

namespace csp::sim {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{}

void
Table::addRow(std::vector<std::string> cells)
{
    CSP_ASSERT(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double value, int precision)
{
    std::ostringstream out;
    out << std::fixed << std::setprecision(precision) << value;
    return out.str();
}

void
Table::print(std::ostream &out) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }
    const auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << (c == 0 ? "" : "  ") << std::left
                << std::setw(static_cast<int>(widths[c])) << row[c];
        }
        out << '\n';
    };
    emit(headers_);
    std::string rule;
    for (std::size_t c = 0; c < headers_.size(); ++c)
        rule += std::string(widths[c], '-') + (c + 1 < widths.size()
                                                   ? "  "
                                                   : "");
    out << rule << '\n';
    for (const auto &row : rows_)
        emit(row);
}

void
Table::printCsv(std::ostream &out) const
{
    const auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            out << (c == 0 ? "" : ",") << row[c];
        out << '\n';
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
}

} // namespace csp::sim
