/**
 * @file
 * Plain-text table rendering for the bench binaries: fixed-width
 * aligned columns on stdout (the "rows/series the paper reports") plus
 * optional CSV output for plotting.
 */

#ifndef CSP_SIM_TABLE_H
#define CSP_SIM_TABLE_H

#include <iosfwd>
#include <string>
#include <vector>

namespace csp::sim {

/** See file comment. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a row; cell count must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Format a double with @p precision decimals. */
    static std::string num(double value, int precision = 2);

    /** Render with aligned columns. */
    void print(std::ostream &out) const;

    /** Render as CSV. */
    void printCsv(std::ostream &out) const;

    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace csp::sim

#endif // CSP_SIM_TABLE_H
