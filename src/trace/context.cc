#include "trace/context.h"

#include <sstream>

namespace csp::trace {

const char *
attrName(Attr attr)
{
    switch (attr) {
      case Attr::IP: return "IP";
      case Attr::TypeInfo: return "TypeInfo";
      case Attr::LinkOffset: return "LinkOffset";
      case Attr::RefForm: return "RefForm";
      case Attr::PrevData: return "PrevData";
      case Attr::BranchHistory: return "BranchHistory";
      case Attr::RegData: return "RegData";
      case Attr::AddrHistory: return "AddrHistory";
      case Attr::Count: break;
    }
    return "?";
}

std::string
ContextSnapshot::describe() const
{
    std::ostringstream out;
    for (unsigned i = 0; i < kNumAttrs; ++i) {
        if (i)
            out << ' ';
        out << attrName(static_cast<Attr>(i)) << "=0x" << std::hex
            << get(static_cast<Attr>(i)) << std::dec;
    }
    return out.str();
}

} // namespace csp::trace
