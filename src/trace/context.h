/**
 * @file
 * The machine context of a memory access: the attribute set of paper
 * Table 1, captured per access, with maskable hashing for the two-level
 * Reducer/CST indexing scheme (paper section 4.4, Figure 7).
 */

#ifndef CSP_TRACE_CONTEXT_H
#define CSP_TRACE_CONTEXT_H

#include <array>
#include <bit>
#include <cstdint>
#include <string>

#include "core/hashing.h"
#include "core/types.h"

namespace csp::trace {

/**
 * Context attributes (the rows of paper Table 1). The enumeration order
 * is also the order in which the Reducer activates attributes when a
 * context overloads: cheap, general attributes first; the
 * address-history attribute late because the paper warns it risks
 * "overly localized learning and must be used sparingly".
 */
enum class Attr : std::uint8_t
{
    IP = 0,        ///< instruction pointer of the access (hardware)
    TypeInfo,      ///< object type enumeration (compiler)
    LinkOffset,    ///< link-field offset within the object (compiler)
    RefForm,       ///< form of reference: . -> * [] (compiler)
    PrevData,      ///< data returned by the previous load (hardware)
    AddrHistory,   ///< recent memory-access history (hardware)
    BranchHistory, ///< recent branch outcome history (hardware)
    RegData,       ///< representative register contents (hardware)
    Count,
};

inline constexpr unsigned kNumAttrs = static_cast<unsigned>(Attr::Count);

/** Bitmask over Attr values; bit i covers Attr(i). */
using AttrMask = std::uint16_t;

/** Mask with every attribute active. */
inline constexpr AttrMask kAllAttrs = (1u << kNumAttrs) - 1;

/** Mask covering only the hardware-sourced attributes. */
inline constexpr AttrMask kHardwareAttrs =
    static_cast<AttrMask>(kAllAttrs &
                          ~((1u << static_cast<unsigned>(Attr::TypeInfo)) |
                            (1u << static_cast<unsigned>(Attr::LinkOffset)) |
                            (1u << static_cast<unsigned>(Attr::RefForm))));

/** Single-attribute mask. */
constexpr AttrMask
attrBit(Attr attr)
{
    return static_cast<AttrMask>(1u << static_cast<unsigned>(attr));
}

/** Human-readable attribute name. */
const char *attrName(Attr attr);

/**
 * The captured context of one memory access: one 64-bit value per
 * attribute, plus maskable hashing.
 *
 * Hashing is incremental: each attribute keeps a pre-mixed hash lane
 * that is refreshed only when set() actually changes the value (most
 * attributes are stable across consecutive accesses), so the per-access
 * masked hash reduces to one cheap combine per selected attribute
 * instead of a full re-mix of every value.
 */
class ContextSnapshot
{
  public:
    std::uint64_t
    get(Attr attr) const
    {
        return values_[static_cast<unsigned>(attr)];
    }

    void
    set(Attr attr, std::uint64_t value)
    {
        const auto i = static_cast<unsigned>(attr);
        if (values_[i] != value) {
            values_[i] = value;
            lanes_[i] = laneOf(i, value);
        }
    }

    /**
     * Hash the attributes selected by @p mask down to @p bits bits.
     * Inactive attributes do not influence the result, which is what
     * makes the Reducer's merge/split behaviour possible. Equivalent to
     * (and bit-compatible with) a WordHasher chain over the selected
     * (index-salted) attribute values in index order.
     */
    std::uint64_t
    hash(AttrMask mask, unsigned bits) const
    {
        std::uint64_t state = kWordHasherSeed;
        auto rest = static_cast<std::uint32_t>(mask);
        while (rest != 0) {
            const unsigned i =
                static_cast<unsigned>(std::countr_zero(rest));
            rest &= rest - 1;
            state = hashCombinePremixed(state, lanes_[i]);
        }
        return bits >= 64 ? state : (state & ((1ull << bits) - 1));
    }

    /** Debug rendering of all attribute values. */
    std::string describe() const;

  private:
    /** Pre-mixed lane of attribute @p i holding @p value: the attribute
     *  index is salted in so equal values in different attributes hash
     *  differently. */
    static constexpr std::uint64_t
    laneOf(unsigned i, std::uint64_t value)
    {
        return mix64((static_cast<std::uint64_t>(i) << 56) ^ value);
    }

    static constexpr std::array<std::uint64_t, kNumAttrs>
    zeroLanes()
    {
        std::array<std::uint64_t, kNumAttrs> lanes{};
        for (unsigned i = 0; i < kNumAttrs; ++i)
            lanes[i] = laneOf(i, 0);
        return lanes;
    }

    std::array<std::uint64_t, kNumAttrs> values_{};
    std::array<std::uint64_t, kNumAttrs> lanes_ = zeroLanes();
};

} // namespace csp::trace

#endif // CSP_TRACE_CONTEXT_H
