#include "trace/hw_state.h"

#include "core/hashing.h"

namespace csp::trace {

ContextSnapshot
HwContextTracker::capture(const TraceRecord &rec) const
{
    ContextSnapshot ctx;
    captureInto(rec, ctx);
    return ctx;
}

void
HwContextTracker::captureInto(const TraceRecord &rec,
                              ContextSnapshot &ctx) const
{
    ctx.set(Attr::IP, rec.pc);
    ctx.set(Attr::BranchHistory, bhr_);
    ctx.set(Attr::RegData, rec.reg_value);
    ctx.set(Attr::PrevData, last_loaded_);
    // Two most recent access blocks, position-combined, so the feature
    // distinguishes "where in the structure we are" without collapsing to
    // a single address.
    ctx.set(Attr::AddrHistory, addr_hist_hash_);
    if (rec.hint.valid()) {
        ctx.set(Attr::TypeInfo, rec.hint.type_id);
        ctx.set(Attr::LinkOffset, rec.hint.link_offset);
        ctx.set(Attr::RefForm,
                static_cast<std::uint64_t>(rec.hint.ref_form));
    } else {
        ctx.set(Attr::TypeInfo, 0);
        ctx.set(Attr::LinkOffset, hints::kNoLinkOffset);
        ctx.set(Attr::RefForm, 0);
    }
}

void
HwContextTracker::update(const TraceRecord &rec)
{
    switch (rec.kind) {
      case InstKind::Branch:
        bhr_ = static_cast<std::uint16_t>((bhr_ << 1) |
                                          (rec.taken ? 1u : 0u));
        break;
      case InstKind::Load:
        last_loaded_ = rec.loaded_value;
        [[fallthrough]];
      case InstKind::Store:
        addr_hist_[1] = addr_hist_[0];
        addr_hist_[0] = rec.vaddr / block_bytes_;
        addr_hist_hash_ = hashCombine(addr_hist_[0], addr_hist_[1]);
        break;
      case InstKind::Compute:
        break;
    }
}

void
HwContextTracker::reset()
{
    bhr_ = 0;
    addr_hist_[0] = addr_hist_[1] = 0;
    addr_hist_hash_ = hashCombine(0, 0);
    last_loaded_ = 0;
}

} // namespace csp::trace
