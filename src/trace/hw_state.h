/**
 * @file
 * Hardware-side context tracking: the CPU-visible state the prefetcher
 * samples at every memory access (paper Table 1, "Hardware" rows). The
 * tracker is updated in program order by the simulator and produces the
 * per-access ContextSnapshot, merging in the compiler hint carried by the
 * trace record.
 */

#ifndef CSP_TRACE_HW_STATE_H
#define CSP_TRACE_HW_STATE_H

#include <cstdint>

#include "core/hashing.h"
#include "trace/context.h"
#include "trace/trace.h"

namespace csp::trace {

/** See file comment. */
class HwContextTracker
{
  public:
    /** @param block_bytes granularity of the address-history feature. */
    explicit HwContextTracker(unsigned block_bytes = 64)
        : block_bytes_(block_bytes)
    {}

    /**
     * Compose the context of a memory-access record from current
     * hardware state plus the record's hint payload. Call *before*
     * update() so the snapshot reflects state at issue time.
     */
    ContextSnapshot capture(const TraceRecord &rec) const;

    /**
     * capture() into a caller-owned snapshot. Writes every attribute,
     * so the simulator's replay loop can reuse one ContextSnapshot for
     * the whole run instead of constructing one per access.
     */
    void captureInto(const TraceRecord &rec, ContextSnapshot &ctx) const;

    /** Advance hardware state past @p rec (any record kind). */
    void update(const TraceRecord &rec);

    /** Current branch-history register (low 16 bits meaningful). */
    std::uint16_t branchHistory() const { return bhr_; }

    /** Reset all tracked state. */
    void reset();

  private:
    unsigned block_bytes_;
    std::uint16_t bhr_ = 0;         ///< branch history register
    std::uint64_t addr_hist_[2] = {0, 0}; ///< last two access blocks
    /// Position-combined addr_hist_, refreshed in update() (memory
    /// records only) so captureInto() reads it instead of re-hashing.
    std::uint64_t addr_hist_hash_ = hashCombine(0, 0);
    std::uint64_t last_loaded_ = 0; ///< previous load's returned value
};

} // namespace csp::trace

#endif // CSP_TRACE_HW_STATE_H
