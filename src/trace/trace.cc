#include "trace/trace.h"

namespace csp::trace {

void
TraceBuffer::push(const TraceRecord &rec)
{
    // Fold a compute burst into a preceding compute record from the same
    // site so long traces stay compact.
    if (rec.kind == InstKind::Compute && !records_.empty()) {
        TraceRecord &back = records_.back();
        if (back.kind == InstKind::Compute && back.pc == rec.pc) {
            back.repeat += rec.repeat;
            instructions_ += rec.repeat;
            return;
        }
    }
    records_.push_back(rec);
    instructions_ += rec.kind == InstKind::Compute ? rec.repeat : 1;
    if (rec.isMem())
        ++mem_accesses_;
}

void
Recorder::compute(std::uint32_t site, std::uint32_t count)
{
    if (count == 0)
        return;
    TraceRecord rec;
    rec.kind = InstKind::Compute;
    rec.pc = pc(site);
    rec.repeat = count;
    buffer_.push(rec);
}

} // namespace csp::trace
