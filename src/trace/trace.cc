#include "trace/trace.h"

#include <cstring>
#include <utility>

#include "core/hashing.h"

namespace csp::trace {

namespace {

// Header-byte layout. Bits [1:0] hold the InstKind; the rest are
// presence/flag bits that let the encoder omit default-valued fields.
constexpr std::uint8_t kKindMask = 0x03;
constexpr std::uint8_t kFlagA = 0x04; ///< taken (Branch) / dep_on_prev_load
constexpr std::uint8_t kHasHint = 0x08;
constexpr std::uint8_t kHasReg = 0x10;
constexpr std::uint8_t kHasLoaded = 0x20;
constexpr std::uint8_t kHasRepeat = 0x40; ///< repeat != 1
constexpr std::uint8_t kHasSize = 0x80;   ///< size != 8

void
appendVarint(std::vector<std::uint8_t> &bytes, std::uint64_t value)
{
    while (value >= 0x80) {
        bytes.push_back(static_cast<std::uint8_t>(value) | 0x80);
        value >>= 7;
    }
    bytes.push_back(static_cast<std::uint8_t>(value));
}

std::uint64_t
readVarint(const std::uint8_t *&pos)
{
    std::uint64_t value = 0;
    unsigned shift = 0;
    for (;;) {
        const std::uint8_t byte = *pos++;
        value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0)
            return value;
        shift += 7;
    }
}

std::uint64_t
hintKey(const hints::Hint &hint)
{
    return static_cast<std::uint64_t>(hint.type_id) |
           (static_cast<std::uint64_t>(hint.link_offset) << 16) |
           (static_cast<std::uint64_t>(hint.ref_form) << 32);
}

thread_local TraceBuffer::PushTap t_default_tap = nullptr;
thread_local void *t_default_tap_user = nullptr;

} // namespace

TraceBuffer::TraceBuffer()
    : tap_(t_default_tap), tap_user_(t_default_tap_user)
{}

void
TraceBuffer::setThreadPushTap(PushTap tap, void *user)
{
    t_default_tap = tap;
    t_default_tap_user = user;
}

std::uint32_t
TraceBuffer::pcIndex(Addr pc)
{
    const auto [it, inserted] =
        pc_index_.try_emplace(pc, static_cast<std::uint32_t>(
                                      pc_dict_.size()));
    if (inserted)
        pc_dict_.push_back(pc);
    return it->second;
}

std::uint32_t
TraceBuffer::hintIndex(const hints::Hint &hint)
{
    const auto [it, inserted] =
        hint_index_.try_emplace(hintKey(hint),
                                static_cast<std::uint32_t>(
                                    hint_dict_.size()));
    if (inserted)
        hint_dict_.push_back(hint);
    return it->second;
}

void
TraceBuffer::encode(const TraceRecord &rec)
{
    std::uint8_t header = static_cast<std::uint8_t>(rec.kind);
    if (rec.kind == InstKind::Branch ? rec.taken : rec.dep_on_prev_load)
        header |= kFlagA;
    if (rec.hint.valid())
        header |= kHasHint;
    if (rec.reg_value != 0)
        header |= kHasReg;
    if (rec.loaded_value != 0)
        header |= kHasLoaded;
    if (rec.repeat != 1)
        header |= kHasRepeat;
    if (rec.size != 8)
        header |= kHasSize;
    bytes_.push_back(header);
    appendVarint(bytes_, pcIndex(rec.pc));
    if (header & kHasSize)
        bytes_.push_back(rec.size);
    if (rec.isMem()) {
        const std::size_t at = bytes_.size();
        bytes_.resize(at + sizeof rec.vaddr);
        std::memcpy(bytes_.data() + at, &rec.vaddr, sizeof rec.vaddr);
    }
    if (header & kHasHint)
        appendVarint(bytes_, hintIndex(rec.hint));
    if (header & kHasReg)
        appendVarint(bytes_, rec.reg_value);
    if (header & kHasLoaded)
        appendVarint(bytes_, rec.loaded_value);
    if (header & kHasRepeat)
        appendVarint(bytes_, rec.repeat);
}

void
TraceBuffer::push(const TraceRecord &rec)
{
    if (tap_)
        tap_(tap_user_, rec);
    // Fold a compute burst into a preceding compute record from the same
    // site so long traces stay compact. The trailing record is the only
    // mutable one, so folding truncates it and re-encodes with the
    // summed burst length; every other field of the original survives.
    if (rec.kind == InstKind::Compute && last_is_compute_ &&
        last_rec_.pc == rec.pc) {
        bytes_.resize(last_offset_);
        last_rec_.repeat += rec.repeat;
        encode(last_rec_);
        instructions_ += rec.repeat;
        return;
    }
    last_offset_ = bytes_.size();
    last_rec_ = rec;
    last_is_compute_ = rec.kind == InstKind::Compute;
    encode(rec);
    ++count_;
    instructions_ += rec.kind == InstKind::Compute ? rec.repeat : 1;
    if (rec.isMem())
        ++mem_accesses_;
}

std::vector<TraceRecord>
TraceBuffer::decode() const
{
    std::vector<TraceRecord> out;
    out.reserve(count_);
    TraceCursor cur = cursor();
    while (const TraceRecord *rec = cur.next())
        out.push_back(*rec);
    return out;
}

TraceBuffer
TraceBuffer::fromPacked(std::vector<std::uint8_t> bytes,
                        std::vector<Addr> pc_dict,
                        std::vector<hints::Hint> hint_dict,
                        std::size_t count, std::uint64_t instructions,
                        std::uint64_t mem_accesses)
{
    TraceBuffer buffer;
    buffer.bytes_ = std::move(bytes);
    buffer.pc_dict_ = std::move(pc_dict);
    buffer.hint_dict_ = std::move(hint_dict);
    buffer.count_ = count;
    buffer.instructions_ = instructions;
    buffer.mem_accesses_ = mem_accesses;
    for (std::uint32_t i = 0; i < buffer.pc_dict_.size(); ++i)
        buffer.pc_index_.emplace(buffer.pc_dict_[i], i);
    for (std::uint32_t i = 0; i < buffer.hint_dict_.size(); ++i)
        buffer.hint_index_.emplace(hintKey(buffer.hint_dict_[i]), i);
    // The trailing record is unknown without decoding, so disable burst
    // folding for the first append: last_offset_ at end-of-payload with
    // last_is_compute_ false makes push() start a fresh record.
    buffer.last_offset_ = buffer.bytes_.size();
    buffer.last_is_compute_ = false;
    return buffer;
}

std::uint64_t
packedTraceDigestPrehashed(std::size_t count, std::uint64_t instructions,
                           std::uint64_t payload_fnv, const Addr *pcs,
                           std::size_t pc_count, const hints::Hint *hints,
                           std::size_t hint_count)
{
    WordHasher h;
    h.add(count);
    h.add(instructions);
    h.add(payload_fnv);
    // Dictionary indices appear in the packed bytes, so hashing each
    // dictionary in index order pins the full record stream. Hints are
    // hashed field-wise: the struct has padding bytes.
    h.add(pc_count);
    for (std::size_t i = 0; i < pc_count; ++i)
        h.add(pcs[i]);
    h.add(hint_count);
    for (std::size_t i = 0; i < hint_count; ++i) {
        h.add(static_cast<std::uint64_t>(hints[i].type_id) |
              (static_cast<std::uint64_t>(hints[i].link_offset) << 16) |
              (static_cast<std::uint64_t>(hints[i].ref_form) << 32));
    }
    return h.digest();
}

std::uint64_t
packedTraceDigest(std::size_t count, std::uint64_t instructions,
                  const std::uint8_t *bytes, std::size_t bytes_size,
                  const Addr *pcs, std::size_t pc_count,
                  const hints::Hint *hints, std::size_t hint_count)
{
    return packedTraceDigestPrehashed(count, instructions,
                                      fnv1a({bytes, bytes_size}), pcs,
                                      pc_count, hints, hint_count);
}

std::uint64_t
TraceBuffer::contentDigest() const
{
    return packedTraceDigest(count_, instructions_, bytes_.data(),
                             bytes_.size(), pc_dict_.data(),
                             pc_dict_.size(), hint_dict_.data(),
                             hint_dict_.size());
}

const TraceRecord *
TraceCursor::next()
{
    if (pos_ == end_)
        return nullptr;
    const std::uint8_t header = *pos_++;
    const InstKind kind = static_cast<InstKind>(header & kKindMask);
    rec_.kind = kind;
    rec_.pc = pc_dict_[readVarint(pos_)];
    rec_.size =
        (header & kHasSize) ? *pos_++ : static_cast<std::uint8_t>(8);
    if (kind == InstKind::Load || kind == InstKind::Store) {
        std::memcpy(&rec_.vaddr, pos_, sizeof rec_.vaddr);
        pos_ += sizeof rec_.vaddr;
    } else {
        rec_.vaddr = 0;
    }
    rec_.hint = (header & kHasHint) ? hint_dict_[readVarint(pos_)]
                                    : hints::Hint{};
    rec_.reg_value = (header & kHasReg) ? readVarint(pos_) : 0;
    rec_.loaded_value = (header & kHasLoaded) ? readVarint(pos_) : 0;
    rec_.repeat = (header & kHasRepeat)
                      ? static_cast<std::uint32_t>(readVarint(pos_))
                      : 1;
    if (kind == InstKind::Branch) {
        rec_.taken = (header & kFlagA) != 0;
        rec_.dep_on_prev_load = false;
    } else {
        rec_.dep_on_prev_load = (header & kFlagA) != 0;
        rec_.taken = false;
    }
    return &rec_;
}

void
Recorder::compute(std::uint32_t site, std::uint32_t count)
{
    if (count == 0)
        return;
    TraceRecord rec;
    rec.kind = InstKind::Compute;
    rec.pc = pc(site);
    rec.repeat = count;
    buffer_.push(rec);
}

} // namespace csp::trace
