/**
 * @file
 * Trace records, the recording API used by workload kernels, and the
 * replayable trace buffer consumed by the simulator.
 *
 * A trace is the substitute for gem5's dynamic instruction stream: each
 * record is one (or, for compressed compute bursts, several) retired
 * instruction(s), annotated with everything the context-based prefetcher's
 * feature set (paper Table 1) needs — program counter, address, the
 * compiler hint payload, the value a load returns, a representative
 * register value, branch outcomes, and a load-depends-on-previous-load
 * flag used by the core model to serialise pointer chases.
 */

#ifndef CSP_TRACE_TRACE_H
#define CSP_TRACE_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"
#include "hints/hint.h"

namespace csp::trace {

/** Kind of a trace record. */
enum class InstKind : std::uint8_t
{
    Load,
    Store,
    Branch,
    Compute, ///< `repeat` back-to-back non-memory, non-branch instructions
};

/** One trace record; see file comment. */
struct TraceRecord
{
    InstKind kind = InstKind::Compute;
    Addr pc = 0;
    Addr vaddr = 0;              ///< memory operations only
    std::uint32_t repeat = 1;    ///< Compute only: burst length
    std::uint8_t size = 8;       ///< access size in bytes
    bool dep_on_prev_load = false; ///< serialise after the previous load
    bool taken = false;          ///< Branch only
    hints::Hint hint;            ///< compiler hint (memory ops)
    std::uint64_t reg_value = 0; ///< representative register contents
    std::uint64_t loaded_value = 0; ///< value returned by a Load

    bool
    isMem() const
    {
        return kind == InstKind::Load || kind == InstKind::Store;
    }
};

/**
 * A recorded, replayable trace. Produced by workloads through Recorder,
 * consumed record-by-record by the simulator.
 */
class TraceBuffer
{
  public:
    /** Append one record. */
    void push(const TraceRecord &rec);

    /** Number of records (compute bursts count once). */
    std::size_t size() const { return records_.size(); }

    /** Total instructions represented (bursts expanded). */
    std::uint64_t instructions() const { return instructions_; }

    /** Number of memory-access records. */
    std::uint64_t memAccesses() const { return mem_accesses_; }

    /** Record access. */
    const TraceRecord &operator[](std::size_t i) const
    {
        return records_[i];
    }

    const std::vector<TraceRecord> &records() const { return records_; }

    bool empty() const { return records_.empty(); }

  private:
    std::vector<TraceRecord> records_;
    std::uint64_t instructions_ = 0;
    std::uint64_t mem_accesses_ = 0;
};

/**
 * Convenience API the workload kernels call while executing natively.
 * Each method appends one record; `compute` bursts fold into the previous
 * record when possible to keep traces compact.
 */
class Recorder
{
  public:
    /** @param pc_base workload-unique base for synthetic code addresses. */
    explicit Recorder(TraceBuffer &buffer, Addr pc_base)
        : buffer_(buffer), pc_base_(pc_base)
    {}

    /** Synthetic PC for code site @p site. */
    Addr pc(std::uint32_t site) const { return pc_base_ + site * 4; }

    /** Record a load with a compiler hint. */
    void
    load(std::uint32_t site, Addr addr, const hints::Hint &hint,
         std::uint64_t loaded_value = 0, bool dep_on_prev_load = false,
         std::uint64_t reg_value = 0)
    {
        TraceRecord rec;
        rec.kind = InstKind::Load;
        rec.pc = pc(site);
        rec.vaddr = addr;
        rec.hint = hint;
        rec.loaded_value = loaded_value;
        rec.dep_on_prev_load = dep_on_prev_load;
        rec.reg_value = reg_value;
        buffer_.push(rec);
    }

    /** Record a plain (un-hinted) load. */
    void
    load(std::uint32_t site, Addr addr, std::uint64_t loaded_value = 0,
         bool dep_on_prev_load = false, std::uint64_t reg_value = 0)
    {
        load(site, addr, hints::Hint{}, loaded_value, dep_on_prev_load,
             reg_value);
    }

    /** Record a store. */
    void
    store(std::uint32_t site, Addr addr,
          const hints::Hint &hint = hints::Hint{})
    {
        TraceRecord rec;
        rec.kind = InstKind::Store;
        rec.pc = pc(site);
        rec.vaddr = addr;
        rec.hint = hint;
        buffer_.push(rec);
    }

    /** Record a conditional branch outcome. */
    void
    branch(std::uint32_t site, bool taken)
    {
        TraceRecord rec;
        rec.kind = InstKind::Branch;
        rec.pc = pc(site);
        rec.taken = taken;
        buffer_.push(rec);
    }

    /** Record @p count back-to-back compute instructions. */
    void compute(std::uint32_t site, std::uint32_t count = 1);

  private:
    TraceBuffer &buffer_;
    Addr pc_base_;
};

} // namespace csp::trace

#endif // CSP_TRACE_TRACE_H
