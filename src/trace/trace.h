/**
 * @file
 * Trace records, the recording API used by workload kernels, and the
 * replayable trace buffer consumed by the simulator.
 *
 * A trace is the substitute for gem5's dynamic instruction stream: each
 * record is one (or, for compressed compute bursts, several) retired
 * instruction(s), annotated with everything the context-based prefetcher's
 * feature set (paper Table 1) needs — program counter, address, the
 * compiler hint payload, the value a load returns, a representative
 * register value, branch outcomes, and a load-depends-on-previous-load
 * flag used by the core model to serialise pointer chases.
 *
 * Storage is a compact append-only byte stream, not an array of structs:
 * each record is a 1-byte kind+flag word, a varint index into a
 * per-buffer PC dictionary (workloads use a handful of synthetic code
 * sites), the full 64-bit vaddr for memory operations, and then only the
 * fields the flag word says are present (hint, register value, loaded
 * value, burst length, non-default size). Paper-scale traces shrink from
 * 56 bytes/record (the old AoS layout) to a handful of bytes/record,
 * which is what keeps many-workload parallel sweeps RAM-resident.
 * Decoding is sequential via TraceCursor, which rehydrates records into
 * one reusable TraceRecord slot — the replay hot loop never allocates
 * and only streams the packed bytes.
 */

#ifndef CSP_TRACE_TRACE_H
#define CSP_TRACE_TRACE_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/types.h"
#include "hints/hint.h"

namespace csp::trace {

/** Kind of a trace record. */
enum class InstKind : std::uint8_t
{
    Load,
    Store,
    Branch,
    Compute, ///< `repeat` back-to-back non-memory, non-branch instructions
};

/** One trace record; see file comment. */
struct TraceRecord
{
    InstKind kind = InstKind::Compute;
    Addr pc = 0;
    Addr vaddr = 0;              ///< memory operations only
    std::uint32_t repeat = 1;    ///< Compute only: burst length
    std::uint8_t size = 8;       ///< access size in bytes
    bool dep_on_prev_load = false; ///< serialise after the previous load
    bool taken = false;          ///< Branch only
    hints::Hint hint;            ///< compiler hint (memory ops)
    std::uint64_t reg_value = 0; ///< representative register contents
    std::uint64_t loaded_value = 0; ///< value returned by a Load

    bool
    isMem() const
    {
        return kind == InstKind::Load || kind == InstKind::Store;
    }
};

class TraceCursor;

/**
 * A recorded, replayable trace. Produced by workloads through Recorder,
 * consumed sequentially through TraceCursor by the simulator.
 *
 * Records are stored packed (see file comment); random access is
 * deliberately not offered. Use cursor() for streaming replay and
 * decode() when a materialised std::vector<TraceRecord> is genuinely
 * needed (tests, tools).
 */
class TraceBuffer
{
  public:
    /** Append one record. */
    void push(const TraceRecord &rec);

    /** Number of records (compute bursts count once). */
    std::size_t size() const { return count_; }

    /** Total instructions represented (bursts expanded). */
    std::uint64_t instructions() const { return instructions_; }

    /** Number of memory-access records. */
    std::uint64_t memAccesses() const { return mem_accesses_; }

    bool empty() const { return count_ == 0; }

    /** Streaming decoder positioned at the first record. */
    TraceCursor cursor() const;

    /** Materialise every record (tests and tools; O(size()) memory). */
    std::vector<TraceRecord> decode() const;

    /** Packed payload bytes plus dictionary bytes. */
    std::size_t
    sizeBytes() const
    {
        return bytes_.size() + pc_dict_.size() * sizeof(Addr) +
               hint_dict_.size() * sizeof(hints::Hint);
    }

    /** Average encoded bytes per record. */
    double
    bytesPerRecord() const
    {
        return count_ == 0 ? 0.0
                           : static_cast<double>(sizeBytes()) /
                                 static_cast<double>(count_);
    }

    /** Distinct PCs recorded so far (dictionary size). */
    std::size_t pcDictSize() const { return pc_dict_.size(); }

    /** Packed record payload (serialization; see trace_io). */
    const std::vector<std::uint8_t> &packedBytes() const { return bytes_; }

    /** PC dictionary, index order (serialization; see trace_io). */
    const std::vector<Addr> &pcDict() const { return pc_dict_; }

    /** Hint dictionary, index order (serialization; see trace_io). */
    const std::vector<hints::Hint> &hintDict() const { return hint_dict_; }

    /**
     * Reconstitute a buffer from its packed parts (the trace_io load
     * path). Rebuilds the dictionary reverse indices and the
     * trailing-record fold state so the buffer stays appendable.
     */
    static TraceBuffer fromPacked(std::vector<std::uint8_t> bytes,
                                  std::vector<Addr> pc_dict,
                                  std::vector<hints::Hint> hint_dict,
                                  std::size_t count,
                                  std::uint64_t instructions,
                                  std::uint64_t mem_accesses);

    /**
     * Order-sensitive digest over the packed payload and both
     * dictionaries — the trace's content identity for run-provenance
     * manifests. Two buffers holding the same record stream digest
     * identically; any record, PC or hint difference changes it.
     */
    std::uint64_t contentDigest() const;

    /**
     * Test hook: observe every record exactly as handed to push(),
     * before burst folding. Used by the golden encode/decode tests to
     * build a reference AoS trace alongside the packed one. One
     * well-predicted null check per push; no cost when unset.
     */
    using PushTap = void (*)(void *user, const TraceRecord &rec);
    void
    setPushTap(PushTap tap, void *user)
    {
        tap_ = tap;
        tap_user_ = user;
    }

    /**
     * Install a tap inherited by every TraceBuffer subsequently
     * constructed on the calling thread (cleared with nullptr).
     * Workloads build their buffers internally, so this is how the
     * golden tests observe a workload's record stream as generated.
     */
    static void setThreadPushTap(PushTap tap, void *user);

    TraceBuffer();

  private:
    friend class TraceCursor;

    std::uint32_t pcIndex(Addr pc);
    std::uint32_t hintIndex(const hints::Hint &hint);
    void encode(const TraceRecord &rec);

    std::vector<std::uint8_t> bytes_; ///< packed records
    std::vector<Addr> pc_dict_;       ///< PC-dictionary index -> PC
    std::unordered_map<Addr, std::uint32_t> pc_index_; ///< PC -> index
    // Hints are dictionary-encoded too (workloads use a handful of
    // distinct hints), stored unpacked so the round trip is lossless —
    // Hint::pack() truncates link_offset to the NOP immediate's 13 bits
    // and would corrupt the kNoLinkOffset sentinel on valid hints.
    std::vector<hints::Hint> hint_dict_;
    std::unordered_map<std::uint64_t, std::uint32_t> hint_index_;
    std::size_t count_ = 0;
    std::uint64_t instructions_ = 0;
    std::uint64_t mem_accesses_ = 0;

    // Trailing-record state so compute bursts from the same site fold
    // into one record (the encoder truncates and re-emits the tail,
    // which must preserve every field of the folded-into record).
    std::size_t last_offset_ = 0;
    bool last_is_compute_ = false;
    TraceRecord last_rec_;

    PushTap tap_ = nullptr;
    void *tap_user_ = nullptr;
};

/**
 * Content digest over raw packed trace parts. TraceBuffer::contentDigest
 * and the trace-file verification path (trace_io) share this formula, so
 * an mmap'd trace can be digest-checked without materialising a buffer.
 */
std::uint64_t packedTraceDigest(std::size_t count,
                                std::uint64_t instructions,
                                const std::uint8_t *bytes,
                                std::size_t bytes_size, const Addr *pcs,
                                std::size_t pc_count,
                                const hints::Hint *hints,
                                std::size_t hint_count);

/**
 * packedTraceDigest with the payload's fnv1a already computed — for
 * verifiers that hash the payload in windows (fnv1aResume) so the whole
 * file never needs to be resident at once.
 */
std::uint64_t packedTraceDigestPrehashed(
    std::size_t count, std::uint64_t instructions,
    std::uint64_t payload_fnv, const Addr *pcs, std::size_t pc_count,
    const hints::Hint *hints, std::size_t hint_count);

/**
 * Zero-copy sequential decoder over packed trace bytes. next()
 * rehydrates the next record into an internal reusable TraceRecord and
 * returns a pointer to it (valid until the following next() call), or
 * nullptr at end of trace. The cursor never allocates.
 *
 * The cursor reads through raw pointers, not a TraceBuffer, so the
 * same decode loop runs over an in-memory buffer or an mmap'd trace
 * file (MappedTrace in trace_io) — the payload and dictionaries just
 * point into the map.
 */
class TraceCursor
{
  public:
    explicit TraceCursor(const TraceBuffer &buffer)
        : TraceCursor(buffer.bytes_.data(),
                      buffer.bytes_.data() + buffer.bytes_.size(),
                      buffer.pc_dict_.data(), buffer.hint_dict_.data())
    {}

    /** Decode surface over raw packed parts (mmap'd trace files). */
    TraceCursor(const std::uint8_t *begin, const std::uint8_t *end,
                const Addr *pc_dict, const hints::Hint *hint_dict)
        : begin_(begin), pos_(begin), end_(end), pc_dict_(pc_dict),
          hint_dict_(hint_dict)
    {}

    /** Decode the next record; nullptr once the trace is exhausted. */
    const TraceRecord *next();

    /** Rewind to the first record. */
    void reset() { pos_ = begin_; }

    bool done() const { return pos_ == end_; }

    /** Current read position inside the packed payload. Streaming
     *  consumers use it to release already-consumed pages. */
    const std::uint8_t *position() const { return pos_; }

  private:
    const std::uint8_t *begin_;
    const std::uint8_t *pos_;
    const std::uint8_t *end_;
    const Addr *pc_dict_;
    const hints::Hint *hint_dict_;
    TraceRecord rec_;
};

inline TraceCursor
TraceBuffer::cursor() const
{
    return TraceCursor(*this);
}

/**
 * Convenience API the workload kernels call while executing natively.
 * Each method appends one record; `compute` bursts fold into the previous
 * record when possible to keep traces compact.
 */
class Recorder
{
  public:
    /** @param pc_base workload-unique base for synthetic code addresses. */
    explicit Recorder(TraceBuffer &buffer, Addr pc_base)
        : buffer_(buffer), pc_base_(pc_base)
    {}

    /** Synthetic PC for code site @p site. */
    Addr pc(std::uint32_t site) const { return pc_base_ + site * 4; }

    /** Record a load with a compiler hint. */
    void
    load(std::uint32_t site, Addr addr, const hints::Hint &hint,
         std::uint64_t loaded_value = 0, bool dep_on_prev_load = false,
         std::uint64_t reg_value = 0)
    {
        TraceRecord rec;
        rec.kind = InstKind::Load;
        rec.pc = pc(site);
        rec.vaddr = addr;
        rec.hint = hint;
        rec.loaded_value = loaded_value;
        rec.dep_on_prev_load = dep_on_prev_load;
        rec.reg_value = reg_value;
        buffer_.push(rec);
    }

    /** Record a plain (un-hinted) load. */
    void
    load(std::uint32_t site, Addr addr, std::uint64_t loaded_value = 0,
         bool dep_on_prev_load = false, std::uint64_t reg_value = 0)
    {
        load(site, addr, hints::Hint{}, loaded_value, dep_on_prev_load,
             reg_value);
    }

    /** Record a store. */
    void
    store(std::uint32_t site, Addr addr,
          const hints::Hint &hint = hints::Hint{})
    {
        TraceRecord rec;
        rec.kind = InstKind::Store;
        rec.pc = pc(site);
        rec.vaddr = addr;
        rec.hint = hint;
        buffer_.push(rec);
    }

    /** Record a conditional branch outcome. */
    void
    branch(std::uint32_t site, bool taken)
    {
        TraceRecord rec;
        rec.kind = InstKind::Branch;
        rec.pc = pc(site);
        rec.taken = taken;
        buffer_.push(rec);
    }

    /** Record @p count back-to-back compute instructions. */
    void compute(std::uint32_t site, std::uint32_t count = 1);

  private:
    TraceBuffer &buffer_;
    Addr pc_base_;
};

} // namespace csp::trace

#endif // CSP_TRACE_TRACE_H
