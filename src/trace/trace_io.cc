#include "trace/trace_io.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace csp::trace {

namespace {

constexpr char kMagic[8] = {'C', 'S', 'P', 'T', 'R', 'A', 'C', 'E'};
constexpr std::uint32_t kVersion = 1;

/** On-disk record layout (packed, little-endian host assumed). */
struct DiskRecord
{
    std::uint64_t pc;
    std::uint64_t vaddr;
    std::uint64_t reg_value;
    std::uint64_t loaded_value;
    std::uint32_t repeat;
    std::uint32_t hint_imm;
    std::uint8_t kind;
    std::uint8_t size;
    std::uint8_t flags; ///< bit0 dep_on_prev_load, bit1 taken
    std::uint8_t pad = 0;
};

struct Header
{
    char magic[8];
    std::uint32_t version;
    std::uint32_t reserved;
    std::uint64_t record_count;
};

DiskRecord
pack(const TraceRecord &rec)
{
    DiskRecord disk{};
    disk.pc = rec.pc;
    disk.vaddr = rec.vaddr;
    disk.reg_value = rec.reg_value;
    disk.loaded_value = rec.loaded_value;
    disk.repeat = rec.repeat;
    disk.hint_imm = rec.hint.pack();
    disk.kind = static_cast<std::uint8_t>(rec.kind);
    disk.size = rec.size;
    disk.flags = static_cast<std::uint8_t>(
        (rec.dep_on_prev_load ? 1u : 0u) | (rec.taken ? 2u : 0u));
    return disk;
}

TraceRecord
unpack(const DiskRecord &disk)
{
    TraceRecord rec;
    rec.pc = disk.pc;
    rec.vaddr = disk.vaddr;
    rec.reg_value = disk.reg_value;
    rec.loaded_value = disk.loaded_value;
    rec.repeat = disk.repeat;
    rec.hint = hints::Hint::unpack(disk.hint_imm);
    rec.kind = static_cast<InstKind>(disk.kind);
    rec.size = disk.size;
    rec.dep_on_prev_load = (disk.flags & 1u) != 0;
    rec.taken = (disk.flags & 2u) != 0;
    return rec;
}

} // namespace

const char *
traceIoStatusName(TraceIoStatus status)
{
    switch (status) {
      case TraceIoStatus::Ok: return "ok";
      case TraceIoStatus::CannotOpen: return "cannot-open";
      case TraceIoStatus::BadMagic: return "bad-magic";
      case TraceIoStatus::BadVersion: return "bad-version";
      case TraceIoStatus::Truncated: return "truncated";
    }
    return "?";
}

bool
saveTrace(const TraceBuffer &buffer, std::ostream &stream)
{
    Header header{};
    std::memcpy(header.magic, kMagic, sizeof kMagic);
    header.version = kVersion;
    header.record_count = buffer.size();
    stream.write(reinterpret_cast<const char *>(&header),
                 sizeof header);
    TraceCursor cursor = buffer.cursor();
    while (const TraceRecord *rec = cursor.next()) {
        const DiskRecord disk = pack(*rec);
        stream.write(reinterpret_cast<const char *>(&disk),
                     sizeof disk);
    }
    return static_cast<bool>(stream);
}

bool
saveTraceFile(const TraceBuffer &buffer, const std::string &path)
{
    std::ofstream stream(path, std::ios::binary);
    if (!stream)
        return false;
    return saveTrace(buffer, stream);
}

TraceIoStatus
loadTrace(std::istream &stream, TraceBuffer &buffer)
{
    Header header{};
    stream.read(reinterpret_cast<char *>(&header), sizeof header);
    if (!stream)
        return TraceIoStatus::Truncated;
    if (std::memcmp(header.magic, kMagic, sizeof kMagic) != 0)
        return TraceIoStatus::BadMagic;
    if (header.version != kVersion)
        return TraceIoStatus::BadVersion;
    for (std::uint64_t i = 0; i < header.record_count; ++i) {
        DiskRecord disk{};
        stream.read(reinterpret_cast<char *>(&disk), sizeof disk);
        if (!stream)
            return TraceIoStatus::Truncated;
        buffer.push(unpack(disk));
    }
    return TraceIoStatus::Ok;
}

TraceIoStatus
loadTraceFile(const std::string &path, TraceBuffer &buffer)
{
    std::ifstream stream(path, std::ios::binary);
    if (!stream)
        return TraceIoStatus::CannotOpen;
    return loadTrace(stream, buffer);
}

} // namespace csp::trace
