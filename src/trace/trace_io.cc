#include "trace/trace_io.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <istream>
#include <new>
#include <ostream>

#include "core/hashing.h"

namespace csp::trace {

namespace {

constexpr char kMagic[8] = {'C', 'S', 'P', 'T', 'R', 'A', 'C', 'E'};
constexpr std::uint32_t kVersion = 2;

/**
 * On-disk header (64 bytes, little-endian host assumed, 8-byte
 * aligned so the sections after it stay aligned inside an mmap).
 * Layout: header | pc dict (u64 each) | hint dict (DiskHint each) |
 * packed payload.
 */
struct Header
{
    char magic[8];
    std::uint32_t version;
    std::uint32_t reserved;
    std::uint64_t record_count;
    std::uint64_t instructions;
    std::uint64_t mem_accesses;
    std::uint64_t content_digest;
    std::uint32_t pc_dict_count;
    std::uint32_t hint_dict_count;
    std::uint64_t payload_bytes;
};
static_assert(sizeof(Header) == 64);

/** On-disk hint-dictionary entry (hints::Hint has internal padding). */
struct DiskHint
{
    std::uint16_t type_id;
    std::uint16_t link_offset;
    std::uint8_t ref_form;
    std::uint8_t pad[3];
};
static_assert(sizeof(DiskHint) == 8);

hints::Hint
unpackHint(const DiskHint &disk)
{
    hints::Hint hint;
    hint.type_id = disk.type_id;
    hint.link_offset = disk.link_offset;
    hint.ref_form = static_cast<hints::RefForm>(disk.ref_form);
    return hint;
}

/** Window size for digest verification over a mapping (see
 *  MappedTrace::open): bounds verification RSS without paying a
 *  madvise per page. */
constexpr std::size_t kVerifyWindowBytes = std::size_t{4} << 20;

} // namespace

const char *
traceIoStatusName(TraceIoStatus status)
{
    switch (status) {
      case TraceIoStatus::Ok: return "ok";
      case TraceIoStatus::CannotOpen: return "cannot-open";
      case TraceIoStatus::BadMagic: return "bad-magic";
      case TraceIoStatus::BadVersion: return "bad-version";
      case TraceIoStatus::Truncated: return "truncated";
      case TraceIoStatus::BadDigest: return "bad-digest";
    }
    return "?";
}

bool
saveTrace(const TraceBuffer &buffer, std::ostream &stream)
{
    Header header{};
    std::memcpy(header.magic, kMagic, sizeof kMagic);
    header.version = kVersion;
    header.record_count = buffer.size();
    header.instructions = buffer.instructions();
    header.mem_accesses = buffer.memAccesses();
    header.content_digest = buffer.contentDigest();
    header.pc_dict_count =
        static_cast<std::uint32_t>(buffer.pcDict().size());
    header.hint_dict_count =
        static_cast<std::uint32_t>(buffer.hintDict().size());
    header.payload_bytes = buffer.packedBytes().size();
    stream.write(reinterpret_cast<const char *>(&header),
                 sizeof header);
    stream.write(
        reinterpret_cast<const char *>(buffer.pcDict().data()),
        static_cast<std::streamsize>(buffer.pcDict().size() *
                                     sizeof(Addr)));
    for (const hints::Hint &hint : buffer.hintDict()) {
        DiskHint disk{};
        disk.type_id = hint.type_id;
        disk.link_offset = hint.link_offset;
        disk.ref_form = static_cast<std::uint8_t>(hint.ref_form);
        stream.write(reinterpret_cast<const char *>(&disk),
                     sizeof disk);
    }
    stream.write(
        reinterpret_cast<const char *>(buffer.packedBytes().data()),
        static_cast<std::streamsize>(buffer.packedBytes().size()));
    return static_cast<bool>(stream);
}

bool
saveTraceFile(const TraceBuffer &buffer, const std::string &path)
{
    std::ofstream stream(path, std::ios::binary);
    if (!stream)
        return false;
    return saveTrace(buffer, stream);
}

TraceIoStatus
loadTrace(std::istream &stream, TraceBuffer &buffer)
{
    // Magic is validated from its own read so an unrelated short file
    // reports BadMagic, not Truncated.
    Header header{};
    stream.read(header.magic, sizeof header.magic);
    if (!stream)
        return TraceIoStatus::Truncated;
    if (std::memcmp(header.magic, kMagic, sizeof kMagic) != 0)
        return TraceIoStatus::BadMagic;
    stream.read(reinterpret_cast<char *>(&header) + sizeof header.magic,
                sizeof header - sizeof header.magic);
    if (!stream)
        return TraceIoStatus::Truncated;
    if (header.version != kVersion)
        return TraceIoStatus::BadVersion;
    try {
        std::vector<Addr> pc_dict(header.pc_dict_count);
        stream.read(reinterpret_cast<char *>(pc_dict.data()),
                    static_cast<std::streamsize>(pc_dict.size() *
                                                 sizeof(Addr)));
        std::vector<hints::Hint> hint_dict;
        hint_dict.reserve(header.hint_dict_count);
        for (std::uint32_t i = 0; i < header.hint_dict_count; ++i) {
            DiskHint disk{};
            stream.read(reinterpret_cast<char *>(&disk), sizeof disk);
            hint_dict.push_back(unpackHint(disk));
        }
        std::vector<std::uint8_t> payload(header.payload_bytes);
        stream.read(reinterpret_cast<char *>(payload.data()),
                    static_cast<std::streamsize>(payload.size()));
        if (!stream)
            return TraceIoStatus::Truncated;
        if (packedTraceDigest(header.record_count, header.instructions,
                              payload.data(), payload.size(),
                              pc_dict.data(), pc_dict.size(),
                              hint_dict.data(), hint_dict.size()) !=
            header.content_digest)
            return TraceIoStatus::BadDigest;
        buffer = TraceBuffer::fromPacked(
            std::move(payload), std::move(pc_dict),
            std::move(hint_dict), header.record_count,
            header.instructions, header.mem_accesses);
    } catch (const std::bad_alloc &) {
        // A corrupt header can claim absurd section sizes; treat the
        // failed allocation as the truncation it reflects.
        return TraceIoStatus::Truncated;
    }
    return TraceIoStatus::Ok;
}

TraceIoStatus
loadTraceFile(const std::string &path, TraceBuffer &buffer)
{
    std::ifstream stream(path, std::ios::binary);
    if (!stream)
        return TraceIoStatus::CannotOpen;
    return loadTrace(stream, buffer);
}

TraceIoStatus
readTraceFileSummary(const std::string &path, TraceFileSummary &out)
{
    std::ifstream stream(path, std::ios::binary);
    if (!stream)
        return TraceIoStatus::CannotOpen;
    Header header{};
    stream.read(header.magic, sizeof header.magic);
    if (!stream)
        return TraceIoStatus::Truncated;
    if (std::memcmp(header.magic, kMagic, sizeof kMagic) != 0)
        return TraceIoStatus::BadMagic;
    stream.read(reinterpret_cast<char *>(&header) + sizeof header.magic,
                sizeof header - sizeof header.magic);
    if (!stream)
        return TraceIoStatus::Truncated;
    if (header.version != kVersion)
        return TraceIoStatus::BadVersion;
    out.records = header.record_count;
    out.instructions = header.instructions;
    out.mem_accesses = header.mem_accesses;
    out.content_digest = header.content_digest;
    return TraceIoStatus::Ok;
}

MappedTrace &
MappedTrace::operator=(MappedTrace &&other) noexcept
{
    if (this == &other)
        return *this;
    close();
    base_ = other.base_;
    map_len_ = other.map_len_;
    payload_ = other.payload_;
    payload_bytes_ = other.payload_bytes_;
    pc_dict_ = std::move(other.pc_dict_);
    hint_dict_ = std::move(other.hint_dict_);
    record_count_ = other.record_count_;
    instructions_ = other.instructions_;
    mem_accesses_ = other.mem_accesses_;
    content_digest_ = other.content_digest_;
    released_ = other.released_;
    other.base_ = nullptr;
    other.map_len_ = 0;
    other.payload_ = nullptr;
    other.payload_bytes_ = 0;
    return *this;
}

void
MappedTrace::close()
{
    if (base_ != nullptr)
        ::munmap(base_, map_len_);
    base_ = nullptr;
    map_len_ = 0;
    payload_ = nullptr;
    payload_bytes_ = 0;
    pc_dict_.clear();
    hint_dict_.clear();
    record_count_ = 0;
    instructions_ = 0;
    mem_accesses_ = 0;
    content_digest_ = 0;
    released_ = 0;
}

TraceIoStatus
MappedTrace::open(const std::string &path, bool verify_digest)
{
    close();
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return TraceIoStatus::CannotOpen;
    struct stat st{};
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
        ::close(fd);
        return TraceIoStatus::CannotOpen;
    }
    const std::size_t file_len = static_cast<std::size_t>(st.st_size);
    if (file_len < sizeof(std::uint64_t) + sizeof kMagic) {
        ::close(fd);
        return TraceIoStatus::Truncated;
    }
    void *base =
        ::mmap(nullptr, file_len, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (base == MAP_FAILED)
        return TraceIoStatus::CannotOpen;
    base_ = base;
    map_len_ = file_len;

    const auto *bytes = static_cast<const std::uint8_t *>(base_);
    if (std::memcmp(bytes, kMagic, sizeof kMagic) != 0) {
        close();
        return TraceIoStatus::BadMagic;
    }
    if (file_len < sizeof(Header)) {
        close();
        return TraceIoStatus::Truncated;
    }
    Header header{};
    std::memcpy(&header, bytes, sizeof header);
    if (header.version != kVersion) {
        close();
        return TraceIoStatus::BadVersion;
    }
    const std::size_t pc_bytes =
        std::size_t{header.pc_dict_count} * sizeof(Addr);
    const std::size_t hint_bytes =
        std::size_t{header.hint_dict_count} * sizeof(DiskHint);
    const std::size_t payload_off =
        sizeof(Header) + pc_bytes + hint_bytes;
    if (payload_off > file_len ||
        header.payload_bytes > file_len - payload_off) {
        close();
        return TraceIoStatus::Truncated;
    }

    pc_dict_.resize(header.pc_dict_count);
    std::memcpy(pc_dict_.data(), bytes + sizeof(Header), pc_bytes);
    hint_dict_.reserve(header.hint_dict_count);
    for (std::uint32_t i = 0; i < header.hint_dict_count; ++i) {
        DiskHint disk{};
        std::memcpy(&disk,
                    bytes + sizeof(Header) + pc_bytes +
                        std::size_t{i} * sizeof(DiskHint),
                    sizeof disk);
        hint_dict_.push_back(unpackHint(disk));
    }
    payload_ = bytes + payload_off;
    payload_bytes_ = header.payload_bytes;
    record_count_ = header.record_count;
    instructions_ = header.instructions;
    mem_accesses_ = header.mem_accesses;
    content_digest_ = header.content_digest;

    if (verify_digest) {
        std::uint64_t fnv = kFnv1aBasis;
        for (std::size_t off = 0; off < payload_bytes_;
             off += kVerifyWindowBytes) {
            const std::size_t n =
                std::min(kVerifyWindowBytes, payload_bytes_ - off);
            fnv = fnv1aResume(fnv, {payload_ + off, n});
            releaseConsumed(payload_ + off + n);
        }
        const std::uint64_t expect = packedTraceDigestPrehashed(
            record_count_, instructions_, fnv, pc_dict_.data(),
            pc_dict_.size(), hint_dict_.data(), hint_dict_.size());
        if (expect != content_digest_) {
            close();
            return TraceIoStatus::BadDigest;
        }
        // Replay starts over from the first payload page; reset the
        // high-water mark so its release bookkeeping stays monotonic.
        released_ = 0;
    }
    return TraceIoStatus::Ok;
}

void
MappedTrace::releaseConsumed(const std::uint8_t *upto) const
{
    if (base_ == nullptr)
        return;
    static const std::size_t page =
        static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
    auto *base = static_cast<std::uint8_t *>(base_);
    std::size_t off = static_cast<std::size_t>(upto - base);
    off &= ~(page - 1);
    if (off <= released_)
        return;
    ::madvise(base + released_, off - released_, MADV_DONTNEED);
    released_ = off;
}

} // namespace csp::trace
