/**
 * @file
 * Binary trace serialization: save a generated TraceBuffer to disk and
 * reload it later, so expensive workload generation can be amortised
 * across many simulator runs (the gem5-checkpoint analogue for this
 * trace-driven setup).
 *
 * Format v2 stores the TraceBuffer's packed representation verbatim —
 * a fixed header (magic, version, counts, content digest), the PC and
 * hint dictionaries, then the packed record payload. Saving is a few
 * bulk writes instead of a decode/re-encode pass, loading reconstitutes
 * the buffer without touching individual records, and — the point —
 * MappedTrace can decode straight out of an mmap of the file: the
 * payload is never copied, so a scale-100M replay streams through the
 * page cache instead of materialising gigabytes. The header's content
 * digest (TraceBuffer::contentDigest formula) makes every trace file
 * self-verifying, which is what lets `traces/cache/` entries be trusted
 * or silently regenerated.
 *
 * The format is versioned; loading a mismatched version fails cleanly.
 */

#ifndef CSP_TRACE_TRACE_IO_H
#define CSP_TRACE_TRACE_IO_H

#include <algorithm>
#include <cstddef>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "trace/trace.h"

namespace csp::trace {

/** Result of a load / map attempt. */
enum class TraceIoStatus
{
    Ok,
    CannotOpen,
    BadMagic,
    BadVersion,
    Truncated,
    BadDigest, ///< stored content digest does not match the bytes
};

/** Human-readable status label. */
const char *traceIoStatusName(TraceIoStatus status);

/** Serialize @p buffer to @p stream. Returns false on write failure. */
bool saveTrace(const TraceBuffer &buffer, std::ostream &stream);

/** Serialize @p buffer to the file at @p path. */
bool saveTraceFile(const TraceBuffer &buffer, const std::string &path);

/** Deserialize a trace from @p stream into @p buffer. */
TraceIoStatus loadTrace(std::istream &stream, TraceBuffer &buffer);

/** Deserialize a trace from the file at @p path. */
TraceIoStatus loadTraceFile(const std::string &path,
                            TraceBuffer &buffer);

/** The header block of a trace file, without its payload. */
struct TraceFileSummary
{
    std::uint64_t records = 0;
    std::uint64_t instructions = 0;
    std::uint64_t mem_accesses = 0;
    std::uint64_t content_digest = 0;
};

/**
 * Read only the fixed header of the trace file at @p path — O(1) I/O.
 * This is how a warm sweep learns a cached trace's content digest (and
 * thus its result-cache keys) without generating or loading the trace.
 * The payload is NOT verified here; materialising readers re-check the
 * digest and fall back to regeneration on mismatch.
 */
TraceIoStatus readTraceFileSummary(const std::string &path,
                                   TraceFileSummary &out);

/**
 * A packed trace file mapped read-only into the address space. The
 * record payload is decoded in place — cursor() points a TraceCursor
 * straight at the mapped bytes — so opening a trace costs O(dictionary)
 * copies and page-cache faults, never a payload materialisation.
 *
 * open() verifies the header's content digest by default, hashing the
 * payload in windows and releasing each window's pages as it goes, so
 * even verification leaves peak RSS at the window size. Replay through
 * StreamingTraceSource keeps the same bound.
 */
class MappedTrace
{
  public:
    MappedTrace() = default;
    ~MappedTrace() { close(); }

    MappedTrace(MappedTrace &&other) noexcept { *this = std::move(other); }
    MappedTrace &operator=(MappedTrace &&other) noexcept;
    MappedTrace(const MappedTrace &) = delete;
    MappedTrace &operator=(const MappedTrace &) = delete;

    /** Map the trace file at @p path; any failure leaves the object
     *  unmapped. @p verify_digest re-hashes the payload against the
     *  stored content digest (windowed; see class comment). */
    TraceIoStatus open(const std::string &path,
                       bool verify_digest = true);

    /** Unmap; safe to call repeatedly. */
    void close();

    bool mapped() const { return base_ != nullptr; }

    /** Number of records (compute bursts count once). */
    std::size_t size() const { return record_count_; }

    /** Total instructions represented (bursts expanded). */
    std::uint64_t instructions() const { return instructions_; }

    /** Number of memory-access records. */
    std::uint64_t memAccesses() const { return mem_accesses_; }

    /** Content digest from the header (TraceBuffer::contentDigest of
     *  the saved buffer). */
    std::uint64_t contentDigest() const { return content_digest_; }

    /** Packed record payload inside the mapping. */
    const std::uint8_t *payload() const { return payload_; }
    std::size_t payloadBytes() const { return payload_bytes_; }

    /** Streaming decoder over the mapped payload, positioned at the
     *  first record. */
    TraceCursor
    cursor() const
    {
        return TraceCursor(payload_, payload_ + payload_bytes_,
                           pc_dict_.data(), hint_dict_.data());
    }

    /**
     * Tell the kernel the mapping's bytes before @p upto are consumed
     * (MADV_DONTNEED, rounded down to a page). Clean file-backed pages
     * drop from the resident set and refault from the page cache if
     * ever touched again — this is what keeps a forward-only replay's
     * RSS flat regardless of trace size.
     */
    void releaseConsumed(const std::uint8_t *upto) const;

  private:
    void *base_ = nullptr;
    std::size_t map_len_ = 0;
    const std::uint8_t *payload_ = nullptr;
    std::size_t payload_bytes_ = 0;
    // Dictionaries are tiny (a handful of synthetic code sites/hints),
    // so they are copied out of the map: the in-memory layouts differ
    // from the 8-byte on-disk records and the copy sidesteps alignment
    // concerns. The payload — all the volume — stays zero-copy.
    std::vector<Addr> pc_dict_;
    std::vector<hints::Hint> hint_dict_;
    std::size_t record_count_ = 0;
    std::uint64_t instructions_ = 0;
    std::uint64_t mem_accesses_ = 0;
    std::uint64_t content_digest_ = 0;
    mutable std::size_t released_ = 0; ///< DONTNEED high-water mark
};

/**
 * Replay source over a MappedTrace for Simulator::runFrom: decodes via
 * TraceCursor directly from the map and releases consumed pages one
 * window at a time, bounding replay RSS at ~window_bytes independent
 * of trace size. One pointer compare per record when inside a window.
 */
class StreamingTraceSource
{
  public:
    static constexpr std::size_t kDefaultWindowBytes =
        std::size_t{4} << 20;

    explicit StreamingTraceSource(
        const MappedTrace &trace,
        std::size_t window_bytes = kDefaultWindowBytes)
        : trace_(&trace), cursor_(trace.cursor()),
          window_bytes_(window_bytes),
          window_end_(trace.payload() +
                      std::min(window_bytes, trace.payloadBytes()))
    {}

    /** Decode the next record; nullptr once the trace is exhausted. */
    const TraceRecord *
    next()
    {
        if (cursor_.position() >= window_end_) [[unlikely]] {
            trace_->releaseConsumed(cursor_.position());
            window_end_ = cursor_.position() + window_bytes_;
        }
        return cursor_.next();
    }

  private:
    const MappedTrace *trace_;
    TraceCursor cursor_;
    std::size_t window_bytes_;
    const std::uint8_t *window_end_;
};

} // namespace csp::trace

#endif // CSP_TRACE_TRACE_IO_H
