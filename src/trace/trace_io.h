/**
 * @file
 * Binary trace serialization: save a generated TraceBuffer to disk and
 * reload it later, so expensive workload generation can be amortised
 * across many simulator runs (the gem5-checkpoint analogue for this
 * trace-driven setup).
 *
 * Format: a fixed header (magic, version, record count) followed by
 * packed little-endian records. The format is versioned; loading a
 * mismatched version fails cleanly.
 */

#ifndef CSP_TRACE_TRACE_IO_H
#define CSP_TRACE_TRACE_IO_H

#include <iosfwd>
#include <string>

#include "trace/trace.h"

namespace csp::trace {

/** Result of a load attempt. */
enum class TraceIoStatus
{
    Ok,
    CannotOpen,
    BadMagic,
    BadVersion,
    Truncated,
};

/** Human-readable status label. */
const char *traceIoStatusName(TraceIoStatus status);

/** Serialize @p buffer to @p stream. Returns false on write failure. */
bool saveTrace(const TraceBuffer &buffer, std::ostream &stream);

/** Serialize @p buffer to the file at @p path. */
bool saveTraceFile(const TraceBuffer &buffer, const std::string &path);

/** Deserialize a trace from @p stream into @p buffer. */
TraceIoStatus loadTrace(std::istream &stream, TraceBuffer &buffer);

/** Deserialize a trace from the file at @p path. */
TraceIoStatus loadTraceFile(const std::string &path,
                            TraceBuffer &buffer);

} // namespace csp::trace

#endif // CSP_TRACE_TRACE_IO_H
