#include "workloads/graph/csr_graph.h"

#include <queue>

#include "core/logging.h"

namespace csp::workloads::graph {

CsrGraph::CsrGraph(const std::vector<Edge> &edges,
                   std::uint32_t vertices, bool undirected)
    : vertices_(vertices), offsets_(vertices + 1, 0)
{
    // Counting sort by source vertex.
    for (const Edge &edge : edges) {
        CSP_ASSERT(edge.from < vertices && edge.to < vertices);
        ++offsets_[edge.from + 1];
        if (undirected && edge.to != edge.from)
            ++offsets_[edge.to + 1];
    }
    for (std::uint32_t v = 0; v < vertices; ++v)
        offsets_[v + 1] += offsets_[v];
    targets_.resize(offsets_[vertices]);
    weights_.resize(offsets_[vertices]);
    std::vector<std::uint64_t> cursor(offsets_.begin(),
                                      offsets_.end() - 1);
    for (const Edge &edge : edges) {
        targets_[cursor[edge.from]] = edge.to;
        weights_[cursor[edge.from]] = edge.weight;
        ++cursor[edge.from];
        if (undirected && edge.to != edge.from) {
            targets_[cursor[edge.to]] = edge.from;
            weights_[cursor[edge.to]] = edge.weight;
            ++cursor[edge.to];
        }
    }
}

std::vector<std::uint32_t>
CsrGraph::bfsDistances(std::uint32_t source) const
{
    constexpr std::uint32_t kUnreached = 0xffffffffu;
    std::vector<std::uint32_t> dist(vertices_, kUnreached);
    std::queue<std::uint32_t> frontier;
    dist[source] = 0;
    frontier.push(source);
    while (!frontier.empty()) {
        const std::uint32_t u = frontier.front();
        frontier.pop();
        for (std::uint64_t e = offsets_[u]; e < offsets_[u + 1]; ++e) {
            const std::uint32_t v = targets_[e];
            if (dist[v] == kUnreached) {
                dist[v] = dist[u] + 1;
                frontier.push(v);
            }
        }
    }
    return dist;
}

} // namespace csp::workloads::graph
