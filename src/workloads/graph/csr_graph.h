/**
 * @file
 * Compressed-sparse-row graph — the spatially optimised representation
 * the paper contrasts with naive linked layouts (sections 2.2 and 7.5).
 * Built once from an edge list; traversals over it stream the offsets
 * and targets arrays, which is exactly what makes it friendly to
 * spatio-temporal prefetchers.
 */

#ifndef CSP_WORKLOADS_GRAPH_CSR_GRAPH_H
#define CSP_WORKLOADS_GRAPH_CSR_GRAPH_H

#include <cstdint>
#include <vector>

#include "workloads/graph/rmat.h"

namespace csp::workloads::graph {

/** See file comment. */
class CsrGraph
{
  public:
    /** Build from a directed edge list; edges are symmetrised when
     *  @p undirected so traversals reach the whole component. */
    CsrGraph(const std::vector<Edge> &edges, std::uint32_t vertices,
             bool undirected = true);

    std::uint32_t vertexCount() const { return vertices_; }
    std::uint64_t edgeCount() const { return targets_.size(); }

    /** First-edge offset of @p v (degree = offset(v+1) - offset(v)). */
    std::uint64_t offset(std::uint32_t v) const { return offsets_[v]; }
    std::uint32_t target(std::uint64_t e) const { return targets_[e]; }
    std::uint32_t weight(std::uint64_t e) const { return weights_[e]; }

    std::uint32_t
    degree(std::uint32_t v) const
    {
        return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
    }

    /** Raw arrays (the workloads trace accesses to these). */
    const std::vector<std::uint64_t> &offsets() const { return offsets_; }
    const std::vector<std::uint32_t> &targets() const { return targets_; }
    const std::vector<std::uint32_t> &weights() const { return weights_; }

    /** Reference BFS (untraced) for correctness checks: hop distance per
     *  vertex, 0xffffffff when unreachable. */
    std::vector<std::uint32_t> bfsDistances(std::uint32_t source) const;

  private:
    std::uint32_t vertices_;
    std::vector<std::uint64_t> offsets_; ///< vertices_ + 1 entries
    std::vector<std::uint32_t> targets_;
    std::vector<std::uint32_t> weights_;
};

} // namespace csp::workloads::graph

#endif // CSP_WORKLOADS_GRAPH_CSR_GRAPH_H
