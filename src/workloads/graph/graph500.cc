#include "workloads/graph/graph500.h"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "core/rng.h"
#include "hints/hint.h"
#include "workloads/graph/csr_graph.h"
#include "workloads/graph/linked_graph.h"

namespace csp::workloads::graph {

namespace {

constexpr Addr kPcBase = 0x00500000;

enum Site : std::uint32_t
{
    kSiteLoadQueue = 0,
    kSiteLoadOffsets,
    kSiteLoadTarget,
    kSiteLoadDist,
    kSiteStoreDist,
    kSiteStoreQueue,
    kSiteVisitBranch,
    kSiteLoadVertex,
    kSiteLoadEdge,
    kSiteLoadNeighbor,
    kSiteCompute,
};

unsigned
scaleFromBudget(std::uint64_t target_accesses, unsigned edge_factor)
{
    // A BFS touches roughly V * (1 + 4*2*edge_factor) accesses.
    const double per_vertex = 1.0 + 8.0 * edge_factor;
    unsigned scale = 8;
    while (scale < 15 &&
           (double)(1u << (scale + 1)) * per_vertex <
               (double)target_accesses) {
        ++scale;
    }
    return scale;
}

} // namespace

trace::TraceBuffer
Graph500::generate(const WorkloadParams &params) const
{
    RmatParams rmat;
    rmat.edge_factor = 8;
    rmat.scale = scaleFromBudget(params.scale, rmat.edge_factor);
    rmat.seed = params.seed;
    const std::vector<Edge> edges = generateRmat(rmat);
    const std::uint32_t n = vertexCount(rmat);

    trace::TraceBuffer buffer;
    trace::Recorder rec(buffer, kPcBase);
    Rng rng(params.seed ^ 0x6500ull);

    hints::TypeEnumerator types;
    const std::uint16_t queue_type = types.fresh();
    const std::uint16_t offsets_type = types.fresh();
    const std::uint16_t targets_type = types.fresh();
    const std::uint16_t dist_type = types.fresh();
    const std::uint16_t vertex_type = types.fresh();
    const std::uint16_t edge_type = types.fresh();
    const hints::Hint queue_hint{queue_type, hints::kNoLinkOffset,
                                 hints::RefForm::Index};
    const hints::Hint offsets_hint{offsets_type, hints::kNoLinkOffset,
                                   hints::RefForm::Index};
    const hints::Hint targets_hint{targets_type, hints::kNoLinkOffset,
                                   hints::RefForm::Index};
    const hints::Hint dist_hint{dist_type, hints::kNoLinkOffset,
                                hints::RefForm::Index};

    if (layout_ == GraphLayout::Csr) {
        const CsrGraph graph(edges, n);
        runtime::Arena arena((graph.edgeCount() + n) * 16 + (8u << 20),
                             runtime::Placement::Sequential,
                             params.seed);
        auto *offsets = static_cast<std::uint64_t *>(
            arena.allocate((n + 1) * sizeof(std::uint64_t)));
        std::copy(graph.offsets().begin(), graph.offsets().end(),
                  offsets);
        auto *targets = static_cast<std::uint32_t *>(arena.allocate(
            graph.edgeCount() * sizeof(std::uint32_t)));
        std::copy(graph.targets().begin(), graph.targets().end(),
                  targets);
        auto *dist = static_cast<std::uint32_t *>(
            arena.allocate(n * sizeof(std::uint32_t)));
        auto *queue = static_cast<std::uint32_t *>(
            arena.allocate(n * sizeof(std::uint32_t)));

        while (buffer.memAccesses() < params.scale) {
            const auto source = static_cast<std::uint32_t>(
                rng.below(n));
            std::fill(dist, dist + n, 0xffffffffu);
            std::uint32_t head = 0;
            std::uint32_t tail = 0;
            dist[source] = 0;
            queue[tail++] = source;
            while (head < tail &&
                   buffer.memAccesses() < params.scale) {
                const std::uint32_t u = queue[head];
                rec.load(kSiteLoadQueue, arena.addrOf(&queue[head]),
                         queue_hint, u);
                ++head;
                const std::uint64_t begin = offsets[u];
                const std::uint64_t end = offsets[u + 1];
                rec.load(kSiteLoadOffsets,
                         arena.addrOf(&offsets[u]), offsets_hint,
                         begin, /*dep_on_prev_load=*/true);
                for (std::uint64_t e = begin; e < end; ++e) {
                    const std::uint32_t v = targets[e];
                    rec.load(kSiteLoadTarget,
                             arena.addrOf(&targets[e]), targets_hint,
                             v, /*dep_on_prev_load=*/true);
                    rec.load(kSiteLoadDist, arena.addrOf(&dist[v]),
                             dist_hint, dist[v],
                             /*dep_on_prev_load=*/true);
                    const bool unvisited = dist[v] == 0xffffffffu;
                    rec.branch(kSiteVisitBranch, unvisited);
                    if (unvisited) {
                        dist[v] = dist[u] + 1;
                        rec.store(kSiteStoreDist,
                                  arena.addrOf(&dist[v]), dist_hint);
                        queue[tail] = v;
                        rec.store(kSiteStoreQueue,
                                  arena.addrOf(&queue[tail]),
                                  queue_hint);
                        ++tail;
                    }
                }
                rec.compute(kSiteCompute, 2);
            }
        }
        return buffer;
    }

    // Naive pointer-linked layout.
    // Batch construction allocates nodes in insertion order, like a
    // real one-shot graph build over a bump allocator; the *layout*
    // penalty of the linked representation (fat nodes, pointer
    // dependences, vertex/edge interleaving) is what the Figure 14
    // comparison isolates.
    runtime::Arena arena(
        LinkedGraph::arenaBytes(n, edges.size(), true) + n * 8,
        runtime::Placement::Sequential, params.seed);
    LinkedGraph graph(arena, edges, n);
    const hints::Hint vertex_hint{
        vertex_type,
        static_cast<std::uint16_t>(
            offsetof(LinkedGraph::VertexNode, first)),
        hints::RefForm::Arrow};
    const hints::Hint edge_hint{
        edge_type,
        static_cast<std::uint16_t>(
            offsetof(LinkedGraph::EdgeNode, next)),
        hints::RefForm::Arrow};
    const hints::Hint neighbor_hint{
        edge_type,
        static_cast<std::uint16_t>(offsetof(LinkedGraph::EdgeNode, to)),
        hints::RefForm::Arrow};

    std::vector<LinkedGraph::VertexNode *> queue(n);
    auto *queue_mem = static_cast<std::uint64_t *>(
        arena.allocate(n * sizeof(std::uint64_t)));
    (void)queue_mem; // simulated address anchor for the queue array

    // Graph500 re-runs BFS over a fixed set of sampled roots; the
    // recurrence across repetitions is what a learning prefetcher can
    // exploit.
    std::uint32_t roots[4];
    for (auto &root : roots)
        root = static_cast<std::uint32_t>(rng.below(n));
    std::uint32_t bfs_round = 0;
    while (buffer.memAccesses() < params.scale) {
        graph.clearMarks();
        const std::uint32_t source = roots[bfs_round++ % 4];
        std::uint32_t head = 0;
        std::uint32_t tail = 0;
        graph.vertex(source)->mark = 0;
        queue[tail++] = graph.vertex(source);
        while (head < tail && buffer.memAccesses() < params.scale) {
            LinkedGraph::VertexNode *u = queue[head];
            rec.load(kSiteLoadQueue, arena.addrOf(&queue_mem[head]),
                     queue_hint, arena.addrOf(u));
            ++head;
            rec.load(kSiteLoadVertex, arena.addrOf(u), vertex_hint,
                     u->first != nullptr ? arena.addrOf(u->first) : 0,
                     /*dep_on_prev_load=*/true);
            for (LinkedGraph::EdgeNode *e = u->first; e != nullptr;
                 e = e->next) {
                rec.load(kSiteLoadEdge, arena.addrOf(e), edge_hint,
                         e->next != nullptr ? arena.addrOf(e->next)
                                            : 0,
                         /*dep_on_prev_load=*/true);
                LinkedGraph::VertexNode *v = e->to;
                rec.load(kSiteLoadNeighbor, arena.addrOf(v),
                         neighbor_hint, v->mark,
                         /*dep_on_prev_load=*/true);
                const bool unvisited = v->mark == 0xffffffffu;
                rec.branch(kSiteVisitBranch, unvisited);
                if (unvisited) {
                    v->mark = u->mark + 1;
                    rec.store(kSiteStoreDist, arena.addrOf(v),
                              vertex_hint);
                    queue[tail] = v;
                    rec.store(kSiteStoreQueue,
                              arena.addrOf(&queue_mem[tail]),
                              queue_hint);
                    ++tail;
                }
            }
            rec.compute(kSiteCompute, 2);
        }
    }
    return buffer;
}

} // namespace csp::workloads::graph
