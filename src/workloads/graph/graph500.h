/**
 * @file
 * Graph500 workload (paper Table 3): breadth-first search over an R-MAT
 * graph. Two layouts are provided for the layout-agnostic-programming
 * experiment of paper Figure 14: the spatially optimised CSR layout
 * used by real Graph500 implementations, and the naive pointer-linked
 * layout.
 */

#ifndef CSP_WORKLOADS_GRAPH_GRAPH500_H
#define CSP_WORKLOADS_GRAPH_GRAPH500_H

#include "workloads/workload.h"

namespace csp::workloads::graph {

/** Graph data layout for the Figure 14 comparison. */
enum class GraphLayout
{
    Csr,    ///< offsets/targets arrays (spatially optimised)
    Linked, ///< individually allocated vertex/edge nodes (naive)
};

/** Graph500 BFS; see file comment. */
class Graph500 final : public Workload
{
  public:
    explicit Graph500(GraphLayout layout) : layout_(layout) {}

    std::string
    name() const override
    {
        return layout_ == GraphLayout::Csr ? "graph500"
                                           : "graph500-list";
    }

    std::string suite() const override { return "graph500"; }

    trace::TraceBuffer generate(const WorkloadParams &params)
        const override;

  private:
    GraphLayout layout_;
};

} // namespace csp::workloads::graph

#endif // CSP_WORKLOADS_GRAPH_GRAPH500_H
