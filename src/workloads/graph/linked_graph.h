/**
 * @file
 * Naive pointer-linked graph representation: vertices and edges are
 * individually heap-allocated nodes chained through pointers — the
 * "simple and straightforward linked implementation" whose performance
 * penalty the context-based prefetcher is shown to alleviate (paper
 * sections 2.2 and 7.5). Header-only so the ubench and graph workloads
 * share it without extra build plumbing.
 */

#ifndef CSP_WORKLOADS_GRAPH_LINKED_GRAPH_H
#define CSP_WORKLOADS_GRAPH_LINKED_GRAPH_H

#include <algorithm>
#include <cstdint>
#include <vector>

#include "runtime/arena.h"
#include "workloads/graph/rmat.h"

namespace csp::workloads::graph {

/** Linked adjacency-list graph over the simulated heap. */
class LinkedGraph
{
  public:
    struct EdgeNode;

    struct VertexNode
    {
        EdgeNode *first = nullptr;
        std::uint32_t id = 0;
        std::uint32_t degree = 0;
        /// Scratch fields traversals may use (BFS level, visit marks).
        std::uint32_t mark = 0xffffffffu;
        std::uint64_t accum = 0;
    };

    struct EdgeNode
    {
        VertexNode *to = nullptr;
        EdgeNode *next = nullptr;
        std::uint32_t weight = 1;
    };

    /**
     * Build from an edge list; symmetrised when @p undirected. Edge
     * nodes are allocated grouped by source vertex — the order any
     * real adjacency-list builder produces — so a vertex's chain stays
     * allocation-local even though the heap placement itself may be
     * randomised.
     */
    LinkedGraph(runtime::Arena &arena, const std::vector<Edge> &edges,
                std::uint32_t vertices, bool undirected = true)
        : arena_(arena)
    {
        vertices_.reserve(vertices);
        for (std::uint32_t v = 0; v < vertices; ++v) {
            VertexNode *node = arena.make<VertexNode>();
            node->id = v;
            vertices_.push_back(node);
        }
        std::vector<Edge> directed;
        directed.reserve(undirected ? edges.size() * 2 : edges.size());
        for (const Edge &edge : edges) {
            directed.push_back(edge);
            if (undirected && edge.from != edge.to)
                directed.push_back({edge.to, edge.from, edge.weight});
        }
        std::stable_sort(directed.begin(), directed.end(),
                         [](const Edge &a, const Edge &b) {
                             return a.from < b.from;
                         });
        for (const Edge &edge : directed)
            addEdge(edge.from, edge.to, edge.weight);
    }

    void
    addEdge(std::uint32_t from, std::uint32_t to, std::uint32_t weight)
    {
        EdgeNode *edge = arena_.make<EdgeNode>();
        edge->to = vertices_[to];
        edge->weight = weight;
        edge->next = vertices_[from]->first;
        vertices_[from]->first = edge;
        ++vertices_[from]->degree;
    }

    VertexNode *vertex(std::uint32_t v) { return vertices_[v]; }
    const VertexNode *vertex(std::uint32_t v) const
    {
        return vertices_[v];
    }
    std::uint32_t vertexCount() const
    {
        return static_cast<std::uint32_t>(vertices_.size());
    }
    runtime::Arena &arena() { return arena_; }

    /** Reset the per-vertex scratch fields. */
    void
    clearMarks()
    {
        for (VertexNode *v : vertices_) {
            v->mark = 0xffffffffu;
            v->accum = 0;
        }
    }

    /** Worst-case arena bytes for @p vertices and @p directed_edges
     *  (doubled when undirected), including allocator slack. */
    static std::uint64_t
    arenaBytes(std::uint64_t vertices, std::uint64_t directed_edges,
               bool undirected)
    {
        const std::uint64_t edge_nodes =
            undirected ? directed_edges * 2 : directed_edges;
        return vertices * 64 + edge_nodes * 32 + (4u << 20);
    }

  private:
    runtime::Arena &arena_;
    std::vector<VertexNode *> vertices_;
};

} // namespace csp::workloads::graph

#endif // CSP_WORKLOADS_GRAPH_LINKED_GRAPH_H
