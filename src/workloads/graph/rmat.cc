#include "workloads/graph/rmat.h"

#include <algorithm>
#include <numeric>

namespace csp::workloads::graph {

std::vector<Edge>
generateRmat(const RmatParams &params)
{
    Rng rng(params.seed ^ 0x47a3a7ull);
    const std::uint32_t n = vertexCount(params);
    const std::uint64_t m =
        static_cast<std::uint64_t>(n) * params.edge_factor;
    const double ab = params.a + params.b;
    const double abc = ab + params.c;

    std::vector<Edge> edges;
    edges.reserve(m);
    for (std::uint64_t e = 0; e < m; ++e) {
        std::uint32_t row = 0;
        std::uint32_t col = 0;
        for (unsigned level = 0; level < params.scale; ++level) {
            const double pick = rng.uniform();
            row <<= 1;
            col <<= 1;
            if (pick < params.a) {
                // top-left: nothing to add
            } else if (pick < ab) {
                col |= 1;
            } else if (pick < abc) {
                row |= 1;
            } else {
                row |= 1;
                col |= 1;
            }
        }
        const auto weight = static_cast<std::uint32_t>(
            1 + rng.below(params.max_weight));
        edges.push_back({row, col, weight});
    }

    if (params.permute_vertices) {
        std::vector<std::uint32_t> perm(n);
        std::iota(perm.begin(), perm.end(), 0u);
        for (std::uint32_t i = n; i > 1; --i) {
            const auto j =
                static_cast<std::uint32_t>(rng.below(i));
            std::swap(perm[i - 1], perm[j]);
        }
        for (Edge &edge : edges) {
            edge.from = perm[edge.from];
            edge.to = perm[edge.to];
        }
    }
    return edges;
}

} // namespace csp::workloads::graph
