/**
 * @file
 * R-MAT / Kronecker edge-list generator, the synthetic graph family the
 * Graph500 benchmark specifies (Murphy et al., "Introducing the Graph
 * 500", CUG 2010). Edges are produced by recursively descending a 2x2
 * probability matrix (a,b,c,d); the Graph500 parameters
 * (0.57, 0.19, 0.19, 0.05) are the defaults.
 */

#ifndef CSP_WORKLOADS_GRAPH_RMAT_H
#define CSP_WORKLOADS_GRAPH_RMAT_H

#include <cstdint>
#include <vector>

#include "core/rng.h"

namespace csp::workloads::graph {

/** One directed edge with a weight (weights used by Prim/SSCA2). */
struct Edge
{
    std::uint32_t from = 0;
    std::uint32_t to = 0;
    std::uint32_t weight = 1;
};

/** R-MAT generation parameters. */
struct RmatParams
{
    unsigned scale = 10;        ///< 2^scale vertices
    unsigned edge_factor = 8;   ///< edges per vertex (Graph500: 16)
    double a = 0.57, b = 0.19, c = 0.19;
    std::uint64_t seed = 1;
    std::uint32_t max_weight = 255;
    bool permute_vertices = true; ///< Graph500-style relabeling
};

/** Generate the edge list; self-loops are retained (Graph500 allows
 *  them; traversals ignore them naturally). */
std::vector<Edge> generateRmat(const RmatParams &params);

/** Number of vertices implied by @p params. */
inline std::uint32_t
vertexCount(const RmatParams &params)
{
    return 1u << params.scale;
}

} // namespace csp::workloads::graph

#endif // CSP_WORKLOADS_GRAPH_RMAT_H
