#include "workloads/graph/ssca2.h"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "core/rng.h"
#include "hints/hint.h"
#include "workloads/graph/csr_graph.h"
#include "workloads/graph/linked_graph.h"

namespace csp::workloads::graph {

namespace {

constexpr Addr kPcBase = 0x00510000;

enum Site : std::uint32_t
{
    kSiteLoadQueue = 0,
    kSiteLoadOffsets,
    kSiteLoadTarget,
    kSiteLoadDist,
    kSiteLoadSigma,
    kSiteStoreState,
    kSiteBackLoadOrder,
    kSiteBackLoadNeighbor,
    kSiteBackAccumulate,
    kSiteVisitBranch,
    kSiteLoadVertex,
    kSiteLoadEdge,
    kSiteCompute,
};

} // namespace

trace::TraceBuffer
Ssca2::generate(const WorkloadParams &params) const
{
    RmatParams rmat;
    rmat.edge_factor = 8;
    rmat.scale = 9; // SSCA2 runs many roots over a modest graph
    while (rmat.scale < 13 &&
           (1u << (rmat.scale + 1)) * 64ull < params.scale)
        ++rmat.scale;
    rmat.seed = params.seed;
    const std::vector<Edge> edges = generateRmat(rmat);
    const std::uint32_t n = vertexCount(rmat);

    trace::TraceBuffer buffer;
    trace::Recorder rec(buffer, kPcBase);
    Rng rng(params.seed ^ 0x55ca2ull);

    hints::TypeEnumerator types;
    const hints::Hint queue_hint{types.fresh(), hints::kNoLinkOffset,
                                 hints::RefForm::Index};
    const hints::Hint offsets_hint{types.fresh(), hints::kNoLinkOffset,
                                   hints::RefForm::Index};
    const hints::Hint targets_hint{types.fresh(), hints::kNoLinkOffset,
                                   hints::RefForm::Index};
    const hints::Hint state_hint{types.fresh(), hints::kNoLinkOffset,
                                 hints::RefForm::Index};
    const std::uint16_t vertex_type = types.fresh();
    const std::uint16_t edge_type = types.fresh();

    // Algorithm state shared by both layouts (the arrays live in the
    // traced heap in both cases; SSCA2 keeps them as arrays even in the
    // linked variant — only the graph itself changes representation).
    std::vector<std::uint32_t> dist(n);
    std::vector<std::uint64_t> sigma(n);
    std::vector<double> delta(n);
    std::vector<double> bc(n, 0.0);
    std::vector<std::uint32_t> order(n);

    const auto run_csr = [&](const CsrGraph &graph,
                             runtime::Arena &arena,
                             const std::uint64_t *offsets,
                             const std::uint32_t *targets,
                             std::uint32_t *state,
                             std::uint32_t *queue) {
        while (buffer.memAccesses() < params.scale) {
            const auto source =
                static_cast<std::uint32_t>(rng.below(n));
            std::fill(dist.begin(), dist.end(), 0xffffffffu);
            std::fill(sigma.begin(), sigma.end(), 0);
            std::fill(delta.begin(), delta.end(), 0.0);
            std::uint32_t head = 0, tail = 0, seen = 0;
            dist[source] = 0;
            sigma[source] = 1;
            queue[tail++] = source;
            // Forward BFS counting shortest paths.
            while (head < tail) {
                const std::uint32_t u = queue[head];
                rec.load(kSiteLoadQueue, arena.addrOf(&queue[head]),
                         queue_hint, u);
                ++head;
                order[seen++] = u;
                rec.load(kSiteLoadOffsets, arena.addrOf(&offsets[u]),
                         offsets_hint, offsets[u],
                         /*dep_on_prev_load=*/true);
                for (std::uint64_t e = offsets[u]; e < offsets[u + 1];
                     ++e) {
                    const std::uint32_t v = targets[e];
                    rec.load(kSiteLoadTarget,
                             arena.addrOf(&targets[e]), targets_hint,
                             v, /*dep_on_prev_load=*/true);
                    rec.load(kSiteLoadDist, arena.addrOf(&state[v]),
                             state_hint, dist[v],
                             /*dep_on_prev_load=*/true);
                    const bool unvisited = dist[v] == 0xffffffffu;
                    rec.branch(kSiteVisitBranch, unvisited);
                    if (unvisited) {
                        dist[v] = dist[u] + 1;
                        queue[tail++] = v;
                        rec.store(kSiteStoreState,
                                  arena.addrOf(&state[v]),
                                  state_hint);
                    }
                    if (dist[v] == dist[u] + 1) {
                        sigma[v] += sigma[u];
                        rec.load(kSiteLoadSigma,
                                 arena.addrOf(&state[v]), state_hint,
                                 sigma[v]);
                        rec.store(kSiteStoreState,
                                  arena.addrOf(&state[v]),
                                  state_hint);
                    }
                }
            }
            // Backward accumulation (predecessors recomputed from dist).
            for (std::uint32_t i = seen; i-- > 1;) {
                const std::uint32_t w = order[i];
                rec.load(kSiteBackLoadOrder, arena.addrOf(&queue[i]),
                         queue_hint, w);
                for (std::uint64_t e = offsets[w]; e < offsets[w + 1];
                     ++e) {
                    const std::uint32_t v = targets[e];
                    rec.load(kSiteBackLoadNeighbor,
                             arena.addrOf(&targets[e]), targets_hint,
                             v, /*dep_on_prev_load=*/true);
                    if (dist[v] + 1 == dist[w] && sigma[w] > 0) {
                        delta[v] +=
                            static_cast<double>(sigma[v]) /
                            static_cast<double>(sigma[w]) *
                            (1.0 + delta[w]);
                        rec.load(kSiteBackAccumulate,
                                 arena.addrOf(&state[v]), state_hint,
                                 sigma[v], /*dep_on_prev_load=*/true);
                        rec.store(kSiteStoreState,
                                  arena.addrOf(&state[v]),
                                  state_hint);
                    }
                }
                bc[w] += delta[w];
                rec.compute(kSiteCompute, 3);
            }
        }
        (void)graph;
    };

    if (layout_ == GraphLayout::Csr) {
        const CsrGraph graph(edges, n);
        runtime::Arena arena(
            (graph.edgeCount() + n) * 24 + (8u << 20),
            runtime::Placement::Sequential, params.seed);
        auto *offsets = static_cast<std::uint64_t *>(
            arena.allocate((n + 1) * sizeof(std::uint64_t)));
        std::copy(graph.offsets().begin(), graph.offsets().end(),
                  offsets);
        auto *targets = static_cast<std::uint32_t *>(arena.allocate(
            graph.edgeCount() * sizeof(std::uint32_t)));
        std::copy(graph.targets().begin(), graph.targets().end(),
                  targets);
        auto *state = static_cast<std::uint32_t *>(
            arena.allocate(n * sizeof(std::uint32_t) * 4));
        auto *queue = static_cast<std::uint32_t *>(
            arena.allocate(n * sizeof(std::uint32_t)));
        run_csr(graph, arena, offsets, targets, state, queue);
        return buffer;
    }

    // Linked layout: the graph is pointer-chased; BFS/backward flow is
    // identical otherwise.
    // Batch construction: nodes land in insertion order (see
    // graph500.cc).
    runtime::Arena arena(
        LinkedGraph::arenaBytes(n, edges.size(), true) + n * 32,
        runtime::Placement::Sequential, params.seed);
    LinkedGraph graph(arena, edges, n);
    const hints::Hint vertex_hint{
        vertex_type,
        static_cast<std::uint16_t>(
            offsetof(LinkedGraph::VertexNode, first)),
        hints::RefForm::Arrow};
    const hints::Hint edge_hint{
        edge_type,
        static_cast<std::uint16_t>(
            offsetof(LinkedGraph::EdgeNode, next)),
        hints::RefForm::Arrow};
    auto *state = static_cast<std::uint32_t *>(
        arena.allocate(n * sizeof(std::uint32_t) * 4));
    auto *queue_mem = static_cast<std::uint32_t *>(
        arena.allocate(n * sizeof(std::uint32_t)));
    std::vector<std::uint32_t> queue(n);

    while (buffer.memAccesses() < params.scale) {
        const auto source = static_cast<std::uint32_t>(rng.below(n));
        std::fill(dist.begin(), dist.end(), 0xffffffffu);
        std::fill(sigma.begin(), sigma.end(), 0);
        std::fill(delta.begin(), delta.end(), 0.0);
        std::uint32_t head = 0, tail = 0, seen = 0;
        dist[source] = 0;
        sigma[source] = 1;
        queue[tail++] = source;
        while (head < tail) {
            const std::uint32_t u = queue[head];
            rec.load(kSiteLoadQueue, arena.addrOf(&queue_mem[head]),
                     queue_hint, u);
            ++head;
            order[seen++] = u;
            LinkedGraph::VertexNode *un = graph.vertex(u);
            rec.load(kSiteLoadVertex, arena.addrOf(un), vertex_hint,
                     un->first != nullptr ? arena.addrOf(un->first)
                                          : 0,
                     /*dep_on_prev_load=*/true);
            for (LinkedGraph::EdgeNode *e = un->first; e != nullptr;
                 e = e->next) {
                rec.load(kSiteLoadEdge, arena.addrOf(e), edge_hint,
                         e->next != nullptr ? arena.addrOf(e->next)
                                            : 0,
                         /*dep_on_prev_load=*/true);
                const std::uint32_t v = e->to->id;
                rec.load(kSiteLoadDist, arena.addrOf(&state[v]),
                         state_hint, dist[v],
                         /*dep_on_prev_load=*/true);
                const bool unvisited = dist[v] == 0xffffffffu;
                rec.branch(kSiteVisitBranch, unvisited);
                if (unvisited) {
                    dist[v] = dist[u] + 1;
                    queue[tail++] = v;
                    rec.store(kSiteStoreState,
                              arena.addrOf(&state[v]), state_hint);
                }
                if (dist[v] == dist[u] + 1) {
                    sigma[v] += sigma[u];
                    rec.store(kSiteStoreState,
                              arena.addrOf(&state[v]), state_hint);
                }
            }
        }
        for (std::uint32_t i = seen; i-- > 1;) {
            const std::uint32_t w = order[i];
            rec.load(kSiteBackLoadOrder, arena.addrOf(&queue_mem[i]),
                     queue_hint, w);
            LinkedGraph::VertexNode *wn = graph.vertex(w);
            rec.load(kSiteLoadVertex, arena.addrOf(wn), vertex_hint,
                     wn->first != nullptr ? arena.addrOf(wn->first)
                                          : 0,
                     /*dep_on_prev_load=*/true);
            for (LinkedGraph::EdgeNode *e = wn->first; e != nullptr;
                 e = e->next) {
                rec.load(kSiteLoadEdge, arena.addrOf(e), edge_hint,
                         e->next != nullptr ? arena.addrOf(e->next)
                                            : 0,
                         /*dep_on_prev_load=*/true);
                const std::uint32_t v = e->to->id;
                if (dist[v] + 1 == dist[w] && sigma[w] > 0) {
                    delta[v] += static_cast<double>(sigma[v]) /
                                static_cast<double>(sigma[w]) *
                                (1.0 + delta[w]);
                    rec.load(kSiteBackAccumulate,
                             arena.addrOf(&state[v]), state_hint,
                             sigma[v], /*dep_on_prev_load=*/true);
                    rec.store(kSiteStoreState,
                              arena.addrOf(&state[v]), state_hint);
                }
            }
            bc[w] += delta[w];
            rec.compute(kSiteCompute, 3);
        }
    }
    return buffer;
}

} // namespace csp::workloads::graph
