/**
 * @file
 * HPCS SSCA2 v2.2 graph-analysis workload (paper Table 3): approximate
 * betweenness centrality (kernel 4, Brandes' algorithm over sampled
 * roots) over an R-MAT graph. Provided in the two layouts of paper
 * Figure 14a: CSR arrays and the naive linked representation.
 */

#ifndef CSP_WORKLOADS_GRAPH_SSCA2_H
#define CSP_WORKLOADS_GRAPH_SSCA2_H

#include "workloads/graph/graph500.h"
#include "workloads/workload.h"

namespace csp::workloads::graph {

/** SSCA2 betweenness centrality; see file comment. */
class Ssca2 final : public Workload
{
  public:
    explicit Ssca2(GraphLayout layout) : layout_(layout) {}

    std::string
    name() const override
    {
        return layout_ == GraphLayout::Csr ? "ssca2-csr" : "ssca2-list";
    }

    std::string suite() const override { return "hpcs"; }

    trace::TraceBuffer generate(const WorkloadParams &params)
        const override;

  private:
    GraphLayout layout_;
};

} // namespace csp::workloads::graph

#endif // CSP_WORKLOADS_GRAPH_SSCA2_H
