#include "workloads/pbbs/convex_hull.h"

#include <algorithm>
#include <cmath>

#include "core/rng.h"
#include "hints/hint.h"

namespace csp::workloads::pbbs {

namespace {

constexpr Addr kPcBase = 0x00640000;

enum Site : std::uint32_t
{
    kSiteLoadPoint = 0,
    kSiteSideBranch,
    kSiteStorePartition,
    kSiteCompute,
};

double
cross(double ox, double oy, double ax, double ay, double bx, double by)
{
    return (ax - ox) * (by - oy) - (ay - oy) * (bx - ox);
}

/**
 * Recursive quickhull step; optionally traced. @p candidates holds
 * points strictly LEFT of the directed segment a->b (cross > 0); the
 * produced hull fragment runs counter-clockwise from a to b.
 */
void
quickhullRec(const std::vector<double> &xs, const std::vector<double> &ys,
             std::vector<std::uint32_t> &candidates, std::uint32_t a,
             std::uint32_t b, std::vector<std::uint32_t> &out,
             trace::Recorder *rec, runtime::Arena *arena,
             const double *coords_mem, const hints::Hint *hint,
             const trace::TraceBuffer *buffer, std::uint64_t budget)
{
    if (candidates.empty())
        return;
    const auto trace_on = [&]() {
        return rec != nullptr &&
               (buffer == nullptr || buffer->memAccesses() < budget);
    };
    // Find the point farthest left of segment a->b.
    std::uint32_t far = candidates[0];
    double far_dist = 0.0;
    for (const std::uint32_t p : candidates) {
        if (trace_on()) {
            rec->load(kSiteLoadPoint,
                      arena->addrOf(&coords_mem[p * 2]), *hint, p);
        }
        const double d =
            cross(xs[a], ys[a], xs[b], ys[b], xs[p], ys[p]);
        if (d > far_dist) {
            far_dist = d;
            far = p;
        }
    }
    // Partition the survivors to the two outer segments a->far and
    // far->b (again keeping only points strictly left of each).
    std::vector<std::uint32_t> seg_a;
    std::vector<std::uint32_t> seg_b;
    for (const std::uint32_t p : candidates) {
        if (p == far)
            continue;
        if (trace_on()) {
            rec->load(kSiteLoadPoint,
                      arena->addrOf(&coords_mem[p * 2]), *hint, p);
        }
        const bool left_of_a =
            cross(xs[a], ys[a], xs[far], ys[far], xs[p], ys[p]) > 0;
        const bool left_of_b =
            cross(xs[far], ys[far], xs[b], ys[b], xs[p], ys[p]) > 0;
        if (trace_on())
            rec->branch(kSiteSideBranch, left_of_a);
        if (left_of_a) {
            seg_a.push_back(p);
            if (trace_on()) {
                rec->store(kSiteStorePartition,
                           arena->addrOf(&coords_mem[p * 2]), *hint);
            }
        } else if (left_of_b) {
            seg_b.push_back(p);
        }
    }
    quickhullRec(xs, ys, seg_a, a, far, out, rec, arena, coords_mem,
                 hint, buffer, budget);
    out.push_back(far);
    quickhullRec(xs, ys, seg_b, far, b, out, rec, arena, coords_mem,
                 hint, buffer, budget);
}

std::vector<std::uint32_t>
quickhull(const std::vector<double> &xs, const std::vector<double> &ys,
          trace::Recorder *rec, runtime::Arena *arena,
          const double *coords_mem, const hints::Hint *hint,
          const trace::TraceBuffer *buffer, std::uint64_t budget)
{
    const std::uint32_t n = static_cast<std::uint32_t>(xs.size());
    std::vector<std::uint32_t> out;
    if (n < 3) {
        for (std::uint32_t i = 0; i < n; ++i)
            out.push_back(i);
        return out;
    }
    std::uint32_t leftmost = 0;
    std::uint32_t rightmost = 0;
    for (std::uint32_t i = 1; i < n; ++i) {
        if (xs[i] < xs[leftmost] ||
            (xs[i] == xs[leftmost] && ys[i] < ys[leftmost]))
            leftmost = i;
        if (xs[i] > xs[rightmost] ||
            (xs[i] == xs[rightmost] && ys[i] > ys[rightmost]))
            rightmost = i;
    }
    // Points left of left->right form the upper chain; points left of
    // right->left form the lower chain. Emitting the upper fragment
    // (ordered leftmost->rightmost) and then the lower fragment
    // (ordered rightmost->leftmost) yields a clockwise simple polygon.
    std::vector<std::uint32_t> upper;
    std::vector<std::uint32_t> lower;
    for (std::uint32_t i = 0; i < n; ++i) {
        if (i == leftmost || i == rightmost)
            continue;
        const double d = cross(xs[leftmost], ys[leftmost],
                               xs[rightmost], ys[rightmost], xs[i],
                               ys[i]);
        if (d > 0)
            upper.push_back(i);
        else if (d < 0)
            lower.push_back(i);
    }
    out.push_back(leftmost);
    quickhullRec(xs, ys, upper, leftmost, rightmost, out, rec, arena,
                 coords_mem, hint, buffer, budget);
    out.push_back(rightmost);
    quickhullRec(xs, ys, lower, rightmost, leftmost, out, rec, arena,
                 coords_mem, hint, buffer, budget);
    return out;
}

} // namespace

std::vector<std::uint32_t>
ConvexHull::hull(const std::vector<double> &xs,
                 const std::vector<double> &ys)
{
    return quickhull(xs, ys, nullptr, nullptr, nullptr, nullptr,
                     nullptr, 0);
}

trace::TraceBuffer
ConvexHull::generate(const WorkloadParams &params) const
{
    const std::uint32_t points = static_cast<std::uint32_t>(
        std::clamp<std::uint64_t>(params.scale / 4, 8192, 262144));
    Rng rng(params.seed ^ 0xc07full);

    trace::TraceBuffer buffer;
    trace::Recorder rec(buffer, kPcBase);
    hints::TypeEnumerator types;
    const hints::Hint point_hint{types.fresh(), hints::kNoLinkOffset,
                                 hints::RefForm::Index};

    while (buffer.memAccesses() < params.scale) {
        std::vector<double> xs(points);
        std::vector<double> ys(points);
        for (std::uint32_t i = 0; i < points; ++i) {
            // Disk distribution: plenty of interior points to scan.
            const double angle = rng.uniform() * 6.283185307179586;
            const double radius = std::sqrt(rng.uniform());
            xs[i] = radius * std::cos(angle);
            ys[i] = radius * std::sin(angle);
        }
        runtime::Arena arena(points * 16 + (4u << 20),
                             runtime::Placement::Sequential,
                             params.seed);
        auto *coords_mem =
            static_cast<double *>(arena.allocate(points * 16));
        for (std::uint32_t i = 0; i < points; ++i) {
            coords_mem[i * 2] = xs[i];
            coords_mem[i * 2 + 1] = ys[i];
        }
        quickhull(xs, ys, &rec, &arena, coords_mem, &point_hint,
                  &buffer, params.scale);
        rec.compute(kSiteCompute, 16);
    }
    return buffer;
}

} // namespace csp::workloads::pbbs
