/**
 * @file
 * PBBS `convexHull` workload: quickhull over random 2D points —
 * branch-dependent streaming scans and compactions over point arrays.
 * The paper's Figure 12 shows convexHull as the one significant
 * benchmark where a spatio-temporal prefetcher beats the context-based
 * prefetcher; the streaming-scan character of quickhull is what
 * produces that, and the reproduction keeps it.
 */

#ifndef CSP_WORKLOADS_PBBS_CONVEX_HULL_H
#define CSP_WORKLOADS_PBBS_CONVEX_HULL_H

#include <cstdint>
#include <vector>

#include "workloads/workload.h"

namespace csp::workloads::pbbs {

/** Quickhull; see file comment. */
class ConvexHull final : public Workload
{
  public:
    std::string name() const override { return "convexHull"; }
    std::string suite() const override { return "pbbs"; }
    trace::TraceBuffer generate(const WorkloadParams &params)
        const override;

    /** Untraced reference: hull point indices in clockwise order
     *  starting from the leftmost point (for correctness tests). */
    static std::vector<std::uint32_t>
    hull(const std::vector<double> &xs, const std::vector<double> &ys);
};

} // namespace csp::workloads::pbbs

#endif // CSP_WORKLOADS_PBBS_CONVEX_HULL_H
