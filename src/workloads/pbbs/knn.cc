#include "workloads/pbbs/knn.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/rng.h"
#include "hints/hint.h"

namespace csp::workloads::pbbs {

namespace {

constexpr Addr kPcBase = 0x00630000;

enum Site : std::uint32_t
{
    kSiteLoadCellStart = 0,
    kSiteLoadPointId,
    kSiteLoadCoords,
    kSiteDistBranch,
    kSiteCompute,
};

} // namespace

std::vector<std::uint32_t>
Knn::bruteForce(const std::vector<float> &xs,
                const std::vector<float> &ys, float qx, float qy,
                unsigned k)
{
    std::vector<std::uint32_t> idx(xs.size());
    std::iota(idx.begin(), idx.end(), 0u);
    const auto dist2 = [&](std::uint32_t i) {
        const float dx = xs[i] - qx;
        const float dy = ys[i] - qy;
        return dx * dx + dy * dy;
    };
    std::sort(idx.begin(), idx.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  const float da = dist2(a);
                  const float db = dist2(b);
                  return da != db ? da < db : a < b;
              });
    idx.resize(std::min<std::size_t>(k, idx.size()));
    return idx;
}

trace::TraceBuffer
Knn::generate(const WorkloadParams &params) const
{
    const std::uint32_t points = static_cast<std::uint32_t>(
        std::clamp<std::uint64_t>(params.scale / 8, 4096, 131072));
    const unsigned k = 8;
    const auto grid = static_cast<std::uint32_t>(std::max(
        4.0, std::sqrt(static_cast<double>(points) / 4.0)));
    Rng rng(params.seed ^ 0x4aaull);

    std::vector<float> xs(points);
    std::vector<float> ys(points);
    for (std::uint32_t i = 0; i < points; ++i) {
        xs[i] = static_cast<float>(rng.uniform());
        ys[i] = static_cast<float>(rng.uniform());
    }

    // Counting-sort points into grid cells (CSR-style buckets).
    const auto cellOf = [&](std::uint32_t i) {
        auto cx = static_cast<std::uint32_t>(xs[i] * grid);
        auto cy = static_cast<std::uint32_t>(ys[i] * grid);
        cx = std::min(cx, grid - 1);
        cy = std::min(cy, grid - 1);
        return cy * grid + cx;
    };
    const std::uint32_t cells = grid * grid;
    std::vector<std::uint32_t> cell_start(cells + 1, 0);
    for (std::uint32_t i = 0; i < points; ++i)
        ++cell_start[cellOf(i) + 1];
    for (std::uint32_t c = 0; c < cells; ++c)
        cell_start[c + 1] += cell_start[c];
    std::vector<std::uint32_t> cell_points(points);
    {
        std::vector<std::uint32_t> cursor(cell_start.begin(),
                                          cell_start.end() - 1);
        for (std::uint32_t i = 0; i < points; ++i)
            cell_points[cursor[cellOf(i)]++] = i;
    }

    runtime::Arena arena(points * 16 + cells * 8 + (4u << 20),
                         runtime::Placement::Sequential, params.seed);
    auto *start_mem = static_cast<std::uint32_t *>(
        arena.allocate((cells + 1) * 4));
    std::copy(cell_start.begin(), cell_start.end(), start_mem);
    auto *ids_mem =
        static_cast<std::uint32_t *>(arena.allocate(points * 4));
    std::copy(cell_points.begin(), cell_points.end(), ids_mem);
    auto *coords_mem =
        static_cast<float *>(arena.allocate(points * 8));
    for (std::uint32_t i = 0; i < points; ++i) {
        coords_mem[i * 2] = xs[i];
        coords_mem[i * 2 + 1] = ys[i];
    }

    hints::TypeEnumerator types;
    const hints::Hint start_hint{types.fresh(), hints::kNoLinkOffset,
                                 hints::RefForm::Index};
    const hints::Hint ids_hint{types.fresh(), hints::kNoLinkOffset,
                               hints::RefForm::Index};
    const hints::Hint coords_hint{types.fresh(), hints::kNoLinkOffset,
                                  hints::RefForm::Index};

    trace::TraceBuffer buffer;
    trace::Recorder rec(buffer, kPcBase);

    std::vector<float> best(k);
    while (buffer.memAccesses() < params.scale) {
        const float qx = static_cast<float>(rng.uniform());
        const float qy = static_cast<float>(rng.uniform());
        std::fill(best.begin(), best.end(), 1e30f);
        auto qcx = std::min(static_cast<std::uint32_t>(qx * grid),
                            grid - 1);
        auto qcy = std::min(static_cast<std::uint32_t>(qy * grid),
                            grid - 1);
        // Spiral over rings of cells until k candidates are secure.
        for (std::uint32_t ring = 0; ring <= 2; ++ring) {
            for (std::int64_t dy = -(std::int64_t)ring;
                 dy <= (std::int64_t)ring; ++dy) {
                for (std::int64_t dx = -(std::int64_t)ring;
                     dx <= (std::int64_t)ring; ++dx) {
                    if (std::max(std::llabs(dx), std::llabs(dy)) !=
                        (std::int64_t)ring)
                        continue;
                    const std::int64_t cx = (std::int64_t)qcx + dx;
                    const std::int64_t cy = (std::int64_t)qcy + dy;
                    if (cx < 0 || cy < 0 ||
                        cx >= static_cast<std::int64_t>(grid) ||
                        cy >= static_cast<std::int64_t>(grid))
                        continue;
                    const std::uint64_t c =
                        static_cast<std::uint64_t>(cy) * grid +
                        static_cast<std::uint64_t>(cx);
                    rec.load(kSiteLoadCellStart,
                             arena.addrOf(&start_mem[c]), start_hint,
                             cell_start[c]);
                    for (std::uint32_t p = cell_start[c];
                         p < cell_start[c + 1]; ++p) {
                        const std::uint32_t id = cell_points[p];
                        rec.load(kSiteLoadPointId,
                                 arena.addrOf(&ids_mem[p]), ids_hint,
                                 id, /*dep_on_prev_load=*/true);
                        rec.load(kSiteLoadCoords,
                                 arena.addrOf(&coords_mem[id * 2]),
                                 coords_hint, 0,
                                 /*dep_on_prev_load=*/true);
                        const float ddx = xs[id] - qx;
                        const float ddy = ys[id] - qy;
                        const float d2 = ddx * ddx + ddy * ddy;
                        const bool improves = d2 < best[k - 1];
                        rec.branch(kSiteDistBranch, improves);
                        if (improves) {
                            best[k - 1] = d2;
                            for (unsigned j = k - 1;
                                 j > 0 && best[j] < best[j - 1];
                                 --j)
                                std::swap(best[j], best[j - 1]);
                            rec.compute(kSiteCompute, 3);
                        }
                    }
                }
            }
        }
        rec.compute(kSiteCompute, 6);
    }
    return buffer;
}

} // namespace csp::workloads::pbbs
