/**
 * @file
 * PBBS `KNN` workload (paper Table 3): k-nearest-neighbour queries over
 * 2D points bucketed into a uniform grid. Each query spirals outward
 * over grid cells, gathering candidate points through cell bucket
 * indirection — an indexed-gather pattern with data-dependent extent.
 */

#ifndef CSP_WORKLOADS_PBBS_KNN_H
#define CSP_WORKLOADS_PBBS_KNN_H

#include <cstdint>
#include <vector>

#include "workloads/workload.h"

namespace csp::workloads::pbbs {

/** Grid-bucketed KNN; see file comment. */
class Knn final : public Workload
{
  public:
    std::string name() const override { return "KNN"; }
    std::string suite() const override { return "pbbs"; }
    trace::TraceBuffer generate(const WorkloadParams &params)
        const override;

    /** Untraced reference: indices of the k nearest points to
     *  (@p qx, @p qy) by brute force (for correctness tests). */
    static std::vector<std::uint32_t>
    bruteForce(const std::vector<float> &xs, const std::vector<float> &ys,
               float qx, float qy, unsigned k);
};

} // namespace csp::workloads::pbbs

#endif // CSP_WORKLOADS_PBBS_KNN_H
