#include "workloads/pbbs/pbbs_bfs.h"

#include <algorithm>
#include <vector>

#include "core/rng.h"
#include "hints/hint.h"
#include "workloads/graph/csr_graph.h"

namespace csp::workloads::pbbs {

using graph::CsrGraph;

namespace {

constexpr Addr kPcBase = 0x00610000;

enum Site : std::uint32_t
{
    kSiteLoadFrontier = 0,
    kSiteLoadOffsets,
    kSiteLoadTarget,
    kSiteLoadParent,
    kSiteStoreParent,
    kSiteStoreNext,
    kSiteVisitBranch,
    kSiteCompute,
};

} // namespace

trace::TraceBuffer
PbbsBfs::generate(const WorkloadParams &params) const
{
    graph::RmatParams rmat;
    rmat.scale = 10;
    rmat.edge_factor = 8;
    while (rmat.scale < 14 &&
           (1u << (rmat.scale + 1)) * 48ull < params.scale)
        ++rmat.scale;
    rmat.seed = params.seed;
    const std::vector<graph::Edge> edges = graph::generateRmat(rmat);
    const std::uint32_t n = graph::vertexCount(rmat);
    const CsrGraph graph(edges, n);

    runtime::Arena arena((graph.edgeCount() + n) * 24 + (8u << 20),
                         runtime::Placement::Sequential, params.seed);
    auto *offsets = static_cast<std::uint64_t *>(
        arena.allocate((n + 1) * sizeof(std::uint64_t)));
    std::copy(graph.offsets().begin(), graph.offsets().end(), offsets);
    auto *targets = static_cast<std::uint32_t *>(
        arena.allocate(graph.edgeCount() * sizeof(std::uint32_t)));
    std::copy(graph.targets().begin(), graph.targets().end(), targets);
    auto *parent = static_cast<std::int64_t *>(
        arena.allocate(n * sizeof(std::int64_t)));
    auto *frontier = static_cast<std::uint32_t *>(
        arena.allocate(n * sizeof(std::uint32_t)));
    auto *next = static_cast<std::uint32_t *>(
        arena.allocate(n * sizeof(std::uint32_t)));

    hints::TypeEnumerator types;
    const hints::Hint frontier_hint{types.fresh(),
                                    hints::kNoLinkOffset,
                                    hints::RefForm::Index};
    const hints::Hint offsets_hint{types.fresh(), hints::kNoLinkOffset,
                                   hints::RefForm::Index};
    const hints::Hint targets_hint{types.fresh(), hints::kNoLinkOffset,
                                   hints::RefForm::Index};
    const hints::Hint parent_hint{types.fresh(), hints::kNoLinkOffset,
                                  hints::RefForm::Index};

    trace::TraceBuffer buffer;
    trace::Recorder rec(buffer, kPcBase);
    Rng rng(params.seed ^ 0xbf5ull);

    while (buffer.memAccesses() < params.scale) {
        std::fill(parent, parent + n, -1);
        const auto source = static_cast<std::uint32_t>(rng.below(n));
        parent[source] = static_cast<std::int64_t>(source);
        std::uint32_t frontier_size = 1;
        frontier[0] = source;
        while (frontier_size > 0 &&
               buffer.memAccesses() < params.scale) {
            std::uint32_t next_size = 0;
            for (std::uint32_t i = 0; i < frontier_size; ++i) {
                const std::uint32_t u = frontier[i];
                rec.load(kSiteLoadFrontier,
                         arena.addrOf(&frontier[i]), frontier_hint,
                         u);
                rec.load(kSiteLoadOffsets, arena.addrOf(&offsets[u]),
                         offsets_hint, offsets[u],
                         /*dep_on_prev_load=*/true);
                for (std::uint64_t e = offsets[u]; e < offsets[u + 1];
                     ++e) {
                    const std::uint32_t v = targets[e];
                    rec.load(kSiteLoadTarget,
                             arena.addrOf(&targets[e]), targets_hint,
                             v, /*dep_on_prev_load=*/true);
                    rec.load(kSiteLoadParent,
                             arena.addrOf(&parent[v]), parent_hint,
                             static_cast<std::uint64_t>(parent[v]),
                             /*dep_on_prev_load=*/true);
                    const bool unvisited = parent[v] < 0;
                    rec.branch(kSiteVisitBranch, unvisited);
                    if (unvisited) {
                        parent[v] = static_cast<std::int64_t>(u);
                        rec.store(kSiteStoreParent,
                                  arena.addrOf(&parent[v]),
                                  parent_hint);
                        next[next_size] = v;
                        rec.store(kSiteStoreNext,
                                  arena.addrOf(&next[next_size]),
                                  frontier_hint);
                        ++next_size;
                    }
                }
            }
            std::copy(next, next + next_size, frontier);
            frontier_size = next_size;
            rec.compute(kSiteCompute, 4);
        }
    }
    return buffer;
}

} // namespace csp::workloads::pbbs
