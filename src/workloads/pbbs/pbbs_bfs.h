/**
 * @file
 * PBBS `BFS` workload (paper Table 3): frontier-array breadth-first
 * search over a CSR graph — the PBBS formulation builds a dense next
 * frontier per level instead of a FIFO queue, so the access mix is
 * frontier streaming plus irregular target/parent gathers.
 */

#ifndef CSP_WORKLOADS_PBBS_PBBS_BFS_H
#define CSP_WORKLOADS_PBBS_PBBS_BFS_H

#include "workloads/workload.h"

namespace csp::workloads::pbbs {

/** Frontier-based BFS; see file comment. */
class PbbsBfs final : public Workload
{
  public:
    std::string name() const override { return "BFS"; }
    std::string suite() const override { return "pbbs"; }
    trace::TraceBuffer generate(const WorkloadParams &params)
        const override;
};

} // namespace csp::workloads::pbbs

#endif // CSP_WORKLOADS_PBBS_PBBS_BFS_H
