#include "workloads/pbbs/set_cover.h"

#include <algorithm>

#include "core/rng.h"
#include "hints/hint.h"

namespace csp::workloads::pbbs {

namespace {

constexpr Addr kPcBase = 0x00620000;

enum Site : std::uint32_t
{
    kSiteLoadSetElem = 0,
    kSiteLoadCovered,
    kSiteStoreCovered,
    kSiteCoverBranch,
    kSiteBucketOp,
    kSiteCompute,
};

/** Greedy core with lazy gain re-evaluation; optionally traced. */
std::vector<std::uint32_t>
greedyCore(const std::vector<std::vector<std::uint32_t>> &sets,
           std::uint32_t universe, trace::Recorder *rec,
           runtime::Arena *arena, std::uint8_t *covered_mem,
           const std::uint32_t *const *set_mem,
           const trace::TraceBuffer *buffer, std::uint64_t budget,
           const hints::Hint *hints)
{
    std::vector<std::uint8_t> covered(universe, 0);
    std::uint32_t remaining = universe;
    // Buckets of set ids keyed by (stale) gain; lazy re-check on pop.
    std::uint32_t max_gain = 0;
    for (const auto &set : sets) {
        max_gain = std::max(
            max_gain, static_cast<std::uint32_t>(set.size()));
    }
    std::vector<std::vector<std::uint32_t>> buckets(max_gain + 1);
    for (std::uint32_t s = 0; s < sets.size(); ++s)
        buckets[sets[s].size()].push_back(s);

    const auto trace_on = [&]() {
        return rec != nullptr &&
               (buffer == nullptr || buffer->memAccesses() < budget);
    };

    std::vector<std::uint32_t> chosen;
    for (std::uint32_t gain = max_gain; gain > 0 && remaining > 0;) {
        if (buckets[gain].empty()) {
            --gain;
            continue;
        }
        const std::uint32_t s = buckets[gain].back();
        buckets[gain].pop_back();
        if (trace_on())
            rec->compute(kSiteBucketOp, 3);
        // Re-evaluate the set's true gain.
        std::uint32_t true_gain = 0;
        for (std::size_t i = 0; i < sets[s].size(); ++i) {
            const std::uint32_t e = sets[s][i];
            if (trace_on()) {
                rec->load(kSiteLoadSetElem,
                          arena->addrOf(&set_mem[s][i]), hints[0], e);
                rec->load(kSiteLoadCovered,
                          arena->addrOf(&covered_mem[e]), hints[1],
                          covered[e], /*dep_on_prev_load=*/true);
            }
            if (!covered[e])
                ++true_gain;
        }
        if (true_gain == 0)
            continue;
        if (true_gain < gain) {
            // Stale: reinsert at its true gain.
            buckets[true_gain].push_back(s);
            continue;
        }
        // Take the set.
        chosen.push_back(s);
        for (const std::uint32_t e : sets[s]) {
            if (!covered[e]) {
                covered[e] = 1;
                --remaining;
                if (trace_on()) {
                    rec->store(kSiteStoreCovered,
                               arena->addrOf(&covered_mem[e]),
                               hints[1]);
                    rec->branch(kSiteCoverBranch, true);
                }
            }
        }
    }
    return chosen;
}

} // namespace

std::vector<std::uint32_t>
SetCover::greedy(const std::vector<std::vector<std::uint32_t>> &sets,
                 std::uint32_t universe)
{
    return greedyCore(sets, universe, nullptr, nullptr, nullptr,
                      nullptr, nullptr, 0, nullptr);
}

trace::TraceBuffer
SetCover::generate(const WorkloadParams &params) const
{
    Rng rng(params.seed ^ 0x5e7cull);
    trace::TraceBuffer buffer;
    trace::Recorder rec(buffer, kPcBase);
    hints::TypeEnumerator types;
    const hints::Hint hint_arr[2] = {
        {types.fresh(), hints::kNoLinkOffset, hints::RefForm::Index},
        {types.fresh(), hints::kNoLinkOffset, hints::RefForm::Index},
    };

    while (buffer.memAccesses() < params.scale) {
        const std::uint32_t universe = static_cast<std::uint32_t>(
            std::clamp<std::uint64_t>(params.scale / 8, 4096, 65536));
        const std::uint32_t num_sets = universe / 8;
        std::vector<std::vector<std::uint32_t>> sets(num_sets);
        for (auto &set : sets) {
            // Skewed set sizes, skewed element popularity.
            const std::uint64_t size = 2 + rng.skewedBelow(64, 2.0);
            set.reserve(size);
            for (std::uint64_t i = 0; i < size; ++i) {
                set.push_back(static_cast<std::uint32_t>(
                    rng.skewedBelow(universe, 1.0)));
            }
        }

        runtime::Arena arena(universe * 2 + num_sets * 512 +
                                 (4u << 20),
                             runtime::Placement::Sequential,
                             params.seed);
        auto *covered_mem = static_cast<std::uint8_t *>(
            arena.allocate(universe));
        std::vector<const std::uint32_t *> set_mem(num_sets);
        for (std::uint32_t s = 0; s < num_sets; ++s) {
            auto *mem = static_cast<std::uint32_t *>(arena.allocate(
                std::max<std::size_t>(1, sets[s].size()) * 4));
            std::copy(sets[s].begin(), sets[s].end(), mem);
            set_mem[s] = mem;
        }
        greedyCore(sets, universe, &rec, &arena, covered_mem,
                   set_mem.data(), &buffer, params.scale, hint_arr);
    }
    return buffer;
}

} // namespace csp::workloads::pbbs
