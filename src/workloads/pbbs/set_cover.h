/**
 * @file
 * PBBS `setCover` workload (paper Table 3): greedy set cover over
 * skew-sized random sets. The greedy loop repeatedly takes the set with
 * the most uncovered elements (bucketed by current gain, with lazy
 * re-evaluation), producing irregular element-bitmap probes mixed with
 * set-array streaming. The paper lists setCover among the benchmarks
 * where a competing prefetcher can win (section 7.3).
 */

#ifndef CSP_WORKLOADS_PBBS_SET_COVER_H
#define CSP_WORKLOADS_PBBS_SET_COVER_H

#include <cstdint>
#include <vector>

#include "workloads/workload.h"

namespace csp::workloads::pbbs {

/** Greedy set cover; see file comment. */
class SetCover final : public Workload
{
  public:
    std::string name() const override { return "setCover"; }
    std::string suite() const override { return "pbbs"; }
    trace::TraceBuffer generate(const WorkloadParams &params)
        const override;

    /**
     * Untraced reference: run the greedy algorithm and return the
     * chosen set indices (tests check full coverage and greedy order).
     */
    static std::vector<std::uint32_t>
    greedy(const std::vector<std::vector<std::uint32_t>> &sets,
           std::uint32_t universe);
};

} // namespace csp::workloads::pbbs

#endif // CSP_WORKLOADS_PBBS_SET_COVER_H
