#include "workloads/pbbs/suffix_array.h"

#include <algorithm>
#include <numeric>

#include "core/rng.h"
#include "hints/hint.h"

namespace csp::workloads::pbbs {

namespace {

constexpr Addr kPcBase = 0x00600000;

enum Site : std::uint32_t
{
    kSiteLoadSa = 0,
    kSiteLoadRank,
    kSiteLoadRankK,
    kSiteStoreRank,
    kSiteCompareBranch,
    kSiteCompute,
};

/** Prefix-doubling core; optionally traced. */
std::vector<std::uint32_t>
buildCore(const std::string &text, trace::Recorder *rec,
          runtime::Arena *arena, const trace::TraceBuffer *buffer,
          std::uint64_t budget, const hints::Hint *hints)
{
    const std::uint32_t n = static_cast<std::uint32_t>(text.size());
    std::vector<std::uint32_t> sa(n);
    std::vector<std::int64_t> rank(n);
    std::vector<std::int64_t> next_rank(n);
    std::iota(sa.begin(), sa.end(), 0u);
    for (std::uint32_t i = 0; i < n; ++i)
        rank[i] = static_cast<unsigned char>(text[i]);

    // Simulated-heap mirrors for tracing the gather pattern.
    std::uint32_t *sa_mem = nullptr;
    std::int64_t *rank_mem = nullptr;
    if (arena != nullptr) {
        sa_mem = static_cast<std::uint32_t *>(
            arena->allocate(n * sizeof(std::uint32_t)));
        rank_mem = static_cast<std::int64_t *>(
            arena->allocate(n * sizeof(std::int64_t)));
    }

    const auto rank_at = [&](std::uint32_t pos,
                             std::uint32_t k) -> std::int64_t {
        if (pos + k >= n)
            return -1;
        if (rec != nullptr) {
            rec->load(kSiteLoadRankK,
                      arena->addrOf(&rank_mem[pos + k]), hints[1],
                      static_cast<std::uint64_t>(rank[pos + k]),
                      /*dep_on_prev_load=*/true);
        }
        return rank[pos + k];
    };

    for (std::uint32_t k = 1;; k <<= 1) {
        const auto cmp = [&](std::uint32_t a, std::uint32_t b) {
            if (rec != nullptr &&
                (buffer == nullptr || buffer->memAccesses() < budget)) {
                rec->load(kSiteLoadRank, arena->addrOf(&rank_mem[a]),
                          hints[1],
                          static_cast<std::uint64_t>(rank[a]));
                rec->load(kSiteLoadRank, arena->addrOf(&rank_mem[b]),
                          hints[1],
                          static_cast<std::uint64_t>(rank[b]));
                rec->branch(kSiteCompareBranch, rank[a] < rank[b]);
            }
            if (rank[a] != rank[b])
                return rank[a] < rank[b];
            const std::int64_t ra = rank_at(a, k);
            const std::int64_t rb = rank_at(b, k);
            return ra < rb;
        };
        std::sort(sa.begin(), sa.end(), cmp);

        next_rank[sa[0]] = 0;
        for (std::uint32_t i = 1; i < n; ++i) {
            if (rec != nullptr &&
                (buffer == nullptr || buffer->memAccesses() < budget)) {
                rec->load(kSiteLoadSa, arena->addrOf(&sa_mem[i]),
                          hints[0], sa[i]);
                rec->store(kSiteStoreRank,
                           arena->addrOf(&rank_mem[sa[i]]), hints[1]);
            }
            next_rank[sa[i]] =
                next_rank[sa[i - 1]] +
                (cmp(sa[i - 1], sa[i]) ? 1 : 0);
        }
        rank.swap(next_rank);
        if (rec != nullptr)
            rec->compute(kSiteCompute, 8);
        if (rank[sa[n - 1]] == static_cast<std::int64_t>(n) - 1)
            break;
        if (k >= n)
            break;
    }
    return sa;
}

} // namespace

std::vector<std::uint32_t>
SuffixArray::build(const std::string &text)
{
    return buildCore(text, nullptr, nullptr, nullptr, 0, nullptr);
}

trace::TraceBuffer
SuffixArray::generate(const WorkloadParams &params) const
{
    // Accesses ~ 6 * n * log^2(n); keep n modest and loop fresh texts.
    const std::uint32_t n = static_cast<std::uint32_t>(
        std::clamp<std::uint64_t>(params.scale / 64, 512, 16384));
    Rng rng(params.seed ^ 0x5f17ull);

    trace::TraceBuffer buffer;
    trace::Recorder rec(buffer, kPcBase);
    hints::TypeEnumerator types;
    const hints::Hint hints_arr[2] = {
        {types.fresh(), hints::kNoLinkOffset, hints::RefForm::Index},
        {types.fresh(), hints::kNoLinkOffset, hints::RefForm::Index},
    };

    while (buffer.memAccesses() < params.scale) {
        std::string text(n, 'a');
        for (auto &c : text) {
            c = static_cast<char>('a' + rng.below(8)); // skewed alphabet
        }
        runtime::Arena arena(n * 16 + (1u << 20),
                             runtime::Placement::Sequential,
                             params.seed);
        buildCore(text, &rec, &arena, &buffer, params.scale,
                  hints_arr);
    }
    return buffer;
}

} // namespace csp::workloads::pbbs
