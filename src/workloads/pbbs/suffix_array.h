/**
 * @file
 * PBBS `suffixArray` workload (paper Table 3): suffix-array
 * construction by prefix doubling (Manber–Myers). The hot pattern is
 * rank-array gathers at (sa[i], sa[i]+k) — data-dependent indexed loads
 * that defeat pure stride prefetching but carry exploitable history.
 * The paper lists suffixArray among the benchmarks where a competing
 * prefetcher can win (section 7.3, training speed / pattern depth);
 * the reproduction preserves that character.
 */

#ifndef CSP_WORKLOADS_PBBS_SUFFIX_ARRAY_H
#define CSP_WORKLOADS_PBBS_SUFFIX_ARRAY_H

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/workload.h"

namespace csp::workloads::pbbs {

/** Suffix-array construction; see file comment. */
class SuffixArray final : public Workload
{
  public:
    std::string name() const override { return "suffixArray"; }
    std::string suite() const override { return "pbbs"; }
    trace::TraceBuffer generate(const WorkloadParams &params)
        const override;

    /** Untraced reference construction for correctness tests. */
    static std::vector<std::uint32_t> build(const std::string &text);
};

} // namespace csp::workloads::pbbs

#endif // CSP_WORKLOADS_PBBS_SUFFIX_ARRAY_H
