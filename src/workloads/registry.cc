#include "workloads/registry.h"

#include <algorithm>

#include "core/logging.h"
#include "workloads/graph/graph500.h"
#include "workloads/graph/ssca2.h"
#include "workloads/pbbs/convex_hull.h"
#include "workloads/pbbs/knn.h"
#include "workloads/pbbs/pbbs_bfs.h"
#include "workloads/pbbs/set_cover.h"
#include "workloads/pbbs/suffix_array.h"
#include "workloads/spec/spec_synth.h"
#include "workloads/ubench/array_ubench.h"
#include "workloads/ubench/bst.h"
#include "workloads/ubench/hashtest.h"
#include "workloads/ubench/linked_list.h"
#include "workloads/ubench/listsort.h"
#include "workloads/ubench/maptest.h"
#include "workloads/ubench/prim.h"
#include "workloads/ubench/ssca_lds.h"

namespace csp::workloads {

void
Registry::add(const Factory &factory)
{
    auto probe = factory();
    const std::string name = probe->name();
    CSP_ASSERT(!factories_.contains(name));
    suites_[name] = probe->suite();
    factories_[name] = factory;
}

std::unique_ptr<Workload>
Registry::create(const std::string &name) const
{
    auto it = factories_.find(name);
    if (it == factories_.end())
        fatal("unknown workload: %s", name.c_str());
    return it->second();
}

bool
Registry::contains(const std::string &name) const
{
    return factories_.contains(name);
}

std::vector<std::string>
Registry::names() const
{
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto &[name, factory] : factories_)
        out.push_back(name);
    return out;
}

std::vector<std::string>
Registry::namesInSuite(const std::string &suite) const
{
    std::vector<std::string> out;
    for (const auto &[name, label] : suites_) {
        if (label == suite)
            out.push_back(name);
    }
    return out;
}

const Registry &
Registry::builtin()
{
    static const Registry registry = [] {
        Registry r;
        registerBuiltinWorkloads(r);
        return r;
    }();
    return registry;
}

void
registerBuiltinWorkloads(Registry &registry)
{
    using graph::GraphLayout;

    // µkernels (paper Table 3, bottom rows).
    registry.add([] { return std::make_unique<ubench::ListTraversal>(); });
    registry.add([] { return std::make_unique<ubench::ArrayTraversal>(); });
    registry.add([] { return std::make_unique<ubench::ListSort>(); });
    registry.add([] { return std::make_unique<ubench::BstLookup>(); });
    registry.add([] { return std::make_unique<ubench::HashTest>(); });
    registry.add([] { return std::make_unique<ubench::MapTest>(); });
    registry.add([] { return std::make_unique<ubench::PrimMst>(); });
    registry.add([] { return std::make_unique<ubench::SscaLds>(); });

    // Graph500 + HPCS SSCA2, in both layouts (Figure 14).
    registry.add([] {
        return std::make_unique<graph::Graph500>(GraphLayout::Csr);
    });
    registry.add([] {
        return std::make_unique<graph::Graph500>(GraphLayout::Linked);
    });
    registry.add([] {
        return std::make_unique<graph::Ssca2>(GraphLayout::Csr);
    });
    registry.add([] {
        return std::make_unique<graph::Ssca2>(GraphLayout::Linked);
    });

    // PBBS.
    registry.add([] { return std::make_unique<pbbs::SuffixArray>(); });
    registry.add([] { return std::make_unique<pbbs::PbbsBfs>(); });
    registry.add([] { return std::make_unique<pbbs::SetCover>(); });
    registry.add([] { return std::make_unique<pbbs::Knn>(); });
    registry.add([] { return std::make_unique<pbbs::ConvexHull>(); });

    // SPEC2006 synthetic models.
    for (const spec::SpecProfile &profile : spec::specProfiles()) {
        registry.add([profile] {
            return std::make_unique<spec::SpecSynth>(profile);
        });
    }
}

} // namespace csp::workloads
