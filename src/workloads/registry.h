/**
 * @file
 * Workload registry: name -> factory, with suite filtering. The
 * benchmark suite of paper Table 3 is registered by
 * registerBuiltinWorkloads().
 */

#ifndef CSP_WORKLOADS_REGISTRY_H
#define CSP_WORKLOADS_REGISTRY_H

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "workloads/workload.h"

namespace csp::workloads {

/** See file comment. */
class Registry
{
  public:
    using Factory = std::function<std::unique_ptr<Workload>()>;

    /** Register @p factory under the name its product reports. */
    void add(const Factory &factory);

    /** Instantiate a workload by name; fatal() on unknown names. */
    std::unique_ptr<Workload> create(const std::string &name) const;

    /** True iff @p name is registered. */
    bool contains(const std::string &name) const;

    /** All registered names, sorted. */
    std::vector<std::string> names() const;

    /** Names filtered by suite label, sorted. */
    std::vector<std::string> namesInSuite(const std::string &suite) const;

    /** The registry with the paper's full benchmark set. */
    static const Registry &builtin();

  private:
    std::map<std::string, Factory> factories_;
    std::map<std::string, std::string> suites_; ///< name -> suite
};

/** Register every workload of paper Table 3 (plus layout variants). */
void registerBuiltinWorkloads(Registry &registry);

} // namespace csp::workloads

#endif // CSP_WORKLOADS_REGISTRY_H
