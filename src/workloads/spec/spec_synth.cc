#include "workloads/spec/spec_synth.h"

#include <algorithm>
#include <numeric>

#include "core/logging.h"
#include "core/rng.h"
#include "hints/hint.h"

namespace csp::workloads::spec {

namespace {

constexpr Addr kPcBase = 0x00700000;
/// Each stream owns a disjoint 256MB slice of the address space.
constexpr Addr kStreamSlice = 256ull << 20;
constexpr Addr kHeapBase = 0x20000000ull;

/** Runtime state of one stream. */
struct StreamState
{
    StreamSpec spec;
    Addr base = 0;
    Addr cursor = 0;
    std::uint32_t site = 0;         ///< synthetic PC site
    std::vector<std::uint32_t> chain; ///< PointerChase successor perm
    std::uint32_t chain_pos = 0;
    std::uint16_t type_id = 0;
};

} // namespace

const std::vector<SpecProfile> &
specProfiles()
{
    using K = StreamKind;
    static const std::vector<SpecProfile> profiles = [] {
        std::vector<SpecProfile> p;
        const auto MB = [](std::uint64_t m) { return m << 20; };
        const auto KB = [](std::uint64_t k) { return k << 10; };
        // name, mem_fraction, branch_fraction, streams
        p.push_back({"sjeng", 0.30, 0.22,
                     {{K::Resident, 6, KB(48), 64, 2},
                      {K::Gather, 0.5, MB(4), 64, 1},
                      {K::Stack, 2, KB(8), 64, 2}}});
        p.push_back({"povray", 0.32, 0.16,
                     {{K::Resident, 8, KB(40), 64, 3},
                      {K::Stack, 2, KB(8), 64, 2},
                      {K::Stride, 1, KB(96), 64, 2}}});
        p.push_back({"soplex", 0.38, 0.14,
                     {{K::Stride, 3, MB(32), 8, 8},
                      {K::Gather, 3, MB(48), 64, 2},
                      {K::Resident, 2, KB(32), 64, 2}}});
        p.push_back({"dealII", 0.36, 0.14,
                     {{K::Stride, 4, MB(16), 8, 6},
                      {K::Gather, 2, MB(24), 64, 2},
                      {K::Resident, 3, KB(32), 64, 2}}});
        p.push_back({"h264ref", 0.35, 0.12,
                     {{K::Stride, 5, MB(2), 16, 8},
                      {K::Resident, 3, KB(48), 64, 3},
                      {K::Gather, 1, MB(8), 64, 1}}});
        p.push_back({"gobmk", 0.30, 0.24,
                     {{K::Resident, 6, KB(56), 64, 2},
                      {K::Gather, 0.5, MB(4), 64, 1},
                      {K::Stack, 2, KB(8), 64, 2}}});
        p.push_back({"hmmer", 0.40, 0.08,
                     {{K::Stride, 8, KB(48), 4, 12},
                      {K::Resident, 2, KB(24), 64, 3},
                      {K::Gather, 1, KB(768), 64, 1}}});
        p.push_back({"bzip2", 0.34, 0.16,
                     {{K::Stride, 3, MB(8), 1, 8},
                      {K::Gather, 3, MB(8), 64, 2},
                      {K::Resident, 2, KB(32), 64, 2}}});
        p.push_back({"milc", 0.40, 0.06,
                     {{K::Stride, 6, MB(96), 64, 12},
                      {K::Stride, 2, MB(96), 128, 8},
                      {K::Resident, 1, KB(16), 64, 2}}});
        p.push_back({"namd", 0.36, 0.08,
                     {{K::Resident, 5, KB(56), 64, 4},
                      {K::Stride, 3, KB(640), 32, 6},
                      {K::Gather, 1, MB(1), 64, 1}}});
        p.push_back({"omnetpp", 0.36, 0.18,
                     {{K::PointerChase, 6, MB(2), 64, 8, 16384},
                      {K::Gather, 1, MB(8), 64, 1},
                      {K::Resident, 2, KB(32), 64, 2}}});
        p.push_back({"astar", 0.34, 0.18,
                     {{K::PointerChase, 4, MB(3), 64, 4, 24576},
                      {K::Gather, 3, MB(16), 64, 2},
                      {K::Resident, 2, KB(32), 64, 2}}});
        p.push_back({"libquantum", 0.32, 0.14,
                     {{K::Stride, 9, MB(64), 16, 16},
                      {K::Resident, 1, KB(8), 64, 2}}});
        p.push_back({"mcf", 0.38, 0.16,
                     {{K::PointerChase, 6, MB(6), 64, 8, 49152},
                      {K::Gather, 2, MB(32), 64, 2},
                      {K::Resident, 2, KB(32), 64, 2}}});
        p.push_back({"sphinx3", 0.36, 0.12,
                     {{K::Stride, 4, MB(16), 8, 8},
                      {K::Gather, 3, MB(16), 64, 2},
                      {K::Resident, 2, KB(32), 64, 2}}});
        p.push_back({"lbm", 0.42, 0.04,
                     {{K::Stride, 8, MB(128), 64, 16},
                      {K::Stride, 2, MB(128), 192, 8}}});
        return p;
    }();
    return profiles;
}

const SpecProfile &
specProfile(const std::string &name)
{
    for (const SpecProfile &profile : specProfiles()) {
        if (profile.name == name)
            return profile;
    }
    fatal("unknown SPEC profile: %s", name.c_str());
}

trace::TraceBuffer
SpecSynth::generate(const WorkloadParams &params) const
{
    Rng rng(params.seed ^ 0x5bec2006ull);
    trace::TraceBuffer buffer;
    trace::Recorder rec(buffer, kPcBase);
    hints::TypeEnumerator types;

    // Instantiate stream states over disjoint address slices.
    std::vector<StreamState> streams;
    double total_weight = 0.0;
    for (std::size_t i = 0; i < profile_.streams.size(); ++i) {
        StreamState state;
        state.spec = profile_.streams[i];
        state.base = kHeapBase + kStreamSlice * i;
        state.cursor = 0;
        state.site = static_cast<std::uint32_t>(i * 8);
        state.type_id = types.fresh();
        if (state.spec.kind == StreamKind::PointerChase) {
            // A recurring hot path of path_nodes nodes, spread sparsely
            // over the region (few hot lines per 2kB spatial region, so
            // purely spatial schemes find nothing to correlate) with
            // local allocation jitter (semantic neighbours stay within
            // short-pointer reach). state.chain[i] holds the byte
            // offset of the i-th node on the path; traversal follows
            // path order cyclically.
            const std::uint32_t nodes = state.spec.path_nodes;
            const std::uint64_t spacing = std::max<std::uint64_t>(
                64, state.spec.region_bytes / nodes);
            state.chain.resize(nodes);
            for (std::uint32_t i = 0; i < nodes; ++i) {
                const std::uint64_t jitter =
                    rng.below(2048) & ~std::uint64_t{63};
                state.chain[i] = static_cast<std::uint32_t>(
                    (i * spacing + jitter) %
                    state.spec.region_bytes);
            }
        }
        total_weight += state.spec.weight;
        streams.push_back(std::move(state));
    }

    // Instruction mix bookkeeping: emit compute/branch filler after
    // each memory access to honour the profile's fractions.
    const double non_mem_per_mem =
        (1.0 - profile_.mem_fraction) / profile_.mem_fraction;
    const double branches_per_mem =
        profile_.branch_fraction / profile_.mem_fraction;

    const hints::Hint no_hint{};
    double branch_debt = 0.0;
    double compute_debt = 0.0;

    while (buffer.memAccesses() < params.scale) {
        // Pick a stream by weight.
        double pick = rng.uniform() * total_weight;
        StreamState *chosen = &streams.back();
        for (StreamState &state : streams) {
            pick -= state.spec.weight;
            if (pick <= 0.0) {
                chosen = &state;
                break;
            }
        }
        StreamState &s = *chosen;
        const StreamSpec &spec = s.spec;
        for (unsigned b = 0; b < spec.burst; ++b) {
            Addr addr = 0;
            switch (spec.kind) {
              case StreamKind::Stride:
                addr = s.base + s.cursor;
                s.cursor = (s.cursor + static_cast<Addr>(spec.stride)) %
                           spec.region_bytes;
                rec.load(s.site, addr, no_hint, /*loaded_value=*/0);
                break;
              case StreamKind::PointerChase: {
                addr = s.base + s.chain[s.chain_pos];
                // Data-dependent short-circuits (early list exits,
                // search pruning) occasionally skip a node, so the
                // per-visit footprint varies even though the path
                // recurs — the distance variation the paper's bell
                // reward is designed to absorb.
                const std::uint32_t step = rng.chance(0.08) ? 2 : 1;
                const auto next_pos = static_cast<std::uint32_t>(
                    (s.chain_pos + step) % s.chain.size());
                const Addr next_addr = s.base + s.chain[next_pos];
                const hints::Hint chase_hint{s.type_id, 0,
                                             hints::RefForm::Arrow};
                rec.load(s.site, addr, chase_hint, next_addr,
                         /*dep_on_prev_load=*/true);
                s.chain_pos = next_pos;
                break;
              }
              case StreamKind::Gather: {
                addr = s.base +
                       alignDown(rng.below(spec.region_bytes), 8);
                const hints::Hint gather_hint{s.type_id,
                                              hints::kNoLinkOffset,
                                              hints::RefForm::Index};
                rec.load(s.site, addr, gather_hint,
                         /*loaded_value=*/rng.next() & 0xffff);
                break;
              }
              case StreamKind::Resident:
                addr = s.base +
                       alignDown(rng.below(spec.region_bytes), 8);
                rec.load(s.site, addr, no_hint);
                break;
              case StreamKind::Stack:
                // Push/pop pairs walking a few frames down and up.
                addr = s.base +
                       alignDown(s.cursor % spec.region_bytes, 8);
                if (rng.chance(0.5)) {
                    rec.store(s.site, addr, no_hint);
                    s.cursor += 16;
                } else {
                    rec.load(s.site, addr, no_hint);
                    s.cursor = s.cursor >= 16 ? s.cursor - 16 : 0;
                }
                break;
            }
            // Filler instructions to honour the instruction mix.
            branch_debt += branches_per_mem;
            compute_debt += non_mem_per_mem - branches_per_mem;
            if (branch_debt >= 1.0) {
                const auto n = static_cast<unsigned>(branch_debt);
                for (unsigned i = 0; i < n; ++i)
                    rec.branch(s.site + 1, rng.chance(0.6));
                branch_debt -= n;
            }
            if (compute_debt >= 1.0) {
                const auto n =
                    static_cast<std::uint32_t>(compute_debt);
                rec.compute(s.site + 2, n);
                compute_debt -= n;
            }
        }
    }
    return buffer;
}

} // namespace csp::workloads::spec
