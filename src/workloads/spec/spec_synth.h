/**
 * @file
 * Synthetic SPEC CPU2006 workload models — the substitution for running
 * SPEC binaries under gem5 (see DESIGN.md). Each of the 16 benchmarks
 * the paper evaluates (Table 3) is modelled as a weighted mixture of
 * canonical access streams whose parameters reproduce the benchmark's
 * published memory character:
 *
 *  - Stride: one or more sequential/strided array sweeps (lbm,
 *    libquantum, milc, hmmer, ...);
 *  - PointerChase: dependent loads over a randomly-permuted node cycle
 *    (mcf, omnetpp, astar, ...), carrying the compiler pointer hints;
 *  - Gather: data-dependent indexed loads over a large region (soplex,
 *    sphinx3, bzip2, ...);
 *  - Resident: accesses confined to an L1-resident region (povray,
 *    sjeng, gobmk, namd, ...);
 *  - Stack: push/pop traffic in a small hot region.
 *
 * The mixture exercises exactly the prefetcher code paths the real
 * benchmarks would; absolute speedups differ from the paper's (ours is
 * a model, not their binaries), but the per-benchmark ordering of
 * prefetchers is preserved.
 */

#ifndef CSP_WORKLOADS_SPEC_SPEC_SYNTH_H
#define CSP_WORKLOADS_SPEC_SPEC_SYNTH_H

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/workload.h"

namespace csp::workloads::spec {

/** Canonical access-stream shapes. */
enum class StreamKind
{
    Stride,
    PointerChase,
    Gather,
    Resident,
    Stack,
};

/** One stream of a benchmark's mixture. */
struct StreamSpec
{
    StreamKind kind = StreamKind::Stride;
    double weight = 1.0;           ///< relative pick probability
    std::uint64_t region_bytes = 1 << 20; ///< stream working set
    std::int64_t stride = 64;      ///< Stride only
    unsigned burst = 4;            ///< consecutive accesses per pick
    /**
     * PointerChase only: number of nodes on the recurring hot path.
     * The path is spread sparsely over region_bytes with local jitter,
     * the way batch-allocated linked structures end up in real heaps:
     * spatially sparse (few hot lines per region) but with semantically
     * adjacent nodes within reach of short pointers.
     */
    unsigned path_nodes = 4096;
};

/** A benchmark profile: mixture plus instruction-mix parameters. */
struct SpecProfile
{
    std::string name;
    double mem_fraction = 0.35;    ///< memory ops per instruction
    double branch_fraction = 0.15; ///< branches per instruction
    std::vector<StreamSpec> streams;
};

/** The 16 SPEC2006 profiles of paper Table 3. */
const std::vector<SpecProfile> &specProfiles();

/** Profile by benchmark name; fatal() if unknown. */
const SpecProfile &specProfile(const std::string &name);

/** Stream-mixture trace generator; see file comment. */
class SpecSynth final : public Workload
{
  public:
    explicit SpecSynth(SpecProfile profile)
        : profile_(std::move(profile))
    {}

    std::string name() const override { return profile_.name; }
    std::string suite() const override { return "spec2006"; }
    trace::TraceBuffer generate(const WorkloadParams &params)
        const override;

  private:
    SpecProfile profile_;
};

} // namespace csp::workloads::spec

#endif // CSP_WORKLOADS_SPEC_SPEC_SYNTH_H
