#include "workloads/ubench/array_ubench.h"

#include <algorithm>

#include "core/rng.h"
#include "hints/hint.h"

namespace csp::workloads::ubench {

namespace {

constexpr Addr kPcBase = 0x00410000;

enum Site : std::uint32_t
{
    kSiteLoadElem = 0,
    kSiteCompute,
    kSiteLoopBranch,
};

} // namespace

trace::TraceBuffer
ArrayTraversal::generate(const WorkloadParams &params) const
{
    const std::uint64_t elems =
        std::min<std::uint64_t>(65536, std::max<std::uint64_t>(
                                           1024, params.scale / 8));
    // The array variant is always laid out sequentially — that is the
    // point of the comparison.
    runtime::Arena arena(elems * 8 + (1u << 16),
                         runtime::Placement::Sequential, params.seed);
    Rng rng(params.seed ^ 0xa88a1ull);

    auto *data = static_cast<std::uint64_t *>(
        arena.allocate(elems * sizeof(std::uint64_t)));
    for (std::uint64_t i = 0; i < elems; ++i)
        data[i] = rng.next();

    hints::TypeEnumerator types;
    const std::uint16_t elem_type = types.fresh();
    const hints::Hint index_hint{elem_type, hints::kNoLinkOffset,
                                 hints::RefForm::Index};

    trace::TraceBuffer buffer;
    trace::Recorder rec(buffer, kPcBase);

    std::uint64_t accesses = 0;
    std::uint64_t checksum = 0;
    while (accesses < params.scale) {
        for (std::uint64_t i = 0; i < elems && accesses < params.scale;
             ++i) {
            checksum += data[i];
            rec.load(kSiteLoadElem, arena.addrOf(&data[i]), index_hint,
                     /*loaded_value=*/data[i],
                     /*dep_on_prev_load=*/false,
                     /*reg_value=*/0);
            rec.compute(kSiteCompute, 3);
            rec.branch(kSiteLoopBranch, i + 1 < elems);
            ++accesses;
        }
    }
    (void)checksum;
    return buffer;
}

} // namespace csp::workloads::ubench
