/**
 * @file
 * The `array` µbenchmark of paper Table 3: the spatially optimised twin
 * of the `list` µbenchmark — the same repeated logical traversal over a
 * dense array. Trivial for stride prefetchers; the experiment checks
 * that the context-based prefetcher also captures strictly regular
 * patterns (paper section 7.1: "the prefetcher indeed captures access
 * semantics rather than focusing on a specific access pattern").
 */

#ifndef CSP_WORKLOADS_UBENCH_ARRAY_UBENCH_H
#define CSP_WORKLOADS_UBENCH_ARRAY_UBENCH_H

#include "workloads/workload.h"

namespace csp::workloads::ubench {

/** Repeated dense-array traversal. */
class ArrayTraversal final : public Workload
{
  public:
    std::string name() const override { return "array"; }
    std::string suite() const override { return "ubench"; }
    trace::TraceBuffer generate(const WorkloadParams &params)
        const override;
};

} // namespace csp::workloads::ubench

#endif // CSP_WORKLOADS_UBENCH_ARRAY_UBENCH_H
