#include "workloads/ubench/bst.h"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "core/rng.h"
#include "hints/hint.h"

namespace csp::workloads::ubench {

namespace {

struct Node
{
    Node *left = nullptr;
    Node *right = nullptr;
    std::uint64_t key = 0;
};

constexpr Addr kPcBase = 0x00430000;

enum Site : std::uint32_t
{
    kSiteDescend = 0,
    kSiteCompareBranch,
    kSiteStoreChild,
    kSiteCompute,
};

} // namespace

trace::TraceBuffer
BstLookup::generate(const WorkloadParams &params) const
{
    const std::uint64_t keys = std::min<std::uint64_t>(
        16384, std::max<std::uint64_t>(256, params.scale / 64));
    runtime::Arena arena(keys * 64 + (1u << 20), params.placement,
                         params.seed);
    Rng rng(params.seed ^ 0xb57b57ull);

    hints::TypeEnumerator types;
    const std::uint16_t node_type = types.fresh();
    const hints::Hint left_hint{
        node_type, static_cast<std::uint16_t>(offsetof(Node, left)),
        hints::RefForm::Arrow};
    const hints::Hint right_hint{
        node_type, static_cast<std::uint16_t>(offsetof(Node, right)),
        hints::RefForm::Arrow};

    trace::TraceBuffer buffer;
    trace::Recorder rec(buffer, kPcBase);

    // Keep the key universe modest so lookups usually find a key.
    std::vector<std::uint64_t> inserted;
    inserted.reserve(keys);

    Node *root = nullptr;
    auto descend = [&](std::uint64_t key, bool insert) {
        Node *cursor = root;
        Node *parent = nullptr;
        bool went_left = false;
        while (cursor != nullptr) {
            const bool go_left = key < cursor->key;
            Node *next = go_left ? cursor->left : cursor->right;
            rec.load(kSiteDescend, arena.addrOf(cursor),
                     go_left ? left_hint : right_hint,
                     next != nullptr ? arena.addrOf(next) : 0,
                     /*dep_on_prev_load=*/true, /*reg_value=*/key);
            rec.branch(kSiteCompareBranch, go_left);
            if (cursor->key == key)
                return;
            parent = cursor;
            went_left = go_left;
            cursor = next;
        }
        if (insert) {
            Node *fresh = arena.make<Node>();
            fresh->key = key;
            rec.compute(kSiteCompute, 4);
            if (parent == nullptr) {
                root = fresh;
            } else {
                if (went_left)
                    parent->left = fresh;
                else
                    parent->right = fresh;
                rec.store(kSiteStoreChild, arena.addrOf(parent),
                          went_left ? left_hint : right_hint);
            }
            inserted.push_back(key);
        }
    };

    // Build phase.
    for (std::uint64_t i = 0;
         i < keys && buffer.memAccesses() < params.scale / 4; ++i) {
        descend(rng.next() % (keys * 8), true);
    }
    // Lookup phase: mostly hits, some misses.
    while (buffer.memAccesses() < params.scale && !inserted.empty()) {
        const std::uint64_t key =
            rng.chance(0.8)
                ? inserted[rng.below(inserted.size())]
                : rng.next() % (keys * 8);
        descend(key, false);
        rec.compute(kSiteCompute, 2);
    }
    return buffer;
}

} // namespace csp::workloads::ubench
