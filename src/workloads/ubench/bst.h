/**
 * @file
 * The `BST` µbenchmark: random insertions into an (unbalanced) binary
 * search tree followed by many random lookups — input-dependent,
 * heavily branching root-to-leaf pointer chases. The paper singles out
 * this class (maptest, hashtest, BST) as "very difficult to predict,
 * mostly due to their high degree of branching" (section 7.1); the
 * experiment checks that our prefetcher degrades the same way.
 */

#ifndef CSP_WORKLOADS_UBENCH_BST_H
#define CSP_WORKLOADS_UBENCH_BST_H

#include "workloads/workload.h"

namespace csp::workloads::ubench {

/** Unbalanced binary-search-tree insert/lookup mix. */
class BstLookup final : public Workload
{
  public:
    std::string name() const override { return "bst"; }
    std::string suite() const override { return "ubench"; }
    trace::TraceBuffer generate(const WorkloadParams &params)
        const override;
};

} // namespace csp::workloads::ubench

#endif // CSP_WORKLOADS_UBENCH_BST_H
