#include "workloads/ubench/hashtest.h"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "core/hashing.h"
#include "core/rng.h"
#include "hints/hint.h"

namespace csp::workloads::ubench {

namespace {

struct Node
{
    Node *next = nullptr;
    std::uint64_t key = 0;
    std::uint64_t value = 0;
};

constexpr Addr kPcBase = 0x00440000;

enum Site : std::uint32_t
{
    kSiteLoadBucket = 0,
    kSiteChainWalk,
    kSiteChainBranch,
    kSiteHashCompute,
    kSiteStoreInsert,
};

} // namespace

trace::TraceBuffer
HashTest::generate(const WorkloadParams &params) const
{
    const std::uint64_t entries = std::min<std::uint64_t>(
        32768, std::max<std::uint64_t>(512, params.scale / 16));
    const std::uint64_t bucket_count = entries / 2; // load factor ~2
    runtime::Arena arena(entries * 64 + bucket_count * 8 + (1u << 20),
                         params.placement, params.seed);
    Rng rng(params.seed ^ 0x4a54ull);

    hints::TypeEnumerator types;
    const std::uint16_t bucket_type = types.fresh();
    const std::uint16_t node_type = types.fresh();
    const hints::Hint bucket_hint{bucket_type, hints::kNoLinkOffset,
                                  hints::RefForm::Index};
    const hints::Hint chain_hint{
        node_type, static_cast<std::uint16_t>(offsetof(Node, next)),
        hints::RefForm::Arrow};

    auto **buckets = static_cast<Node **>(
        arena.allocate(bucket_count * sizeof(Node *)));
    for (std::uint64_t i = 0; i < bucket_count; ++i)
        buckets[i] = nullptr;

    trace::TraceBuffer buffer;
    trace::Recorder rec(buffer, kPcBase);

    std::vector<std::uint64_t> keys;
    keys.reserve(entries);

    auto bucketOf = [&](std::uint64_t key) {
        return mix64(key) % bucket_count;
    };

    // Populate (untraced bucket writes kept minimal; inserts traced).
    for (std::uint64_t i = 0; i < entries; ++i) {
        const std::uint64_t key = rng.next();
        const std::uint64_t b = bucketOf(key);
        Node *node = arena.make<Node>();
        node->key = key;
        node->value = key * 3;
        node->next = buckets[b];
        buckets[b] = node;
        keys.push_back(key);
    }

    // Lookup mix.
    std::uint64_t found_sum = 0;
    while (buffer.memAccesses() < params.scale) {
        const bool probe_known = rng.chance(0.85);
        const std::uint64_t key =
            probe_known ? keys[rng.below(keys.size())] : rng.next();
        rec.compute(kSiteHashCompute, 4); // hashing the key
        const std::uint64_t b = bucketOf(key);
        Node *cursor = buckets[b];
        rec.load(kSiteLoadBucket, arena.addrOf(&buckets[b]),
                 bucket_hint,
                 cursor != nullptr ? arena.addrOf(cursor) : 0,
                 /*dep_on_prev_load=*/false, /*reg_value=*/key);
        while (cursor != nullptr) {
            const std::uint64_t next_addr =
                cursor->next != nullptr ? arena.addrOf(cursor->next)
                                        : 0;
            rec.load(kSiteChainWalk, arena.addrOf(cursor), chain_hint,
                     next_addr, /*dep_on_prev_load=*/true,
                     /*reg_value=*/key);
            const bool match = cursor->key == key;
            rec.branch(kSiteChainBranch, match);
            if (match) {
                found_sum += cursor->value;
                break;
            }
            cursor = cursor->next;
        }
    }
    (void)found_sum;
    return buffer;
}

} // namespace csp::workloads::ubench
