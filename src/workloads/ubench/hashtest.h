/**
 * @file
 * The `hashtest` µbenchmark (paper Table 3: "STL unordered map"):
 * lookups in a chained hash table — a bucket-array index access
 * followed by a short pointer chase down the collision chain. We build
 * our own chained table (rather than std::unordered_map) so every node
 * lives in the simulated heap and every access carries the compiler
 * hints the paper's LLVM pass would inject.
 */

#ifndef CSP_WORKLOADS_UBENCH_HASHTEST_H
#define CSP_WORKLOADS_UBENCH_HASHTEST_H

#include "workloads/workload.h"

namespace csp::workloads::ubench {

/** Chained-hash-table lookup mix. */
class HashTest final : public Workload
{
  public:
    std::string name() const override { return "hashtest"; }
    std::string suite() const override { return "ubench"; }
    trace::TraceBuffer generate(const WorkloadParams &params)
        const override;
};

} // namespace csp::workloads::ubench

#endif // CSP_WORKLOADS_UBENCH_HASHTEST_H
