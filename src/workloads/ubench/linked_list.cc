#include "workloads/ubench/linked_list.h"

#include <algorithm>
#include <cstddef>

#include "core/rng.h"
#include "hints/hint.h"

namespace csp::workloads::ubench {

namespace {

/** The list node the kernel actually manipulates. */
struct Node
{
    Node *next = nullptr;
    std::uint64_t payload = 0;
};

constexpr Addr kPcBase = 0x00400000;

enum Site : std::uint32_t
{
    kSiteLoadNext = 0,
    kSiteComputePayload,
    kSiteLoopBranch,
};

} // namespace

trace::TraceBuffer
ListTraversal::generate(const WorkloadParams &params) const
{
    // Size the list so several full traversals fit in the access budget:
    // long enough that the working set spills the L1 but recurs often
    // enough to be learnable.
    const std::uint64_t nodes =
        std::min<std::uint64_t>(8192, std::max<std::uint64_t>(
                                          256, params.scale / 24));
    runtime::Arena arena(nodes * 64 + (1u << 20), params.placement,
                         params.seed);
    Rng rng(params.seed ^ 0x11515ull);

    hints::TypeEnumerator types;
    const std::uint16_t node_type = types.fresh();
    const hints::Hint next_hint{
        node_type, static_cast<std::uint16_t>(offsetof(Node, next)),
        hints::RefForm::Arrow};

    // Build the list. Interleave decoy allocations so that even the
    // sequential arena does not produce a perfectly contiguous list.
    Node *head = nullptr;
    Node *tail = nullptr;
    for (std::uint64_t i = 0; i < nodes; ++i) {
        Node *node = arena.make<Node>();
        node->payload = rng.next();
        if (tail != nullptr)
            tail->next = node;
        else
            head = node;
        tail = node;
        if (rng.chance(0.25))
            arena.allocate(sizeof(Node)); // decoy, never freed
    }

    trace::TraceBuffer buffer;
    trace::Recorder rec(buffer, kPcBase);

    std::uint64_t accesses = 0;
    std::uint64_t checksum = 0;
    while (accesses < params.scale) {
        for (Node *node = head; node != nullptr; node = node->next) {
            const std::uint64_t next_addr =
                node->next != nullptr ? arena.addrOf(node->next) : 0;
            rec.load(kSiteLoadNext, arena.addrOf(node), next_hint,
                     /*loaded_value=*/next_addr,
                     /*dep_on_prev_load=*/true);
            checksum += node->payload;
            rec.compute(kSiteComputePayload, 3);
            rec.branch(kSiteLoopBranch, node->next != nullptr);
            ++accesses;
        }
        if (accesses == 0)
            break; // defensive: empty list cannot make progress
    }
    (void)checksum;
    return buffer;
}

} // namespace csp::workloads::ubench
