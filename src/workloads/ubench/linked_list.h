/**
 * @file
 * The `list` and `array` µbenchmarks of paper Table 3: repeated
 * traversal of the same elements in the same logical order, implemented
 * once as a singly linked list scattered over the simulated heap and
 * once as a dense array. The pair demonstrates that the context-based
 * prefetcher captures the *semantic* traversal pattern regardless of
 * layout, while spatio-temporal prefetchers only capture the array
 * variant (paper sections 2 and 7.1).
 */

#ifndef CSP_WORKLOADS_UBENCH_LINKED_LIST_H
#define CSP_WORKLOADS_UBENCH_LINKED_LIST_H

#include "workloads/workload.h"

namespace csp::workloads::ubench {

/** Repeated traversal of a heap-scattered singly linked list. */
class ListTraversal final : public Workload
{
  public:
    std::string name() const override { return "list"; }
    std::string suite() const override { return "ubench"; }
    trace::TraceBuffer generate(const WorkloadParams &params)
        const override;
};

} // namespace csp::workloads::ubench

#endif // CSP_WORKLOADS_UBENCH_LINKED_LIST_H
