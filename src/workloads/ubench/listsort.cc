#include "workloads/ubench/listsort.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <new>
#include <vector>

#include "core/rng.h"
#include "hints/hint.h"

namespace csp::workloads::ubench {

namespace {

struct Node
{
    Node *next = nullptr;
    std::uint64_t key = 0;
    /// Realistic record payload: one node per cache line.
    std::uint64_t payload[6] = {};
};

constexpr Addr kPcBase = 0x00420000;

enum Site : std::uint32_t
{
    kSiteLoadHead = 0,
    kSiteLoadNext,
    kSiteCompareBranch,
    kSiteStoreLink,
    kSiteAllocCompute,
};

} // namespace

trace::TraceBuffer
ListSort::generate(const WorkloadParams &params) const
{
    // Many independent sorted lists built concurrently (records
    // bucketed by key range, the way sort-by-partition codes work).
    // Each list stays small enough that semantic neighbours remain
    // within short-pointer reach, while the combined working set
    // exceeds the L1.
    const std::uint64_t per_list = 128;
    const std::uint64_t accesses_per_list =
        per_list * per_list / 2 + per_list;
    const std::uint64_t lists = std::clamp<std::uint64_t>(
        params.scale / accesses_per_list, 4, 256);
    runtime::Arena arena(lists * per_list * 128 + (4u << 20),
                         params.placement, params.seed);
    Rng rng(params.seed ^ 0x50f7ull);

    hints::TypeEnumerator types;
    const std::uint16_t node_type = types.fresh();
    const hints::Hint next_hint{
        node_type, static_cast<std::uint16_t>(offsetof(Node, next)),
        hints::RefForm::Arrow};

    trace::TraceBuffer buffer;
    trace::Recorder rec(buffer, kPcBase);

    // Each list's node pool is one contiguous block (the records to
    // sort exist before sorting starts); the *linking order* is what
    // becomes random. This is the layout a bucketed record-sort has.
    std::vector<Node *> pools(lists);
    for (std::uint64_t l = 0; l < lists; ++l) {
        pools[l] = static_cast<Node *>(
            arena.allocate(per_list * sizeof(Node)));
        for (std::uint64_t i = 0; i < per_list; ++i)
            new (&pools[l][i]) Node();
    }

    std::vector<Node *> heads(lists, nullptr);
    for (std::uint64_t i = 0;
         i < per_list && buffer.memAccesses() < params.scale; ++i) {
        for (std::uint64_t l = 0;
             l < lists && buffer.memAccesses() < params.scale; ++l) {
            Node *fresh = &pools[l][i];
            // Keys arrive in roughly ascending order with jitter (a
            // mostly-sorted input stream, the adversarial case for
            // insertion sort): every insertion walks most of the
            // list, and the sorted order is a locally scrambled copy
            // of the arrival order.
            fresh->key = i * 4096 + rng.below(12288);
            rec.compute(kSiteAllocCompute, 6); // allocator + init

            // Walk the sorted prefix to the insertion point; every
            // node visit loads the node (key + next share a line).
            Node *prev = nullptr;
            Node *cursor = heads[l];
            if (cursor != nullptr) {
                rec.load(kSiteLoadHead, arena.addrOf(cursor),
                         /*loaded_value=*/arena.addrOf(cursor));
            }
            while (cursor != nullptr && cursor->key < fresh->key) {
                const std::uint64_t next_addr =
                    cursor->next != nullptr
                        ? arena.addrOf(cursor->next)
                        : 0;
                rec.load(kSiteLoadNext, arena.addrOf(cursor),
                         next_hint, next_addr,
                         /*dep_on_prev_load=*/true,
                         /*reg_value=*/fresh->key);
                rec.branch(kSiteCompareBranch, true);
                prev = cursor;
                cursor = cursor->next;
            }
            rec.branch(kSiteCompareBranch, false);

            fresh->next = cursor;
            rec.store(kSiteStoreLink, arena.addrOf(fresh), next_hint);
            if (prev == nullptr) {
                heads[l] = fresh;
            } else {
                prev->next = fresh;
                rec.store(kSiteStoreLink, arena.addrOf(prev),
                          next_hint);
            }
        }
    }
    return buffer;
}

std::vector<ListSort::Fig1Sample>
ListSort::accessPattern(unsigned elements, std::uint64_t seed)
{
    runtime::Arena arena(elements * 64 + (1u << 16),
                         runtime::Placement::Randomized, seed);
    Rng rng(seed ^ 0x50f7ull);
    std::vector<Fig1Sample> samples;
    Node *head = nullptr;
    for (unsigned i = 0; i < elements; ++i) {
        Node *fresh = arena.make<Node>();
        fresh->key = rng.next();
        Node *prev = nullptr;
        Node *cursor = head;
        std::uint64_t logical = 0;
        while (cursor != nullptr && cursor->key < fresh->key) {
            samples.push_back({arena.addrOf(cursor), logical});
            prev = cursor;
            cursor = cursor->next;
            ++logical;
        }
        fresh->next = cursor;
        if (prev == nullptr)
            head = fresh;
        else
            prev->next = fresh;
    }
    return samples;
}

} // namespace csp::workloads::ubench
