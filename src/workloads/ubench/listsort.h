/**
 * @file
 * The `listsort` µbenchmark (paper Table 3 and Figure 1): insertion
 * sort of randomly valued, dynamically allocated elements into a sorted
 * singly linked list. The list rapidly loses any spatial order, yet
 * every insertion re-walks the sorted prefix in the same logical order —
 * the canonical demonstration of semantic locality without spatial
 * locality.
 */

#ifndef CSP_WORKLOADS_UBENCH_LISTSORT_H
#define CSP_WORKLOADS_UBENCH_LISTSORT_H

#include <cstdint>
#include <vector>

#include "workloads/workload.h"

namespace csp::workloads::ubench {

/** Linked-list insertion sort; see file comment. */
class ListSort final : public Workload
{
  public:
    std::string name() const override { return "listsort"; }
    std::string suite() const override { return "ubench"; }
    trace::TraceBuffer generate(const WorkloadParams &params)
        const override;

    /**
     * Figure 1 support: run a small instance and report, per memory
     * access, the (simulated address, logical list index) pair.
     */
    struct Fig1Sample
    {
        Addr addr;
        std::uint64_t logical_index;
    };
    static std::vector<Fig1Sample> accessPattern(unsigned elements,
                                                 std::uint64_t seed);
};

} // namespace csp::workloads::ubench

#endif // CSP_WORKLOADS_UBENCH_LISTSORT_H
