#include "workloads/ubench/maptest.h"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "core/rng.h"
#include "hints/hint.h"
#include "workloads/ubench/rbtree.h"

namespace csp::workloads::ubench {

namespace {

constexpr Addr kPcBase = 0x00450000;

enum Site : std::uint32_t
{
    kSiteDescend = 0,
    kSiteCompareBranch,
    kSiteRebalance,
    kSiteScanStep,
    kSiteCompute,
};

} // namespace

trace::TraceBuffer
MapTest::generate(const WorkloadParams &params) const
{
    const std::uint64_t entries = std::min<std::uint64_t>(
        16384, std::max<std::uint64_t>(256, params.scale / 48));
    runtime::Arena arena(entries * 128 + (1u << 20), params.placement,
                         params.seed);
    Rng rng(params.seed ^ 0x3a93ull);

    hints::TypeEnumerator types;
    const std::uint16_t node_type = types.fresh();
    const hints::Hint left_hint{
        node_type,
        static_cast<std::uint16_t>(offsetof(RbTree::Node, left)),
        hints::RefForm::Arrow};
    const hints::Hint right_hint{
        node_type,
        static_cast<std::uint16_t>(offsetof(RbTree::Node, right)),
        hints::RefForm::Arrow};

    trace::TraceBuffer buffer;
    trace::Recorder rec(buffer, kPcBase);

    RbTree tree(arena);
    std::vector<std::uint64_t> keys;
    keys.reserve(entries);

    std::uint64_t probe_key = 0;
    const auto visit = [&](const RbTree::Node *node, bool went_left) {
        const RbTree::Node *next =
            went_left ? node->left : node->right;
        rec.load(kSiteDescend, arena.addrOf(node),
                 went_left ? left_hint : right_hint,
                 next != nullptr ? arena.addrOf(next) : 0,
                 /*dep_on_prev_load=*/true, /*reg_value=*/probe_key);
        rec.branch(kSiteCompareBranch, went_left);
    };

    // Build phase.
    for (std::uint64_t i = 0;
         i < entries && buffer.memAccesses() < params.scale / 3; ++i) {
        probe_key = rng.next() % (entries * 16);
        unsigned rebalance = 0;
        tree.insert(probe_key, probe_key * 7, visit, &rebalance);
        keys.push_back(probe_key);
        // Rebalancing touches parent/uncle chains: account its memory
        // work as hinted stores plus compute.
        for (unsigned r = 0; r < rebalance; ++r) {
            rec.store(kSiteRebalance, arena.addrOf(tree.root()),
                      left_hint);
            rec.compute(kSiteCompute, 4);
        }
    }

    // Query phase: point lookups and short range scans.
    std::uint64_t sum = 0;
    while (buffer.memAccesses() < params.scale && !keys.empty()) {
        probe_key = rng.chance(0.75) ? keys[rng.below(keys.size())]
                                     : rng.next() % (entries * 16);
        const RbTree::Node *hit = tree.find(probe_key, visit);
        if (hit != nullptr && rng.chance(0.2)) {
            // Range scan: a few in-order successors.
            const RbTree::Node *cursor = hit;
            for (unsigned step = 0; step < 8 && cursor != nullptr;
                 ++step) {
                const RbTree::Node *next = RbTree::successor(cursor);
                rec.load(kSiteScanStep, arena.addrOf(cursor),
                         right_hint,
                         next != nullptr ? arena.addrOf(next) : 0,
                         /*dep_on_prev_load=*/true);
                sum += cursor->value;
                cursor = next;
            }
        }
        rec.compute(kSiteCompute, 3);
    }
    (void)sum;
    return buffer;
}

} // namespace csp::workloads::ubench
