/**
 * @file
 * The `maptest` µbenchmark (paper Table 3: "STL RBtree map"): ordered
 * map traffic over our red–black tree — inserts, point lookups, and
 * short in-order range scans. Like hashtest/BST, the paper classifies
 * it among the hardest, most branch-divergent patterns (section 7.1).
 */

#ifndef CSP_WORKLOADS_UBENCH_MAPTEST_H
#define CSP_WORKLOADS_UBENCH_MAPTEST_H

#include "workloads/workload.h"

namespace csp::workloads::ubench {

/** Red-black-tree map traffic; see file comment. */
class MapTest final : public Workload
{
  public:
    std::string name() const override { return "maptest"; }
    std::string suite() const override { return "ubench"; }
    trace::TraceBuffer generate(const WorkloadParams &params)
        const override;
};

} // namespace csp::workloads::ubench

#endif // CSP_WORKLOADS_UBENCH_MAPTEST_H
