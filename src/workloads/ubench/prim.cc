#include "workloads/ubench/prim.h"

#include <algorithm>
#include <cstddef>

#include "core/rng.h"
#include "hints/hint.h"
#include "workloads/graph/linked_graph.h"

namespace csp::workloads::ubench {

using graph::Edge;
using graph::LinkedGraph;

namespace {

constexpr Addr kPcBase = 0x00460000;
constexpr std::uint32_t kInfKey = 0xffffffffu;

enum Site : std::uint32_t
{
    kSiteScanKey = 0,
    kSiteScanBranch,
    kSiteLoadVertex,
    kSiteLoadEdge,
    kSiteLoadNeighborKey,
    kSiteStoreKey,
    kSiteCompute,
};

/** Core of Prim's algorithm; records the trace when @p rec != null. */
std::uint64_t
primKernel(const std::vector<Edge> &edges, std::uint32_t n,
           runtime::Arena *arena, trace::Recorder *rec,
           const trace::TraceBuffer *buffer, std::uint64_t budget)
{
    runtime::Arena local(
        LinkedGraph::arenaBytes(n, edges.size(), true) + n * 8,
        runtime::Placement::Sequential, 1);
    runtime::Arena &heap = arena != nullptr ? *arena : local;
    LinkedGraph g(heap, edges, n);

    hints::TypeEnumerator types;
    const hints::Hint key_hint{types.fresh(), hints::kNoLinkOffset,
                               hints::RefForm::Index};
    const hints::Hint vertex_hint{
        types.fresh(),
        static_cast<std::uint16_t>(
            offsetof(LinkedGraph::VertexNode, first)),
        hints::RefForm::Arrow};
    const hints::Hint edge_hint{
        types.fresh(),
        static_cast<std::uint16_t>(
            offsetof(LinkedGraph::EdgeNode, next)),
        hints::RefForm::Arrow};

    auto *key = static_cast<std::uint32_t *>(
        heap.allocate(n * sizeof(std::uint32_t)));
    auto *in_mst = static_cast<std::uint8_t *>(
        heap.allocate(n * sizeof(std::uint8_t)));
    std::fill(key, key + n, kInfKey);
    std::fill(in_mst, in_mst + n, 0);

    key[0] = 0;
    std::uint64_t total = 0;
    for (std::uint32_t round = 0; round < n; ++round) {
        if (buffer != nullptr && buffer->memAccesses() >= budget)
            break;
        // Scan for the cheapest fringe vertex (the regular part).
        std::uint32_t best = kInfKey;
        std::uint32_t best_v = n;
        for (std::uint32_t v = 0; v < n; ++v) {
            if (rec != nullptr) {
                rec->load(kSiteScanKey, heap.addrOf(&key[v]), key_hint,
                          key[v]);
            }
            const bool better = in_mst[v] == 0 && key[v] < best;
            if (rec != nullptr)
                rec->branch(kSiteScanBranch, better);
            if (better) {
                best = key[v];
                best_v = v;
            }
        }
        if (best_v == n)
            break; // remaining vertices unreachable
        in_mst[best_v] = 1;
        total += best;
        if (rec != nullptr) {
            rec->store(kSiteStoreKey, heap.addrOf(&in_mst[best_v]),
                       key_hint);
            rec->compute(kSiteCompute, 4);
        }
        // Relax the linked adjacency list (the irregular part).
        LinkedGraph::VertexNode *u = g.vertex(best_v);
        if (rec != nullptr) {
            rec->load(kSiteLoadVertex, heap.addrOf(u), vertex_hint,
                      u->first != nullptr ? heap.addrOf(u->first) : 0,
                      /*dep_on_prev_load=*/true);
        }
        for (LinkedGraph::EdgeNode *e = u->first; e != nullptr;
             e = e->next) {
            const std::uint32_t v = e->to->id;
            if (rec != nullptr) {
                rec->load(kSiteLoadEdge, heap.addrOf(e), edge_hint,
                          e->next != nullptr ? heap.addrOf(e->next)
                                             : 0,
                          /*dep_on_prev_load=*/true);
                rec->load(kSiteLoadNeighborKey, heap.addrOf(&key[v]),
                          key_hint, key[v], /*dep_on_prev_load=*/true);
            }
            if (in_mst[v] == 0 && e->weight < key[v]) {
                key[v] = e->weight;
                if (rec != nullptr) {
                    rec->store(kSiteStoreKey, heap.addrOf(&key[v]),
                               key_hint);
                }
            }
        }
    }
    return total;
}

} // namespace

trace::TraceBuffer
PrimMst::generate(const WorkloadParams &params) const
{
    // Accesses ~ passes * V^2; run Prim repeatedly on fresh graphs
    // until the budget is met.
    graph::RmatParams rmat;
    rmat.scale = 9; // 512 vertices -> ~260k scan accesses per run
    rmat.edge_factor = 6;
    rmat.seed = params.seed;

    trace::TraceBuffer buffer;
    trace::Recorder rec(buffer, kPcBase);
    std::uint64_t round = 0;
    while (buffer.memAccesses() < params.scale) {
        rmat.seed = params.seed + round++;
        const std::vector<Edge> edges = graph::generateRmat(rmat);
        const std::uint32_t n = graph::vertexCount(rmat);
        runtime::Arena arena(
            LinkedGraph::arenaBytes(n, edges.size(), true) + n * 8,
            runtime::Placement::Sequential, params.seed + round);
        primKernel(edges, n, &arena, &rec, &buffer, params.scale);
    }
    return buffer;
}

std::uint64_t
PrimMst::mstWeight(const std::vector<Edge> &edges,
                   std::uint32_t vertices)
{
    return primKernel(edges, vertices, nullptr, nullptr, nullptr, 0);
}

} // namespace csp::workloads::ubench
