/**
 * @file
 * The `Prim` µkernel (paper Table 3): Prim's minimum-spanning-tree
 * algorithm over a pointer-linked adjacency-list graph, in its naive
 * O(V^2 + E) array-scan formulation — a mix of a regular key-array scan
 * (stride friendly) and irregular linked-edge relaxation (context
 * friendly).
 */

#ifndef CSP_WORKLOADS_UBENCH_PRIM_H
#define CSP_WORKLOADS_UBENCH_PRIM_H

#include <cstdint>
#include <vector>

#include "workloads/graph/rmat.h"
#include "workloads/workload.h"

namespace csp::workloads::ubench {

/** Prim's MST over a linked graph; see file comment. */
class PrimMst final : public Workload
{
  public:
    std::string name() const override { return "prim"; }
    std::string suite() const override { return "ubench"; }
    trace::TraceBuffer generate(const WorkloadParams &params)
        const override;

    /**
     * Untraced reference: total MST weight over the connected component
     * of vertex 0 (used by the unit tests against a Kruskal oracle).
     */
    static std::uint64_t
    mstWeight(const std::vector<graph::Edge> &edges,
              std::uint32_t vertices);
};

} // namespace csp::workloads::ubench

#endif // CSP_WORKLOADS_UBENCH_PRIM_H
