#include "workloads/ubench/rbtree.h"

namespace csp::workloads::ubench {

void
RbTree::rotateLeft(Node *node)
{
    Node *pivot = node->right;
    node->right = pivot->left;
    if (pivot->left != nullptr)
        pivot->left->parent = node;
    pivot->parent = node->parent;
    if (node->parent == nullptr)
        root_ = pivot;
    else if (node == node->parent->left)
        node->parent->left = pivot;
    else
        node->parent->right = pivot;
    pivot->left = node;
    node->parent = pivot;
}

void
RbTree::rotateRight(Node *node)
{
    Node *pivot = node->left;
    node->left = pivot->right;
    if (pivot->right != nullptr)
        pivot->right->parent = node;
    pivot->parent = node->parent;
    if (node->parent == nullptr)
        root_ = pivot;
    else if (node == node->parent->right)
        node->parent->right = pivot;
    else
        node->parent->left = pivot;
    pivot->right = node;
    node->parent = pivot;
}

void
RbTree::fixInsert(Node *node, unsigned *steps)
{
    while (node->parent != nullptr &&
           node->parent->color == Color::Red) {
        if (steps != nullptr)
            ++*steps;
        Node *parent = node->parent;
        Node *grandparent = parent->parent;
        if (parent == grandparent->left) {
            Node *uncle = grandparent->right;
            if (uncle != nullptr && uncle->color == Color::Red) {
                parent->color = Color::Black;
                uncle->color = Color::Black;
                grandparent->color = Color::Red;
                node = grandparent;
            } else {
                if (node == parent->right) {
                    node = parent;
                    rotateLeft(node);
                    parent = node->parent;
                }
                parent->color = Color::Black;
                grandparent->color = Color::Red;
                rotateRight(grandparent);
            }
        } else {
            Node *uncle = grandparent->left;
            if (uncle != nullptr && uncle->color == Color::Red) {
                parent->color = Color::Black;
                uncle->color = Color::Black;
                grandparent->color = Color::Red;
                node = grandparent;
            } else {
                if (node == parent->left) {
                    node = parent;
                    rotateRight(node);
                    parent = node->parent;
                }
                parent->color = Color::Black;
                grandparent->color = Color::Red;
                rotateLeft(grandparent);
            }
        }
    }
    root_->color = Color::Black;
}

void
RbTree::insert(std::uint64_t key, std::uint64_t value,
               const std::function<void(const Node *, bool)> &visit,
               unsigned *rebalance_steps)
{
    Node *parent = nullptr;
    Node *cursor = root_;
    bool went_left = false;
    while (cursor != nullptr) {
        went_left = key < cursor->key;
        if (visit)
            visit(cursor, went_left);
        if (cursor->key == key) {
            cursor->value = value;
            return;
        }
        parent = cursor;
        cursor = went_left ? cursor->left : cursor->right;
    }
    Node *fresh = arena_.make<Node>();
    fresh->key = key;
    fresh->value = value;
    fresh->parent = parent;
    if (parent == nullptr)
        root_ = fresh;
    else if (went_left)
        parent->left = fresh;
    else
        parent->right = fresh;
    ++size_;
    fixInsert(fresh, rebalance_steps);
}

const RbTree::Node *
RbTree::find(std::uint64_t key,
             const std::function<void(const Node *, bool)> &visit) const
{
    const Node *cursor = root_;
    while (cursor != nullptr) {
        const bool went_left = key < cursor->key;
        if (visit)
            visit(cursor, went_left);
        if (cursor->key == key)
            return cursor;
        cursor = went_left ? cursor->left : cursor->right;
    }
    return nullptr;
}

const RbTree::Node *
RbTree::minimum() const
{
    const Node *cursor = root_;
    if (cursor == nullptr)
        return nullptr;
    while (cursor->left != nullptr)
        cursor = cursor->left;
    return cursor;
}

const RbTree::Node *
RbTree::successor(const Node *node)
{
    if (node->right != nullptr) {
        const Node *cursor = node->right;
        while (cursor->left != nullptr)
            cursor = cursor->left;
        return cursor;
    }
    const Node *parent = node->parent;
    while (parent != nullptr && node == parent->right) {
        node = parent;
        parent = parent->parent;
    }
    return parent;
}

int
RbTree::blackHeight(const Node *node)
{
    if (node == nullptr)
        return 1; // null leaves are black
    if (node->color == Color::Red) {
        if ((node->left != nullptr &&
             node->left->color == Color::Red) ||
            (node->right != nullptr &&
             node->right->color == Color::Red)) {
            return -1; // red-red violation
        }
    }
    if (node->left != nullptr && node->left->key >= node->key)
        return -1; // BST order violation
    if (node->right != nullptr && node->right->key <= node->key)
        return -1;
    const int left = blackHeight(node->left);
    const int right = blackHeight(node->right);
    if (left < 0 || right < 0 || left != right)
        return -1;
    return left + (node->color == Color::Black ? 1 : 0);
}

int
RbTree::checkInvariants() const
{
    if (root_ == nullptr)
        return 0;
    if (root_->color != Color::Black)
        return -1;
    return blackHeight(root_);
}

} // namespace csp::workloads::ubench
