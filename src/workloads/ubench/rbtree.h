/**
 * @file
 * A from-scratch left-leaning-free, classic red–black tree over the
 * simulated heap. This is the substrate for the `maptest` µbenchmark
 * (paper Table 3: "STL RBtree map"); we implement our own so that every
 * node lives in the Arena and every traversal step can be traced with
 * compiler hints.
 *
 * The tree implements standard insert with recoloring/rotations
 * (CLRS-style) and exposes an invariant checker used by the unit tests:
 * root is black, no red node has a red child, and every root-to-null
 * path has the same black height.
 */

#ifndef CSP_WORKLOADS_UBENCH_RBTREE_H
#define CSP_WORKLOADS_UBENCH_RBTREE_H

#include <cstdint>
#include <functional>

#include "runtime/arena.h"

namespace csp::workloads::ubench {

/** See file comment. */
class RbTree
{
  public:
    enum class Color : std::uint8_t { Red, Black };

    struct Node
    {
        Node *left = nullptr;
        Node *right = nullptr;
        Node *parent = nullptr;
        std::uint64_t key = 0;
        std::uint64_t value = 0;
        Color color = Color::Red;
    };

    explicit RbTree(runtime::Arena &arena) : arena_(arena) {}

    /**
     * Insert (or overwrite) @p key. @p visit, when set, is called for
     * every node touched on the downward search path — the tracing
     * hook; rebalancing work is reported through @p rebalance_steps.
     */
    void insert(std::uint64_t key, std::uint64_t value,
                const std::function<void(const Node *, bool
                                         /*went_left*/)> &visit = {},
                unsigned *rebalance_steps = nullptr);

    /** Find @p key; @p visit as in insert(). */
    const Node *find(std::uint64_t key,
                     const std::function<void(const Node *, bool)>
                         &visit = {}) const;

    /** Smallest-key node (leftmost). */
    const Node *minimum() const;

    /** In-order successor within the tree. */
    static const Node *successor(const Node *node);

    std::size_t size() const { return size_; }
    const Node *root() const { return root_; }

    /**
     * Validate the red-black invariants; returns the tree's black
     * height, or -1 if an invariant is violated.
     */
    int checkInvariants() const;

  private:
    void rotateLeft(Node *node);
    void rotateRight(Node *node);
    void fixInsert(Node *node, unsigned *steps);
    static int blackHeight(const Node *node);

    runtime::Arena &arena_;
    Node *root_ = nullptr;
    std::size_t size_ = 0;
};

} // namespace csp::workloads::ubench

#endif // CSP_WORKLOADS_UBENCH_RBTREE_H
