#include "workloads/ubench/ssca_lds.h"

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <vector>

#include "core/rng.h"
#include "hints/hint.h"
#include "workloads/graph/linked_graph.h"

namespace csp::workloads::ubench {

using graph::LinkedGraph;

namespace {

constexpr Addr kPcBase = 0x00470000;

enum Site : std::uint32_t
{
    kSiteLoadVertex = 0,
    kSiteLoadEdge,
    kSiteWeightBranch,
    kSiteLoadNeighbor,
    kSiteStoreMark,
    kSiteCompute,
};

} // namespace

trace::TraceBuffer
SscaLds::generate(const WorkloadParams &params) const
{
    graph::RmatParams rmat;
    rmat.scale = 9;
    rmat.edge_factor = 8;
    rmat.seed = params.seed;
    const std::vector<graph::Edge> edges = graph::generateRmat(rmat);
    const std::uint32_t n = graph::vertexCount(rmat);

    // SSCA's vertex sets are reached through permutation arrays (the
    // kernels chain into each other via extracted vertex lists), so
    // the sweep order is scattered — but identical on every pass.
    std::vector<std::uint32_t> order(n);
    {
        Rng perm_rng(params.seed ^ 0x0e0aull);
        std::iota(order.begin(), order.end(), 0u);
        for (std::uint32_t i = n; i > 1; --i) {
            const auto j =
                static_cast<std::uint32_t>(perm_rng.below(i));
            std::swap(order[i - 1], order[j]);
        }
    }

    runtime::Arena arena(
        LinkedGraph::arenaBytes(n, edges.size(), true),
        runtime::Placement::Sequential, params.seed);
    LinkedGraph g(arena, edges, n);

    hints::TypeEnumerator types;
    const hints::Hint vertex_hint{
        types.fresh(),
        static_cast<std::uint16_t>(
            offsetof(LinkedGraph::VertexNode, first)),
        hints::RefForm::Arrow};
    const hints::Hint edge_hint{
        types.fresh(),
        static_cast<std::uint16_t>(
            offsetof(LinkedGraph::EdgeNode, next)),
        hints::RefForm::Arrow};
    const hints::Hint neighbor_hint{
        types.fresh(),
        static_cast<std::uint16_t>(offsetof(LinkedGraph::EdgeNode, to)),
        hints::RefForm::Arrow};

    trace::TraceBuffer buffer;
    trace::Recorder rec(buffer, kPcBase);

    const std::uint32_t heavy_threshold = 230; // top ~10% of weights
    while (buffer.memAccesses() < params.scale) {
        // Kernel 2: sweep every adjacency chain for heavy edges, in
        // the extracted-list order.
        std::vector<LinkedGraph::EdgeNode *> heavy;
        for (std::uint32_t idx = 0;
             idx < n && buffer.memAccesses() < params.scale; ++idx) {
            const std::uint32_t v = order[idx];
            LinkedGraph::VertexNode *vn = g.vertex(v);
            rec.load(kSiteLoadVertex, arena.addrOf(vn), vertex_hint,
                     vn->first != nullptr ? arena.addrOf(vn->first)
                                          : 0);
            for (LinkedGraph::EdgeNode *e = vn->first; e != nullptr;
                 e = e->next) {
                rec.load(kSiteLoadEdge, arena.addrOf(e), edge_hint,
                         e->next != nullptr ? arena.addrOf(e->next)
                                            : 0,
                         /*dep_on_prev_load=*/true);
                const bool is_heavy = e->weight >= heavy_threshold;
                rec.branch(kSiteWeightBranch, is_heavy);
                if (is_heavy)
                    heavy.push_back(e);
            }
        }
        // Kernel 3: extract 2-hop neighbourhoods around heavy edges.
        for (LinkedGraph::EdgeNode *seed : heavy) {
            if (buffer.memAccesses() >= params.scale)
                break;
            LinkedGraph::VertexNode *center = seed->to;
            rec.load(kSiteLoadNeighbor, arena.addrOf(center),
                     neighbor_hint,
                     center->first != nullptr
                         ? arena.addrOf(center->first)
                         : 0,
                     /*dep_on_prev_load=*/true);
            unsigned steps = 0;
            for (LinkedGraph::EdgeNode *e = center->first;
                 e != nullptr && steps < 16; e = e->next, ++steps) {
                rec.load(kSiteLoadEdge, arena.addrOf(e), edge_hint,
                         e->next != nullptr ? arena.addrOf(e->next)
                                            : 0,
                         /*dep_on_prev_load=*/true);
                e->to->accum += e->weight;
                rec.store(kSiteStoreMark, arena.addrOf(e->to),
                          neighbor_hint);
            }
            rec.compute(kSiteCompute, 2);
        }
    }
    return buffer;
}

} // namespace csp::workloads::ubench
