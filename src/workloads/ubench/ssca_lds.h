/**
 * @file
 * The `SSCA_LDS` µkernel (paper Table 3: the linked-data-structure
 * version of the SSCA graph kernels): repeated full sweeps over a
 * pointer-linked graph — classify heavy edges (SSCA2 kernel 2) and
 * extract their neighbourhoods (kernel 3) — all through edge-chain
 * pointer chasing.
 */

#ifndef CSP_WORKLOADS_UBENCH_SSCA_LDS_H
#define CSP_WORKLOADS_UBENCH_SSCA_LDS_H

#include "workloads/workload.h"

namespace csp::workloads::ubench {

/** Linked-graph SSCA kernels 2+3; see file comment. */
class SscaLds final : public Workload
{
  public:
    std::string name() const override { return "ssca_lds"; }
    std::string suite() const override { return "ubench"; }
    trace::TraceBuffer generate(const WorkloadParams &params)
        const override;
};

} // namespace csp::workloads::ubench

#endif // CSP_WORKLOADS_UBENCH_SSCA_LDS_H
