#include "workloads/workload.h"

namespace csp::workloads {

Workload::~Workload() = default;

} // namespace csp::workloads
