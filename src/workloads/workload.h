/**
 * @file
 * Workload interface: a workload is a kernel that runs natively over the
 * simulated heap and records an annotated instruction/memory trace
 * (the substitute for gem5 executing a compiled binary). Table 3 of the
 * paper — SPEC2006, PBBS, Graph500, HPCS SSCA2 and the µkernels — is
 * reproduced by the implementations registered in registry.cc.
 */

#ifndef CSP_WORKLOADS_WORKLOAD_H
#define CSP_WORKLOADS_WORKLOAD_H

#include <memory>
#include <string>

#include "runtime/arena.h"
#include "trace/trace.h"

namespace csp::workloads {

/** Generation knobs shared by all workloads. */
struct WorkloadParams
{
    std::uint64_t seed = 1;
    /**
     * Approximate number of memory-access records to generate; each
     * workload scales its own problem size from this.
     */
    std::uint64_t scale = 200000;
    /** Heap placement for linked structures (layout experiments). */
    runtime::Placement placement = runtime::Placement::Randomized;
};

/** See file comment. */
class Workload
{
  public:
    virtual ~Workload();

    /** Identifier used by the registry and the result tables. */
    virtual std::string name() const = 0;

    /** Suite label (paper Table 3): spec2006, pbbs, graph500, hpcs,
     *  ubench. */
    virtual std::string suite() const = 0;

    /** Run the kernel natively and record its trace. */
    virtual trace::TraceBuffer generate(const WorkloadParams &params)
        const = 0;
};

} // namespace csp::workloads

#endif // CSP_WORKLOADS_WORKLOAD_H
