/** @file Correctness tests for the workload kernels' algorithms,
 *  checked against independent oracles. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "core/rng.h"
#include "workloads/graph/rmat.h"
#include "workloads/pbbs/convex_hull.h"
#include "workloads/pbbs/knn.h"
#include "workloads/pbbs/set_cover.h"
#include "workloads/pbbs/suffix_array.h"
#include "workloads/ubench/prim.h"

namespace csp::workloads {
namespace {

using graph::Edge;

/** Kruskal oracle for the MST weight of vertex 0's component. */
std::uint64_t
kruskalComponentWeight(std::vector<Edge> edges, std::uint32_t n)
{
    std::sort(edges.begin(), edges.end(),
              [](const Edge &a, const Edge &b) {
                  return a.weight < b.weight;
              });
    std::vector<std::uint32_t> parent(n);
    std::iota(parent.begin(), parent.end(), 0u);
    const auto find = [&](std::uint32_t x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };
    std::uint64_t total = 0;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> taken;
    for (const Edge &edge : edges) {
        const std::uint32_t a = find(edge.from);
        const std::uint32_t b = find(edge.to);
        if (a != b) {
            parent[a] = b;
            taken.push_back({edge.from, edge.to});
            total += edge.weight;
        }
    }
    // Restrict to vertex 0's component: subtract edges outside it.
    // (Rebuild union-find for component membership.)
    std::vector<std::uint32_t> comp(n);
    std::iota(comp.begin(), comp.end(), 0u);
    const auto cfind = [&](std::uint32_t x) {
        while (comp[x] != x) {
            comp[x] = comp[comp[x]];
            x = comp[x];
        }
        return x;
    };
    std::uint64_t outside = 0;
    // Union all chosen edges, then re-walk to classify.
    for (const auto &[a, b] : taken)
        comp[cfind(a)] = cfind(b);
    std::sort(edges.begin(), edges.end(),
              [](const Edge &a, const Edge &b) {
                  return a.weight < b.weight;
              });
    // Recompute per-component MST weights via a second Kruskal pass.
    std::vector<std::uint32_t> uf(n);
    std::iota(uf.begin(), uf.end(), 0u);
    const auto ufind = [&](std::uint32_t x) {
        while (uf[x] != x) {
            uf[x] = uf[uf[x]];
            x = uf[x];
        }
        return x;
    };
    std::uint64_t zero_comp_weight = 0;
    for (const Edge &edge : edges) {
        const std::uint32_t a = ufind(edge.from);
        const std::uint32_t b = ufind(edge.to);
        if (a != b) {
            uf[a] = b;
            if (cfind(edge.from) == cfind(0))
                zero_comp_weight += edge.weight;
        }
    }
    (void)outside;
    (void)total;
    return zero_comp_weight;
}

TEST(Prim, MatchesKruskalOnSmallGraphs)
{
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        graph::RmatParams params;
        params.scale = 6;
        params.edge_factor = 6;
        params.seed = seed;
        const auto edges = graph::generateRmat(params);
        const std::uint32_t n = graph::vertexCount(params);
        EXPECT_EQ(ubench::PrimMst::mstWeight(edges, n),
                  kruskalComponentWeight(edges, n))
            << "seed " << seed;
    }
}

TEST(Prim, HandDrawnGraph)
{
    // Classic 4-vertex example with MST weight 1+2+3 = 6.
    const std::vector<Edge> edges = {{0, 1, 1}, {1, 2, 2},
                                     {2, 3, 3}, {0, 3, 10},
                                     {0, 2, 9}};
    EXPECT_EQ(ubench::PrimMst::mstWeight(edges, 4), 6u);
}

/** Brute-force suffix-array oracle. */
std::vector<std::uint32_t>
naiveSuffixArray(const std::string &text)
{
    std::vector<std::uint32_t> sa(text.size());
    std::iota(sa.begin(), sa.end(), 0u);
    std::sort(sa.begin(), sa.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  return text.compare(a, std::string::npos, text, b,
                                      std::string::npos) < 0;
              });
    return sa;
}

TEST(SuffixArray, MatchesNaiveSortOnKnownString)
{
    const std::string text = "banana";
    EXPECT_EQ(pbbs::SuffixArray::build(text), naiveSuffixArray(text));
}

TEST(SuffixArray, MatchesNaiveSortOnRandomStrings)
{
    Rng rng(11);
    for (int trial = 0; trial < 5; ++trial) {
        std::string text(200, 'a');
        for (auto &c : text)
            c = static_cast<char>('a' + rng.below(4));
        EXPECT_EQ(pbbs::SuffixArray::build(text),
                  naiveSuffixArray(text))
            << "trial " << trial;
    }
}

TEST(SuffixArray, SingleCharacterRuns)
{
    const std::string text = "aaaa";
    const auto sa = pbbs::SuffixArray::build(text);
    // Shortest suffix sorts first.
    EXPECT_EQ(sa, (std::vector<std::uint32_t>{3, 2, 1, 0}));
}

TEST(SetCover, CoversTheUniverse)
{
    const std::vector<std::vector<std::uint32_t>> sets = {
        {0, 1, 2}, {2, 3}, {3, 4, 5}, {0, 5}};
    const auto chosen = pbbs::SetCover::greedy(sets, 6);
    std::set<std::uint32_t> covered;
    for (std::uint32_t s : chosen) {
        for (std::uint32_t e : sets[s])
            covered.insert(e);
    }
    EXPECT_EQ(covered.size(), 6u);
}

TEST(SetCover, GreedyPicksLargestFirst)
{
    const std::vector<std::vector<std::uint32_t>> sets = {
        {0}, {1, 2}, {3, 4, 5, 6}};
    const auto chosen = pbbs::SetCover::greedy(sets, 7);
    ASSERT_FALSE(chosen.empty());
    EXPECT_EQ(chosen.front(), 2u);
}

TEST(SetCover, SkipsRedundantSets)
{
    const std::vector<std::vector<std::uint32_t>> sets = {
        {0, 1, 2, 3}, {1, 2}, {3}};
    const auto chosen = pbbs::SetCover::greedy(sets, 4);
    EXPECT_EQ(chosen.size(), 1u);
}

TEST(Knn, BruteForceFindsExactNeighbours)
{
    const std::vector<float> xs = {0.1f, 0.2f, 0.9f, 0.11f};
    const std::vector<float> ys = {0.1f, 0.2f, 0.9f, 0.12f};
    const auto knn = pbbs::Knn::bruteForce(xs, ys, 0.1f, 0.1f, 2);
    ASSERT_EQ(knn.size(), 2u);
    EXPECT_EQ(knn[0], 0u);
    EXPECT_EQ(knn[1], 3u);
}

TEST(Knn, KLargerThanPointCount)
{
    const std::vector<float> xs = {0.5f};
    const std::vector<float> ys = {0.5f};
    EXPECT_EQ(pbbs::Knn::bruteForce(xs, ys, 0.0f, 0.0f, 8).size(), 1u);
}

TEST(ConvexHull, SquareWithInteriorPoints)
{
    const std::vector<double> xs = {0, 1, 1, 0, 0.5, 0.3};
    const std::vector<double> ys = {0, 0, 1, 1, 0.5, 0.7};
    const auto hull = pbbs::ConvexHull::hull(xs, ys);
    const std::set<std::uint32_t> hull_set(hull.begin(), hull.end());
    EXPECT_EQ(hull_set, (std::set<std::uint32_t>{0, 1, 2, 3}));
}

TEST(ConvexHull, CollinearPointsExcluded)
{
    const std::vector<double> xs = {0, 1, 2};
    const std::vector<double> ys = {0, 0, 0};
    const auto hull = pbbs::ConvexHull::hull(xs, ys);
    const std::set<std::uint32_t> hull_set(hull.begin(), hull.end());
    EXPECT_TRUE(hull_set.contains(0));
    EXPECT_TRUE(hull_set.contains(2));
    EXPECT_FALSE(hull_set.contains(1));
}

TEST(ConvexHull, AllPointsOnCircleAreHull)
{
    std::vector<double> xs;
    std::vector<double> ys;
    for (int i = 0; i < 12; ++i) {
        const double angle = i * 0.5235987755982988; // pi/6
        xs.push_back(std::cos(angle));
        ys.push_back(std::sin(angle));
    }
    const auto hull = pbbs::ConvexHull::hull(xs, ys);
    EXPECT_EQ(hull.size(), 12u);
}

TEST(ConvexHull, HullOfRandomCloudContainsAllPoints)
{
    Rng rng(13);
    std::vector<double> xs;
    std::vector<double> ys;
    for (int i = 0; i < 300; ++i) {
        xs.push_back(rng.uniform());
        ys.push_back(rng.uniform());
    }
    const auto hull = pbbs::ConvexHull::hull(xs, ys);
    ASSERT_GE(hull.size(), 3u);
    // The hull is emitted clockwise: every input point must lie on or
    // right of each directed hull edge (non-positive cross product).
    for (std::size_t p = 0; p < xs.size(); ++p) {
        for (std::size_t h = 0; h < hull.size(); ++h) {
            const std::uint32_t a = hull[h];
            const std::uint32_t b = hull[(h + 1) % hull.size()];
            const double cross =
                (xs[b] - xs[a]) * (ys[p] - ys[a]) -
                (ys[b] - ys[a]) * (xs[p] - xs[a]);
            EXPECT_LE(cross, 1e-9)
                << "point " << p << " outside edge " << h;
        }
    }
}

} // namespace
} // namespace csp::workloads
