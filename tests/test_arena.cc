/** @file Unit tests for the simulated heap. */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "runtime/arena.h"

namespace csp::runtime {
namespace {

TEST(Arena, SequentialAllocationsAreContiguousPerClass)
{
    Arena arena(1 << 20, Placement::Sequential, 1);
    const Addr a = arena.addrOf(arena.allocate(16));
    const Addr b = arena.addrOf(arena.allocate(16));
    const Addr c = arena.addrOf(arena.allocate(16));
    EXPECT_EQ(b - a, 16u);
    EXPECT_EQ(c - b, 16u);
}

TEST(Arena, RandomizedAllocationsAreScattered)
{
    Arena arena(1 << 20, Placement::Randomized, 1);
    std::vector<Addr> addrs;
    for (int i = 0; i < 32; ++i)
        addrs.push_back(arena.addrOf(arena.allocate(16)));
    int contiguous = 0;
    for (std::size_t i = 1; i < addrs.size(); ++i) {
        if (addrs[i] == addrs[i - 1] + 16)
            ++contiguous;
    }
    // A shuffled slab leaves few adjacent pairs.
    EXPECT_LT(contiguous, 8);
}

TEST(Arena, RandomizedIsDeterministicPerSeed)
{
    Arena a(1 << 20, Placement::Randomized, 99);
    Arena b(1 << 20, Placement::Randomized, 99);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.addrOf(a.allocate(32)),
                  b.addrOf(b.allocate(32)));
    }
}

TEST(Arena, DifferentSeedsShuffleDifferently)
{
    Arena a(1 << 20, Placement::Randomized, 1);
    Arena b(1 << 20, Placement::Randomized, 2);
    bool any_diff = false;
    for (int i = 0; i < 64; ++i) {
        if (a.addrOf(a.allocate(16)) != b.addrOf(b.allocate(16)))
            any_diff = true;
    }
    EXPECT_TRUE(any_diff);
}

TEST(Arena, AddrHostRoundTrip)
{
    Arena arena(1 << 20, Placement::Sequential, 1);
    void *p = arena.allocate(64);
    const Addr addr = arena.addrOf(p);
    EXPECT_EQ(arena.hostOf(addr), p);
    EXPECT_TRUE(arena.contains(addr));
    EXPECT_FALSE(arena.contains(addr + (1 << 21)));
}

TEST(Arena, BaseAddressRespected)
{
    Arena arena(1 << 16, Placement::Sequential, 1, 0xdead0000);
    EXPECT_EQ(arena.baseAddr(), 0xdead0000u);
    EXPECT_GE(arena.addrOf(arena.allocate(16)), 0xdead0000u);
}

TEST(Arena, FreeListReusesSlots)
{
    Arena arena(1 << 20, Placement::Sequential, 1);
    void *p = arena.allocate(32);
    const Addr addr = arena.addrOf(p);
    arena.deallocate(p, 32);
    void *q = arena.allocate(32);
    EXPECT_EQ(arena.addrOf(q), addr);
}

TEST(Arena, BytesLiveTracksAllocations)
{
    Arena arena(1 << 20, Placement::Sequential, 1);
    EXPECT_EQ(arena.bytesLive(), 0u);
    void *p = arena.allocate(16);
    EXPECT_EQ(arena.bytesLive(), 16u);
    arena.deallocate(p, 16);
    EXPECT_EQ(arena.bytesLive(), 0u);
}

TEST(Arena, SizeClassRounding)
{
    Arena arena(1 << 20, Placement::Sequential, 1);
    arena.allocate(17); // rounds to the 32-byte class
    EXPECT_EQ(arena.bytesLive(), 32u);
}

TEST(Arena, LargeAllocationsBumpAllocated)
{
    Arena arena(1 << 20, Placement::Sequential, 1);
    void *big = arena.allocate(100000);
    const Addr addr = arena.addrOf(big);
    EXPECT_EQ(addr % 64, 0u); // 64-byte aligned
    EXPECT_GE(arena.bytesCarved(), 100000u);
}

TEST(Arena, MakeAndDestroy)
{
    struct Node
    {
        int x = 7;
    };
    Arena arena(1 << 20, Placement::Sequential, 1);
    Node *node = arena.make<Node>();
    EXPECT_EQ(node->x, 7);
    arena.destroy(node);
    EXPECT_EQ(arena.bytesLive(), 0u);
}

TEST(Arena, DistinctAddressesAcrossManyAllocations)
{
    Arena arena(1 << 22, Placement::Randomized, 5);
    std::set<Addr> seen;
    for (int i = 0; i < 10000; ++i)
        EXPECT_TRUE(seen.insert(arena.addrOf(arena.allocate(48))).second);
}

TEST(Arena, DeallocateNullIsNoop)
{
    Arena arena(1 << 16, Placement::Sequential, 1);
    arena.deallocate(nullptr, 16);
    EXPECT_EQ(arena.bytesLive(), 0u);
}

TEST(ArenaDeathTest, ExhaustionIsFatal)
{
    EXPECT_DEATH(
        {
            Arena arena(16 * 1024, Placement::Sequential, 1);
            for (int i = 0; i < 100000; ++i)
                arena.allocate(64);
        },
        "exhausted");
}

} // namespace
} // namespace csp::runtime
