/** @file Unit tests for the epsilon-greedy bandit policy. */

#include <gtest/gtest.h>

#include "prefetch/context/bandit.h"

namespace csp::prefetch::ctx {
namespace {

ContextPrefetcherConfig
defaultConfig()
{
    return ContextPrefetcherConfig{};
}

TEST(Bandit, EpsilonStartsHigh)
{
    BanditPolicy policy(defaultConfig(), 1);
    EXPECT_NEAR(policy.epsilon(), defaultConfig().epsilon_max, 1e-9);
}

TEST(Bandit, EpsilonShrinksAsAccuracyConverges)
{
    // Tokic-style adaptation: exploration decays with convergence.
    BanditPolicy policy(defaultConfig(), 1);
    const double before = policy.epsilon();
    for (int i = 0; i < 2000; ++i)
        policy.recordOutcome(true);
    EXPECT_LT(policy.epsilon(), before);
    EXPECT_NEAR(policy.epsilon(), defaultConfig().epsilon_min, 0.01);
}

TEST(Bandit, EpsilonReboundsOnFailures)
{
    BanditPolicy policy(defaultConfig(), 1);
    for (int i = 0; i < 2000; ++i)
        policy.recordOutcome(true);
    for (int i = 0; i < 2000; ++i)
        policy.recordOutcome(false);
    EXPECT_NEAR(policy.epsilon(), defaultConfig().epsilon_max, 0.01);
}

TEST(Bandit, ExploreRateMatchesEpsilon)
{
    BanditPolicy policy(defaultConfig(), 7);
    int fires = 0;
    const int trials = 50000;
    for (int i = 0; i < trials; ++i)
        fires += policy.explore() ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(fires) / trials,
                defaultConfig().epsilon_max, 0.01);
}

TEST(Bandit, ExplorationCanBeDisabled)
{
    BanditPolicy policy(defaultConfig(), 7, /*explore_enabled=*/false);
    for (int i = 0; i < 1000; ++i)
        EXPECT_FALSE(policy.explore());
}

TEST(Bandit, DegreeGrowsWithAccuracy)
{
    BanditPolicy policy(defaultConfig(), 1);
    const unsigned cold = policy.degree(8);
    for (int i = 0; i < 5000; ++i)
        policy.recordOutcome(true);
    const unsigned hot = policy.degree(8);
    EXPECT_EQ(cold, 1u);
    EXPECT_GT(hot, cold);
    EXPECT_LE(hot, defaultConfig().max_degree);
}

TEST(Bandit, DegreeAtLeastOneUnderPressure)
{
    // The dispatch layer converts refused prefetches to shadows; the
    // policy itself always nominates at least one candidate.
    BanditPolicy policy(defaultConfig(), 1);
    for (int i = 0; i < 5000; ++i)
        policy.recordOutcome(true);
    EXPECT_EQ(policy.degree(0), 1u);
}

TEST(Bandit, DegreeCappedByMshrHeadroom)
{
    BanditPolicy policy(defaultConfig(), 1);
    for (int i = 0; i < 5000; ++i)
        policy.recordOutcome(true);
    EXPECT_LE(policy.degree(1), 2u);
}

TEST(Bandit, DeterministicPerSeed)
{
    BanditPolicy a(defaultConfig(), 42);
    BanditPolicy b(defaultConfig(), 42);
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(a.explore(), b.explore());
}

} // namespace
} // namespace csp::prefetch::ctx
