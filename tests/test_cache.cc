/** @file Unit tests for the set-associative cache model. */

#include <gtest/gtest.h>

#include "mem/cache.h"

namespace csp::mem {
namespace {

CacheConfig
smallCache()
{
    // 4 sets x 2 ways x 64B lines = 512B.
    CacheConfig config;
    config.size_bytes = 512;
    config.ways = 2;
    config.line_bytes = 64;
    config.access_latency = 2;
    config.mshrs = 4;
    return config;
}

TEST(Cache, MissThenHit)
{
    Cache cache(smallCache(), "t");
    EXPECT_EQ(cache.lookup(0x1000), nullptr);
    cache.insert(0x1000, 0, false);
    EXPECT_NE(cache.lookup(0x1000), nullptr);
}

TEST(Cache, SubLineAddressesShareALine)
{
    Cache cache(smallCache(), "t");
    cache.insert(0x1000, 0, false);
    EXPECT_NE(cache.lookup(0x103f), nullptr);
    EXPECT_EQ(cache.lookup(0x1040), nullptr);
}

TEST(Cache, LruEvictsOldest)
{
    Cache cache(smallCache(), "t");
    // Three lines mapping to the same set (set stride = 4 * 64 = 256).
    cache.insert(0x0000, 0, false);
    cache.insert(0x0100, 0, false);
    cache.lookup(0x0000); // refresh line 0
    cache.insert(0x0200, 0, false);
    EXPECT_NE(cache.lookup(0x0000), nullptr);  // refreshed survives
    EXPECT_EQ(cache.lookup(0x0100), nullptr);  // LRU victim
    EXPECT_NE(cache.lookup(0x0200), nullptr);
}

TEST(Cache, EvictInfoReportsUnusedPrefetch)
{
    Cache cache(smallCache(), "t");
    cache.insert(0x0000, 0, true);
    cache.insert(0x0100, 0, false);
    EvictInfo evicted;
    cache.insert(0x0200, 0, false, &evicted);
    EXPECT_TRUE(evicted.valid);
    EXPECT_TRUE(evicted.prefetched_unused);
}

TEST(Cache, UsedPrefetchNotReportedUnused)
{
    Cache cache(smallCache(), "t");
    LineState &line = cache.insert(0x0000, 0, true);
    line.used = true;
    cache.insert(0x0100, 0, false);
    EvictInfo evicted;
    cache.insert(0x0200, 0, false, &evicted);
    EXPECT_TRUE(evicted.valid);
    EXPECT_FALSE(evicted.prefetched_unused);
}

TEST(Cache, InsertSetsReadyCycleAndPrefetchBit)
{
    Cache cache(smallCache(), "t");
    const LineState &line = cache.insert(0x2000, 777, true);
    EXPECT_EQ(line.ready, 777u);
    EXPECT_TRUE(line.prefetched);
    EXPECT_FALSE(line.used);
}

TEST(Cache, PeekDoesNotTouchLru)
{
    Cache cache(smallCache(), "t");
    cache.insert(0x0000, 0, false);
    cache.insert(0x0100, 0, false);
    cache.peek(0x0000); // must NOT refresh
    cache.insert(0x0200, 0, false);
    EXPECT_EQ(cache.lookup(0x0000), nullptr); // still evicted
}

TEST(Cache, InvalidateRemovesLine)
{
    Cache cache(smallCache(), "t");
    cache.insert(0x1000, 0, false);
    cache.invalidate(0x1000);
    EXPECT_EQ(cache.lookup(0x1000), nullptr);
}

TEST(Cache, CountUnusedPrefetches)
{
    Cache cache(smallCache(), "t");
    // Distinct sets (set stride is 64B within the 4-set cache).
    cache.insert(0x0000, 0, true);
    cache.insert(0x0040, 0, true);
    LineState &used = cache.insert(0x0080, 0, true);
    used.used = true;
    EXPECT_EQ(cache.countUnusedPrefetches(), 2u);
}

TEST(Cache, DifferentSetsDoNotConflict)
{
    Cache cache(smallCache(), "t");
    for (Addr a = 0; a < 512; a += 64)
        cache.insert(a, 0, false);
    for (Addr a = 0; a < 512; a += 64)
        EXPECT_NE(cache.lookup(a), nullptr);
}

TEST(Cache, ResetDropsAllLines)
{
    Cache cache(smallCache(), "t");
    cache.insert(0x1000, 0, false);
    cache.reset();
    EXPECT_EQ(cache.lookup(0x1000), nullptr);
}

TEST(Cache, LineAddrAligns)
{
    Cache cache(smallCache(), "t");
    EXPECT_EQ(cache.lineAddr(0x1039), 0x1000u);
}

TEST(Cache, TagDistinguishesAliasedSets)
{
    Cache cache(smallCache(), "t");
    cache.insert(0x0000, 0, false);
    // Same set (stride 256), different tag.
    EXPECT_EQ(cache.lookup(0x0100), nullptr);
}

TEST(Cache, LipInsertIsNextVictim)
{
    Cache cache(smallCache(), "t");
    cache.insert(0x0000, 0, false);
    cache.insert(0x0100, 0, false); // set full (2 ways)
    // LIP insert: victimises LRU (0x0000) but enters at LRU priority.
    cache.insert(0x0200, 0, true, nullptr, /*lru_insert=*/true);
    // The next normal insert must evict the LIP line, not 0x0100.
    cache.insert(0x0300, 0, false);
    EXPECT_EQ(cache.lookup(0x0200, false), nullptr);
    EXPECT_NE(cache.lookup(0x0100, false), nullptr);
}

TEST(Cache, LipLinePromotedByDemandTouch)
{
    Cache cache(smallCache(), "t");
    cache.insert(0x0000, 0, false);
    cache.insert(0x0100, 0, false);
    cache.insert(0x0200, 0, true, nullptr, /*lru_insert=*/true);
    cache.lookup(0x0200); // demand touch refreshes to MRU
    cache.insert(0x0300, 0, false);
    EXPECT_NE(cache.lookup(0x0200, false), nullptr);
    EXPECT_EQ(cache.lookup(0x0100, false), nullptr); // became LRU
}

TEST(Cache, LipIntoEmptySetBehavesNormally)
{
    Cache cache(smallCache(), "t");
    cache.insert(0x0000, 0, true, nullptr, /*lru_insert=*/true);
    EXPECT_NE(cache.lookup(0x0000), nullptr);
}

} // namespace
} // namespace csp::mem
