/** @file Unit tests for configuration defaults (paper Table 2). */

#include <gtest/gtest.h>

#include "core/config.h"

namespace csp {
namespace {

TEST(Config, CoreDefaultsMatchTable2)
{
    const CoreConfig core;
    EXPECT_EQ(core.fetch_width, 4u);
    EXPECT_EQ(core.rob_entries, 192u);
    EXPECT_EQ(core.iq_entries, 64u);
    EXPECT_EQ(core.prf_entries, 256u);
    EXPECT_EQ(core.lq_entries, 32u);
    EXPECT_EQ(core.sq_entries, 32u);
}

TEST(Config, MemoryDefaultsMatchTable2)
{
    const MemoryConfig mem;
    EXPECT_EQ(mem.l1d.size_bytes, 64u * 1024);
    EXPECT_EQ(mem.l1d.ways, 8u);
    EXPECT_EQ(mem.l1d.access_latency, 2u);
    EXPECT_EQ(mem.l1d.mshrs, 4u);
    EXPECT_EQ(mem.l2.size_bytes, 2u * 1024 * 1024);
    EXPECT_EQ(mem.l2.ways, 16u);
    EXPECT_EQ(mem.l2.access_latency, 20u);
    EXPECT_EQ(mem.l2.mshrs, 20u);
    EXPECT_EQ(mem.dram_latency, 300u);
}

TEST(Config, CacheSetsComputed)
{
    const MemoryConfig mem;
    EXPECT_EQ(mem.l1d.sets(), 64u * 1024 / (8 * 64));
    EXPECT_EQ(mem.l2.sets(), 2u * 1024 * 1024 / (16 * 64));
}

TEST(Config, ContextPrefetcherDefaultsMatchTable2)
{
    const ContextPrefetcherConfig ctx;
    EXPECT_EQ(ctx.cst_entries, 2048u);
    EXPECT_EQ(ctx.cst_links, 4u);
    EXPECT_EQ(ctx.reducer_entries, 16384u);
    EXPECT_EQ(ctx.history_entries, 50u);
    EXPECT_EQ(ctx.prefetch_queue_entries, 128u);
    EXPECT_EQ(ctx.reduced_hash_bits, 19u);
    EXPECT_EQ(ctx.full_hash_bits, 16u);
}

TEST(Config, ContextStorageNearPaperBudget)
{
    // Paper: ~31kB overall.
    const ContextPrefetcherConfig ctx;
    const double kb =
        static_cast<double>(ctx.storageBytes()) / 1024.0;
    EXPECT_GT(kb, 25.0);
    EXPECT_LT(kb, 40.0);
}

TEST(Config, L1MissPenaltyFormula)
{
    // Paper section 4.3: penalty = L2 latency + miss rate * DRAM.
    const MemoryConfig mem;
    EXPECT_DOUBLE_EQ(mem.l1MissPenalty(0.0), 20.0);
    EXPECT_DOUBLE_EQ(mem.l1MissPenalty(1.0), 320.0);
    EXPECT_DOUBLE_EQ(mem.l1MissPenalty(0.5), 170.0);
}

TEST(Config, RewardWindowMatchesPaper)
{
    const RewardConfig reward;
    EXPECT_EQ(reward.window_lo, 18u);
    EXPECT_EQ(reward.window_hi, 50u);
    EXPECT_GE(reward.window_center, reward.window_lo);
    EXPECT_LE(reward.window_center, reward.window_hi);
}

TEST(Config, CompetitorSizingMatchesTable2)
{
    const GhbConfig ghb;
    EXPECT_EQ(ghb.ghb_entries, 2048u);
    EXPECT_EQ(ghb.history_length, 3u);
    EXPECT_EQ(ghb.degree, 3u);
    const SmsConfig sms;
    EXPECT_EQ(sms.pht_entries, 2048u);
    EXPECT_EQ(sms.agt_entries, 32u);
    EXPECT_EQ(sms.filter_entries, 32u);
    EXPECT_EQ(sms.region_bytes, 2048u);
}

TEST(Config, DescribeMentionsKeyParameters)
{
    const SystemConfig config;
    const std::string text = config.describe();
    EXPECT_NE(text.find("192 ROB"), std::string::npos);
    EXPECT_NE(text.find("64kB"), std::string::npos);
    EXPECT_NE(text.find("300 cycles"), std::string::npos);
    EXPECT_NE(text.find("2048 entries x 4 links"), std::string::npos);
}

} // namespace
} // namespace csp
